#!/bin/sh
# Pre-merge gate: build, test, formatting, fixed-seed smoke runs, and the
# bench-regression diff against committed seed baselines.  CHECK_SLOW=1
# additionally re-runs the property suite with 5x the iteration counts
# and diffs the full benchmark sweeps.
set -eux

dune build
dune runtest
dune build @fmt

# Chaos smoke: scenario 1 under a fixed-seed fault schedule must terminate
# and export non-empty fault metrics.
metrics=$(mktemp)
cache_metrics=$(mktemp)
trace_a=$(mktemp)
trace_b=$(mktemp)
bench_dir=$(mktemp -d)
trap 'rm -f "$metrics" "$cache_metrics" "$trace_a" "$trace_b"; rm -rf "$bench_dir"' EXIT
./_build/default/bin/main.exe scenario elearn \
  --fault-seed 7 --drop 0.15 --duplicate 0.1 --delay 0.2 --outage UIUC:3:9 \
  --metrics-out "$metrics" > /dev/null
grep -q '"net.drops"' "$metrics"
grep -q '"reactor.retries"' "$metrics"

# Cache smoke: a cold + warm scenario pass over one session must record
# cache hits in the exported metrics.
./_build/default/bin/main.exe scenario services --cache --repeat 2 \
  --metrics-out "$cache_metrics" > /dev/null
grep -q '"cache.hits"' "$cache_metrics"
if grep -q '"cache.hits":0[,}]' "$cache_metrics"; then
  echo "cache smoke: no cache hits recorded" >&2
  exit 1
fi

# Resolution smoke: the scaled resolution-core workloads once, with the
# engine's answer sets diffed against the map-based reference engine.
./_build/default/bench/main.exe resolution --smoke > /dev/null

# Adversary smoke: scenario 1 with misbehaving peers and guards on; the
# bench hard-fails if an honest negotiation is lost, a flooding/malformed
# adversary escapes quarantine, or an honest peer is quarantined.  The
# artifact goes to the scratch dir: the committed BENCH_adversary.json is
# the *full-scale* baseline the CHECK_SLOW diff runs against, and writing
# the smoke artifact into the repo root would clobber it.
./_build/default/bench/main.exe adversary --smoke \
  --metrics-dir "$bench_dir" > /dev/null

# Trace smoke: a faulted scenario run with tracing on must produce an
# identical span log on a re-run (determinism is what makes the artifact
# diffable), and the trace subcommand must reconstruct a timeline with a
# cross-peer critical path from it.
./_build/default/bin/main.exe scenario elearn \
  --fault-seed 7 --drop 0.15 --duplicate 0.1 --delay 0.2 \
  --trace-out "$trace_a" > /dev/null
./_build/default/bin/main.exe scenario elearn \
  --fault-seed 7 --drop 0.15 --duplicate 0.1 --delay 0.2 \
  --trace-out "$trace_b" > /dev/null
cmp "$trace_a" "$trace_b"
./_build/default/bin/main.exe trace "$trace_a" | grep -q 'critical path'
./_build/default/bin/main.exe trace "$trace_a" | grep -q 'net.wire'

# Recursion smoke: a cyclic mutual-accreditation policy must terminate
# under distributed tabling (loop detection + GEM-style completion) and
# grant the chained credential; then the scaled recursion workloads once,
# diffed against the committed seed baseline.
./_build/default/bin/main.exe scenario accreditation --tabling \
  --metrics-out "$metrics" > /dev/null
grep -q '"negotiation.granted":1[,}]' "$metrics"
if grep -q '"tabling.loops_detected":0[,}]' "$metrics"; then
  echo "recursion smoke: no inter-peer loop detected" >&2
  exit 1
fi
./_build/default/bench/main.exe recursion --smoke \
  --metrics-dir "$bench_dir" > /dev/null
./_build/default/bench/main.exe diff --against-seed recursion_smoke \
  "$bench_dir/BENCH_recursion.json"

# Crash smoke: scenario 1 with a scheduled crash+restart and journals on
# must recover and grant; the recovery metrics must stay inside the
# committed smoke baseline's bands.
journal_dir=$(mktemp -d)
./_build/default/bin/main.exe scenario elearn \
  --crash E-Learn:5:40 --journal "$journal_dir" \
  --metrics-out "$metrics" > /dev/null
grep -q '"negotiation.granted":1[,}]' "$metrics"
grep -q '"reactor.restarts":1[,}]' "$metrics"
rm -rf "$journal_dir"
./_build/default/bench/main.exe crash --smoke \
  --metrics-dir "$bench_dir" > /dev/null
./_build/default/bench/main.exe diff --against-seed crash_smoke \
  "$bench_dir/BENCH_crash.json"

# Bench-regression gate: the smoke resolution metrics must stay inside
# the per-metric tolerance bands of the committed seed baseline, and the
# diff tool must catch an injected 2x inflation (self-test).
./_build/default/bench/main.exe resolution --smoke \
  --metrics-dir "$bench_dir" > /dev/null
# The million-fact workloads (scaled down under --smoke) must have
# reported their gauges, and histograms that recorded nothing (e.g. the
# reactor's, which bench resolution never enters) must not be emitted.
grep -q '"resolution.ground_lookup.ms"' "$bench_dir/BENCH_resolution.json"
grep -q '"resolution.indexed_million.ms"' "$bench_dir/BENCH_resolution.json"
if grep -q '"reactor.steps_per_run"' "$bench_dir/BENCH_resolution.json"; then
  echo "bench resolution: empty histogram leaked into the artifact" >&2
  exit 1
fi
./_build/default/bench/main.exe diff --against-seed resolution_smoke \
  "$bench_dir/BENCH_resolution.json"
if ./_build/default/bench/main.exe diff --against-seed resolution_smoke \
  --inflate 2 "$bench_dir/BENCH_resolution.json" > /dev/null 2>&1; then
  echo "bench diff: failed to flag an injected 2x regression" >&2
  exit 1
fi

# Slow gate: the property suite again with raised iteration counts, then
# the full benchmark sweeps diffed against their committed baselines.
if [ "${CHECK_SLOW:-0}" != "0" ]; then
  CHECK_SLOW=1 ./_build/default/test/test_properties.exe
  ./_build/default/bench/main.exe adversary chaos resolution recursion crash \
    --metrics-dir "$bench_dir"
  ./_build/default/bench/main.exe diff --against-seed adversary \
    "$bench_dir/BENCH_adversary.json"
  ./_build/default/bench/main.exe diff --against-seed chaos \
    "$bench_dir/BENCH_chaos.json"
  ./_build/default/bench/main.exe diff --against-seed resolution \
    "$bench_dir/BENCH_resolution.json"
  ./_build/default/bench/main.exe diff --against-seed recursion \
    "$bench_dir/BENCH_recursion.json"
  ./_build/default/bench/main.exe diff --against-seed crash \
    "$bench_dir/BENCH_crash.json"
fi

#!/bin/sh
# Pre-merge gate: build, test, formatting, and fixed-seed smoke runs.
# CHECK_SLOW=1 additionally re-runs the property suite with 5x the
# iteration counts.
set -eux

dune build
dune runtest
dune build @fmt

# Chaos smoke: scenario 1 under a fixed-seed fault schedule must terminate
# and export non-empty fault metrics.
metrics=$(mktemp)
cache_metrics=$(mktemp)
trap 'rm -f "$metrics" "$cache_metrics"' EXIT
./_build/default/bin/main.exe scenario elearn \
  --fault-seed 7 --drop 0.15 --duplicate 0.1 --delay 0.2 --outage UIUC:3:9 \
  --metrics-out "$metrics" > /dev/null
grep -q '"net.drops"' "$metrics"
grep -q '"reactor.retries"' "$metrics"

# Cache smoke: a cold + warm scenario pass over one session must record
# cache hits in the exported metrics.
./_build/default/bin/main.exe scenario services --cache --repeat 2 \
  --metrics-out "$cache_metrics" > /dev/null
grep -q '"cache.hits"' "$cache_metrics"
if grep -q '"cache.hits":0[,}]' "$cache_metrics"; then
  echo "cache smoke: no cache hits recorded" >&2
  exit 1
fi

# Resolution smoke: the scaled resolution-core workloads once, with the
# engine's answer sets diffed against the map-based reference engine.
./_build/default/bench/main.exe resolution --smoke > /dev/null

# Adversary smoke: scenario 1 with misbehaving peers and guards on; the
# bench hard-fails if an honest negotiation is lost, a flooding/malformed
# adversary escapes quarantine, or an honest peer is quarantined.
./_build/default/bench/main.exe adversary --smoke > /dev/null

# Slow gate: the property suite again with raised iteration counts, the
# full 100-seed adversary sweep, and the full resolution sweep (timed,
# 5 runs per workload).
if [ "${CHECK_SLOW:-0}" != "0" ]; then
  CHECK_SLOW=1 ./_build/default/test/test_properties.exe
  ./_build/default/bench/main.exe adversary
  ./_build/default/bench/main.exe resolution
fi

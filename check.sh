#!/bin/sh
# Pre-merge gate: build, test, formatting, and a chaos smoke run.
set -eux

dune build
dune runtest
dune build @fmt

# Chaos smoke: scenario 1 under a fixed-seed fault schedule must terminate
# and export non-empty fault metrics.
metrics=$(mktemp)
trap 'rm -f "$metrics"' EXIT
./_build/default/bin/main.exe scenario elearn \
  --fault-seed 7 --drop 0.15 --duplicate 0.1 --delay 0.2 --outage UIUC:3:9 \
  --metrics-out "$metrics" > /dev/null
grep -q '"net.drops"' "$metrics"
grep -q '"reactor.retries"' "$metrics"

#!/bin/sh
# Pre-merge gate: build, test, and formatting check.
set -eux

dune build
dune runtest
dune build @fmt

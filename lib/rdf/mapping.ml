open Peertrust_dlp

let local_name iri =
  let cut c =
    match String.rindex_opt iri c with
    | Some i when i + 1 < String.length iri ->
        Some (String.sub iri (i + 1) (String.length iri - i - 1))
    | Some _ | None -> None
  in
  match cut '#' with
  | Some l -> l
  | None -> ( match cut '/' with Some l -> l | None -> iri)

let is_atom_name s =
  s <> ""
  && s.[0] >= 'a'
  && s.[0] <= 'z'
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_')
       s

let term_of_iri iri =
  let l = local_name iri in
  if is_atom_name l then Term.atom l else Term.str l

let term_of_obj = function
  | Triple.Iri i -> term_of_iri i
  | Triple.Str s -> Term.str s
  | Triple.Int i -> Term.Int i

let facts_of_triple (t : Triple.t) =
  let subj = term_of_iri t.Triple.subject in
  let obj = term_of_obj t.Triple.obj in
  let pred_name =
    if String.equal t.Triple.predicate "a" then "a"
    else local_name t.Triple.predicate
  in
  let generic =
    Rule.fact
      (Literal.make "triple"
         [ subj; Term.str t.Triple.predicate; obj ])
  in
  if is_atom_name pred_name then
    [ generic; Rule.fact (Literal.make pred_name [ subj; obj ]) ]
  else [ generic ]

let facts_of_store store =
  List.concat_map facts_of_triple (Triple.Store.all store)

let kb_of_store store = Kb.add_list (facts_of_store store) Kb.empty
let extend_kb kb store = Kb.add_list (facts_of_store store) kb

open Peertrust_dlp

type t = {
  store : Triple.Store.store;
  mutable course_ids : string list;  (* reverse registration order *)
}

let namespace = "http://elena-project.org/resources#"

let create () = { store = Triple.Store.create (); course_ids = [] }
let store t = t.store

let valid_id s =
  s <> ""
  && s.[0] >= 'a'
  && s.[0] <= 'z'
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
       s

let add_course t ~id ?price ?language ?provider () =
  if not (valid_id id) then
    invalid_arg (Printf.sprintf "Registry.add_course: bad id %S" id);
  let subject = namespace ^ id in
  let add predicate obj =
    Triple.Store.add t.store { Triple.subject; predicate; obj }
  in
  add "a" (Triple.Iri (namespace ^ "Course"));
  Option.iter (fun p -> add (namespace ^ "price") (Triple.Int p)) price;
  Option.iter (fun l -> add (namespace ^ "language") (Triple.Str l)) language;
  Option.iter (fun p -> add (namespace ^ "provider") (Triple.Str p)) provider;
  t.course_ids <- id :: t.course_ids

let courses t = List.rev t.course_ids

let to_kb t =
  let kb = Mapping.kb_of_store t.store in
  let course_facts =
    List.concat_map
      (fun id ->
        let atom = Term.atom id in
        let subject = namespace ^ id in
        let price =
          match
            Triple.Store.find ~subject ~predicate:(namespace ^ "price") t.store
          with
          | { Triple.obj = Triple.Int p; _ } :: _ -> Some p
          | _ -> None
        in
        let language =
          match
            Triple.Store.find ~subject ~predicate:(namespace ^ "language")
              t.store
          with
          | { Triple.obj = Triple.Str l; _ } :: _ -> Some l
          | _ -> None
        in
        let base = [ Rule.fact (Literal.make "course" [ atom ]) ] in
        let price_facts =
          match price with
          | Some 0 -> [ Rule.fact (Literal.make "freeCourse" [ atom ]) ]
          | Some p ->
              [ Rule.fact (Literal.make "price" [ atom; Term.Int p ]) ]
          | None -> []
        in
        let lang_facts =
          match language with
          | Some l when valid_id l ->
              [ Rule.fact (Literal.make (l ^ "Course") [ atom ]) ]
          | Some _ | None -> []
        in
        base @ price_facts @ lang_facts)
      (courses t)
  in
  Kb.add_list course_facts kb


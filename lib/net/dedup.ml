type t = {
  cap : int;
  tbl : (int, unit) Hashtbl.t;
  order : int Queue.t;  (* insertion order; front = oldest *)
  mutable evicted : int;
}

let create ~cap =
  if cap < 1 then invalid_arg "Dedup.create: cap must be >= 1";
  { cap; tbl = Hashtbl.create (min cap 1024); order = Queue.create (); evicted = 0 }

let mem t id = Hashtbl.mem t.tbl id

let add t id =
  if Hashtbl.mem t.tbl id then false
  else begin
    Hashtbl.add t.tbl id ();
    Queue.add id t.order;
    if Hashtbl.length t.tbl > t.cap then begin
      let oldest = Queue.pop t.order in
      Hashtbl.remove t.tbl oldest;
      t.evicted <- t.evicted + 1;
      true
    end
    else false
  end

let length t = Hashtbl.length t.tbl
let evictions t = t.evicted

(** Simulated discrete clock.  One tick is an abstract time unit; the
    network charges ticks per message according to its latency model. *)

type t

val create : unit -> t
val now : t -> int

val advance : t -> int -> unit
(** @raise Invalid_argument on negative increments. *)

val advance_to : t -> int -> unit
(** Jump forward to an absolute tick; no-op when it is in the past.  Used
    by queued engines to skip idle time to the next retransmission
    deadline. *)

(** Deterministic fault-injection plans for the simulated network.

    A plan samples per-message faults — drop, duplicate, extra delay,
    reorder jitter — from a seeded {!Peertrust_crypto.Prng} stream, and
    schedules transient peer outages as windows on the simulated clock.
    Equal seeds and equal call sequences yield equal fault schedules, so
    every chaos run is replayable.

    A plan with no seed ({!none}) never samples and injects nothing; the
    network treats it as the fault-free fast path. *)

type rates = {
  drop : float;  (** probability a message is lost in transit *)
  duplicate : float;  (** probability a message is delivered twice *)
  delay : float;  (** probability of extra delivery delay *)
  delay_max : int;  (** max extra ticks when delayed (uniform in [1..max]) *)
  reorder : float;
      (** probability of a small (1-2 tick) jitter — enough to swap a
          message past its successors on the delivery queue *)
}

val zero_rates : rates
(** All probabilities 0. *)

type t

val none : unit -> t
(** A fresh fault-free plan (no sampling, no outages). *)

val create :
  ?drop:float ->
  ?duplicate:float ->
  ?delay:float ->
  ?delay_max:int ->
  ?reorder:float ->
  seed:int64 ->
  unit ->
  t
(** A seeded plan with the given default per-link rates (all default 0,
    [delay_max] defaults to 4).
    @raise Invalid_argument on probabilities outside [[0,1]] or a negative
    [delay_max]. *)

val is_none : t -> bool
(** [true] when the plan can never inject a fault: unseeded, all rates
    zero, and no scheduled outages or crashes. *)

val set_link : t -> from:string -> target:string -> rates -> unit
(** Override the rates of one directed link. *)

val link_rates : t -> from:string -> target:string -> rates

val add_outage : t -> peer:string -> from_tick:int -> until_tick:int -> unit
(** Schedule a transient outage: messages sent to [peer] while
    [from_tick <= now < until_tick] are lost in transit (the peer recovers
    afterwards, unlike {!Network.set_down}).
    @raise Invalid_argument when [until_tick < from_tick]. *)

val outages : t -> (string * int * int) list
(** Scheduled outages as [(peer, from_tick, until_tick)], in schedule
    order. *)

val in_outage : t -> string -> now:int -> bool

val add_crash : t -> peer:string -> at_tick:int -> restart_tick:int -> unit
(** Schedule a crash-stop failure: [peer] crashes at [at_tick] — losing
    all volatile state (parked goals, timers, dedup ring, guard state,
    tables, learned certificates) — and restarts as a new incarnation at
    [restart_tick].  Messages sent to [peer] while
    [at_tick <= now < restart_tick] are lost in transit, like an outage;
    unlike an outage the peer itself forgets.  Use [restart_tick =
    max_int] for a crash with no restart.
    @raise Invalid_argument when [at_tick < 0] or
    [restart_tick <= at_tick]. *)

val crashes : t -> (string * int * int) list
(** Scheduled crashes as [(peer, at_tick, restart_tick)], in schedule
    order. *)

val in_crash : t -> string -> now:int -> bool
(** Is [peer] inside one of its scheduled crash windows at [now]? *)

type decision = {
  dec_delays : int list;
      (** one extra-delay per delivered copy, in delivery order; [[]]
          means the message is dropped *)
}

val decide : t -> from:string -> target:string -> decision
(** Sample the fate of one message on a directed link.  Consumes PRNG
    state; the fault-free plan always answers [{ dec_delays = [0] }]. *)

type t = { mutable ticks : int }

let create () = { ticks = 0 }
let now t = t.ticks

let advance t d =
  if d < 0 then invalid_arg "Clock.advance: negative increment"
  else t.ticks <- t.ticks + d

let advance_to t tick = if tick > t.ticks then t.ticks <- tick

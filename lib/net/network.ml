module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer

exception Unreachable of string
exception Budget_exhausted

type handler = from:string -> Message.payload -> Message.payload

(* The registry mirror of {!Stats}: process-wide totals that survive
   across sessions and export with the rest of the metrics. *)
let m_messages = Obs.counter "net.messages"
let m_bytes = Obs.counter "net.bytes"
let m_kind_query = Obs.counter "net.messages.query"
let m_kind_answer = Obs.counter "net.messages.answer"
let m_kind_deny = Obs.counter "net.messages.deny"
let m_kind_disclosure = Obs.counter "net.messages.disclosure"
let m_kind_tabling = Obs.counter "net.messages.tabling"
let m_kind_other = Obs.counter "net.messages.other"
let h_message_bytes = Obs.histogram "net.message_bytes"

(* Fault-injection accounting. *)
let m_drops = Obs.counter "net.drops"
let m_duplicates = Obs.counter "net.duplicates"
let m_delayed = Obs.counter "net.delayed"

let kind_counter = function
  | Stats.Query -> m_kind_query
  | Stats.Answer -> m_kind_answer
  | Stats.Deny -> m_kind_deny
  | Stats.Disclosure -> m_kind_disclosure
  | Stats.Tabling -> m_kind_tabling
  | Stats.Other -> m_kind_other

type entry = {
  time : int;
  from : string;
  target : string;
  summary : string;
  bytes_ : int;
  certs_ : int;
}

type t = {
  clock : Clock.t;
  stats : Stats.t;
  latency : int;
  link_latency : (string * string, int) Hashtbl.t;  (* directed overrides *)
  max_messages : int option;
  peers : (string, handler) Hashtbl.t;
  down : (string, unit) Hashtbl.t;
  log : entry Queue.t;  (* chronological; bounded ring *)
  log_cap : int;
  mutable log_dropped : int;
  mutable faults : Faults.t;
  mutable next_id : int;  (* envelope ids *)
  seq : (string * string, int ref) Hashtbl.t;  (* per-link sequence *)
}

let default_log_cap = 10_000

let create ?(latency = 1) ?max_messages ?(log_cap = default_log_cap) () =
  if log_cap < 1 then invalid_arg "Network.create: log_cap must be >= 1";
  {
    clock = Clock.create ();
    stats = Stats.create ();
    latency;
    link_latency = Hashtbl.create 8;
    max_messages;
    peers = Hashtbl.create 16;
    down = Hashtbl.create 4;
    log = Queue.create ();
    log_cap;
    log_dropped = 0;
    faults = Faults.none ();
    next_id = 0;
    seq = Hashtbl.create 16;
  }

let clock t = t.clock
let stats t = t.stats
let register t name handler = Hashtbl.replace t.peers name handler
let unregister t name = Hashtbl.remove t.peers name

let registered t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.peers []
  |> List.sort String.compare

let set_down t name down =
  if down then Hashtbl.replace t.down name ()
  else Hashtbl.remove t.down name

let is_down t name = Hashtbl.mem t.down name
let set_faults t plan = t.faults <- plan
let faults t = t.faults

let set_link_latency t ~from ~target ticks =
  if ticks < 0 then invalid_arg "Network.set_link_latency: negative";
  Hashtbl.replace t.link_latency (from, target) ticks

let link_latency t ~from ~target =
  Option.value ~default:t.latency (Hashtbl.find_opt t.link_latency (from, target))

let log_entry t entry =
  Queue.add entry t.log;
  if Queue.length t.log > t.log_cap then begin
    ignore (Queue.pop t.log);
    t.log_dropped <- t.log_dropped + 1
  end

let dropped_log_entries t = t.log_dropped

let deliver ?(note = "") t ~from ~target payload =
  (match t.max_messages with
  | Some budget when Stats.messages t.stats >= budget -> raise Budget_exhausted
  | Some _ | None -> ());
  let bytes_ = Message.size payload in
  let kind = Message.kind payload in
  Clock.advance t.clock (link_latency t ~from ~target);
  Stats.record t.stats kind ~bytes_ ~from ~target;
  Metric.incr m_messages;
  Metric.add m_bytes bytes_;
  Metric.incr (kind_counter kind);
  Metric.observe_int h_message_bytes bytes_;
  let summary = Message.summary payload ^ note in
  let tracer = Obs.tracer () in
  if Otracer.enabled tracer then
    Otracer.event tracer (Printf.sprintf "%s -> %s: %s" from target summary);
  log_entry t
    {
      time = Clock.now t.clock;
      from;
      target;
      summary;
      bytes_;
      certs_ = Message.cert_count payload;
    }

let send_inner t ~from ~target payload =
  if is_down t target then raise (Unreachable target);
  match Hashtbl.find_opt t.peers target with
  | None -> raise (Unreachable target)
  | Some handler ->
      deliver t ~from ~target payload;
      let response = handler ~from payload in
      deliver t ~from:target ~target:from response;
      response

let send t ~from ~target payload =
  let tracer = Obs.tracer () in
  if Otracer.enabled tracer then
    Otracer.with_span tracer
      ~attrs:
        [
          ("from", Peertrust_obs.Json.Str from);
          ("target", Peertrust_obs.Json.Str target);
          ( "kind",
            Peertrust_obs.Json.Str
              (Stats.kind_to_string (Message.kind payload)) );
        ]
      "net.send"
      (fun () -> send_inner t ~from ~target payload)
  else send_inner t ~from ~target payload

let notify t ~from ~target payload =
  if is_down t target then raise (Unreachable target);
  deliver t ~from ~target payload

let next_seq t ~from ~target =
  match Hashtbl.find_opt t.seq (from, target) with
  | Some r ->
      let s = !r in
      incr r;
      s
  | None ->
      Hashtbl.add t.seq (from, target) (ref 1);
      0

let lost_event ~from ~target ~why payload =
  Metric.incr m_drops;
  let tracer = Obs.tracer () in
  if Otracer.enabled tracer then
    Otracer.event tracer
      (Printf.sprintf "%s -> %s: %s lost in transit (%s)" from target
         (Message.summary payload) why)

let post t ~from ~target ?(attempt = 0) ?(incarnation = 0) ?trace payload =
  if is_down t target then raise (Unreachable target);
  let decision = Faults.decide t.faults ~from ~target in
  let now = Clock.now t.clock in
  let outage = Faults.in_outage t.faults target ~now in
  let crashed = Faults.in_crash t.faults target ~now in
  let id = t.next_id in
  t.next_id <- id + 1;
  let seq = next_seq t ~from ~target in
  match decision.Faults.dec_delays with
  | [] ->
      (* Sampled as lost: the send is still charged and logged. *)
      deliver ~note:" [lost]" t ~from ~target payload;
      lost_event ~from ~target ~why:"fault" payload;
      []
  | delays when crashed ->
      (* The target is down between crash and restart: every copy is
         lost in transit, exactly like an outage window. *)
      List.iter
        (fun _ -> deliver ~note:" [lost: crashed]" t ~from ~target payload)
        delays;
      lost_event ~from ~target ~why:"crash" payload;
      []
  | delays when outage ->
      (* Transient outage window: every copy is lost in transit. *)
      List.iter
        (fun _ -> deliver ~note:" [lost: outage]" t ~from ~target payload)
        delays;
      lost_event ~from ~target ~why:"outage" payload;
      []
  | delays ->
      List.mapi
        (fun i extra ->
          let sent_at = Clock.now t.clock in
          deliver ~note:(if i > 0 then " [dup]" else "") t ~from ~target payload;
          if i > 0 then Metric.incr m_duplicates;
          if extra > 0 then Metric.incr m_delayed;
          {
            Envelope.id;
            seq;
            from_ = from;
            target;
            sent_at;
            deliver_at = Clock.now t.clock + extra;
            attempt;
            incarnation;
            trace;
            payload;
          })
        delays

let transcript t = List.of_seq (Queue.to_seq t.log)

let clear_transcript t =
  Queue.clear t.log;
  t.log_dropped <- 0

let pp_transcript fmt t =
  Queue.iter
    (fun e ->
      Format.fprintf fmt "[%4d] %s -> %s: %s (%d bytes)@\n" e.time e.from
        e.target e.summary e.bytes_)
    t.log

module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer

exception Unreachable of string
exception Budget_exhausted

type handler = from:string -> Message.payload -> Message.payload

(* The registry mirror of {!Stats}: process-wide totals that survive
   across sessions and export with the rest of the metrics. *)
let m_messages = Obs.counter "net.messages"
let m_bytes = Obs.counter "net.bytes"
let m_kind_query = Obs.counter "net.messages.query"
let m_kind_answer = Obs.counter "net.messages.answer"
let m_kind_deny = Obs.counter "net.messages.deny"
let m_kind_disclosure = Obs.counter "net.messages.disclosure"
let m_kind_other = Obs.counter "net.messages.other"
let h_message_bytes = Obs.histogram "net.message_bytes"

let kind_counter = function
  | Stats.Query -> m_kind_query
  | Stats.Answer -> m_kind_answer
  | Stats.Deny -> m_kind_deny
  | Stats.Disclosure -> m_kind_disclosure
  | Stats.Other -> m_kind_other

type entry = {
  time : int;
  from : string;
  target : string;
  summary : string;
  bytes_ : int;
  certs_ : int;
}

type t = {
  clock : Clock.t;
  stats : Stats.t;
  latency : int;
  link_latency : (string * string, int) Hashtbl.t;  (* directed overrides *)
  max_messages : int option;
  peers : (string, handler) Hashtbl.t;
  down : (string, unit) Hashtbl.t;
  mutable log : entry list;  (* reverse order *)
}

let create ?(latency = 1) ?max_messages () =
  {
    clock = Clock.create ();
    stats = Stats.create ();
    latency;
    link_latency = Hashtbl.create 8;
    max_messages;
    peers = Hashtbl.create 16;
    down = Hashtbl.create 4;
    log = [];
  }

let clock t = t.clock
let stats t = t.stats
let register t name handler = Hashtbl.replace t.peers name handler
let unregister t name = Hashtbl.remove t.peers name

let registered t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.peers []
  |> List.sort String.compare

let set_down t name down =
  if down then Hashtbl.replace t.down name ()
  else Hashtbl.remove t.down name

let is_down t name = Hashtbl.mem t.down name

let set_link_latency t ~from ~target ticks =
  if ticks < 0 then invalid_arg "Network.set_link_latency: negative";
  Hashtbl.replace t.link_latency (from, target) ticks

let link_latency t ~from ~target =
  Option.value ~default:t.latency (Hashtbl.find_opt t.link_latency (from, target))

let deliver t ~from ~target payload =
  (match t.max_messages with
  | Some budget when Stats.messages t.stats >= budget -> raise Budget_exhausted
  | Some _ | None -> ());
  let bytes_ = Message.size payload in
  let kind = Message.kind payload in
  Clock.advance t.clock (link_latency t ~from ~target);
  Stats.record t.stats kind ~bytes_ ~from ~target;
  Metric.incr m_messages;
  Metric.add m_bytes bytes_;
  Metric.incr (kind_counter kind);
  Metric.observe_int h_message_bytes bytes_;
  let summary = Message.summary payload in
  let tracer = Obs.tracer () in
  if Otracer.enabled tracer then
    Otracer.event tracer (Printf.sprintf "%s -> %s: %s" from target summary);
  t.log <-
    {
      time = Clock.now t.clock;
      from;
      target;
      summary;
      bytes_;
      certs_ = Message.cert_count payload;
    }
    :: t.log

let send_inner t ~from ~target payload =
  if is_down t target then raise (Unreachable target);
  match Hashtbl.find_opt t.peers target with
  | None -> raise (Unreachable target)
  | Some handler ->
      deliver t ~from ~target payload;
      let response = handler ~from payload in
      deliver t ~from:target ~target:from response;
      response

let send t ~from ~target payload =
  let tracer = Obs.tracer () in
  if Otracer.enabled tracer then
    Otracer.with_span tracer
      ~attrs:
        [
          ("from", Peertrust_obs.Json.Str from);
          ("target", Peertrust_obs.Json.Str target);
          ( "kind",
            Peertrust_obs.Json.Str
              (Stats.kind_to_string (Message.kind payload)) );
        ]
      "net.send"
      (fun () -> send_inner t ~from ~target payload)
  else send_inner t ~from ~target payload

let notify t ~from ~target payload =
  if is_down t target then raise (Unreachable target);
  deliver t ~from ~target payload

let transcript t = List.rev t.log
let clear_transcript t = t.log <- []

let pp_transcript fmt t =
  List.iter
    (fun e ->
      Format.fprintf fmt "[%4d] %s -> %s: %s (%d bytes)@\n" e.time e.from
        e.target e.summary e.bytes_)
    (transcript t)

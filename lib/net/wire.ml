(* Envelope wire framing: the transport-portable header of a posted
   message, including the propagated trace context.

   Today every envelope lives in one process, but the ROADMAP's socket
   runtime needs a byte form; this module pins it down early so the
   trace context's wire representation is exercised (and fuzzed) long
   before TCP exists.  The payload body is not serialised here — only
   its kind and accounted size travel in the header; body codecs belong
   to the transport PR.

   Frame: a fixed sequence of LF-terminated lines —

     PEERTRUST/1 <id> <seq> <attempt>
     from: <escaped name>
     to: <escaped name>
     sent: <tick>
     deliver: <tick>
     kind: <kind>
     bytes: <n>
     inc: <n>                    (only when the sender has restarted)
     tabling: <op> ...           (only for tabling control messages)
     traceparent: pt1-...        (only when a context is carried)

   The [tabling] line carries the distributed-tabling control fields
   (path, counters, SCC membership) so the completion protocol survives
   a byte transport; peer names and goal keys are hex-encoded so the
   grammar stays line- and space-delimited no matter what the names
   contain.  Answer instance bodies are NOT serialised — like payload
   bodies generally, they belong to the transport PR; the header carries
   the finality bit and the instance count.

   The decoder is total: malformed input yields [Error] with the
   offending 1-based line, never an exception (the same contract as
   [Peertrust_crypto.Wire]). *)

module Trace_context = Peertrust_obs.Trace_context

type tabling =
  | Hquery of { path : (string * string) list }
  | Hanswer of { final : bool; count : int }
  | Hprobe of {
      leader : string * string;
      epoch : int;
      members : (string * string) list;
    }
  | Hstat of {
      leader : string * string;
      epoch : int;
      entries : (string * int * (string * string * int * bool) list) list;
    }
  | Hcomplete of {
      leader : string * string;
      epoch : int;
      members : (string * string) list;
    }

type header = {
  h_id : int;
  h_seq : int;
  h_attempt : int;
  h_from : string;
  h_target : string;
  h_sent_at : int;
  h_deliver_at : int;
  h_kind : string;
  h_bytes : int;
  h_incarnation : int;
  h_tabling : tabling option;
  h_trace : Trace_context.t option;
}

let magic = "PEERTRUST/1"

let tabling_of_payload = function
  | Message.Tquery { path; _ } -> Some (Hquery { path })
  | Message.Tanswer { instances; final; _ } ->
      Some (Hanswer { final; count = List.length instances })
  | Message.Tprobe { leader; epoch; members } ->
      Some (Hprobe { leader; epoch; members })
  | Message.Tstat { leader; epoch; entries } ->
      Some
        (Hstat
           {
             leader;
             epoch;
             entries =
               List.map
                 (fun e ->
                   (e.Message.ts_key, e.Message.ts_size, e.Message.ts_deps))
                 entries;
           })
  | Message.Tcomplete { leader; epoch; members } ->
      Some (Hcomplete { leader; epoch; members })
  | _ -> None

let header_of_envelope (e : Envelope.t) =
  {
    h_id = e.Envelope.id;
    h_seq = e.Envelope.seq;
    h_attempt = e.Envelope.attempt;
    h_from = e.Envelope.from_;
    h_target = e.Envelope.target;
    h_sent_at = e.Envelope.sent_at;
    h_deliver_at = e.Envelope.deliver_at;
    h_kind = Stats.kind_to_string (Message.kind e.Envelope.payload);
    h_bytes = Message.size e.Envelope.payload;
    h_incarnation = e.Envelope.incarnation;
    h_tabling = tabling_of_payload e.Envelope.payload;
    h_trace = e.Envelope.trace;
  }

(* Tabling line grammar (space-separated tokens, names hex-encoded):
     query <pairs>
     answer <0|1> <count>
     probe <pair> <epoch> <pairs>
     stat <pair> <epoch> <entries>
     complete <pair> <epoch> <pairs>
   pair    ::= hex(name) "~" hex(key)
   pairs   ::= "-" | pair ("," pair)*
   entries ::= "-" | entry (";" entry)*
   entry   ::= hex(key) ":" size ":" deps
   deps    ::= "-" | dep ("|" dep)*
   dep     ::= hex(owner) "~" hex(key) "~" seen "~" (0|1) *)

let hex s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Printf.bprintf buf "%02x" (Char.code c)) s;
  Buffer.contents buf

let unhex s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | _ -> None
    in
    let buf = Buffer.create (n / 2) in
    let rec go i =
      if i >= n then Some (Buffer.contents buf)
      else
        match (nibble s.[i], nibble s.[i + 1]) with
        | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | _ -> None
    in
    go 0

let pair_to_string (a, b) = hex a ^ "~" ^ hex b

let pairs_to_string = function
  | [] -> "-"
  | ps -> String.concat "," (List.map pair_to_string ps)

let dep_to_string (owner, key, seen, final) =
  Printf.sprintf "%s~%s~%d~%d" (hex owner) (hex key) seen
    (if final then 1 else 0)

let entry_to_string (key, size, deps) =
  Printf.sprintf "%s:%d:%s" (hex key) size
    (match deps with
    | [] -> "-"
    | ds -> String.concat "|" (List.map dep_to_string ds))

let entries_to_string = function
  | [] -> "-"
  | es -> String.concat ";" (List.map entry_to_string es)

let tabling_to_string = function
  | Hquery { path } -> Printf.sprintf "query %s" (pairs_to_string path)
  | Hanswer { final; count } ->
      Printf.sprintf "answer %d %d" (if final then 1 else 0) count
  | Hprobe { leader; epoch; members } ->
      Printf.sprintf "probe %s %d %s" (pair_to_string leader) epoch
        (pairs_to_string members)
  | Hstat { leader; epoch; entries } ->
      Printf.sprintf "stat %s %d %s" (pair_to_string leader) epoch
        (entries_to_string entries)
  | Hcomplete { leader; epoch; members } ->
      Printf.sprintf "complete %s %d %s" (pair_to_string leader) epoch
        (pairs_to_string members)

let encode h =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "%s %d %d %d\n" magic h.h_id h.h_seq h.h_attempt;
  Printf.bprintf buf "from: %s\n" (String.escaped h.h_from);
  Printf.bprintf buf "to: %s\n" (String.escaped h.h_target);
  Printf.bprintf buf "sent: %d\n" h.h_sent_at;
  Printf.bprintf buf "deliver: %d\n" h.h_deliver_at;
  Printf.bprintf buf "kind: %s\n" h.h_kind;
  Printf.bprintf buf "bytes: %d\n" h.h_bytes;
  if h.h_incarnation <> 0 then
    Printf.bprintf buf "inc: %d\n" h.h_incarnation;
  Option.iter
    (fun tb -> Printf.bprintf buf "tabling: %s\n" (tabling_to_string tb))
    h.h_tabling;
  Option.iter
    (fun ctx ->
      Printf.bprintf buf "traceparent: %s\n" (Trace_context.to_header ctx))
    h.h_trace;
  Buffer.contents buf

let encode_envelope e = encode (header_of_envelope e)

type error = Malformed of { line : int; reason : string }

let pp_error fmt (Malformed { line; reason }) =
  Format.fprintf fmt "line %d: %s" line reason

(* ------------------------------------------------------------------ *)
(* Total decoder *)

let fail line reason = Error (Malformed { line; reason })

let field ~line ~key s =
  let prefix = key ^ ": " in
  let lp = String.length prefix in
  if String.length s >= lp && String.equal (String.sub s 0 lp) prefix then
    Ok (String.sub s lp (String.length s - lp))
  else fail line (Printf.sprintf "expected %S field" key)

let int_field ~line ~key s =
  match field ~line ~key s with
  | Error _ as e -> e
  | Ok v -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> fail line (Printf.sprintf "%s: not an integer: %S" key v))

let name_field ~line ~key s =
  match field ~line ~key s with
  | Error _ as e -> e
  | Ok v -> (
      (* Inverse of [String.escaped]; reject sequences it never emits. *)
      match Scanf.unescaped v with
      | name -> Ok name
      | exception Scanf.Scan_failure _ | exception Failure _ ->
          fail line (Printf.sprintf "%s: bad escape in %S" key v))

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

(* Tabling-line parsing helpers: every failure is a [None], lifted to a
   [Malformed] at the line level — no exceptions can escape. *)

let split_nonempty sep s = if String.equal s "-" then Some [] else
  Some (String.split_on_char sep s)

let parse_pair s =
  match String.split_on_char '~' s with
  | [ a; b ] -> (
      match (unhex a, unhex b) with
      | Some a, Some b -> Some (a, b)
      | _ -> None)
  | _ -> None

let rec map_opt f = function
  | [] -> Some []
  | x :: rest -> (
      match f x with
      | None -> None
      | Some y -> (
          match map_opt f rest with None -> None | Some ys -> Some (y :: ys)))

let parse_pairs s = Option.bind (split_nonempty ',' s) (map_opt parse_pair)

let parse_dep s =
  match String.split_on_char '~' s with
  | [ o; k; seen; fin ] -> (
      match (unhex o, unhex k, int_of_string_opt seen, fin) with
      | Some o, Some k, Some seen, ("0" | "1") ->
          Some (o, k, seen, String.equal fin "1")
      | _ -> None)
  | _ -> None

let parse_entry s =
  match String.split_on_char ':' s with
  | [ key; size; deps ] -> (
      match (unhex key, int_of_string_opt size) with
      | Some key, Some size -> (
          match Option.bind (split_nonempty '|' deps) (map_opt parse_dep) with
          | Some ds -> Some (key, size, ds)
          | None -> None)
      | _ -> None)
  | _ -> None

let parse_entries s = Option.bind (split_nonempty ';' s) (map_opt parse_entry)

let parse_bool = function "0" -> Some false | "1" -> Some true | _ -> None

let parse_tabling v =
  match String.split_on_char ' ' v with
  | [ "query"; path ] ->
      Option.map (fun path -> Hquery { path }) (parse_pairs path)
  | [ "answer"; fin; count ] -> (
      match (parse_bool fin, int_of_string_opt count) with
      | Some final, Some count -> Some (Hanswer { final; count })
      | _ -> None)
  | [ "probe"; leader; epoch; members ] -> (
      match (parse_pair leader, int_of_string_opt epoch, parse_pairs members)
      with
      | Some leader, Some epoch, Some members ->
          Some (Hprobe { leader; epoch; members })
      | _ -> None)
  | [ "stat"; leader; epoch; entries ] -> (
      match
        (parse_pair leader, int_of_string_opt epoch, parse_entries entries)
      with
      | Some leader, Some epoch, Some entries ->
          Some (Hstat { leader; epoch; entries })
      | _ -> None)
  | [ "complete"; leader; epoch; members ] -> (
      match (parse_pair leader, int_of_string_opt epoch, parse_pairs members)
      with
      | Some leader, Some epoch, Some members ->
          Some (Hcomplete { leader; epoch; members })
      | _ -> None)
  | _ -> None

let decode text =
  let lines = String.split_on_char '\n' text in
  (* A trailing LF leaves one empty trailer; anything else is garbage. *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  match lines with
  | first :: from_l :: to_l :: sent_l :: deliver_l :: kind_l :: bytes_l :: rest
    ->
      let* h_id, h_seq, h_attempt =
        let parts = String.split_on_char ' ' first in
        match parts with
        | [ m; a; b; c ] when String.equal m magic -> (
            match
              (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c)
            with
            | Some id, Some seq, Some attempt -> Ok (id, seq, attempt)
            | _ -> fail 1 "bad id/seq/attempt")
        | m :: _ when not (String.equal m magic) ->
            fail 1 (Printf.sprintf "bad magic %S" m)
        | _ -> fail 1 "malformed frame line"
      in
      let* h_from = name_field ~line:2 ~key:"from" from_l in
      let* h_target = name_field ~line:3 ~key:"to" to_l in
      let* h_sent_at = int_field ~line:4 ~key:"sent" sent_l in
      let* h_deliver_at = int_field ~line:5 ~key:"deliver" deliver_l in
      let* h_kind = field ~line:6 ~key:"kind" kind_l in
      let* h_bytes = int_field ~line:7 ~key:"bytes" bytes_l in
      let* h_incarnation, rest, next =
        match rest with
        | l :: more
          when String.length l >= 5 && String.equal (String.sub l 0 5) "inc: "
          -> (
            let* v = int_field ~line:8 ~key:"inc" l in
            if v < 0 then fail 8 "inc: must be >= 0" else Ok (v, more, 9))
        | _ -> Ok (0, rest, 8)
      in
      let* h_tabling, rest, next =
        match rest with
        | l :: more
          when String.length l >= 9 && String.equal (String.sub l 0 9) "tabling: "
          -> (
            let* v = field ~line:next ~key:"tabling" l in
            match parse_tabling v with
            | Some tb -> Ok (Some tb, more, next + 1)
            | None -> fail next (Printf.sprintf "bad tabling line %S" v))
        | _ -> Ok (None, rest, next)
      in
      let* h_trace =
        match rest with
        | [] -> Ok None
        | [ tp ] -> (
            let* v = field ~line:next ~key:"traceparent" tp in
            match Trace_context.of_header v with
            | Some ctx -> Ok (Some ctx)
            | None -> fail next (Printf.sprintf "bad traceparent %S" v))
        | _ -> fail (next + 1) "trailing garbage after header"
      in
      Ok
        {
          h_id;
          h_seq;
          h_attempt;
          h_from;
          h_target;
          h_sent_at;
          h_deliver_at;
          h_kind;
          h_bytes;
          h_incarnation;
          h_tabling;
          h_trace;
        }
  (* The offending line is the first missing one — keeps lines 1-based
     even for the empty string. *)
  | _ -> fail (List.length lines + 1) "truncated header"

(* A stream of frames: split at magic-line boundaries, decode each
   group, and report errors with absolute (stream-wide) line numbers.
   Blank lines between frames are tolerated; any other stray text is an
   error at its own line. *)
let decode_many text =
  let lines = String.split_on_char '\n' text in
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let is_magic l =
    let lm = String.length magic in
    String.length l > lm
    && String.equal (String.sub l 0 lm) magic
    && Char.equal l.[lm] ' '
  in
  let decode_group ~start group =
    (* [group] is reversed, so blank lines preceding the next frame sit
       at its head; dropping them here is what makes the documented
       between-frame blank tolerance hold. *)
    let rec drop_blanks = function
      | l :: rest when String.equal (String.trim l) "" -> drop_blanks rest
      | g -> g
    in
    let group = drop_blanks group in
    match decode (String.concat "\n" (List.rev group) ^ "\n") with
    | Ok h -> Ok h
    | Error (Malformed { line; reason }) ->
        fail (start + line - 1) reason
  in
  (* [group] holds the current frame's lines in reverse; [start] its
     1-based first line in the stream. *)
  let rec go acc group start lineno = function
    | [] ->
        if group = [] then Ok (List.rev acc)
        else
          let* h = decode_group ~start group in
          Ok (List.rev (h :: acc))
    | l :: rest when is_magic l ->
        if group = [] then go acc [ l ] lineno (lineno + 1) rest
        else
          let* h = decode_group ~start group in
          go (h :: acc) [ l ] lineno (lineno + 1) rest
    | l :: rest when group = [] ->
        if String.equal (String.trim l) "" then
          go acc [] start (lineno + 1) rest
        else fail lineno "expected frame start"
    | l :: rest -> go acc (l :: group) start (lineno + 1) rest
  in
  go [] [] 1 1 lines

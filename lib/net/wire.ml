(* Envelope wire framing: the transport-portable header of a posted
   message, including the propagated trace context.

   Today every envelope lives in one process, but the ROADMAP's socket
   runtime needs a byte form; this module pins it down early so the
   trace context's wire representation is exercised (and fuzzed) long
   before TCP exists.  The payload body is not serialised here — only
   its kind and accounted size travel in the header; body codecs belong
   to the transport PR.

   Frame: a fixed sequence of LF-terminated lines —

     PEERTRUST/1 <id> <seq> <attempt>
     from: <escaped name>
     to: <escaped name>
     sent: <tick>
     deliver: <tick>
     kind: <kind>
     bytes: <n>
     traceparent: pt1-...        (only when a context is carried)

   The decoder is total: malformed input yields [Error] with the
   offending 1-based line, never an exception (the same contract as
   [Peertrust_crypto.Wire]). *)

module Trace_context = Peertrust_obs.Trace_context

type header = {
  h_id : int;
  h_seq : int;
  h_attempt : int;
  h_from : string;
  h_target : string;
  h_sent_at : int;
  h_deliver_at : int;
  h_kind : string;
  h_bytes : int;
  h_trace : Trace_context.t option;
}

let magic = "PEERTRUST/1"

let header_of_envelope (e : Envelope.t) =
  {
    h_id = e.Envelope.id;
    h_seq = e.Envelope.seq;
    h_attempt = e.Envelope.attempt;
    h_from = e.Envelope.from_;
    h_target = e.Envelope.target;
    h_sent_at = e.Envelope.sent_at;
    h_deliver_at = e.Envelope.deliver_at;
    h_kind = Stats.kind_to_string (Message.kind e.Envelope.payload);
    h_bytes = Message.size e.Envelope.payload;
    h_trace = e.Envelope.trace;
  }

let encode h =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "%s %d %d %d\n" magic h.h_id h.h_seq h.h_attempt;
  Printf.bprintf buf "from: %s\n" (String.escaped h.h_from);
  Printf.bprintf buf "to: %s\n" (String.escaped h.h_target);
  Printf.bprintf buf "sent: %d\n" h.h_sent_at;
  Printf.bprintf buf "deliver: %d\n" h.h_deliver_at;
  Printf.bprintf buf "kind: %s\n" h.h_kind;
  Printf.bprintf buf "bytes: %d\n" h.h_bytes;
  Option.iter
    (fun ctx ->
      Printf.bprintf buf "traceparent: %s\n" (Trace_context.to_header ctx))
    h.h_trace;
  Buffer.contents buf

let encode_envelope e = encode (header_of_envelope e)

type error = Malformed of { line : int; reason : string }

let pp_error fmt (Malformed { line; reason }) =
  Format.fprintf fmt "line %d: %s" line reason

(* ------------------------------------------------------------------ *)
(* Total decoder *)

let fail line reason = Error (Malformed { line; reason })

let field ~line ~key s =
  let prefix = key ^ ": " in
  let lp = String.length prefix in
  if String.length s >= lp && String.equal (String.sub s 0 lp) prefix then
    Ok (String.sub s lp (String.length s - lp))
  else fail line (Printf.sprintf "expected %S field" key)

let int_field ~line ~key s =
  match field ~line ~key s with
  | Error _ as e -> e
  | Ok v -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> fail line (Printf.sprintf "%s: not an integer: %S" key v))

let name_field ~line ~key s =
  match field ~line ~key s with
  | Error _ as e -> e
  | Ok v -> (
      (* Inverse of [String.escaped]; reject sequences it never emits. *)
      match Scanf.unescaped v with
      | name -> Ok name
      | exception Scanf.Scan_failure _ | exception Failure _ ->
          fail line (Printf.sprintf "%s: bad escape in %S" key v))

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let decode text =
  let lines = String.split_on_char '\n' text in
  (* A trailing LF leaves one empty trailer; anything else is garbage. *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  match lines with
  | first :: from_l :: to_l :: sent_l :: deliver_l :: kind_l :: bytes_l :: rest
    ->
      let* h_id, h_seq, h_attempt =
        let parts = String.split_on_char ' ' first in
        match parts with
        | [ m; a; b; c ] when String.equal m magic -> (
            match
              (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c)
            with
            | Some id, Some seq, Some attempt -> Ok (id, seq, attempt)
            | _ -> fail 1 "bad id/seq/attempt")
        | m :: _ when not (String.equal m magic) ->
            fail 1 (Printf.sprintf "bad magic %S" m)
        | _ -> fail 1 "malformed frame line"
      in
      let* h_from = name_field ~line:2 ~key:"from" from_l in
      let* h_target = name_field ~line:3 ~key:"to" to_l in
      let* h_sent_at = int_field ~line:4 ~key:"sent" sent_l in
      let* h_deliver_at = int_field ~line:5 ~key:"deliver" deliver_l in
      let* h_kind = field ~line:6 ~key:"kind" kind_l in
      let* h_bytes = int_field ~line:7 ~key:"bytes" bytes_l in
      let* h_trace =
        match rest with
        | [] -> Ok None
        | [ tp ] -> (
            let* v = field ~line:8 ~key:"traceparent" tp in
            match Trace_context.of_header v with
            | Some ctx -> Ok (Some ctx)
            | None -> fail 8 (Printf.sprintf "bad traceparent %S" v))
        | _ -> fail 9 "trailing garbage after header"
      in
      Ok
        {
          h_id;
          h_seq;
          h_attempt;
          h_from;
          h_target;
          h_sent_at;
          h_deliver_at;
          h_kind;
          h_bytes;
          h_trace;
        }
  (* The offending line is the first missing one — keeps lines 1-based
     even for the empty string. *)
  | _ -> fail (List.length lines + 1) "truncated header"

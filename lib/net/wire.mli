(** Envelope wire framing: the transport-portable byte header of a
    posted message, carrying the propagated {!Peertrust_obs.Trace_context}
    as a [traceparent] field.

    The simulated network never needs bytes, but the ROADMAP's socket
    runtime will; this codec pins the header format down early so the
    trace context's wire form is round-tripped and fuzzed long before a
    TCP backend exists.  Payload bodies are not serialised — the header
    carries their kind and accounted size only.

    {!decode} is total: any input that is not a valid frame returns
    [Error] with the offending line, never an exception (the same
    contract as [Peertrust_crypto.Wire]). *)

type tabling =
  | Hquery of { path : (string * string) list }
  | Hanswer of { final : bool; count : int }
  | Hprobe of {
      leader : string * string;
      epoch : int;
      members : (string * string) list;
    }
  | Hstat of {
      leader : string * string;
      epoch : int;
      entries : (string * int * (string * string * int * bool) list) list;
          (** per table: (key, size, deps as (owner, key, seen, final)) *)
    }
  | Hcomplete of {
      leader : string * string;
      epoch : int;
      members : (string * string) list;
    }
      (** Wire form of the distributed-tabling control fields (the
          {!Message.payload} [T*] constructors): call paths, GEM-style
          counters and SCC membership.  Peer names and goal keys are
          hex-encoded on the wire so arbitrary names cannot break the
          line/space-delimited grammar.  Answer {e bodies} are not
          serialised — only the finality bit and instance count travel
          in the header, like every other payload body. *)

type header = {
  h_id : int;
  h_seq : int;
  h_attempt : int;
  h_from : string;
  h_target : string;
  h_sent_at : int;
  h_deliver_at : int;
  h_kind : string;  (** {!Stats.kind_to_string} of the payload *)
  h_bytes : int;  (** accounted payload size *)
  h_incarnation : int;
      (** sender's restart count; serialised as an [inc:] line only when
          nonzero, so crash-free frames are byte-identical to frames
          encoded before incarnations existed *)
  h_tabling : tabling option;
  h_trace : Peertrust_obs.Trace_context.t option;
}

val header_of_envelope : Envelope.t -> header

val encode : header -> string
(** LF-terminated frame; [decode (encode h) = Ok h]. *)

val encode_envelope : Envelope.t -> string
(** [encode (header_of_envelope e)]. *)

type error = Malformed of { line : int; reason : string }

val pp_error : Format.formatter -> error -> unit

val decode : string -> (header, error) result
(** Total inverse of {!encode}. *)

val decode_many : string -> (header list, error) result
(** Total decoder for a stream of concatenated frames, split at
    [PEERTRUST/1] magic-line boundaries.  Blank lines between frames are
    tolerated; errors carry stream-wide 1-based line numbers.  The empty
    stream decodes to [Ok []]. *)

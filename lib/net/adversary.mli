(** Misbehaving peers: a seeded, composable harness that attacks the
    guard layer.

    An adversary is a registered network participant that never runs the
    engine; it emits protocol abuse instead — query floods, raw garbage,
    unsolicited and replayed answers, forged-signature certificates,
    oversized payloads and delegation-bomb goals.  Behaviors compose
    (one adversary can flood {e and} forge) and everything it does is
    drawn from a seeded {!Peertrust_crypto.Prng}, so a sweep over seeds
    is reproducible — the same contract {!Faults} gives transport
    chaos.

    A total action budget bounds the damage: once spent, the adversary
    goes silent, so even an unguarded run terminates. *)

type behavior =
  | Flood of int  (** queries per burst *)
  | Malformed of int  (** raw garbage payloads per burst *)
  | Unsolicited of int  (** spoofed answers per burst *)
  | Replay  (** re-send payloads it already sent *)
  | Forged_certs  (** answers carrying certificates with bogus signatures *)
  | Oversized of int  (** raw payloads of this many bytes *)
  | Bomb of int  (** query goals with an authority chain this deep *)

val behavior_to_string : behavior -> string

val behavior_of_string : string -> (behavior, string) result
(** Parse a CLI behavior spec: [flood], [flood=12], [malformed],
    [unsolicited], [replay], [forged], [oversized], [oversized=65536],
    [bomb], [bomb=40]. *)

type action = { act_target : string; act_payload : Message.payload }

type t

val create : ?seed:int64 -> ?budget:int -> name:string -> behavior list -> t
(** [budget] caps the total number of actions the adversary will ever
    emit (default 64). *)

val name : t -> string
val behaviors : t -> behavior list
val actions_sent : t -> int

val burst : t -> targets:string list -> action list
(** One round of abuse, each behavior contributing against each target
    (round-robin for singleton-target behaviors), clipped to the
    remaining budget. *)

val react : t -> from:string -> Message.payload -> action list
(** The adversary's answer to an inbound payload: replays and a fresh
    burst aimed at the sender, while the budget lasts.  Reacting to
    nothing ([Ack]) stays silent so two adversaries cannot ping-pong
    forever. *)

open Peertrust_dlp

type payload =
  | Query of { goal : Literal.t }
  | Answer of {
      goal : Literal.t;
      instances : (Literal.t * Trace.t option) list;
      certs : Peertrust_crypto.Cert.t list;
    }
  | Deny of { goal : Literal.t; reason : string }
  | Disclosure of {
      certs : Peertrust_crypto.Cert.t list;
      rules : Rule.t list;
    }
  | Batch of payload list
  | Ack
  | Raw of string

let rec kind = function
  | Query _ -> Stats.Query
  | Answer _ -> Stats.Answer
  | Deny _ -> Stats.Deny
  | Disclosure _ -> Stats.Disclosure
  (* A batch is one envelope; classify it by its first payload (in
     practice batches carry only queries). *)
  | Batch (p :: _) -> kind p
  | Batch [] | Ack | Raw _ -> Stats.Other

let cert_size (c : Peertrust_crypto.Cert.t) =
  String.length (Peertrust_crypto.Cert.payload c)
  + List.fold_left
      (fun acc (_, s) -> acc + ((Peertrust_crypto.Bignum.bits s + 7) / 8))
      0 c.Peertrust_crypto.Cert.signatures
  + 16

let literal_size l = String.length (Literal.to_string l)
let rule_size r = String.length (Rule.to_string r)

let rec size = function
  | Query { goal } -> 8 + literal_size goal
  | Answer { goal; instances; certs } ->
      8 + literal_size goal
      + List.fold_left
          (fun acc (l, proof) ->
            acc + literal_size l
            + match proof with Some p -> 32 * Trace.size p | None -> 0)
          0 instances
      + List.fold_left (fun acc c -> acc + cert_size c) 0 certs
  | Deny { goal; reason } -> 8 + literal_size goal + String.length reason
  | Disclosure { certs; rules } ->
      8
      + List.fold_left (fun acc c -> acc + cert_size c) 0 certs
      + List.fold_left (fun acc r -> acc + rule_size r) 0 rules
  | Batch payloads -> 8 + List.fold_left (fun acc p -> acc + size p) 0 payloads
  | Ack -> 8
  | Raw s -> 8 + String.length s

let rec cert_count = function
  | Query _ | Deny _ | Ack | Raw _ -> 0
  | Answer { certs; _ } | Disclosure { certs; _ } -> List.length certs
  | Batch payloads ->
      List.fold_left (fun acc p -> acc + cert_count p) 0 payloads

let rec summary = function
  | Query { goal } -> Printf.sprintf "query %s" (Literal.to_string goal)
  | Answer { goal; instances; certs } ->
      Printf.sprintf "answer %s: %d instance(s), %d cert(s)"
        (Literal.to_string goal) (List.length instances) (List.length certs)
  | Deny { goal; reason } ->
      Printf.sprintf "deny %s (%s)" (Literal.to_string goal) reason
  | Disclosure { certs; rules } ->
      Printf.sprintf "disclose %d cert(s), %d rule(s)" (List.length certs)
        (List.length rules)
  | Batch payloads ->
      Printf.sprintf "batch(%d): %s" (List.length payloads)
        (String.concat "; " (List.map summary payloads))
  | Ack -> "ack"
  | Raw s -> Printf.sprintf "raw %d byte(s)" (String.length s)

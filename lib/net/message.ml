open Peertrust_dlp

type table_ref = string * string

type tstat_entry = {
  ts_key : string;
  ts_size : int;
  ts_deps : (string * string * int * bool) list;
}

type payload =
  | Query of { goal : Literal.t }
  | Answer of {
      goal : Literal.t;
      instances : (Literal.t * Trace.t option) list;
      certs : Peertrust_crypto.Cert.t list;
    }
  | Deny of { goal : Literal.t; reason : string }
  | Disclosure of {
      certs : Peertrust_crypto.Cert.t list;
      rules : Rule.t list;
    }
  | Batch of payload list
  | Ack
  | Raw of string
  | Tquery of { goal : Literal.t; path : table_ref list }
  | Tanswer of { goal : Literal.t; instances : Literal.t list; final : bool }
  | Tprobe of { leader : table_ref; epoch : int; members : table_ref list }
  | Tstat of { leader : table_ref; epoch : int; entries : tstat_entry list }
  | Tcomplete of { leader : table_ref; epoch : int; members : table_ref list }
  | Cancel of { goal : Literal.t }

let rec kind = function
  | Query _ -> Stats.Query
  | Answer _ -> Stats.Answer
  | Deny _ -> Stats.Deny
  | Disclosure _ -> Stats.Disclosure
  | Tquery _ | Tanswer _ | Tprobe _ | Tstat _ | Tcomplete _ -> Stats.Tabling
  (* A batch is one envelope; classify it by its first payload (in
     practice batches carry only queries). *)
  | Batch (p :: _) -> kind p
  | Batch [] | Ack | Raw _ | Cancel _ -> Stats.Other

let cert_size (c : Peertrust_crypto.Cert.t) =
  String.length (Peertrust_crypto.Cert.payload c)
  + List.fold_left
      (fun acc (_, s) -> acc + ((Peertrust_crypto.Bignum.bits s + 7) / 8))
      0 c.Peertrust_crypto.Cert.signatures
  + 16

let literal_size l = String.length (Literal.to_string l)
let rule_size r = String.length (Rule.to_string r)

let rec size = function
  | Query { goal } -> 8 + literal_size goal
  | Answer { goal; instances; certs } ->
      8 + literal_size goal
      + List.fold_left
          (fun acc (l, proof) ->
            acc + literal_size l
            + match proof with Some p -> 32 * Trace.size p | None -> 0)
          0 instances
      + List.fold_left (fun acc c -> acc + cert_size c) 0 certs
  | Deny { goal; reason } -> 8 + literal_size goal + String.length reason
  | Disclosure { certs; rules } ->
      8
      + List.fold_left (fun acc c -> acc + cert_size c) 0 certs
      + List.fold_left (fun acc r -> acc + rule_size r) 0 rules
  | Batch payloads -> 8 + List.fold_left (fun acc p -> acc + size p) 0 payloads
  | Ack -> 8
  | Raw s -> 8 + String.length s
  | Tquery { goal; path } -> 8 + literal_size goal + (List.length path * 12)
  | Tanswer { goal; instances; final = _ } ->
      8 + literal_size goal
      + List.fold_left (fun acc l -> acc + literal_size l) 0 instances
  | Tprobe { members; _ } | Tcomplete { members; _ } ->
      16 + (List.length members * 12)
  | Tstat { entries; _ } ->
      16
      + List.fold_left
          (fun acc e -> acc + 12 + (List.length e.ts_deps * 16))
          0 entries
  | Cancel { goal } -> 8 + literal_size goal

let rec cert_count = function
  | Query _ | Deny _ | Ack | Raw _ | Cancel _ -> 0
  | Tquery _ | Tanswer _ | Tprobe _ | Tstat _ | Tcomplete _ -> 0
  | Answer { certs; _ } | Disclosure { certs; _ } -> List.length certs
  | Batch payloads ->
      List.fold_left (fun acc p -> acc + cert_count p) 0 payloads

let rec summary = function
  | Query { goal } -> Printf.sprintf "query %s" (Literal.to_string goal)
  | Answer { goal; instances; certs } ->
      Printf.sprintf "answer %s: %d instance(s), %d cert(s)"
        (Literal.to_string goal) (List.length instances) (List.length certs)
  | Deny { goal; reason } ->
      Printf.sprintf "deny %s (%s)" (Literal.to_string goal) reason
  | Disclosure { certs; rules } ->
      Printf.sprintf "disclose %d cert(s), %d rule(s)" (List.length certs)
        (List.length rules)
  | Batch payloads ->
      Printf.sprintf "batch(%d): %s" (List.length payloads)
        (String.concat "; " (List.map summary payloads))
  | Ack -> "ack"
  | Raw s -> Printf.sprintf "raw %d byte(s)" (String.length s)
  | Tquery { goal; path } ->
      Printf.sprintf "tquery %s (depth %d)" (Literal.to_string goal)
        (List.length path)
  | Tanswer { goal; instances; final } ->
      Printf.sprintf "tanswer %s: %d instance(s)%s" (Literal.to_string goal)
        (List.length instances)
        (if final then ", final" else "")
  | Tprobe { leader = lp, lk; epoch; members } ->
      Printf.sprintf "tprobe %s/%s epoch %d, %d member(s)" lp lk epoch
        (List.length members)
  | Tstat { leader = lp, lk; epoch; entries } ->
      Printf.sprintf "tstat %s/%s epoch %d, %d table(s)" lp lk epoch
        (List.length entries)
  | Tcomplete { leader = lp, lk; epoch; members } ->
      Printf.sprintf "tcomplete %s/%s epoch %d, %d member(s)" lp lk epoch
        (List.length members)
  | Cancel { goal } -> Printf.sprintf "cancel %s" (Literal.to_string goal)

open Peertrust_dlp
module Crypto = Peertrust_crypto
module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric

type behavior =
  | Flood of int
  | Malformed of int
  | Unsolicited of int
  | Replay
  | Forged_certs
  | Oversized of int
  | Bomb of int

let behavior_to_string = function
  | Flood n -> Printf.sprintf "flood=%d" n
  | Malformed n -> Printf.sprintf "malformed=%d" n
  | Unsolicited n -> Printf.sprintf "unsolicited=%d" n
  | Replay -> "replay"
  | Forged_certs -> "forged"
  | Oversized n -> Printf.sprintf "oversized=%d" n
  | Bomb d -> Printf.sprintf "bomb=%d" d

let behavior_of_string s =
  let name, arg =
    match String.index_opt s '=' with
    | None -> (s, None)
    | Some i ->
        ( String.sub s 0 i,
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let with_default d = Option.value ~default:d arg in
  match String.lowercase_ascii name with
  | "flood" -> Ok (Flood (with_default 12))
  | "malformed" -> Ok (Malformed (with_default 4))
  | "unsolicited" -> Ok (Unsolicited (with_default 4))
  | "replay" -> Ok Replay
  | "forged" -> Ok Forged_certs
  | "oversized" -> Ok (Oversized (with_default 65_536))
  | "bomb" -> Ok (Bomb (with_default 40))
  | _ ->
      Error
        (Printf.sprintf
           "unknown behavior %S (expected \
            flood|malformed|unsolicited|replay|forged|oversized|bomb, \
            optionally =N)"
           s)

type action = { act_target : string; act_payload : Message.payload }

type t = {
  name : string;
  behaviors : behavior list;
  prng : Crypto.Prng.t;
  budget : int;
  mutable sent : int;
  mutable history : action list;  (* most recent first, for replays *)
}

let m_actions = Obs.counter "adversary.actions"
let m_floods = Obs.counter "adversary.floods"
let m_malformed = Obs.counter "adversary.malformed"
let m_unsolicited = Obs.counter "adversary.unsolicited"
let m_replays = Obs.counter "adversary.replays"
let m_forged = Obs.counter "adversary.forged"
let m_oversized = Obs.counter "adversary.oversized"
let m_bombs = Obs.counter "adversary.bombs"

let create ?(seed = 1L) ?(budget = 64) ~name behaviors =
  if budget < 0 then invalid_arg "Adversary.create: budget must be >= 0";
  {
    name;
    behaviors;
    prng = Crypto.Prng.create seed;
    budget;
    sent = 0;
    history = [];
  }

let name t = t.name
let behaviors t = t.behaviors
let actions_sent t = t.sent

let probe_goal t =
  Literal.make "adv_probe" [ Term.Int (Crypto.Prng.next_int t.prng 1_000_000) ]

(* A goal whose authority chain is the adversary itself, [depth] layers
   deep: a victim that evaluates it pops one layer per hop and
   counter-queries the adversary each time. *)
let bomb_goal t ~depth =
  Literal.make
    ~auth:(List.init depth (fun _ -> Term.str t.name))
    "adv_bomb"
    [ Term.Int (Crypto.Prng.next_int t.prng 1_000_000) ]

let junk_bytes t n =
  String.init n (fun _ -> Char.chr (32 + Crypto.Prng.next_int t.prng 95))

(* Garbage flavors: raw noise, a truncated certificate envelope, and a
   complete-looking envelope whose fields do not parse. *)
let malformed_payload t =
  match Crypto.Prng.next_int t.prng 3 with
  | 0 -> Message.Raw (junk_bytes t (16 + Crypto.Prng.next_int t.prng 64))
  | 1 -> Message.Raw "-----BEGIN PEERTRUST CERTIFICATE-----\nserial: 1\n"
  | _ ->
      Message.Raw
        (Printf.sprintf
           "-----BEGIN PEERTRUST CERTIFICATE-----\n\
            serial: %s\n\
            not-before: never\n\
            rule: )(\n\
            -----END PEERTRUST CERTIFICATE-----\n"
           (junk_bytes t 6))

let forged_cert t =
  let n = Crypto.Prng.next_int t.prng 1_000_000 in
  let rule =
    Rule.fact ~signer:[ t.name ] (Literal.make "adv_cred" [ Term.Int n ])
  in
  {
    Crypto.Cert.serial = 900_000 + n;
    rule;
    not_before = 0;
    not_after = max_int;
    signatures = [ (t.name, Crypto.Bignum.of_int (1 + Crypto.Prng.next_int t.prng 1_000_000)) ];
  }

let spoofed_answer ?(certs = []) t =
  let goal = probe_goal t in
  Message.Answer { goal; instances = [ (goal, None) ]; certs }

let behavior_actions t ~target = function
  | Flood n ->
      List.init n (fun _ ->
          Metric.incr m_floods;
          { act_target = target; act_payload = Message.Query { goal = probe_goal t } })
  | Malformed n ->
      List.init n (fun _ ->
          Metric.incr m_malformed;
          { act_target = target; act_payload = malformed_payload t })
  | Unsolicited n ->
      List.init n (fun _ ->
          Metric.incr m_unsolicited;
          { act_target = target; act_payload = spoofed_answer t })
  | Replay -> []  (* replays react to traffic; see {!react} *)
  | Forged_certs ->
      Metric.incr m_forged;
      [ { act_target = target; act_payload = spoofed_answer ~certs:[ forged_cert t ] t } ]
  | Oversized n ->
      Metric.incr m_oversized;
      [ { act_target = target; act_payload = Message.Raw (junk_bytes t n) } ]
  | Bomb depth ->
      Metric.incr m_bombs;
      [ { act_target = target; act_payload = Message.Query { goal = bomb_goal t ~depth } } ]

(* Clip to the remaining budget and remember what went out. *)
let charge t actions =
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | a :: rest -> a :: take (n - 1) rest
  in
  let out = take (t.budget - t.sent) actions in
  t.sent <- t.sent + List.length out;
  Metric.add m_actions (List.length out);
  t.history <- List.rev_append out t.history;
  out

let burst t ~targets =
  if targets = [] then []
  else
    charge t
      (List.concat_map
         (fun b -> List.concat_map (fun tg -> behavior_actions t ~target:tg b) targets)
         t.behaviors)

let replays t ~target =
  if not (List.mem Replay t.behaviors) || t.history = [] then []
  else
    let pool = Array.of_list t.history in
    List.init 2 (fun _ ->
        Metric.incr m_replays;
        let a = pool.(Crypto.Prng.next_int t.prng (Array.length pool)) in
        { a with act_target = target })

let react t ~from payload =
  match payload with
  | Message.Ack -> []
  | Message.Query _ | Message.Answer _ | Message.Deny _
  | Message.Disclosure _ | Message.Batch _ | Message.Raw _ | Message.Tquery _
  | Message.Tanswer _ | Message.Tprobe _ | Message.Tstat _
  | Message.Tcomplete _ | Message.Cancel _ ->
      charge t
        (replays t ~target:from
        @ List.concat_map (fun b -> behavior_actions t ~target:from b) t.behaviors)

(** In-process simulated peer-to-peer network.

    Peers register a synchronous handler; {!send} delivers a request to the
    target's handler and returns its response, charging latency on the
    shared clock and recording both directions in the statistics and the
    transcript.  Deterministic by construction — no real I/O, no threads —
    which is what makes the benchmark tables reproducible.

    Failure injection: peers can be marked down ({!set_down}), a message
    budget can be imposed to abort runaway negotiations, and a seeded
    {!Faults} plan ({!set_faults}) injects drops, duplicates, delays and
    transient outages into the queued ({!post}) path. *)

type t

exception Unreachable of string
(** Target peer is down or not registered. *)

exception Budget_exhausted
(** The configured message budget was hit. *)

type handler = from:string -> Message.payload -> Message.payload

type entry = {
  time : int;
  from : string;
  target : string;
  summary : string;
  bytes_ : int;
  certs_ : int;  (** certificates carried by this message *)
}

val create : ?latency:int -> ?max_messages:int -> ?log_cap:int -> unit -> t
(** [latency] (default 1) is the tick cost of one message direction.
    [log_cap] (default 10_000) bounds the transcript ring buffer: past the
    cap the oldest entries are discarded and counted by
    {!dropped_log_entries}.  @raise Invalid_argument when [log_cap < 1]. *)

val clock : t -> Clock.t
val stats : t -> Stats.t
val register : t -> string -> handler -> unit
(** Re-registering a name replaces its handler. *)

val unregister : t -> string -> unit
val registered : t -> string list
val set_down : t -> string -> bool -> unit
val is_down : t -> string -> bool

val set_faults : t -> Faults.t -> unit
(** Install a fault plan; it applies to {!post} (the queued engines).
    Synchronous {!send}/{!notify} traffic is not fault-injected. *)

val faults : t -> Faults.t

val set_link_latency : t -> from:string -> target:string -> int -> unit
(** Override the tick cost of one directed link (e.g. a slow WAN hop to a
    remote authority).  @raise Invalid_argument on negative values. *)

val link_latency : t -> from:string -> target:string -> int
(** Effective latency of a directed link (override or default). *)

val send : t -> from:string -> target:string -> Message.payload -> Message.payload
(** One request/response round trip.
    @raise Unreachable if the target is down or unknown.
    @raise Budget_exhausted past the message budget. *)

val notify : t -> from:string -> target:string -> Message.payload -> unit
(** One-way message: recorded in statistics and transcript, charged
    latency, but not delivered to any handler.  Used to account for
    forwarding traffic handled out-of-band (e.g. device-to-proxy hops).
    @raise Unreachable / Budget_exhausted as {!send}. *)

val post :
  t ->
  from:string ->
  target:string ->
  ?attempt:int ->
  ?incarnation:int ->
  ?trace:Peertrust_obs.Trace_context.t ->
  Message.payload ->
  Envelope.t list
(** Queue-oriented one-way send under the installed fault plan: charge and
    log the transmission, then return the envelope copies that actually
    reach the target — [[]] when the message is lost (sampled drop, or the
    target is inside a scheduled outage or crash window), one envelope
    normally, two sharing an id when duplicated.  [incarnation] (default
    0) is the sender's restart count, stamped on every surviving copy.  Extra delivery delay is reflected
    in [deliver_at].  Lost and duplicated sends increment [net.drops] /
    [net.duplicates].  [trace] (default [None]) is stamped verbatim on
    every surviving copy — the in-process form of the wire-propagated
    trace header ({!Wire}).  With the fault-free plan this is exactly
    {!notify} plus one envelope.
    @raise Unreachable if the target is down ({!set_down}) or the message
    budget is exhausted ([Budget_exhausted]); scheduled outages do NOT
    raise — the sender only learns through missing answers. *)

val transcript : t -> entry list
(** Retained messages in delivery order (both directions of each round
    trip).  Long runs keep only the newest [log_cap] entries. *)

val dropped_log_entries : t -> int
(** Transcript entries discarded by the ring buffer so far. *)

val clear_transcript : t -> unit
val pp_transcript : Format.formatter -> t -> unit

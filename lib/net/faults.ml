module Prng = Peertrust_crypto.Prng

type rates = {
  drop : float;
  duplicate : float;
  delay : float;
  delay_max : int;
  reorder : float;
}

let zero_rates =
  { drop = 0.; duplicate = 0.; delay = 0.; delay_max = 4; reorder = 0. }

type t = {
  prng : Prng.t option;
  default : rates;
  links : (string * string, rates) Hashtbl.t;
  mutable outage_list : (string * int * int) list;  (* reverse order *)
  mutable crash_list : (string * int * int) list;  (* reverse order *)
}

let none () =
  {
    prng = None;
    default = zero_rates;
    links = Hashtbl.create 1;
    outage_list = [];
    crash_list = [];
  }

let check_rates r =
  let prob name p =
    if p < 0. || p > 1. then
      invalid_arg (Printf.sprintf "Faults: %s must be in [0,1]" name)
  in
  prob "drop" r.drop;
  prob "duplicate" r.duplicate;
  prob "delay" r.delay;
  prob "reorder" r.reorder;
  if r.delay_max < 0 then invalid_arg "Faults: delay_max must be >= 0"

let create ?(drop = 0.) ?(duplicate = 0.) ?(delay = 0.) ?(delay_max = 4)
    ?(reorder = 0.) ~seed () =
  let default = { drop; duplicate; delay; delay_max; reorder } in
  check_rates default;
  {
    prng = Some (Prng.create seed);
    default;
    links = Hashtbl.create 8;
    outage_list = [];
    crash_list = [];
  }

let rates_zero r =
  r.drop = 0. && r.duplicate = 0. && r.delay = 0. && r.reorder = 0.

let is_none t =
  (match t.prng with
  | None -> true
  | Some _ ->
      rates_zero t.default
      && Hashtbl.fold (fun _ r acc -> acc && rates_zero r) t.links true)
  && t.outage_list = [] && t.crash_list = []

let set_link t ~from ~target r =
  check_rates r;
  Hashtbl.replace t.links (from, target) r

let link_rates t ~from ~target =
  Option.value ~default:t.default (Hashtbl.find_opt t.links (from, target))

let add_outage t ~peer ~from_tick ~until_tick =
  if until_tick < from_tick then
    invalid_arg "Faults.add_outage: until_tick < from_tick";
  t.outage_list <- (peer, from_tick, until_tick) :: t.outage_list

let outages t = List.rev t.outage_list

let in_outage t peer ~now =
  List.exists
    (fun (p, from_tick, until_tick) ->
      String.equal p peer && from_tick <= now && now < until_tick)
    t.outage_list

let add_crash t ~peer ~at_tick ~restart_tick =
  if at_tick < 0 then invalid_arg "Faults.add_crash: at_tick must be >= 0";
  if restart_tick <= at_tick then
    invalid_arg "Faults.add_crash: restart_tick must be > at_tick";
  t.crash_list <- (peer, at_tick, restart_tick) :: t.crash_list

let crashes t = List.rev t.crash_list

let in_crash t peer ~now =
  List.exists
    (fun (p, at_tick, restart_tick) ->
      String.equal p peer && at_tick <= now && now < restart_tick)
    t.crash_list

type decision = { dec_delays : int list }

let deliver_plain = { dec_delays = [ 0 ] }

(* 53 uniform bits, as for a double's mantissa. *)
let next_float g =
  Int64.to_float (Int64.shift_right_logical (Prng.next_int64 g) 11)
  /. 9007199254740992.

let hit g p = p > 0. && next_float g < p

let decide t ~from ~target =
  match t.prng with
  | None -> deliver_plain
  | Some g ->
      let r = link_rates t ~from ~target in
      if rates_zero r then deliver_plain
      else if hit g r.drop then { dec_delays = [] }
      else
        let copies = if hit g r.duplicate then 2 else 1 in
        let delay_of _ =
          let d =
            if hit g r.delay && r.delay_max > 0 then
              1 + Prng.next_int g r.delay_max
            else 0
          in
          if hit g r.reorder then d + 1 + Prng.next_int g 2 else d
        in
        { dec_delays = List.init copies delay_of }

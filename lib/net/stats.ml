type kind = Query | Answer | Deny | Disclosure | Tabling | Other

type t = {
  mutable total : int;
  mutable total_bytes : int;
  by_kind : (kind, int) Hashtbl.t;
  by_pair : (string * string, int) Hashtbl.t;
  peer_set : (string, unit) Hashtbl.t;  (* membership *)
  mutable peers : string list;  (* reverse first-seen order *)
}

let create () =
  {
    total = 0;
    total_bytes = 0;
    by_kind = Hashtbl.create 8;
    by_pair = Hashtbl.create 16;
    peer_set = Hashtbl.create 16;
    peers = [];
  }

let bump tbl key by =
  Hashtbl.replace tbl key (by + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let see t p =
  if not (Hashtbl.mem t.peer_set p) then begin
    Hashtbl.add t.peer_set p ();
    t.peers <- p :: t.peers
  end

let record t kind ~bytes_ ~from ~target =
  t.total <- t.total + 1;
  t.total_bytes <- t.total_bytes + bytes_;
  bump t.by_kind kind 1;
  bump t.by_pair (from, target) 1;
  see t from;
  see t target

let messages t = t.total
let messages_of_kind t k = Option.value ~default:0 (Hashtbl.find_opt t.by_kind k)
let bytes t = t.total_bytes

let between t a b = Option.value ~default:0 (Hashtbl.find_opt t.by_pair (a, b))
let peers_seen t = List.rev t.peers

let reset t =
  t.total <- 0;
  t.total_bytes <- 0;
  Hashtbl.reset t.by_kind;
  Hashtbl.reset t.by_pair;
  Hashtbl.reset t.peer_set;
  t.peers <- []

let kind_to_string = function
  | Query -> "query"
  | Answer -> "answer"
  | Deny -> "deny"
  | Disclosure -> "disclosure"
  | Tabling -> "tabling"
  | Other -> "other"

let pp fmt t =
  Format.fprintf fmt "%d messages, %d bytes (" t.total t.total_bytes;
  let first = ref true in
  List.iter
    (fun k ->
      let n = messages_of_kind t k in
      if n > 0 then begin
        if not !first then Format.pp_print_string fmt ", ";
        first := false;
        Format.fprintf fmt "%s: %d" (kind_to_string k) n
      end)
    [ Query; Answer; Deny; Disclosure; Tabling; Other ];
  Format.pp_print_string fmt ")"

(** Capacity-capped set of delivered envelope ids.

    The reactor remembers every delivered envelope id to suppress
    duplicate deliveries (transport-level duplication, retransmitted
    copies).  Unbounded, that memory grows for the life of a session —
    the same leak the transcript ring fixed for the network log.  This
    structure keeps the most recent [cap] ids in FIFO order: once full,
    remembering a new id forgets the oldest one.

    Forgetting an id re-opens a window for a very late duplicate of a
    very old message; dispatch is idempotent enough that this degrades to
    a counted re-delivery, not corruption.  Evictions are counted
    ([reactor.dedup_evictions]) so a sweep can verify the window was
    never re-entered. *)

type t

val create : cap:int -> t
(** @raise Invalid_argument when [cap < 1]. *)

val mem : t -> int -> bool

val add : t -> int -> bool
(** Remember an id (no-op if already present); [true] when an old id was
    evicted to make room. *)

val length : t -> int
val evictions : t -> int

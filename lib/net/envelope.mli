(** Delivery envelopes around message payloads.

    The network wraps every posted payload in an envelope carrying a
    process-unique message id (shared by duplicated copies, so receivers
    can deduplicate), a per-link sequence number, the retransmission
    attempt, and the simulated-clock send and delivery times.  Queued
    engines order deliveries by {!compare_delivery}: delivery time first,
    then id — which degenerates to FIFO when no extra delays are
    injected. *)

type t = {
  id : int;  (** unique per original send; duplicate copies share it *)
  seq : int;  (** per-directed-link sequence number, from 0 *)
  from_ : string;
  target : string;
  sent_at : int;  (** clock when the send was accounted *)
  deliver_at : int;  (** clock when the copy becomes deliverable *)
  attempt : int;  (** 0 for the original send, >0 for retransmissions *)
  incarnation : int;
      (** the sender's restart count when the send was posted: 0 for a
          peer that has never crashed.  Receivers track the highest
          incarnation observed per sender — a lower one marks a stale
          message from a dead incarnation, a higher one a restart.  Not
          part of {!summary} when 0, so crash-free transcripts are
          unchanged. *)
  trace : Peertrust_obs.Trace_context.t option;
      (** propagated trace context; [None] on untraced runs.  Not part of
          {!summary}, so transcripts are identical with tracing on or
          off. *)
  payload : Message.payload;
}

val compare_delivery : t -> t -> int
(** Order by [deliver_at], ties broken by [id] (post order). *)

val summary : t -> string
(** One-line rendering for tracer events and logs.  The incarnation is
    shown only when nonzero. *)

type t = {
  id : int;
  seq : int;
  from_ : string;
  target : string;
  sent_at : int;
  deliver_at : int;
  attempt : int;
  incarnation : int;
  trace : Peertrust_obs.Trace_context.t option;
  payload : Message.payload;
}

let compare_delivery a b =
  let c = Int.compare a.deliver_at b.deliver_at in
  if c <> 0 then c else Int.compare a.id b.id

let summary e =
  Printf.sprintf "#%d/%d %s -> %s @%d%s%s: %s" e.id e.seq e.from_ e.target
    e.deliver_at
    (if e.attempt > 0 then Printf.sprintf " (retry %d)" e.attempt else "")
    (if e.incarnation > 0 then Printf.sprintf " (inc %d)" e.incarnation else "")
    (Message.summary e.payload)

(** Message and byte accounting for the simulated network. *)

type t

type kind = Query | Answer | Deny | Disclosure | Tabling | Other
(** [Tabling] covers the distributed-tabling control plane: table
    queries, monotone answer pushes and the SCC completion protocol. *)

val create : unit -> t
val record : t -> kind -> bytes_:int -> from:string -> target:string -> unit
val messages : t -> int
val messages_of_kind : t -> kind -> int
val bytes : t -> int

val between : t -> string -> string -> int
(** Directed message count from one peer to another. *)

val peers_seen : t -> string list
val reset : t -> unit
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit

(** Messages exchanged between negotiating peers.

    A synchronous request/response pair models one round-trip of the
    paper's outer layer; the eager strategy additionally pushes
    [Disclosure] messages. *)

open Peertrust_dlp

type table_ref = string * string
(** A distributed table's identity: [(owning peer, goal skeleton key)].
    The key is {!Peertrust_dlp.Rule.canonical} of the goal as a fact, so
    alpha-variant calls share one table. *)

type tstat_entry = {
  ts_key : string;  (** goal skeleton of the reporting peer's table *)
  ts_size : int;  (** answers accumulated so far *)
  ts_deps : (string * string * int * bool) list;
      (** per remote dependency [(owner, key, answers seen, final)] *)
}
(** One table's contribution to a {!Tstat} reply: the SCC leader uses
    [ts_size]/[ts_deps] as GEM-style counters to check that every
    consumer has seen every producer's full answer set. *)

type payload =
  | Query of { goal : Literal.t }
      (** evaluate this literal and answer with provable instances *)
  | Answer of {
      goal : Literal.t;
      instances : (Literal.t * Trace.t option) list;
      certs : Peertrust_crypto.Cert.t list;
          (** credentials supporting the instances, released under the
              sender's release policies *)
    }
  | Deny of { goal : Literal.t; reason : string }
      (** refusal: no answer, or release policy not satisfied *)
  | Disclosure of {
      certs : Peertrust_crypto.Cert.t list;
      rules : Rule.t list;
    }  (** unsolicited push of unlocked resources (eager strategy) *)
  | Batch of payload list
      (** several same-tick payloads to one peer coalesced into a single
          envelope (the reactor's sub-query batching); pays one envelope
          of transport accounting for the whole group *)
  | Ack
  | Raw of string
      (** an uninterpreted byte string — honest peers never send one; the
          adversary harness uses it to model garbage on the wire.  The
          guard layer attempts {!Peertrust_crypto.Wire} decoding and
          rejects it as malformed; an unguarded reactor ignores it. *)
  | Tquery of { goal : Literal.t; path : table_ref list }
      (** distributed-tabling call: evaluate [goal] against the owner's
          table, streaming answers back; [path] is the chain of tables
          whose evaluation led here (loop detection) *)
  | Tanswer of { goal : Literal.t; instances : Literal.t list; final : bool }
      (** monotone answer push: the owner's {e full} current instance
          list for the table (so duplicates/reorder are harmless — the
          consumer merges by skeleton); [final] marks a completed table *)
  | Tprobe of { leader : table_ref; epoch : int; members : table_ref list }
      (** SCC leader asking members for their counters at quiescence *)
  | Tstat of { leader : table_ref; epoch : int; entries : tstat_entry list }
      (** member's counter report for one probe epoch *)
  | Tcomplete of { leader : table_ref; epoch : int; members : table_ref list }
      (** leader's verdict: the SCC is globally quiescent; freeze every
          member table and release its answers as final *)
  | Cancel of { goal : Literal.t }
      (** the requester no longer needs an answer to [goal] — posted when
          a submission's deadline expires so responders can drop parked
          work instead of answering into the void *)

val kind : payload -> Stats.kind

val size : payload -> int
(** Wire-size estimate in bytes: serialised rules/literals plus signature
    material. *)

val cert_count : payload -> int
(** Number of certificates (credential disclosures) carried. *)

val summary : payload -> string
(** One-line rendering for transcripts. *)

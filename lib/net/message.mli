(** Messages exchanged between negotiating peers.

    A synchronous request/response pair models one round-trip of the
    paper's outer layer; the eager strategy additionally pushes
    [Disclosure] messages. *)

open Peertrust_dlp

type payload =
  | Query of { goal : Literal.t }
      (** evaluate this literal and answer with provable instances *)
  | Answer of {
      goal : Literal.t;
      instances : (Literal.t * Trace.t option) list;
      certs : Peertrust_crypto.Cert.t list;
          (** credentials supporting the instances, released under the
              sender's release policies *)
    }
  | Deny of { goal : Literal.t; reason : string }
      (** refusal: no answer, or release policy not satisfied *)
  | Disclosure of {
      certs : Peertrust_crypto.Cert.t list;
      rules : Rule.t list;
    }  (** unsolicited push of unlocked resources (eager strategy) *)
  | Batch of payload list
      (** several same-tick payloads to one peer coalesced into a single
          envelope (the reactor's sub-query batching); pays one envelope
          of transport accounting for the whole group *)
  | Ack
  | Raw of string
      (** an uninterpreted byte string — honest peers never send one; the
          adversary harness uses it to model garbage on the wire.  The
          guard layer attempts {!Peertrust_crypto.Wire} decoding and
          rejects it as malformed; an unguarded reactor ignores it. *)

val kind : payload -> Stats.kind

val size : payload -> int
(** Wire-size estimate in bytes: serialised rules/literals plus signature
    material. *)

val cert_count : payload -> int
(** Number of certificates (credential disclosures) carried. *)

val summary : payload -> string
(** One-line rendering for transcripts. *)

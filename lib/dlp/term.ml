(* Compact terms: symbols are interned ({!Sym}), variables are integers.

   Named (source) variables are interned into a dedicated table; the two
   pseudo-variables get the first two ids so that the pseudo test is two
   integer comparisons.  Machine-generated fresh variables are allocated
   from a single process-global counter and live at the *top* of the id
   space ([max_int - 1 - k]), so the two populations can never collide and
   a single comparison ([is_fresh]) tells them apart. *)

type t =
  | Var of int
  | Str of Sym.t
  | Int of int
  | Atom of Sym.t
  | Compound of Sym.t * t list

(* Named variables. *)

let vnames = Sym.Interner.create ()
let requester_id = Sym.Interner.intern vnames "Requester" (* = 0 *)
let self_id = Sym.Interner.intern vnames "Self" (* = 1 *)
let is_pseudo v = v = requester_id || v = self_id
let named_var_count () = Sym.Interner.size vnames

(* Fresh variables: id_of_k k = max_int - 1 - k, k counting up from 0. *)

let fresh_floor = max_int / 2
let is_fresh v = v > fresh_floor
let fresh_counter = ref 0
let id_of_k k = max_int - 1 - k
let k_of_id v = max_int - 1 - v

let fresh_id () =
  let k = !fresh_counter in
  incr fresh_counter;
  id_of_k k

let fresh_block n =
  let k0 = !fresh_counter in
  fresh_counter := k0 + n;
  k0

let fresh_mark () = !fresh_counter
let local_id j = id_of_k j
let local_slot v = k_of_id v

let var_name v =
  if is_fresh v then "_G" ^ string_of_int (k_of_id v)
  else Sym.Interner.name vnames v

let var_id name = Sym.Interner.intern vnames name

(* Smart constructors; the stable construction API, independent of the
   constructor payload representation. *)
let var v = Var (var_id v)
let str s = Str (Sym.intern s)
let atom a = Atom (Sym.intern a)
let compound f args = Compound (Sym.intern f, args)
let requester = Var requester_id
let self = Var self_id
let fresh () = Var (fresh_id ())

let rec compare a b =
  match (a, b) with
  | Var x, Var y -> Int.compare x y
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Str x, Str y -> Sym.compare_names x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Int x, Int y -> Int.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Atom x, Atom y -> Sym.compare_names x y
  | Atom _, _ -> -1
  | _, Atom _ -> 1
  | Compound (f, xs), Compound (g, ys) ->
      let c = Sym.compare_names f g in
      if c <> 0 then c
      else
        let c = List.compare_lengths xs ys in
        if c <> 0 then c else compare_lists xs ys

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_lists xs' ys'

(* Structural equality on interned ids: no string comparison.  Agrees with
   [compare] because interning is injective. *)
let rec equal a b =
  match (a, b) with
  | Var x, Var y -> x = y
  | Str x, Str y -> Sym.equal x y
  | Int x, Int y -> x = y
  | Atom x, Atom y -> Sym.equal x y
  | Compound (f, xs), Compound (g, ys) -> Sym.equal f g && equal_lists xs ys
  | _ -> false

and equal_lists xs ys =
  match (xs, ys) with
  | [], [] -> true
  | x :: xs', y :: ys' -> equal x y && equal_lists xs' ys'
  | _ -> false

let rec is_ground = function
  | Var _ -> false
  | Str _ | Int _ | Atom _ -> true
  | Compound (_, args) -> List.for_all is_ground args

let rec iter_vars f = function
  | Var v -> f v
  | Str _ | Int _ | Atom _ -> ()
  | Compound (_, args) -> List.iter (iter_vars f) args

let add_vars seen acc t =
  iter_vars
    (fun v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        acc := v :: !acc
      end)
    t

let vars t =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  add_vars seen acc t;
  List.rev !acc

let const_name = function Str s | Atom s -> Some (Sym.name s) | _ -> None

(* List.map preserving physical identity when no element changes. *)
let rec map_sharing f = function
  | [] -> []
  | x :: xs as l ->
      let x' = f x in
      let xs' = map_sharing f xs in
      if x' == x && xs' == xs then l else x' :: xs'

let rec map_vars f t =
  match t with
  | Var v ->
      let v' = f v in
      if v' = v then t else Var v'
  | Str _ | Int _ | Atom _ -> t
  | Compound (g, args) ->
      let args' = map_sharing (map_vars f) args in
      if args' == args then t else Compound (g, args')

let rec rename_with mapping = function
  | Var v as t ->
      if is_pseudo v then t
      else
        Var
          (match Hashtbl.find_opt mapping v with
          | Some f -> f
          | None ->
              let f = fresh_id () in
              Hashtbl.add mapping v f;
              f)
  | (Str _ | Int _ | Atom _) as t -> t
  | Compound (f, args) -> Compound (f, List.map (rename_with mapping) args)

(* Shift the compiled-local fresh variables of a term into a freshly
   allocated block: local id [id_of_k j] becomes [id_of_k (k0 + j)], i.e.
   the id decreases by [k0].  Only ever applied to compiled rules, whose
   variables are exactly pseudo-variables plus locals. *)
let rec shift_fresh k0 t =
  match t with
  | Var v -> if is_fresh v then Var (v - k0) else t
  | Str _ | Int _ | Atom _ -> t
  | Compound (f, args) ->
      let args' = map_sharing (shift_fresh k0) args in
      if args' == args then t else Compound (f, args')

let plus_op = Sym.intern "+"
let minus_op = Sym.intern "-"
let times_op = Sym.intern "*"
let div_op = Sym.intern "/"

let is_arith_op op =
  op = plus_op || op = minus_op || op = times_op || op = div_op

let rec pp fmt = function
  | Var v -> Format.pp_print_string fmt (var_name v)
  | Str s -> Format.fprintf fmt "%S" (Sym.name s)
  | Int i -> Format.pp_print_int fmt i
  | Atom a -> Format.pp_print_string fmt (Sym.name a)
  | Compound (op, [ a; b ]) when is_arith_op op ->
      (* Arithmetic prints infix (parenthesised) so it re-parses. *)
      Format.fprintf fmt "(%a %s %a)" pp a (Sym.name op) pp b
  | Compound (f, args) ->
      Format.fprintf fmt "%s(%a)" (Sym.name f)
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp)
        args

let to_string t = Format.asprintf "%a" pp t

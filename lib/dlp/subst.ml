module M = Map.Make (Int)

type t = Term.t M.t

let empty = M.empty
let is_empty = M.is_empty

let bind_id v t s =
  if M.mem v s then
    invalid_arg ("Subst.bind: already bound: " ^ Term.var_name v)
  else M.add v t s

let bind v t s = bind_id (Term.var_id v) t s
let find_id v s = M.find_opt v s
let find v s = M.find_opt (Term.var_id v) s
let fold_ids f s acc = M.fold f s acc
let mem_id v s = M.mem v s

let rec walk s t =
  match t with
  | Term.Var v -> ( match M.find_opt v s with Some t' -> walk s t' | None -> t)
  | _ -> t

let rec apply s t =
  match walk s t with
  | Term.Compound (f, args) -> Term.Compound (f, List.map (apply s) args)
  | t' -> t'

(* User-visible views are ordered by source variable name, as they were when
   substitutions were string-keyed maps: CLI and trace output depend on it. *)
let bindings s =
  M.fold (fun v t acc -> (Term.var_name v, t) :: acc) s []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let domain s = List.map fst (bindings s)

let restrict vs s =
  List.fold_left
    (fun acc v ->
      match M.find_opt v s with
      | None -> acc
      | Some _ -> M.add v (apply s (Term.Var v)) acc)
    M.empty vs

let pp fmt s =
  let pp_binding fmt (v, t) = Format.fprintf fmt "%s = %a" v Term.pp t in
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_binding)
    (bindings s)

let to_string s = Format.asprintf "%a" pp s

(** Idempotent substitutions: finite maps from variable ids to terms.

    Substitutions are kept in triangular form: bindings may map a variable
    to a term that itself contains bound variables; [apply] walks bindings
    to a fixpoint.  This persistent representation is the engine's public
    interface for answers, traces and the wire; the resolution hot path
    uses the mutable trailed {!Store} internally and materialises a
    [Subst.t] at those boundaries. *)

type t

val empty : t
val is_empty : t -> bool

val bind : string -> Term.t -> t -> t
(** [bind v t s] adds the binding [v -> t] for the named variable [v].
    Raises [Invalid_argument] if [v] is already bound. *)

val bind_id : int -> Term.t -> t -> t
(** As {!bind}, by variable id. *)

val find : string -> t -> Term.t option
(** Raw binding of the named variable [v], without walking. *)

val find_id : int -> t -> Term.t option
val mem_id : int -> t -> bool

val fold_ids : (int -> Term.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over raw bindings by variable id. *)

val walk : t -> Term.t -> Term.t
(** [walk s t] dereferences [t] while it is a variable bound in [s]; the
    result is either a non-variable term or an unbound variable. *)

val apply : t -> Term.t -> Term.t
(** [apply s t] fully resolves [t] under [s] (deep walk). *)

val domain : t -> string list
(** Bound variable names, sorted by name. *)

val bindings : t -> (string * Term.t) list
(** Raw bindings as [(name, term)], sorted by name. *)

val restrict : int list -> t -> t
(** [restrict vs s] keeps only the (fully applied) bindings of variables in
    [vs]; used to project answers onto the variables of a query. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Literals of the PeerTrust language: a predicate applied to terms,
    optionally extended with a chain of authority arguments,

    {v lit @ A1 @ A2 ... @ Ak v}

    The paper evaluates authority chains outermost-first; we store the chain
    in source order, so the {e outermost} authority is the {e last} element
    of [auth].  A literal with an empty chain is local ([@ Self]). *)

type t = { pred : string; args : Term.t list; auth : Term.t list }

val make : ?auth:Term.t list -> string -> Term.t list -> t
val arity : t -> int

val key : t -> string * int
(** [(pred, arity)] index key. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val outer_authority : t -> Term.t option
(** The outermost (last) authority, if any. *)

val pop_authority : t -> (t * Term.t) option
(** [pop_authority l] removes the outermost authority [a], returning
    [(l', a)]; [None] if the chain is empty. *)

val push_authority : t -> Term.t -> t
(** [push_authority l a] appends [a] as the new outermost authority. *)

val apply : Subst.t -> t -> t

val resolve : Store.t -> t -> t
(** Fully resolve arguments and authorities through the store. *)

val display : Store.t -> t -> t
(** {!resolve} with display-name conversion ({!Store.display}); for
    literals that escape the solver. *)

val rename_apart : t -> t
(** Rename all non-pseudo variables to globally fresh ones. *)

val rename_with : (int, int) Hashtbl.t -> t -> t
(** As {!rename_apart}, sharing the renaming across calls via [mapping]. *)

val shift_fresh : int -> t -> t
(** Relocate compiled-local variables (see {!Term.shift_fresh}). *)

val map_vars : (int -> int) -> t -> t

val vars : t -> int list
val add_vars : (int, unit) Hashtbl.t -> int list ref -> t -> unit
val is_ground : t -> bool

val to_term : t -> Term.t
(** Encode a literal as a compound term (used for hashing, signing and for
    meta-predicates); inverse of {!of_term}. *)

val of_term : Term.t -> t option

val unify : t -> t -> Subst.t -> Subst.t option
(** Unify predicate, arguments and authority chains. *)

val unify_store : Store.t -> t -> t -> bool
(** Trailed variant of {!unify}; on [false] some bindings may remain —
    callers bracket with [Store.mark]/[Store.undo]. *)

val negate : t -> t
(** Wrap a literal as negation-as-failure: [not lit].  Encoded as the
    predicate [not/1] holding the literal's term encoding. *)

val naf_inner : t -> t option
(** The literal under a [not/1] wrapper, if this is one. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(* Flat literal encoding (see flat.mli): one int array per literal, ground
   arguments as hash-consed ids, everything else as negative escapes into a
   small side array.  The fast path of unification is then an int-compare
   loop; the boxed unifier is entered only for escape elements and binds
   through the same trailed store, so the trail (and everything derived
   from it: answers, display ordinals, transcripts) is identical to what
   the boxed path produces. *)

type head = { h_flat : int array; h_extras : Term.t array }
type goal = { g_flat : int array; g_vals : Term.t array }

(* Head elements: e >= 0 is a ground id; otherwise let u = -e-1: u even is
   the variable code u/2 (0/1 = pseudo-variable id, c >= 2 = compiled-local
   slot c-2), u odd indexes h_extras (a non-ground compound). *)

let enc_var_code c = -(2 * c) - 1
let enc_extra j = -((2 * j) + 1) - 1

let compile_head (l : Literal.t) =
  let extras = ref [] in
  let nx = ref 0 in
  let enc t =
    match Gterm.of_term t with
    | Some g -> g
    | None -> (
        match t with
        | Term.Var v ->
            enc_var_code (if Term.is_pseudo v then v else 2 + Term.local_slot v)
        | _ ->
            let j = !nx in
            incr nx;
            extras := t :: !extras;
            enc_extra j)
  in
  let n = List.length l.Literal.args in
  let na = List.length l.Literal.auth in
  let flat = Array.make (2 + n + na) 0 in
  flat.(0) <- Sym.intern l.Literal.pred;
  flat.(1) <- n;
  let i = ref 2 in
  let put t =
    flat.(!i) <- enc t;
    incr i
  in
  List.iter put l.Literal.args;
  List.iter put l.Literal.auth;
  { h_flat = flat; h_extras = Array.of_list (List.rev !extras) }

(* ------------------------------------------------------------------ *)
(* Arena: per-solve scratch *)

type cbuf = { mutable cb : int array; mutable cn : int }

type arena = {
  mutable fvals : Term.t array;  (* flatten: boxed escape slots *)
  mutable nfv : int;
  cb1 : cbuf;  (* canonical encoding, primary *)
  cb2 : cbuf;  (* canonical encoding, secondary *)
  mutable vseen : int array;  (* canonical var renumbering: ids seen *)
  mutable nseen : int;
}

let arena () =
  {
    fvals = Array.make 16 (Term.Int 0);
    nfv = 0;
    cb1 = { cb = Array.make 64 0; cn = 0 };
    cb2 = { cb = Array.make 64 0; cn = 0 };
    vseen = Array.make 16 (-1);
    nseen = 0;
  }

(* ------------------------------------------------------------------ *)
(* Goal flattening *)

let flatten arena st (l : Literal.t) =
  let n = List.length l.Literal.args in
  let na = List.length l.Literal.auth in
  let flat = Array.make (2 + n + na) 0 in
  flat.(0) <- Sym.intern l.Literal.pred;
  flat.(1) <- n;
  if n + na > Array.length arena.fvals then
    arena.fvals <- Array.make (max (2 * Array.length arena.fvals) (n + na)) (Term.Int 0);
  arena.nfv <- 0;
  let slot t =
    let u = arena.nfv in
    arena.fvals.(u) <- t;
    arena.nfv <- u + 1;
    -u - 1
  in
  let i = ref 2 in
  let put t =
    let t = Store.walk st t in
    let e =
      match t with
      | Term.Var _ -> slot t
      | Term.Atom a -> Gterm.of_atom a
      | Term.Str s -> Gterm.of_str s
      | Term.Int k -> Gterm.of_int k
      | Term.Compound _ -> (
          match Gterm.resolve_id st t with Some g -> g | None -> slot t)
    in
    flat.(!i) <- e;
    incr i
  in
  List.iter put l.Literal.args;
  List.iter put l.Literal.auth;
  { g_flat = flat; g_vals = Array.sub arena.fvals 0 arena.nfv }

let pred g = g.g_flat.(0)
let nargs g = g.g_flat.(1)
let nauth g = Array.length g.g_flat - 2 - g.g_flat.(1)

(* ------------------------------------------------------------------ *)
(* Unification *)

let rec occurs st v t =
  match Store.walk st t with
  | Term.Var w -> v = w
  | Term.Str _ | Term.Int _ | Term.Atom _ -> false
  | Term.Compound (_, args) -> List.exists (occurs st v) args

(* Unify an (already walked) goal-side term against the head variable [v],
   replicating the case order of [Unify.store_terms]: a goal-side variable
   binds first (to a boxed [Var v]), exactly as it would against the boxed
   instantiated head. *)
let unify_term_var st t v =
  if Store.is_bound st v then Unify.store_terms st t (Store.lookup st v)
  else
    match t with
    | Term.Var x when x = v -> true
    | Term.Var x ->
        Store.bind st x (Term.Var v);
        true
    | t ->
        if occurs st v t then false
        else begin
          Store.bind st v t;
          true
        end

let unify_elem st k0 gvals hextras ge he =
  let gt = if ge >= 0 then Gterm.term ge else Store.walk st gvals.(-ge - 1) in
  if he >= 0 then begin
    let ht = Gterm.term he in
    gt == ht || Unify.store_terms st gt ht
  end
  else begin
    let u = -he - 1 in
    if u land 1 = 0 then begin
      let c = u lsr 1 in
      let v = if c < 2 then c else Term.local_id (k0 + (c - 2)) in
      unify_term_var st gt v
    end
    else Unify.store_terms st gt (Term.shift_fresh k0 hextras.(u lsr 1))
  end

let unify st ~k0 g h =
  let gf = g.g_flat and hf = h.h_flat in
  let n = Array.length gf in
  n = Array.length hf
  && gf.(0) = hf.(0)
  &&
  let ok = ref true in
  (* From index 1: the arity element (>= 0 on both sides) compares like a
     ground id, so same-length literals with a different arity/authority
     split cannot unify. *)
  let i = ref 1 in
  while !ok && !i < n do
    let ge = gf.(!i) and he = hf.(!i) in
    (* Equal non-negative elements are identical ground terms (hash-cons
       injectivity); distinct non-negative elements can never unify. *)
    if ge <> he || ge < 0 then
      if ge >= 0 && he >= 0 then ok := false
      else ok := unify_elem st k0 g.g_vals h.h_extras ge he;
    incr i
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* First-argument index keys *)

type fkey = Kany | Kground of int | Kfunctor of Sym.t * int

let goal_first_key g =
  if g.g_flat.(1) = 0 then Kany
  else
    let e = g.g_flat.(2) in
    if e >= 0 then
      match Gterm.term e with
      | Term.Compound (f, args) -> Kfunctor (f, List.length args)
      | _ -> Kground e
    else
      match g.g_vals.(-e - 1) with
      | Term.Var _ -> Kany
      | Term.Compound (f, args) -> Kfunctor (f, List.length args)
      | Term.Str _ | Term.Int _ | Term.Atom _ ->
          (* ground non-compounds always flatten to a ground id *)
          assert false

(* ------------------------------------------------------------------ *)
(* Canonical encodings *)

(* Tags are large negative values disjoint from both ground ids (>= 0) and
   the values that follow a tag positionally (slot numbers, symbol ids,
   arities, raw variable ids — all >= 0), so the encoding is a prefix code
   and therefore injective. *)
let tag_var = min_int
let tag_comp = min_int + 1

let emit cb x =
  if cb.cn = Array.length cb.cb then begin
    let bigger = Array.make (2 * cb.cn) 0 in
    Array.blit cb.cb 0 bigger 0 cb.cn;
    cb.cb <- bigger
  end;
  cb.cb.(cb.cn) <- x;
  cb.cn <- cb.cn + 1

let seen_slot arena v =
  let n = arena.nseen in
  let rec find i = if i >= n then -1 else if arena.vseen.(i) = v then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then i
  else begin
    if n = Array.length arena.vseen then begin
      let bigger = Array.make (2 * n) (-1) in
      Array.blit arena.vseen 0 bigger 0 n;
      arena.vseen <- bigger
    end;
    arena.vseen.(n) <- v;
    arena.nseen <- n + 1;
    n
  end

let rec canon_term arena cb st t =
  match Store.walk st t with
  | Term.Var v ->
      emit cb tag_var;
      emit cb (seen_slot arena v)
  | Term.Atom a -> emit cb (Gterm.of_atom a)
  | Term.Str s -> emit cb (Gterm.of_str s)
  | Term.Int i -> emit cb (Gterm.of_int i)
  | Term.Compound (f, args) as t' -> (
      match Gterm.resolve_id st t' with
      | Some g -> emit cb g
      | None ->
          emit cb tag_comp;
          emit cb f;
          emit cb (List.length args);
          List.iter (canon_term arena cb st) args)

let canon_lit arena cb st (l : Literal.t) =
  cb.cn <- 0;
  arena.nseen <- 0;
  emit cb (Sym.intern l.Literal.pred);
  emit cb (List.length l.Literal.args);
  List.iter (canon_term arena cb st) l.Literal.args;
  List.iter (canon_term arena cb st) l.Literal.auth

let canon_set arena st l = canon_lit arena arena.cb1 st l

let canon_eq arena st l =
  canon_lit arena arena.cb2 st l;
  let a = arena.cb1 and b = arena.cb2 in
  a.cn = b.cn
  &&
  let rec eq i = i >= a.cn || (a.cb.(i) = b.cb.(i) && eq (i + 1)) in
  eq 0

let subst_key s =
  let b = ref (Array.make 32 0) in
  let n = ref 0 in
  let emit x =
    if !n = Array.length !b then begin
      let bigger = Array.make (2 * !n) 0 in
      Array.blit !b 0 bigger 0 !n;
      b := bigger
    end;
    !b.(!n) <- x;
    incr n
  in
  let rec enc t =
    match Gterm.of_term t with
    | Some g -> emit g
    | None -> (
        match t with
        | Term.Var v ->
            emit tag_var;
            emit v
        | Term.Compound (f, args) ->
            emit tag_comp;
            emit f;
            emit (List.length args);
            List.iter enc args
        | Term.Str _ | Term.Int _ | Term.Atom _ ->
            (* ground: always interned above *)
            assert false)
  in
  Subst.fold_ids
    (fun v t () ->
      emit v;
      enc t)
    s ();
  Array.sub !b 0 !n

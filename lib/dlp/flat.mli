(** Flat compiled literals: each literal as one int array.

    A literal [p(t1,...,tn) @ a1 ... @ ak] flattens to
    [[| pred; n; e1; ...; e_(n+k) |]] where [pred] is the interned
    predicate symbol, [n] the arity, and each element [e] encodes one
    argument (authorities follow the arguments):

    - [e >= 0]: the hash-consed id ({!Gterm}) of a ground argument — so
      ground-vs-ground comparison during unification is [e1 = e2];
    - [e < 0]: a side-table escape.  For compiled {e heads} the escape is
      a variable code (pseudo-variable or compiled-local slot) or an index
      into a per-head array of boxed non-ground compounds; for runtime
      {e goals} it indexes an array of boxed walked subterms.

    Unification of a goal against a head is then an int-compare loop over
    adjacent memory that falls back to the boxed unifier only on escape
    elements, binding through the same trailed {!Store} (so trails,
    binding order, and therefore answers and transcripts are identical to
    the boxed path).

    The module also provides canonical encodings (variables numbered by
    first occurrence) used for the variant-ancestor loop check and for
    integer-keyed answer deduplication: two literals are variants iff
    their canonical encodings are equal. *)

type head
(** Flat form of a compiled rule head (variables are pseudo-variables or
    compiled-local slots, see {!Rule.compile}). *)

val compile_head : Literal.t -> head
(** Flatten a compiled head literal.  Call once at rule compilation. *)

type goal = { g_flat : int array; g_vals : Term.t array }
(** Flat form of a runtime goal: ground arguments as {!Gterm} ids,
    everything else as an index into [g_vals] holding the walked boxed
    subterm (re-walked through the store at unification time, so bindings
    made by earlier argument pairs are seen by later ones). *)

type arena
(** Per-solve scratch buffers for flattening and canonical encoding; one
    arena per store/solve (never shared across nested solves). *)

val arena : unit -> arena

val flatten : arena -> Store.t -> Literal.t -> goal
(** Flatten a goal with arguments walked through the store. *)

val pred : goal -> Sym.t
val nargs : goal -> int
val nauth : goal -> int

val unify : Store.t -> k0:int -> goal -> head -> bool
(** Unify a goal against a head instantiated at fresh-block offset [k0]
    (head-local slot [j] denotes the live variable [Term.local_id (k0+j)]).
    Binds destructively through {!Store.bind}; on [false] some bindings
    may remain — callers bracket with [Store.mark]/[Store.undo].  Makes
    exactly the bindings (same cells, same order, same values up to
    sharing) that [Literal.unify_store] makes against the boxed
    instantiated head. *)

(** {2 First-argument index keys} *)

type fkey =
  | Kany  (** no argument, or a variable first argument: no filtering *)
  | Kground of int  (** non-compound ground first argument, by {!Gterm} id *)
  | Kfunctor of Sym.t * int  (** compound first argument, by functor/arity *)

val goal_first_key : goal -> fkey

(** {2 Canonical encodings} *)

val canon_set : arena -> Store.t -> Literal.t -> unit
(** Encode the literal (resolved through the store, variables renumbered
    by first occurrence) into the arena's primary canon buffer. *)

val canon_eq : arena -> Store.t -> Literal.t -> bool
(** Encode into the secondary buffer and compare with the primary: [true]
    iff the two literals are variants (equal up to consistent variable
    renaming) of each other — the {!Unify.variant} test, integer-coded. *)

val subst_key : Subst.t -> int array
(** Injective integer key of a substitution (variables raw-coded); used
    for answer deduplication instead of string printing.  Finer than
    printed equality only where printing is ambiguous (e.g. an atom whose
    name spells an integer). *)

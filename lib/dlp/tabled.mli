(** Tabled (OLDT-style) local evaluation — the third evaluation paradigm
    next to {!Sld} (depth-first backward) and {!Forward} (bottom-up).

    Calls are memoised by their variant (alpha-invariant skeleton): each
    distinct call gets a table that accumulates answer instances, and
    tables are re-evaluated to a mutual fixpoint.  Tabling makes
    {e left-recursive} programs complete — where SLD's ancestor check
    prunes the recursive branch and loses answers —

    {v path(X, Z) <- path(X, Y), edge(Y, Z).  path(X, Y) <- edge(X, Y). v}

    and shares work across repeated sub-goals.

    Scope: goals are resolved against the local KB (with the signed-rule
    axiom and [@ Self]-stripping, like {!Sld}).  A literal whose
    outermost authority names another peer dispatches to the [?remote]
    hook when one is given — the distributed-tabling runtime supplies
    the remote table's current answer view there — and otherwise gets a
    local table that no local rule feeds (the pre-distribution
    behaviour).  Negation as failure is rejected ({!Unsupported})
    because a NAF check against an unfinished table would be unsound. *)

exception Unsupported of string

type remote = target:string -> Literal.t -> Literal.t list
(** Answer view for a foreign-authority call: given the owning peer's
    name and the goal (authority popped, display form), return the
    instances known so far.  The hook may be called several times per
    fixpoint; returning a subset is sound — the caller re-evaluates when
    the view grows. *)

type stats = { tables : int  (** tables allocated by the call *) }
(** Per-call statistics, returned alongside the answers by
    {!solve_stats}.  Statistics are values threaded out of each call —
    there is no "most recent solve" global, so interleaved callers (and
    tests) can never observe another call's counts. *)

val solve :
  ?max_rounds:int ->
  ?max_answers:int ->
  ?externals:Sld.externals ->
  ?remote:remote ->
  ?bindings:(string * Term.t) list ->
  self:string ->
  Kb.t ->
  Literal.t list ->
  Subst.t list
(** Answers for the conjunction, as substitutions over the goals' variables
    (deduplicated).  [max_rounds] (default 10_000) bounds fixpoint rounds;
    [max_answers] (default 100_000) bounds the total table size — hitting
    either returns the answers found so far.
    @raise Unsupported on a negation-as-failure literal. *)

val solve_stats :
  ?max_rounds:int ->
  ?max_answers:int ->
  ?externals:Sld.externals ->
  ?remote:remote ->
  ?bindings:(string * Term.t) list ->
  self:string ->
  Kb.t ->
  Literal.t list ->
  Subst.t list * stats
(** Like {!solve}, also returning the call's {!stats}. *)

val provable :
  ?max_rounds:int ->
  ?externals:Sld.externals ->
  ?bindings:(string * Term.t) list ->
  self:string ->
  Kb.t ->
  Literal.t list ->
  bool

(** Built-in predicates available in rule bodies and contexts.

    Comparisons: [=] (unification), [!=], and the order predicates [<],
    [<=], [>], [>=] over integers and (lexicographically) strings.  The
    order predicates require both arguments to be ground after applying the
    current substitution; [!=] requires groundness as well.

    Operands may be arithmetic expressions over [+], [-], [*], [/]
    (integer division); a ground arithmetic operand is evaluated before
    the comparison, so [X = Price * 2 + 100] binds [X] to the computed
    value.  Division by zero makes the comparison fail. *)

val is_builtin : string * int -> bool

val is_builtin_sym : Sym.t -> bool
(** [is_builtin] on an already interned predicate symbol (arity not
    checked); the flat resolution path's cheap pre-filter. *)

val eval : Literal.t -> Subst.t -> Subst.t list option
(** [eval lit s] is [None] when [lit] is not a built-in; otherwise
    [Some answers] where [answers] are the extensions of [s] under which the
    built-in holds (at most one for every current built-in). *)

val eval_store : Store.t -> Literal.t -> bool option
(** Trailed variant: [None] when not a built-in; [Some holds] otherwise,
    with any [=] bindings recorded in the store (already undone when
    [holds] is [false]). *)

(** Hash-consed ground terms.

    Every ground term (atom, string, integer, or compound with ground
    arguments) is interned into a process-global append-only table and
    identified by a dense non-negative id; structurally equal ground terms
    always receive the same id, so ground-term equality on the resolution
    hot path is integer equality.  Ids never exceed the table size, which
    keeps them disjoint from the negative codes the flat literal encoding
    ({!Flat}) uses for variables and escapes.

    Each id also owns one canonical boxed {!Term.t} (compounds share the
    canonical forms of their arguments), so binding a solver variable to a
    ground value reuses a shared term instead of allocating. *)

val of_atom : Sym.t -> int
(** Id of the atom with the given symbol (array-indexed: O(1)). *)

val of_str : Sym.t -> int
(** Id of the string constant with the given symbol. *)

val of_int : int -> int
(** Id of an integer constant. *)

val of_term : Term.t -> int option
(** Intern a term; [None] if it contains a variable.  Ground subterms of a
    non-ground compound are still interned. *)

val resolve_id : Store.t -> Term.t -> int option
(** [of_term] of the term fully resolved through the store, without
    materialising the resolved term; [None] if any subterm walks to an
    unbound variable. *)

val term : int -> Term.t
(** The canonical boxed term of an id.  O(1); the result is shared. *)

val count : unit -> int
(** Number of ground terms interned so far (ids are [0 .. count () - 1]). *)

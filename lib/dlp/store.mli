(** Mutable trailed binding store for the resolution hot path.

    [bind] writes a cell and pushes the slot on the trail; [undo] pops the
    trail back to a [mark], unbinding in reverse order.  The SLD and tabled
    engines thread one store through a whole solve and materialise
    persistent {!Subst.t} values only at boundaries (answers, traces,
    externals, the wire) via {!to_subst}.

    Invariant: terms returned by {!resolve}/{!to_subst} are fully
    dereferenced — no trailed cell is reachable from a returned answer, so
    answers survive backtracking. *)

type t

val create : unit -> t
(** A store with every variable unbound.  Fresh variables allocated after
    creation get array-backed cells; earlier ("foreign") fresh ids fall
    back to a hash table. *)

val bind : t -> int -> Term.t -> unit
(** [bind st v t] binds variable id [v] (which must be unbound) to [t] and
    records [v] on the trail. *)

val lookup : t -> int -> Term.t
(** Raw cell contents; physically equal to the internal unbound sentinel
    when unbound — use {!walk} instead for dereferencing. *)

val is_bound : t -> int -> bool
val mark : t -> int
val undo : t -> int -> unit
(** [undo st m] unbinds everything trailed since [mark] returned [m]. *)

val walk : t -> Term.t -> Term.t
(** Dereference while the term is a bound variable; result is a non-variable
    term or an unbound variable. *)

val resolve : t -> Term.t -> Term.t
(** Fully resolve a term (deep walk). *)

val note_names : t -> int -> string array -> int -> unit
(** [note_names st k0 names ord] records display names for the fresh block
    at offset [k0]: slot [j] of the block is the source variable
    [names.(j)] of rule application number [ord] of the current solve, and
    displays as [names.(j) ^ "~" ^ ord] (the user-visible renaming scheme
    of reports and wire messages). *)

val display : t -> Term.t -> Term.t
(** {!resolve}, with leftover named fresh variables converted to their
    [name~ordinal] display variables; used when a term escapes the solver
    (wire messages, answers, traces). *)

val to_subst : t -> Subst.t
(** Materialise the current bindings as a persistent substitution, fully
    resolved. *)

val answer_subst : t -> Subst.t
(** {!to_subst} with display-name conversion: values containing leftover
    named fresh variables show them as [name~ordinal] display variables. *)

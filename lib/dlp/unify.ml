(* Map-based unification over persistent substitutions (the public facade,
   also the oracle for the differential tests), plus the trailed-store
   variants used by the resolution hot path. *)

let rec occurs v s t =
  match Subst.walk s t with
  | Term.Var w -> v = w
  | Term.Str _ | Term.Int _ | Term.Atom _ -> false
  | Term.Compound (_, args) -> List.exists (occurs v s) args

let rec terms a b s =
  let a = Subst.walk s a and b = Subst.walk s b in
  match (a, b) with
  | Term.Var x, Term.Var y when x = y -> Some s
  | Term.Var x, t -> if occurs x s t then None else Some (Subst.bind_id x t s)
  | t, Term.Var y -> if occurs y s t then None else Some (Subst.bind_id y t s)
  | Term.Str x, Term.Str y -> if Sym.equal x y then Some s else None
  | Term.Int x, Term.Int y -> if Int.equal x y then Some s else None
  | Term.Atom x, Term.Atom y -> if Sym.equal x y then Some s else None
  | Term.Compound (f, xs), Term.Compound (g, ys) ->
      if Sym.equal f g then term_lists xs ys s else None
  | (Term.Str _ | Term.Int _ | Term.Atom _ | Term.Compound _), _ -> None

and term_lists xs ys s =
  match (xs, ys) with
  | [], [] -> Some s
  | x :: xs', y :: ys' -> (
      match terms x y s with
      | Some s' -> term_lists xs' ys' s'
      | None -> None)
  | _, _ -> None

(* Trailed-store unification: bindings go through [Store.bind] and are
   undone by the caller via mark/undo on failure. *)

let rec occurs_st st v t =
  match Store.walk st t with
  | Term.Var w -> v = w
  | Term.Str _ | Term.Int _ | Term.Atom _ -> false
  | Term.Compound (_, args) -> List.exists (occurs_st st v) args

let rec store_terms st a b =
  let a = Store.walk st a and b = Store.walk st b in
  match (a, b) with
  | Term.Var x, Term.Var y when x = y -> true
  | Term.Var x, t ->
      if occurs_st st x t then false
      else begin
        Store.bind st x t;
        true
      end
  | t, Term.Var y ->
      if occurs_st st y t then false
      else begin
        Store.bind st y t;
        true
      end
  | Term.Str x, Term.Str y -> Sym.equal x y
  | Term.Int x, Term.Int y -> Int.equal x y
  | Term.Atom x, Term.Atom y -> Sym.equal x y
  | Term.Compound (f, xs), Term.Compound (g, ys) ->
      Sym.equal f g && store_term_lists st xs ys
  | (Term.Str _ | Term.Int _ | Term.Atom _ | Term.Compound _), _ -> false

and store_term_lists st xs ys =
  match (xs, ys) with
  | [], [] -> true
  | x :: xs', y :: ys' -> store_terms st x y && store_term_lists st xs' ys'
  | _, _ -> false

(* Compare [pattern] resolved under [s] against the (as-is) term [t],
   walking incrementally instead of materialising [apply s pattern]. *)
let rec matches_resolved s pattern t =
  match (Subst.walk s pattern, t) with
  | Term.Var x, Term.Var y -> x = y
  | Term.Str a, Term.Str b -> Sym.equal a b
  | Term.Int a, Term.Int b -> Int.equal a b
  | Term.Atom a, Term.Atom b -> Sym.equal a b
  | Term.Compound (f, xs), Term.Compound (g, ys) ->
      Sym.equal f g && matches_resolved_lists s xs ys
  | _, _ -> false

and matches_resolved_lists s xs ys =
  match (xs, ys) with
  | [], [] -> true
  | x :: xs', y :: ys' -> matches_resolved s x y && matches_resolved_lists s xs' ys'
  | _, _ -> false

let rec one_way pattern t s =
  match (pattern, t) with
  | Term.Var x, _ -> (
      (* Bind the pattern variable; an existing binding must agree. *)
      match Subst.find_id x s with
      | Some bound -> if matches_resolved s bound t then Some s else None
      | None -> Some (Subst.bind_id x t s))
  | Term.Str a, Term.Str b when Sym.equal a b -> Some s
  | Term.Int a, Term.Int b when Int.equal a b -> Some s
  | Term.Atom a, Term.Atom b when Sym.equal a b -> Some s
  | Term.Compound (f, xs), Term.Compound (g, ys) when Sym.equal f g ->
      one_way_lists xs ys s
  | (Term.Str _ | Term.Int _ | Term.Atom _ | Term.Compound _), _ -> None

and one_way_lists xs ys s =
  match (xs, ys) with
  | [], [] -> Some s
  | x :: xs', y :: ys' -> (
      match one_way x y s with
      | Some s' -> one_way_lists xs' ys' s'
      | None -> None)
  | _, _ -> None

(* Two terms are variants iff each one-way matches the other; we check with
   a pair of injective variable maps built in lockstep. *)
let variant a b =
  let module M = Map.Make (Int) in
  let rec go a b (f, g) =
    match (a, b) with
    | Term.Var x, Term.Var y -> (
        match (M.find_opt x f, M.find_opt y g) with
        | Some y', Some x' -> if y' = y && x' = x then Some (f, g) else None
        | None, None -> Some (M.add x y f, M.add y x g)
        | _, _ -> None)
    | Term.Str x, Term.Str y when Sym.equal x y -> Some (f, g)
    | Term.Int x, Term.Int y when Int.equal x y -> Some (f, g)
    | Term.Atom x, Term.Atom y when Sym.equal x y -> Some (f, g)
    | Term.Compound (h, xs), Term.Compound (k, ys) when Sym.equal h k ->
        go_list xs ys (f, g)
    | _, _ -> None
  and go_list xs ys acc =
    match (xs, ys) with
    | [], [] -> Some acc
    | x :: xs', y :: ys' -> (
        match go x y acc with Some acc' -> go_list xs' ys' acc' | None -> None)
    | _, _ -> None
  in
  match go a b (M.empty, M.empty) with Some _ -> true | None -> false

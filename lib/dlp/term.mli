(** First-order terms of the PeerTrust distributed-logic-program language.

    A term is a logical variable, a constant (string, integer or atom), or a
    compound term [f(t1,...,tn)].  Symbols are interned ({!Sym}) and
    variables are integers: named (source) variables occupy a dense id space
    starting at 0, with the pseudo-variables [Requester] and [Self] of the
    paper pre-interned as ids 0 and 1; machine-generated fresh variables are
    allocated from a process-global counter at the top of the id space
    ([max_int - 1 - k]), so the two populations never collide.  Use the
    smart constructors ([var], [str], ...) to build terms from source
    strings. *)

type t =
  | Var of int  (** logical variable, by id (see {!var_id}, {!var_name}) *)
  | Str of Sym.t  (** quoted string constant, e.g. ["Alice"] *)
  | Int of int  (** integer constant *)
  | Atom of Sym.t  (** lower-case symbolic constant, e.g. [cs101] *)
  | Compound of Sym.t * t list  (** compound term [f(t1,...,tn)], n >= 1 *)

val var : string -> t
(** Variable with the given source name (interned). *)

val str : string -> t
val atom : string -> t
val compound : string -> t list -> t

val var_id : string -> int
(** Intern a source variable name. *)

val var_name : int -> string
(** Source name of a named variable; fresh variables print as [_G<k>]. *)

val named_var_count : unit -> int
(** Number of named-variable ids interned so far. *)

val compare : t -> t -> int
val compare_lists : t list -> t list -> int
val equal : t -> t -> bool

val requester : t
(** The pseudo-variable [Requester]. *)

val self : t
(** The pseudo-variable [Self]. *)

val requester_id : int
val self_id : int

val is_pseudo : int -> bool
(** [true] for the ids of the pseudo-variables [Requester] and [Self]. *)

val is_ground : t -> bool
(** [is_ground t] is [true] iff [t] contains no variable. *)

val vars : t -> int list
(** Variable ids occurring in [t], each reported once, in first-occurrence
    order. *)

val iter_vars : (int -> unit) -> t -> unit
(** Apply [f] to every variable occurrence (with repeats), left to right. *)

val add_vars : (int, unit) Hashtbl.t -> int list ref -> t -> unit
(** Accumulate unseen variable ids of [t] onto [acc] (reversed); shared
    de-duplication state for collecting over several terms. *)

val const_name : t -> string option
(** Source text of a [Str] or [Atom] constant, [None] otherwise. *)

(** {2 Fresh variables and renaming} *)

val fresh : unit -> t
val fresh_id : unit -> int

val is_fresh : int -> bool
(** [true] for machine-generated (renamed-apart) variable ids. *)

val fresh_mark : unit -> int
(** Current value of the fresh counter; ids allocated from here on have
    [k >= fresh_mark ()]. *)

val fresh_block : int -> int
(** [fresh_block n] reserves [n] consecutive fresh ids and returns the
    block offset [k0] for {!shift_fresh}. *)

val local_id : int -> int
(** [local_id j] is the compiled-local variable id for slot [j]; shifted
    into a live block by {!shift_fresh}. *)

val local_slot : int -> int
(** Inverse of {!local_id}: the slot of a compiled-local (or, shifted, a
    live fresh) variable id. *)

val shift_fresh : int -> t -> t
(** [shift_fresh k0 t] relocates compiled-local fresh variables of [t] into
    the block reserved by [fresh_block]: [local_id j] becomes the live id
    [local_id j - k0]. *)

val map_vars : (int -> int) -> t -> t
(** Apply [f] to every variable id (including pseudo-variables); shares
    structure where nothing changes. *)

val map_sharing : ('a -> 'a) -> 'a list -> 'a list
(** [List.map] preserving physical identity when no element changes. *)

val rename_with : (int, int) Hashtbl.t -> t -> t
(** Rename every non-pseudo variable to a globally fresh one, memoising
    through [mapping] so shared variables stay shared across calls. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

let builtins = [ "="; "!="; "<"; "<="; ">"; ">=" ]
let is_builtin (p, n) = n = 2 && List.mem p builtins

(* Interned view, for callers that already hold the predicate symbol. *)
let builtin_syms = List.map Sym.intern builtins
let is_builtin_sym s = List.exists (fun b -> Sym.equal b s) builtin_syms

let plus_op = Sym.intern "+"
let minus_op = Sym.intern "-"
let times_op = Sym.intern "*"
let div_op = Sym.intern "/"

let is_arith_op op =
  Sym.equal op plus_op || Sym.equal op minus_op || Sym.equal op times_op
  || Sym.equal op div_op

(* Evaluate a ground arithmetic expression; [None] for non-arithmetic or
   non-ground terms (and for division by zero). *)
let rec eval_arith = function
  | Term.Int i -> Some i
  | Term.Compound (op, [ a; b ]) when is_arith_op op -> (
      match (eval_arith a, eval_arith b) with
      | Some x, Some y ->
          if Sym.equal op plus_op then Some (x + y)
          else if Sym.equal op minus_op then Some (x - y)
          else if Sym.equal op times_op then Some (x * y)
          else if y = 0 then None
          else Some (x / y)
      | _, _ -> None)
  | Term.Var _ | Term.Str _ | Term.Atom _ | Term.Compound _ -> None

let is_arith_expr = function
  | Term.Compound (op, [ _; _ ]) -> is_arith_op op
  | _ -> false

(* Normalise a comparison operand: evaluate it if it is arithmetic. *)
let normalise t =
  if is_arith_expr t then
    match eval_arith t with Some i -> Term.Int i | None -> t
  else t

let compare_ground a b =
  match (a, b) with
  | Term.Int x, Term.Int y -> Some (Int.compare x y)
  | Term.Str x, Term.Str y -> Some (Sym.compare_names x y)
  | Term.Atom x, Term.Atom y -> Some (Sym.compare_names x y)
  (* Mixed ground constants have a fixed but arbitrary order; only equality
     and disequality are meaningful across sorts. *)
  | _, _ ->
      if Term.is_ground a && Term.is_ground b then Some (Term.compare a b)
      else None

(* Shared comparison logic over normalised operands; [`Unify] means the
   caller should unify [a] with [b] (the [=] case). *)
let decide pred a b =
  match pred with
  | "=" ->
      (* An arithmetic expression that survived normalisation is
         unevaluable (non-ground operand or division by zero): the
         comparison fails rather than unifying structurally. *)
      if is_arith_expr a || is_arith_expr b then `Fail else `Unify
  | "!=" ->
      if Term.is_ground a && Term.is_ground b then
        if Term.equal a b then `Fail else `Hold
      else `Fail
  | op -> (
      match compare_ground a b with
      | None -> `Fail
      | Some c ->
          let holds =
            match op with
            | "<" -> c < 0
            | "<=" -> c <= 0
            | ">" -> c > 0
            | ">=" -> c >= 0
            | _ -> assert false
          in
          if holds then `Hold else `Fail)

let eval (lit : Literal.t) s =
  if not (is_builtin (Literal.key lit)) then None
  else
    match lit.Literal.args with
    | [ a; b ] -> (
        let a = normalise (Subst.apply s a) and b = normalise (Subst.apply s b) in
        match decide lit.Literal.pred a b with
        | `Fail -> Some []
        | `Hold -> Some [ s ]
        | `Unify -> (
            match Unify.terms a b s with
            | Some s' -> Some [ s' ]
            | None -> Some []))
    | _ -> None

(* Trailed variant: operands resolve through the store; [=] binds
   destructively, undoing its own partial bindings on failure. *)
let eval_store st (lit : Literal.t) =
  if not (is_builtin (Literal.key lit)) then None
  else
    match lit.Literal.args with
    | [ a; b ] -> (
        let a = normalise (Store.resolve st a)
        and b = normalise (Store.resolve st b) in
        match decide lit.Literal.pred a b with
        | `Fail -> Some false
        | `Hold -> Some true
        | `Unify ->
            let m = Store.mark st in
            if Unify.store_terms st a b then Some true
            else begin
              Store.undo st m;
              Some false
            end)
    | _ -> None

(* Global symbol interner: strings (functors, atoms, string constants) are
   mapped to dense integer ids, so equality on the unification hot path is
   integer comparison and index keys need no string building.  Interning is
   append-only; ids are never reused, so a Sym.t is valid for the lifetime
   of the process. *)

module Interner = struct
  type t = {
    ids : (string, int) Hashtbl.t;
    mutable names : string array;
    mutable size : int;
  }

  let create () = { ids = Hashtbl.create 256; names = Array.make 256 ""; size = 0 }

  let intern t s =
    match Hashtbl.find_opt t.ids s with
    | Some i -> i
    | None ->
        let i = t.size in
        if i = Array.length t.names then begin
          let bigger = Array.make (2 * i) "" in
          Array.blit t.names 0 bigger 0 i;
          t.names <- bigger
        end;
        t.names.(i) <- s;
        t.size <- i + 1;
        Hashtbl.add t.ids s i;
        i

  let name t i = t.names.(i)
  let find t s = Hashtbl.find_opt t.ids s
  let size t = t.size
end

type t = int

let table = Interner.create ()
let intern s = Interner.intern table s
let name i = Interner.name table i
let equal (a : t) (b : t) = a = b
let compare_ids (a : t) (b : t) = Int.compare a b

(* Order symbols by their source text: sorted output (reports, canonical
   forms) must not depend on interning order. *)
let compare_names a b = String.compare (name a) (name b)

(** Depth-bounded SLD resolution over a single peer's knowledge base.

    This is the local (backward-chaining) evaluation engine of §3.2.  The
    distributed behaviour is obtained by plugging a [remote] callback: when
    a goal's outermost authority is a ground peer name different from
    [self], the engine — only when no local rule yields an answer for the
    goal — ships the literal (with the outermost authority popped) to that
    peer and unifies the returned instances.

    Evaluation of one goal:

    + strip [@ a] layers whose authority equals [self];
    + built-in predicates ({!Builtin});
    + registered external predicates (revocation checks,
      [authenticatesTo], ... — §4.2);
    + local rules with a matching head, including the signed-rule axiom:
      a rule [h signedBy \[A\]] also proves goals matching [h @ A];
    + remote dispatch as described above.

    Negation as failure: a body literal [not lit] succeeds when the ground
    [lit] has no local proof.  Remote dispatch is disabled inside the
    sub-proof — the absence of a remote answer is not evidence of falsity —
    and a NAF goal whose inner literal is non-ground fails (floundering).

    Termination: a depth bound plus an ancestor check that fails any goal
    which is a variant of a goal already on its own call path. *)

type options = {
  max_depth : int;
  max_solutions : int;
  max_steps : int;
      (** resolution work budget: an upper bound on solver steps
          ([prove_one] calls) per {!solve}; past it the remaining search
          space is abandoned and the answers found so far are returned.
          Used by the guard layer to cap the effort a peer spends on one
          requester's behalf.  Cutoffs count into [sld.step_cutoffs]. *)
}

val default_options : options
(** [{ max_depth = 64; max_solutions = 32; max_steps = max_int }] *)

type answer = { subst : Subst.t; proofs : Trace.t list }
(** One solution: the substitution (full, unrestricted) and one proof per
    input goal, fully instantiated with the answer substitution. *)

type external_fn = Literal.t -> Subst.t -> Subst.t list
(** An external predicate: receives the goal (substitution already applied)
    and the substitution; returns the substitutions under which it holds. *)

type externals = string * int -> external_fn option

type remote = target:string -> Literal.t -> (Literal.t * Trace.t option) list
(** [remote ~target lit] asks peer [target] for instances of [lit] (whose
    outermost authority has been popped); each returned instance may carry
    the remote proof. *)

val solve :
  ?options:options ->
  ?externals:externals ->
  ?remote:remote ->
  ?bindings:(string * Term.t) list ->
  self:string ->
  Kb.t ->
  Literal.t list ->
  answer list
(** Solve the conjunction of goals.  [bindings] pre-binds variables —
    typically [("Self", Str self); ("Requester", Str r)].  [Self] is always
    bound to [self] (a [bindings] entry may not override it). *)

val provable :
  ?options:options ->
  ?externals:externals ->
  ?remote:remote ->
  ?bindings:(string * Term.t) list ->
  self:string ->
  Kb.t ->
  Literal.t list ->
  bool

val answers :
  ?options:options ->
  ?externals:externals ->
  ?remote:remote ->
  ?bindings:(string * Term.t) list ->
  self:string ->
  Kb.t ->
  Literal.t list ->
  Subst.t list
(** Like {!solve} but each substitution is restricted to the variables of
    the query, and duplicate answers are removed. *)

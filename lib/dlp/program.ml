type warning =
  | Unsafe_head_var of Rule.t * string
  | Unbound_authority of Rule.t * string
  | Unbound_naf of Rule.t * string

(* Warnings carry the source variable name for display; the checks below
   work on variable ids. *)
let warn_name = Term.var_name

let parse = Parser.parse_program

let to_string rules =
  Format.asprintf "%a"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
       Rule.pp)
    rules

let check rules =
  let warnings = ref [] in
  let warn w = warnings := w :: !warnings in
  let check_rule (r : Rule.t) =
    let body_vars = List.concat_map Literal.vars r.Rule.body in
    let head_arg_vars =
      List.concat_map Term.vars
        (r.Rule.head.Literal.args @ r.Rule.head.Literal.auth)
    in
    (* Head variables a caller cannot be expected to supply through the
       body: only flagged for rules with a body (facts with variables are
       templates, common in the paper). *)
    if r.Rule.body <> [] then
      List.iter
        (fun v ->
          if (not (Term.is_pseudo v)) && not (List.mem v body_vars) then
            warn (Unsafe_head_var (r, warn_name v)))
        head_arg_vars;
    (* Authority variables must be bindable by the time their literal is
       reached: by the head, a pseudo-variable, or an earlier body
       literal. *)
    let rec scan bound = function
      | [] -> ()
      | (b : Literal.t) :: rest ->
          List.iter
            (fun a ->
              List.iter
                (fun v ->
                  if (not (Term.is_pseudo v)) && not (List.mem v bound) then
                    warn (Unbound_authority (r, warn_name v)))
                (Term.vars a))
            b.Literal.auth;
          (match Literal.naf_inner b with
          | Some inner ->
              List.iter
                (fun v ->
                  if (not (Term.is_pseudo v)) && not (List.mem v bound) then
                    warn (Unbound_naf (r, warn_name v)))
                (Literal.vars inner)
          | None -> ());
          scan (bound @ Literal.vars b) rest
    in
    scan head_arg_vars r.Rule.body
  in
  List.iter check_rule rules;
  List.rev !warnings

let pp_warning fmt = function
  | Unsafe_head_var (r, v) ->
      Format.fprintf fmt
        "head variable %s of rule `%a` is not bound by the body (unusable \
         in forward chaining)"
        v Rule.pp r
  | Unbound_authority (r, v) ->
      Format.fprintf fmt
        "authority variable %s of rule `%a` may be unbound at evaluation \
         time (floundering)"
        v Rule.pp r
  | Unbound_naf (r, v) ->
      Format.fprintf fmt
        "variable %s under `not` in rule `%a` may be unbound at evaluation \
         time (floundering NAF)"
        v Rule.pp r

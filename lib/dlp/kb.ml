module Key = struct
  type t = Sym.t * int

  let compare (p1, a1) (p2, a2) =
    let c = Int.compare p1 p2 in
    if c <> 0 then c else Int.compare a1 a2
end

module M = Map.Make (Key)

(* First-argument index key: a small sum over interned ids — exact,
   allocation-free comparisons, no string building. *)
type akey =
  | KStr of Sym.t
  | KInt of int
  | KAtom of Sym.t
  | KComp of Sym.t * int

module AK = Map.Make (struct
  type t = akey

  let compare a b =
    match (a, b) with
    | KStr x, KStr y | KInt x, KInt y | KAtom x, KAtom y -> Int.compare x y
    | KComp (f, n), KComp (g, m) ->
        let c = Int.compare f g in
        if c <> 0 then c else Int.compare n m
    | KStr _, _ -> -1
    | _, KStr _ -> 1
    | KInt _, _ -> -1
    | _, KInt _ -> 1
    | KAtom _, _ -> -1
    | _, KAtom _ -> 1
end)

(* Entries carry a sequence number so that [rules]/[matching] can restore
   global insertion order; buckets keep entries in reverse order.  Rules are
   compiled once at insertion: the hot path resolves against the compiled
   form and never re-processes the source rule. *)
type entry = int * Rule.compiled

type bucket = {
  all : entry list;
  by_first : entry list AK.t;  (* first-argument key -> entries *)
  var_first : entry list;  (* heads whose first argument is a variable *)
}

type t = { buckets : bucket M.t; next : int; indexing : bool }

let empty = { buckets = M.empty; next = 0; indexing = true }
let empty_linear = { buckets = M.empty; next = 0; indexing = false }
let empty_bucket = { all = []; by_first = AK.empty; var_first = [] }

(* Index key of a term in head position: constants and functors are
   discriminating, variables are not ([None]). *)
let arg_key = function
  | Term.Var _ -> None
  | Term.Str s -> Some (KStr s)
  | Term.Int i -> Some (KInt i)
  | Term.Atom a -> Some (KAtom a)
  | Term.Compound (f, args) -> Some (KComp (f, List.length args))

let first_arg (l : Literal.t) =
  match l.Literal.args with [] -> None | a :: _ -> Some a

let lit_key (l : Literal.t) = (Sym.intern l.Literal.pred, Literal.arity l)

let mem r kb =
  match M.find_opt (lit_key r.Rule.head) kb.buckets with
  | None -> false
  | Some bucket ->
      List.exists (fun (_, c) -> Rule.equal r (Rule.source c)) bucket.all

let add r kb =
  if mem r kb then kb
  else begin
    let key = lit_key r.Rule.head in
    let bucket = Option.value ~default:empty_bucket (M.find_opt key kb.buckets) in
    let entry = (kb.next, Rule.compile r) in
    let bucket = { bucket with all = entry :: bucket.all } in
    let bucket =
      match Option.map arg_key (first_arg r.Rule.head) with
      | None | Some None ->
          (* no arguments, or a variable first argument *)
          { bucket with var_first = entry :: bucket.var_first }
      | Some (Some k) ->
          let prev = Option.value ~default:[] (AK.find_opt k bucket.by_first) in
          { bucket with by_first = AK.add k (entry :: prev) bucket.by_first }
    in
    { kb with buckets = M.add key bucket kb.buckets; next = kb.next + 1 }
  end

let add_list rs kb = List.fold_left (fun kb r -> add r kb) kb rs

let remove r kb =
  let key = lit_key r.Rule.head in
  match M.find_opt key kb.buckets with
  | None -> kb
  | Some bucket ->
      let drop =
        List.filter (fun (_, c) -> not (Rule.equal r (Rule.source c)))
      in
      let bucket =
        {
          all = drop bucket.all;
          by_first = AK.map drop bucket.by_first;
          var_first = drop bucket.var_first;
        }
      in
      {
        kb with
        buckets =
          (if bucket.all = [] then M.remove key kb.buckets
           else M.add key bucket kb.buckets);
      }

let entries_in_order entries =
  List.sort (fun (i, _) (j, _) -> Int.compare i j) entries
  |> List.map (fun (_, c) -> Rule.source c)

let find key kb =
  let pred, arity = key in
  match M.find_opt (Sym.intern pred, arity) kb.buckets with
  | None -> []
  | Some bucket -> entries_in_order bucket.all

(* Merge two reverse-(descending-seq-)ordered entry lists, still
   descending; [matching] then reverses once into insertion order —
   no per-call sort. *)
let rec merge_desc a b =
  match (a, b) with
  | [], l | l, [] -> l
  | ((i, _) as x) :: a', ((j, _) as y) :: b' ->
      if i > j then x :: merge_desc a' b else y :: merge_desc a b'

let matching_entries lit kb =
  match M.find_opt (lit_key lit) kb.buckets with
  | None -> []
  | Some bucket ->
      if not kb.indexing then bucket.all
      else begin
        match Option.map arg_key (first_arg lit) with
        | None | Some None -> bucket.all
        | Some (Some k) ->
            let indexed =
              Option.value ~default:[] (AK.find_opt k bucket.by_first)
            in
            merge_desc indexed bucket.var_first
      end

let matching lit kb =
  List.rev_map (fun (_, c) -> Rule.source c) (matching_entries lit kb)

let matching_compiled lit kb =
  List.rev_map snd (matching_entries lit kb)

let rules kb =
  M.fold (fun _ bucket acc -> List.rev_append bucket.all acc) kb.buckets []
  |> entries_in_order

let size kb = M.fold (fun _ bucket n -> n + List.length bucket.all) kb.buckets 0
let fold f kb init = List.fold_left (fun acc r -> f r acc) init (rules kb)
let signed_rules kb = List.filter Rule.is_signed (rules kb)

let of_string ?(indexing = true) src =
  add_list (Parser.parse_program src) (if indexing then empty else empty_linear)

let union a b = fold add b a

let pp fmt kb =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
    Rule.pp fmt (rules kb)

module Key = struct
  type t = Sym.t * int

  let compare (p1, a1) (p2, a2) =
    let c = Int.compare p1 p2 in
    if c <> 0 then c else Int.compare a1 a2
end

module M = Map.Make (Key)
module IM = Map.Make (Int)
module FM = Map.Make (Key)

(* Entries carry a sequence number so that [rules]/[matching] can restore
   global insertion order; buckets keep entries in reverse order.  Rules are
   compiled once at insertion: the hot path resolves against the compiled
   form and never re-processes the source rule.

   Facts and proper rules live in separate lists (the solver tries facts
   first, so [matching_parts] never partitions), and two first-argument
   indexes serve point lookups: non-compound ground first arguments key on
   their hash-consed ground id ({!Gterm} — one int map lookup for the
   million-fact workloads), compound first arguments on their
   functor/arity (a compound goal must meet every same-functor head, ground
   or not, exactly as an unindexed scan would pair them). *)
type entry = int * Rule.compiled

type bucket = {
  facts : entry list;  (* reverse insertion order *)
  proper : entry list;
  by_first : entry list IM.t;  (* ground (non-compound) first arg, by gid *)
  by_functor : entry list FM.t;  (* compound first arg, by functor/arity *)
  var_first : entry list;  (* heads whose first argument is a variable *)
}

type t = { buckets : bucket M.t; next : int; indexing : bool }

let empty = { buckets = M.empty; next = 0; indexing = true }
let empty_linear = { buckets = M.empty; next = 0; indexing = false }

let empty_bucket =
  {
    facts = [];
    proper = [];
    by_first = IM.empty;
    by_functor = FM.empty;
    var_first = [];
  }

(* Index class of a head's first argument. *)
type hkey = Hvar | Hground of int | Hfunctor of Sym.t * int

let head_key (l : Literal.t) =
  match l.Literal.args with
  | [] -> Hvar
  | a :: _ -> (
      match a with
      | Term.Var _ -> Hvar
      | Term.Atom a -> Hground (Gterm.of_atom a)
      | Term.Str s -> Hground (Gterm.of_str s)
      | Term.Int i -> Hground (Gterm.of_int i)
      | Term.Compound (f, args) -> Hfunctor (f, List.length args))

(* Index key of a goal's first argument (as given — resolved by the
   caller); {!Flat.goal_first_key} computes the same key from a flat
   goal. *)
let goal_key (l : Literal.t) =
  match l.Literal.args with
  | [] -> Flat.Kany
  | a :: _ -> (
      match a with
      | Term.Var _ -> Flat.Kany
      | Term.Atom a -> Flat.Kground (Gterm.of_atom a)
      | Term.Str s -> Flat.Kground (Gterm.of_str s)
      | Term.Int i -> Flat.Kground (Gterm.of_int i)
      | Term.Compound (f, args) -> Flat.Kfunctor (f, List.length args))

let first_sublist bucket (l : Literal.t) =
  match head_key l with
  | Hvar -> bucket.var_first
  | Hground g -> Option.value ~default:[] (IM.find_opt g bucket.by_first)
  | Hfunctor (f, n) ->
      Option.value ~default:[] (FM.find_opt (f, n) bucket.by_functor)

let lit_key (l : Literal.t) = (Sym.intern l.Literal.pred, Literal.arity l)

(* Membership via the first-argument index: a structurally equal rule has
   the same head, hence the same index class — never a full bucket scan,
   so bulk insertion of n facts is O(n log n), not O(n^2). *)
let mem r kb =
  match M.find_opt (lit_key r.Rule.head) kb.buckets with
  | None -> false
  | Some bucket ->
      List.exists
        (fun (_, c) -> Rule.equal r (Rule.source c))
        (first_sublist bucket r.Rule.head)

let add r kb =
  if mem r kb then kb
  else begin
    let key = lit_key r.Rule.head in
    let bucket = Option.value ~default:empty_bucket (M.find_opt key kb.buckets) in
    let entry = (kb.next, Rule.compile r) in
    let bucket =
      if Rule.is_fact r then { bucket with facts = entry :: bucket.facts }
      else { bucket with proper = entry :: bucket.proper }
    in
    let bucket =
      match head_key r.Rule.head with
      | Hvar -> { bucket with var_first = entry :: bucket.var_first }
      | Hground g ->
          let prev = Option.value ~default:[] (IM.find_opt g bucket.by_first) in
          { bucket with by_first = IM.add g (entry :: prev) bucket.by_first }
      | Hfunctor (f, n) ->
          let prev =
            Option.value ~default:[] (FM.find_opt (f, n) bucket.by_functor)
          in
          {
            bucket with
            by_functor = FM.add (f, n) (entry :: prev) bucket.by_functor;
          }
    in
    { kb with buckets = M.add key bucket kb.buckets; next = kb.next + 1 }
  end

let add_list rs kb = List.fold_left (fun kb r -> add r kb) kb rs

let remove r kb =
  let key = lit_key r.Rule.head in
  match M.find_opt key kb.buckets with
  | None -> kb
  | Some bucket ->
      let drop =
        List.filter (fun (_, c) -> not (Rule.equal r (Rule.source c)))
      in
      let bucket =
        {
          facts = drop bucket.facts;
          proper = drop bucket.proper;
          by_first = IM.map drop bucket.by_first;
          by_functor = FM.map drop bucket.by_functor;
          var_first = drop bucket.var_first;
        }
      in
      {
        kb with
        buckets =
          (if bucket.facts = [] && bucket.proper = [] then
             M.remove key kb.buckets
           else M.add key bucket kb.buckets);
      }

(* Merge two reverse-(descending-seq-)ordered entry lists, still
   descending; [matching] then reverses once into insertion order —
   no per-call sort. *)
let rec merge_desc a b =
  match (a, b) with
  | [], l | l, [] -> l
  | ((i, _) as x) :: a', ((j, _) as y) :: b' ->
      if i > j then x :: merge_desc a' b else y :: merge_desc a b'

let bucket_all bucket = merge_desc bucket.facts bucket.proper

let entries_in_order entries =
  List.sort (fun (i, _) (j, _) -> Int.compare i j) entries
  |> List.map (fun (_, c) -> Rule.source c)

let find key kb =
  let pred, arity = key in
  match M.find_opt (Sym.intern pred, arity) kb.buckets with
  | None -> []
  | Some bucket -> entries_in_order (bucket_all bucket)

(* Candidate entries for a goal, in descending-seq order. *)
let entries_for bucket fkey indexing =
  if not indexing then bucket_all bucket
  else
    match fkey with
    | Flat.Kany -> bucket_all bucket
    | Flat.Kground g ->
        merge_desc
          (Option.value ~default:[] (IM.find_opt g bucket.by_first))
          bucket.var_first
    | Flat.Kfunctor (f, n) ->
        merge_desc
          (Option.value ~default:[] (FM.find_opt (f, n) bucket.by_functor))
          bucket.var_first

let matching_entries lit kb =
  match M.find_opt (lit_key lit) kb.buckets with
  | None -> []
  | Some bucket -> entries_for bucket (goal_key lit) kb.indexing

let matching lit kb =
  List.rev_map (fun (_, c) -> Rule.source c) (matching_entries lit kb)

let matching_compiled lit kb = List.rev_map snd (matching_entries lit kb)

let rev_compiled entries = List.rev_map snd entries

let matching_parts key fkey kb =
  match M.find_opt key kb.buckets with
  | None -> ([], [])
  | Some bucket ->
      if (not kb.indexing) || fkey = Flat.Kany then
        (rev_compiled bucket.facts, rev_compiled bucket.proper)
      else begin
        (* Split the (small) indexed candidate list; descending input,
           prepending output: ascending insertion order restored. *)
        let rec split fs ps = function
          | [] -> (fs, ps)
          | (_, c) :: rest ->
              if Rule.compiled_is_fact c then split (c :: fs) ps rest
              else split fs (c :: ps) rest
        in
        split [] [] (entries_for bucket fkey true)
      end

let rules kb =
  M.fold (fun _ bucket acc -> List.rev_append (bucket_all bucket) acc)
    kb.buckets []
  |> entries_in_order

let size kb =
  M.fold
    (fun _ bucket n -> n + List.length bucket.facts + List.length bucket.proper)
    kb.buckets 0

let fold f kb init = List.fold_left (fun acc r -> f r acc) init (rules kb)
let signed_rules kb = List.filter Rule.is_signed (rules kb)

let of_string ?(indexing = true) src =
  add_list (Parser.parse_program src) (if indexing then empty else empty_linear)

let union a b = fold add b a

let pp fmt kb =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
    Rule.pp fmt (rules kb)

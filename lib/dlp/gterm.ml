(* Hash-consed ground terms: a process-global append-only table mapping
   each distinct ground term to a dense non-negative id, and back to one
   canonical boxed term.  Like the symbol interner, ids are never reused,
   so a ground id is valid for the lifetime of the process.

   Atoms and strings are keyed by their (already dense) symbol id through a
   direct-indexed array; integers and compounds go through hash tables.  A
   compound's key is the int array [|functor; arg ids...|], so structural
   equality of ground compounds reduces to key equality over ids. *)

let dummy = Term.Int 0
let terms = ref (Array.make 1024 dummy)
let size = ref 0

let push t =
  let id = !size in
  if id = Array.length !terms then begin
    let bigger = Array.make (2 * id) dummy in
    Array.blit !terms 0 bigger 0 id;
    terms := bigger
  end;
  !terms.(id) <- t;
  size := id + 1;
  id

let term id = !terms.(id)
let count () = !size

(* Symbol-indexed id arrays for atoms and strings; [-1] = not interned. *)

let grow_ids arr s =
  let cap = max (2 * Array.length !arr) (s + 1) in
  let bigger = Array.make cap (-1) in
  Array.blit !arr 0 bigger 0 (Array.length !arr);
  arr := bigger

let atom_ids = ref (Array.make 256 (-1))
let str_ids = ref (Array.make 256 (-1))

let of_sym ids mk s =
  if s >= Array.length !ids then grow_ids ids s;
  let id = !ids.(s) in
  if id >= 0 then id
  else begin
    let id = push (mk s) in
    !ids.(s) <- id;
    id
  end

let of_atom s = of_sym atom_ids (fun s -> Term.Atom s) s
let of_str s = of_sym str_ids (fun s -> Term.Str s) s
let int_ids : (int, int) Hashtbl.t = Hashtbl.create 256

let of_int i =
  match Hashtbl.find_opt int_ids i with
  | Some id -> id
  | None ->
      let id = push (Term.Int i) in
      Hashtbl.add int_ids i id;
      id

let comp_ids : (int array, int) Hashtbl.t = Hashtbl.create 256

let of_comp f arg_ids =
  let key = Array.of_list (f :: arg_ids) in
  match Hashtbl.find_opt comp_ids key with
  | Some id -> id
  | None ->
      (* Canonical boxed form: shares the canonical subterms. *)
      let id = push (Term.Compound (f, List.map term arg_ids)) in
      Hashtbl.add comp_ids key id;
      id

let rec of_term = function
  | Term.Var _ -> None
  | Term.Atom a -> Some (of_atom a)
  | Term.Str s -> Some (of_str s)
  | Term.Int i -> Some (of_int i)
  | Term.Compound (f, args) -> (
      match arg_ids_of of_term args with
      | None -> None
      | Some ids -> Some (of_comp f ids))

and arg_ids_of f args =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | x :: rest -> (
        match f x with Some i -> go (i :: acc) rest | None -> None)
  in
  go [] args

let rec resolve_id st t =
  match Store.walk st t with
  | Term.Var _ -> None
  | Term.Atom a -> Some (of_atom a)
  | Term.Str s -> Some (of_str s)
  | Term.Int i -> Some (of_int i)
  | Term.Compound (f, args) -> (
      match arg_ids_of (resolve_id st) args with
      | None -> None
      | Some ids -> Some (of_comp f ids))

(* Mutable trailed binding store: the WAM-style core of the resolution hot
   path.  Binding writes a cell and pushes the variable id on the trail;
   backtracking pops the trail back to a mark, so a failed unification costs
   exactly the bindings it made — no persistent maps, no copying.

   Cells live in two arrays: [named] is indexed directly by named-variable
   id, and [fresh] by the fresh counter offset [k - k_base], where [k_base]
   is the global fresh counter at store creation — fresh variables born
   during this solve land in the array without translation.  "Foreign" fresh
   variables (escaped from an earlier solve, e.g. inside a learned rule that
   was added to the KB) predate [k_base] and fall back to a small hash
   table. *)

type t = {
  mutable named : Term.t array;
  nslots : (int, int) Hashtbl.t;
  mutable nnext : int;
  mutable fresh : Term.t array;
  k_base : int;
  foreign : (int, Term.t) Hashtbl.t;
  mutable trail : int array;
  mutable trail_len : int;
  (* Display names for fresh variables, recorded per instantiation
     ([note_names]): source variable name, per-solve application ordinal,
     and a memoised interned id for the [name~ordinal] display variable.
     Indexed like [fresh]; [""] / [-1] mean "unnamed". *)
  mutable nstr : string array;
  mutable nord : int array;
  mutable ndisp : int array;
  mutable nhi : int;  (* slots below this may carry a name *)
}

(* Distinguished unbound sentinel, compared physically. *)
let unbound : Term.t = Term.Var (-1)

(* Named-variable ids are global (the interner hands them out for the
   lifetime of the process), so they cannot index [named] directly: a
   goal variable interned late — after other subsystems have interned
   thousands of display names — would force every solve that binds it to
   allocate an array of that id's magnitude.  [nslots] remaps each global
   id touched by this solve to a dense local slot instead; a solve only
   ever binds its own goal variables (compiled rules use fresh slots), so
   the array stays small regardless of global interner traffic. *)
let create () =
  {
    named = Array.make 64 unbound;
    nslots = Hashtbl.create 16;
    nnext = 0;
    fresh = Array.make 64 unbound;
    k_base = Term.fresh_mark ();
    foreign = Hashtbl.create 8;
    trail = Array.make 64 (-1);
    trail_len = 0;
    nstr = [||];
    nord = [||];
    ndisp = [||];
    nhi = 0;
  }

let grow_to arr n =
  let cap = max (2 * Array.length arr) (n + 1) in
  let bigger = Array.make cap unbound in
  Array.blit arr 0 bigger 0 (Array.length arr);
  bigger

let lookup st v =
  if Term.is_fresh v then begin
    let slot = max_int - 1 - v - st.k_base in
    if slot >= 0 then
      if slot < Array.length st.fresh then st.fresh.(slot) else unbound
    else
      match Hashtbl.find_opt st.foreign v with Some t -> t | None -> unbound
  end
  else
    (* [find] + handler, not [find_opt]: this is the walk hot path and the
       option box would cost an allocation per dereference. *)
    match Hashtbl.find st.nslots v with
    | slot -> st.named.(slot)
    | exception Not_found -> unbound

let set_cell st v t =
  if Term.is_fresh v then begin
    let slot = max_int - 1 - v - st.k_base in
    if slot >= 0 then begin
      if slot >= Array.length st.fresh then st.fresh <- grow_to st.fresh slot;
      st.fresh.(slot) <- t
    end
    else if t == unbound then Hashtbl.remove st.foreign v
    else Hashtbl.replace st.foreign v t
  end
  else begin
    let slot =
      match Hashtbl.find st.nslots v with
      | slot -> slot
      | exception Not_found ->
          let slot = st.nnext in
          st.nnext <- slot + 1;
          Hashtbl.add st.nslots v slot;
          slot
    in
    if slot >= Array.length st.named then st.named <- grow_to st.named slot;
    st.named.(slot) <- t
  end

let bind st v t =
  set_cell st v t;
  if st.trail_len = Array.length st.trail then begin
    let bigger = Array.make (2 * st.trail_len) (-1) in
    Array.blit st.trail 0 bigger 0 st.trail_len;
    st.trail <- bigger
  end;
  st.trail.(st.trail_len) <- v;
  st.trail_len <- st.trail_len + 1

let is_bound st v = lookup st v != unbound
let mark st = st.trail_len

let undo st m =
  for i = st.trail_len - 1 downto m do
    set_cell st st.trail.(i) unbound
  done;
  st.trail_len <- m

let rec walk st t =
  match t with
  | Term.Var v ->
      let c = lookup st v in
      if c == unbound then t else walk st c
  | _ -> t

let rec resolve st t =
  match walk st t with
  | Term.Compound (f, args) -> Term.Compound (f, List.map (resolve st) args)
  | t' -> t'

(* ------------------------------------------------------------------ *)
(* Display names *)

let note_names st k0 (names : string array) ord =
  let n = Array.length names in
  let lo = k0 - st.k_base in
  if lo >= 0 && n > 0 then begin
    if lo + n > Array.length st.nstr then begin
      let cap = max (2 * Array.length st.nstr) (max 64 (lo + n)) in
      let ns = Array.make cap "" in
      let no = Array.make cap (-1) in
      let nd = Array.make cap (-1) in
      Array.blit st.nstr 0 ns 0 (Array.length st.nstr);
      Array.blit st.nord 0 no 0 (Array.length st.nord);
      Array.blit st.ndisp 0 nd 0 (Array.length st.ndisp);
      st.nstr <- ns;
      st.nord <- no;
      st.ndisp <- nd
    end;
    for j = 0 to n - 1 do
      st.nstr.(lo + j) <- names.(j);
      st.nord.(lo + j) <- ord
    done;
    if lo + n > st.nhi then st.nhi <- lo + n
  end

(* Interned id of the [name~ordinal] display variable for a named fresh
   slot, memoised per slot. *)
let display_id st slot =
  let d = st.ndisp.(slot) in
  if d >= 0 then d
  else begin
    let d =
      Term.var_id (st.nstr.(slot) ^ "~" ^ string_of_int st.nord.(slot))
    in
    st.ndisp.(slot) <- d;
    d
  end

let display_var st v =
  if Term.is_fresh v then begin
    let slot = max_int - 1 - v - st.k_base in
    if slot >= 0 && slot < st.nhi && String.length st.nstr.(slot) > 0 then
      Term.Var (display_id st slot)
    else Term.Var v
  end
  else Term.Var v

(* [resolve], with leftover named fresh variables converted to their
   [name~ordinal] display form; used when a term escapes the solver (wire
   messages, answers, traces). *)
let rec display st t =
  match walk st t with
  | Term.Compound (f, args) -> Term.Compound (f, List.map (display st) args)
  | Term.Var v -> display_var st v
  | t' -> t'

(* Materialise the trail as a persistent substitution.  Every binding is
   fully resolved through the store, so no reference to a trailed cell
   survives into the result: answers stay valid after backtracking. *)
let to_subst st =
  let s = ref Subst.empty in
  for i = 0 to st.trail_len - 1 do
    let v = st.trail.(i) in
    s := Subst.bind_id v (resolve st (Term.Var v)) !s
  done;
  !s

(* Answer-boundary substitution: the trail bindings, fully resolved with
   display names.  O(trail) per answer — trace snapshots are instantiated
   against the store directly (Sld.display_trace), so nothing here walks
   every fresh slot of the solve. *)
let answer_subst st =
  let s = ref Subst.empty in
  for i = 0 to st.trail_len - 1 do
    let v = st.trail.(i) in
    s := Subst.bind_id v (display st (Term.Var v)) !s
  done;
  !s

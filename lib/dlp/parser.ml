exception Error of string * int * int

type state = { mutable toks : Lexer.located list }

let peek st =
  match st.toks with [] -> assert false | t :: _ -> t

let next st =
  match st.toks with
  | [] -> assert false
  | t :: rest ->
      st.toks <- rest;
      t

let fail_at (t : Lexer.located) msg = raise (Error (msg, t.line, t.col))

let expect st token msg =
  let t = next st in
  if t.Lexer.token <> token then
    fail_at t
      (Format.asprintf "expected %s, found %a" msg Lexer.pp_token t.Lexer.token)

let rec parse_term_st st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.VAR v -> Term.var v
  | Lexer.STRING s -> Term.str s
  | Lexer.INT i -> Term.Int i
  | Lexer.IDENT name -> (
      match (peek st).Lexer.token with
      | Lexer.LPAREN ->
          ignore (next st);
          let args = parse_term_list st in
          expect st Lexer.RPAREN ")";
          Term.compound name args
      | _ -> Term.atom name)
  | tok -> fail_at t (Format.asprintf "expected term, found %a" Lexer.pp_token tok)

and parse_term_list st =
  let first = parse_term_st st in
  match (peek st).Lexer.token with
  | Lexer.COMMA ->
      ignore (next st);
      first :: parse_term_list st
  | _ -> [ first ]

(* Authority chain: zero or more '@ term'. *)
let parse_auth_chain st =
  let rec go acc =
    match (peek st).Lexer.token with
    | Lexer.AT ->
        ignore (next st);
        go (parse_term_st st :: acc)
    | _ -> List.rev acc
  in
  go []

let literal_of_term t auth =
  match t with
  | Term.Atom p -> Literal.make ~auth (Sym.name p) []
  | Term.Compound (p, args) -> Literal.make ~auth (Sym.name p) args
  | Term.Var _ | Term.Str _ | Term.Int _ -> invalid_arg "literal_of_term"

let is_comparison op = List.mem op [ "="; "!="; "<"; "<="; ">"; ">=" ]
let is_arith op = List.mem op [ "+"; "-"; "*"; "/" ]

(* Arithmetic expressions are allowed as comparison operands:
   [Price < Limit * 2 + 100].  Standard precedence, left associative;
   parenthesised sub-expressions are accepted. *)
let rec parse_arith st =
  let lhs = parse_factor st in
  let rec go lhs =
    match (peek st).Lexer.token with
    | Lexer.OP (("+" | "-") as op) ->
        ignore (next st);
        go (Term.compound op [ lhs; parse_factor st ])
    | _ -> lhs
  in
  go lhs

and parse_factor st =
  let lhs = parse_operand st in
  let rec go lhs =
    match (peek st).Lexer.token with
    | Lexer.OP (("*" | "/") as op) ->
        ignore (next st);
        go (Term.compound op [ lhs; parse_operand st ])
    | _ -> lhs
  in
  go lhs

and parse_operand st =
  match (peek st).Lexer.token with
  | Lexer.LPAREN ->
      ignore (next st);
      let e = parse_arith st in
      expect st Lexer.RPAREN ")";
      e
  | _ -> parse_term_st st

(* A body/context element: a literal, a comparison
   [arith op arith], or a negation-as-failure literal [not lit] (the
   keyword [not] followed by a literal; [not(...)] with an immediate
   parenthesis is the ordinary predicate named "not"). *)
let rec parse_bodylit st =
  match st.toks with
  | { Lexer.token = Lexer.IDENT "not"; _ }
    :: { Lexer.token = Lexer.IDENT _ | Lexer.STRING _ | Lexer.VAR _ | Lexer.INT _; _ }
    :: _ ->
      ignore (next st);
      let inner = parse_bodylit st in
      Literal.make "not" [ Literal.to_term inner ]
  | _ -> (
      let t0 = peek st in
      let lhs = parse_arith st in
      match (peek st).Lexer.token with
      | Lexer.OP op when is_comparison op ->
          ignore (next st);
          let rhs = parse_arith st in
          Literal.make op [ lhs; rhs ]
      | _ -> (
          match lhs with
          | Term.Compound (op, [ _; _ ]) when is_arith (Sym.name op) ->
              fail_at t0 "an arithmetic expression is not a literal"
          | Term.Atom _ | Term.Compound _ ->
              let auth = parse_auth_chain st in
              literal_of_term lhs auth
          | Term.Var _ | Term.Str _ | Term.Int _ ->
              fail_at t0 "expected a literal or a comparison"))

let parse_conj st =
  let rec go acc =
    let l = parse_bodylit st in
    match (peek st).Lexer.token with
    | Lexer.COMMA ->
        ignore (next st);
        go (l :: acc)
    | _ -> List.rev (l :: acc)
  in
  go []

(* 'true' denotes the empty (public) context. *)
let parse_ctx st =
  match (peek st).Lexer.token with
  | Lexer.IDENT "true" -> (
      (* [true] alone, or the first of several context literals if followed
         by an argument list -- 'true' is not a legal predicate name here. *)
      ignore (next st);
      match (peek st).Lexer.token with
      | Lexer.LPAREN -> fail_at (peek st) "'true' cannot take arguments"
      | _ -> [])
  | _ -> parse_conj st

let parse_signers st =
  expect st Lexer.LBRACKET "[";
  let rec go acc =
    let t = next st in
    match t.Lexer.token with
    | Lexer.STRING s -> (
        match (peek st).Lexer.token with
        | Lexer.COMMA ->
            ignore (next st);
            go (s :: acc)
        | _ -> List.rev (s :: acc))
    | tok ->
        fail_at t
          (Format.asprintf "expected signer string, found %a" Lexer.pp_token tok)
  in
  let signers = go [] in
  expect st Lexer.RBRACKET "]";
  signers

let parse_clause_st st =
  let t0 = peek st in
  let head_term = parse_term_st st in
  let head =
    match head_term with
    | Term.Atom _ | Term.Compound _ ->
        literal_of_term head_term (parse_auth_chain st)
    | Term.Var _ | Term.Str _ | Term.Int _ ->
        fail_at t0 "rule head must be a literal"
  in
  let head_ctx =
    match (peek st).Lexer.token with
    | Lexer.DOLLAR ->
        ignore (next st);
        Some (parse_ctx st)
    | _ -> None
  in
  let rule_ctx = ref None and signer = ref [] and body = ref [] in
  (match (peek st).Lexer.token with
  | Lexer.ARROW ->
      ignore (next st);
      (match (peek st).Lexer.token with
      | Lexer.LBRACE ->
          ignore (next st);
          rule_ctx := Some (parse_ctx st);
          expect st Lexer.RBRACE "}"
      | _ -> ());
      (match (peek st).Lexer.token with
      | Lexer.SIGNEDBY ->
          ignore (next st);
          signer := parse_signers st
      | _ -> ());
      (match (peek st).Lexer.token with
      | Lexer.DOT -> ()
      | _ -> body := parse_conj st)
  | _ -> ());
  (match (peek st).Lexer.token with
  | Lexer.SIGNEDBY ->
      ignore (next st);
      if !signer <> [] then fail_at (peek st) "duplicate signedBy"
      else signer := parse_signers st
  | _ -> ());
  expect st Lexer.DOT ".";
  Rule.make ?head_ctx ?rule_ctx:!rule_ctx ~signer:!signer head !body

let with_state src f =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error (msg, l, c) -> raise (Error (msg, l, c))
  in
  f { toks }

let parse_program src =
  with_state src (fun st ->
      let rec go acc =
        match (peek st).Lexer.token with
        | Lexer.EOF -> List.rev acc
        | _ -> go (parse_clause_st st :: acc)
      in
      go [])

let parse_rule src =
  with_state src (fun st ->
      let r = parse_clause_st st in
      expect st Lexer.EOF "end of input";
      r)

let parse_literal src =
  with_state src (fun st ->
      let l = parse_bodylit st in
      expect st Lexer.EOF "end of input";
      l)

let parse_query src =
  with_state src (fun st ->
      let ls = parse_conj st in
      expect st Lexer.EOF "end of input";
      ls)

let parse_term src =
  with_state src (fun st ->
      let t = parse_term_st st in
      expect st Lexer.EOF "end of input";
      t)

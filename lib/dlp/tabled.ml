module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer

exception Unsupported of string

let m_queries = Obs.counter "tabled.queries"
let m_rounds = Obs.counter "tabled.rounds"
let m_table_hits = Obs.counter "tabled.table_hits"
let m_table_misses = Obs.counter "tabled.table_misses"
let m_answers = Obs.counter "tabled.answers"
let h_tables = Obs.histogram "tabled.tables_per_query"

type entry = {
  call : Literal.t;  (* the generalised call this table answers *)
  mutable answers : Literal.t list;  (* instances, reverse order *)
  mutable keys : (string, unit) Hashtbl.t;  (* canonical answer forms *)
}

type stats = { tables : int }

let skeleton lit = Rule.canonical (Rule.fact lit)

let strip_self_auth ~self lit =
  let rec go l =
    match Literal.pop_authority l with
    | Some (inner, Term.Str a) when String.equal a self -> go inner
    | Some (inner, Term.Atom a) when String.equal a self -> go inner
    | Some _ | None -> l
  in
  go lit

let solve_body ?(max_rounds = 10_000) ?(max_answers = 100_000)
    ?(externals = fun _ -> None) ?(bindings = []) ~self kb goals =
  (* Reject NAF anywhere in the program or query up front. *)
  let check_naf l =
    if Option.is_some (Literal.naf_inner l) then
      raise (Unsupported "negation as failure under tabling")
  in
  List.iter check_naf goals;
  Kb.fold
    (fun r () -> List.iter check_naf r.Rule.body)
    kb ();
  let initial =
    List.fold_left
      (fun s (v, t) -> if String.equal v "Self" then s else Subst.bind v t s)
      Subst.empty bindings
    |> Subst.bind "Self" (Term.Str self)
  in
  (* Encode the conjunction as a synthetic rule so one table answers it. *)
  let qvars =
    List.concat_map Literal.vars goals
    |> List.filter (fun v -> not (Term.is_pseudo v))
    |> List.sort_uniq String.compare
  in
  let query_head =
    Literal.make "__query__" (List.map (fun v -> Term.Var v) qvars)
  in
  let kb = Kb.add (Rule.make query_head goals) kb in
  let tables : (string, entry) Hashtbl.t = Hashtbl.create 64 in
  let total_answers = ref 0 in
  let changed = ref true in
  let get_table lit =
    let key = skeleton lit in
    match Hashtbl.find_opt tables key with
    | Some e ->
        Metric.incr m_table_hits;
        e
    | None ->
        Metric.incr m_table_misses;
        let e = { call = lit; answers = []; keys = Hashtbl.create 8 } in
        Hashtbl.add tables key e;
        changed := true;
        e
  in
  let add_answer e inst =
    let key = skeleton inst in
    if not (Hashtbl.mem e.keys key) then begin
      Hashtbl.add e.keys key ();
      e.answers <- inst :: e.answers;
      incr total_answers;
      Metric.incr m_answers;
      changed := true
    end
  in
  let fresh = ref 0 in
  (* One re-evaluation of a table: resolve its call against every rule,
     solving body literals from (and creating) tables. *)
  let eval_entry e =
    let resolve_with rule =
      incr fresh;
      let r = Rule.rename ~suffix:(Printf.sprintf "~t%d" !fresh) rule in
      let heads =
        r.Rule.head
        ::
        (if Rule.is_signed r then
           List.map
             (fun a -> Literal.push_authority r.Rule.head (Term.Str a))
             r.Rule.signer
         else [])
      in
      let rec body goals subst k =
        match goals with
        | [] -> k subst
        | b :: rest -> (
            let b = strip_self_auth ~self (Literal.apply subst b) in
            match Builtin.eval b subst with
            | Some substs -> List.iter (fun s' -> body rest s' k) substs
            | None -> (
                match externals (Literal.key b) with
                | Some f -> List.iter (fun s' -> body rest s' k) (f b subst)
                | None ->
                    let sub = get_table b in
                    List.iter
                      (fun ans ->
                        (* Rename the stored answer apart before unifying:
                           its free variables are local to its table. *)
                        incr fresh;
                        let ans =
                          Literal.rename
                            ~suffix:(Printf.sprintf "~a%d" !fresh)
                            ans
                        in
                        match Literal.unify b ans subst with
                        | Some s' -> body rest s' k
                        | None -> ())
                      sub.answers))
      in
      let try_head head =
        match Literal.unify e.call head initial with
        | None -> ()
        | Some s0 ->
            body r.Rule.body s0 (fun s ->
                add_answer e (Literal.apply s e.call))
      in
      List.iter try_head heads
    in
    List.iter resolve_with (Kb.matching e.call kb)
  in
  (* Seed with the query table and iterate to fixpoint. *)
  ignore (get_table query_head);
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds && !total_answers < max_answers do
    changed := false;
    incr rounds;
    Metric.incr m_rounds;
    (* Snapshot: entries created during the sweep are evaluated next
       round (their creation set [changed]). *)
    let snapshot = Hashtbl.fold (fun _ e acc -> e :: acc) tables [] in
    List.iter eval_entry snapshot
  done;
  (* Read answers off the query table as substitutions on [qvars]. *)
  let query_entry = get_table query_head in
  let answers =
    List.rev query_entry.answers
    |> List.filter_map (fun (inst : Literal.t) ->
           match
             List.fold_left2
               (fun acc v t ->
                 match acc with
                 | None -> None
                 | Some s -> (
                     match Subst.find v s with
                     | Some _ ->
                         acc  (* already bound consistently via unify *)
                     | None -> Some (Subst.bind v t s)))
               (Some Subst.empty) qvars inst.Literal.args
           with
           | exception Invalid_argument _ -> None
           | s -> s)
  in
  (answers, { tables = Hashtbl.length tables })

let solve_stats ?max_rounds ?max_answers ?externals ?bindings ~self kb goals =
  Metric.incr m_queries;
  let run () =
    solve_body ?max_rounds ?max_answers ?externals ?bindings ~self kb goals
  in
  let ((_, stats) as result) =
    let tracer = Obs.tracer () in
    if Otracer.enabled tracer then
      Otracer.with_span tracer
        ~attrs:
          [
            ( "goal",
              Peertrust_obs.Json.Str
                (String.concat ", " (List.map Literal.to_string goals)) );
            ("self", Peertrust_obs.Json.Str self);
          ]
        "tabled.solve" run
    else run ()
  in
  Metric.observe_int h_tables stats.tables;
  result

let solve ?max_rounds ?max_answers ?externals ?bindings ~self kb goals =
  fst
    (solve_stats ?max_rounds ?max_answers ?externals ?bindings ~self kb goals)

let provable ?max_rounds ?externals ?bindings ~self kb goals =
  solve ?max_rounds ?externals ?bindings ~self kb goals <> []

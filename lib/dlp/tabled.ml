module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer

exception Unsupported of string

let m_queries = Obs.counter "tabled.queries"
let m_rounds = Obs.counter "tabled.rounds"
let m_table_hits = Obs.counter "tabled.table_hits"
let m_table_misses = Obs.counter "tabled.table_misses"
let m_answers = Obs.counter "tabled.answers"
let h_tables = Obs.histogram "tabled.tables_per_query"

type entry = {
  call : Literal.t;  (* the generalised call this table answers *)
  mutable answers : Literal.t list;  (* instances, reverse order *)
  mutable keys : (string, unit) Hashtbl.t;  (* canonical answer forms *)
}

type stats = { tables : int }
type remote = target:string -> Literal.t -> Literal.t list

let skeleton lit = Rule.canonical (Rule.fact lit)

let peer_name_of_term = function
  | Term.Str s | Term.Atom s -> Some (Sym.name s)
  | Term.Var _ | Term.Int _ | Term.Compound _ -> None

let strip_self_auth ~self lit =
  let rec go l =
    match Literal.pop_authority l with
    | Some (inner, a) -> (
        match Term.const_name a with
        | Some n when String.equal n self -> go inner
        | Some _ | None -> l)
    | None -> l
  in
  go lit

let solve_body ?(max_rounds = 10_000) ?(max_answers = 100_000)
    ?(externals = fun _ -> None) ?remote ?(bindings = []) ~self kb goals =
  (* Reject NAF anywhere in the program or query up front. *)
  let check_naf l =
    if Option.is_some (Literal.naf_inner l) then
      raise (Unsupported "negation as failure under tabling")
  in
  List.iter check_naf goals;
  Kb.fold
    (fun r () -> List.iter check_naf r.Rule.body)
    kb ();
  (* One trailed store for the whole fixpoint; every resolution attempt is
     bracketed with mark/undo, and answers are snapshotted fully resolved. *)
  let st = Store.create () in
  let arena = Flat.arena () in
  let bind_initial v t =
    let id = Term.var_id v in
    if Store.is_bound st id then
      invalid_arg ("Subst.bind: already bound: " ^ v)
    else Store.bind st id t
  in
  List.iter
    (fun (v, t) -> if not (String.equal v "Self") then bind_initial v t)
    bindings;
  bind_initial "Self" (Term.str self);
  let merge_delta s' =
    Subst.fold_ids
      (fun v t () -> if not (Store.is_bound st v) then Store.bind st v t)
      s' ()
  in
  (* Encode the conjunction as a synthetic rule so one table answers it. *)
  let qvars =
    List.concat_map Literal.vars goals
    |> List.filter (fun v -> not (Term.is_pseudo v))
    |> List.sort_uniq Int.compare
  in
  let query_head =
    Literal.make "__query__" (List.map (fun v -> Term.Var v) qvars)
  in
  let kb = Kb.add (Rule.make query_head goals) kb in
  let tables : (string, entry) Hashtbl.t = Hashtbl.create 64 in
  let total_answers = ref 0 in
  let changed = ref true in
  let get_table lit =
    let key = skeleton lit in
    match Hashtbl.find_opt tables key with
    | Some e ->
        Metric.incr m_table_hits;
        e
    | None ->
        Metric.incr m_table_misses;
        let e = { call = lit; answers = []; keys = Hashtbl.create 8 } in
        Hashtbl.add tables key e;
        changed := true;
        e
  in
  let add_answer e inst =
    let key = skeleton inst in
    if not (Hashtbl.mem e.keys key) then begin
      Hashtbl.add e.keys key ();
      e.answers <- inst :: e.answers;
      incr total_answers;
      Metric.incr m_answers;
      changed := true
    end
  in
  (* One re-evaluation of a table: resolve its call against every rule,
     solving body literals from (and creating) tables. *)
  let eval_entry e =
    (* The store is clean (initial bindings only) between candidates —
       every resolution attempt below is mark/undo-bracketed — so the call
       flattens once for the whole entry. *)
    let fcall = Flat.flatten arena st e.call in
    let resolve_with compiled =
      let nv = Rule.nvars compiled in
      let k0 = if nv = 0 then 0 else Term.fresh_block nv in
      let rec body goals k =
        match goals with
        | [] -> k ()
        | b :: rest -> (
            let b = strip_self_auth ~self (Literal.resolve st b) in
            (* A ground foreign authority dispatches to the remote hook
               (the distributed-tabling view of the owner's table)
               instead of a local table; without a hook, behaviour is
               unchanged and the authority-qualified literal gets its own
               local table (which no local rule feeds). *)
            let remote_dispatch =
              match remote with
              | None -> None
              | Some r -> (
                  match Literal.pop_authority b with
                  | Some (inner, a) -> (
                      match peer_name_of_term a with
                      | Some name -> Some (r, name, inner)
                      | None -> None)
                  | None -> None)
            in
            match remote_dispatch with
            | Some (r, name, inner) ->
                List.iter
                  (fun inst ->
                    let inst = Literal.rename_apart inst in
                    let m = Store.mark st in
                    if Literal.unify_store st inner inst then body rest k;
                    Store.undo st m)
                  (r ~target:name (Literal.display st inner))
            | None -> (
            match Builtin.eval_store st b with
            | Some holds -> if holds then body rest k
            | None -> (
                match externals (Literal.key b) with
                | Some f ->
                    let s = Store.to_subst st in
                    List.iter
                      (fun s' ->
                        let m = Store.mark st in
                        merge_delta s';
                        body rest k;
                        Store.undo st m)
                      (f b s)
                | None ->
                    let sub = get_table b in
                    List.iter
                      (fun ans ->
                        (* Rename the stored answer apart before unifying:
                           its free variables are local to its table. *)
                        let ans = Literal.rename_apart ans in
                        let m = Store.mark st in
                        if Literal.unify_store st b ans then body rest k;
                        Store.undo st m)
                      sub.answers)))
      in
      let heads = Rule.flat_heads compiled in
      for hi = 0 to Array.length heads - 1 do
        let m = Store.mark st in
        if Flat.unify st ~k0 fcall heads.(hi) then begin
          let r = Rule.instantiate_at compiled k0 in
          body r.Rule.body (fun () -> add_answer e (Literal.resolve st e.call))
        end;
        Store.undo st m
      done
    in
    List.iter resolve_with (Kb.matching_compiled e.call kb)
  in
  (* Seed with the query table and iterate to fixpoint. *)
  ignore (get_table query_head);
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds && !total_answers < max_answers do
    changed := false;
    incr rounds;
    Metric.incr m_rounds;
    (* Snapshot: entries created during the sweep are evaluated next
       round (their creation set [changed]). *)
    let snapshot = Hashtbl.fold (fun _ e acc -> e :: acc) tables [] in
    List.iter eval_entry snapshot
  done;
  (* Read answers off the query table as substitutions on [qvars]. *)
  let query_entry = get_table query_head in
  let answers =
    List.rev query_entry.answers
    |> List.filter_map (fun (inst : Literal.t) ->
           match
             List.fold_left2
               (fun acc v t ->
                 match acc with
                 | None -> None
                 | Some s -> (
                     match Subst.find_id v s with
                     | Some _ ->
                         acc  (* already bound consistently via unify *)
                     | None -> Some (Subst.bind_id v t s)))
               (Some Subst.empty) qvars inst.Literal.args
           with
           | exception Invalid_argument _ -> None
           | s -> s)
  in
  (answers, { tables = Hashtbl.length tables })

let solve_stats ?max_rounds ?max_answers ?externals ?remote ?bindings ~self kb
    goals =
  Metric.incr m_queries;
  let run () =
    solve_body ?max_rounds ?max_answers ?externals ?remote ?bindings ~self kb
      goals
  in
  let ((_, stats) as result) =
    let tracer = Obs.tracer () in
    if Otracer.enabled tracer then
      Otracer.with_span tracer
        ~attrs:
          [
            ( "goal",
              Peertrust_obs.Json.Str
                (String.concat ", " (List.map Literal.to_string goals)) );
            ("self", Peertrust_obs.Json.Str self);
          ]
        "tabled.solve" run
    else run ()
  in
  Metric.observe_int h_tables stats.tables;
  result

let solve ?max_rounds ?max_answers ?externals ?remote ?bindings ~self kb goals
    =
  fst
    (solve_stats ?max_rounds ?max_answers ?externals ?remote ?bindings ~self kb
       goals)

let provable ?max_rounds ?externals ?bindings ~self kb goals =
  solve ?max_rounds ?externals ?bindings ~self kb goals <> []

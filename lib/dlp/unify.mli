(** First-order unification with occurs check. *)

val terms : Term.t -> Term.t -> Subst.t -> Subst.t option
(** [terms a b s] extends [s] to a most general unifier of [a] and [b], or
    returns [None] if they do not unify.  Performs the occurs check, so the
    result is always a well-founded substitution. *)

val term_lists : Term.t list -> Term.t list -> Subst.t -> Subst.t option
(** Pointwise unification of two lists; [None] if lengths differ. *)

val variant : Term.t -> Term.t -> bool
(** [variant a b] is [true] when [a] and [b] are equal up to consistent
    variable renaming; used for loop detection and tabling. *)

val one_way : Term.t -> Term.t -> Subst.t -> Subst.t option
(** [one_way pattern t s] extends [s] binding only variables of [pattern]
    so that it equals [t]; [t]'s variables are treated as constants.  Used
    for subsumption tests (is [t] an instance of [pattern]?). *)

(** {2 Trailed-store unification (hot path)}

    These bind destructively through {!Store.bind}; on failure some
    bindings may already have been made — callers bracket each attempt
    with [Store.mark]/[Store.undo]. *)

val store_terms : Store.t -> Term.t -> Term.t -> bool
val store_term_lists : Store.t -> Term.t list -> Term.t list -> bool

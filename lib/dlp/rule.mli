(** Rules (definite Horn clauses) of the PeerTrust language.

    Concrete syntax accepted by {!Parser}:

    {v
      head [$ CTX] [<- [{CTX}] [signedBy ["A",...]] body] [signedBy ["A",...]] .
    v}

    - [head_ctx] is the release policy ([$] guard) of the head literal: the
      derived literal may only be disclosed to a requester satisfying it.
    - [rule_ctx] is the release policy of the rule itself (the subscript on
      the arrow in the paper, written [<-{ctx}] here).
    - A context of [None] means the paper's default, [Requester = Self]:
      private to the local peer.  [Some []] is the explicit context [true]:
      releasable to anyone.
    - [signer] lists the authorities whose signatures the rule carries
      ([signedBy \["UIUC"\]]); credentials are signed rules with empty
      bodies. *)

type ctx = Literal.t list
(** A context: conjunction of context literals.  [Requester]/[Self] appear
    as the distinguished variables of the same names. *)

type t = {
  head : Literal.t;
  head_ctx : ctx option;
  rule_ctx : ctx option;
  body : Literal.t list;
  signer : string list;
}

val make :
  ?head_ctx:ctx ->
  ?rule_ctx:ctx ->
  ?signer:string list ->
  Literal.t ->
  Literal.t list ->
  t

val fact : ?signer:string list -> Literal.t -> t
(** A rule with an empty body. *)

val is_fact : t -> bool
val is_signed : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val apply : Subst.t -> t -> t

val display : Store.t -> t -> t
(** Resolve every literal through the store with display-name conversion
    ({!Literal.display}); for rules that escape the solver (proof traces). *)

val rename_apart : t -> t
(** Rename all (non-pseudo) variables of the rule to globally fresh ones;
    used to rename a rule apart before resolving against a goal. *)

val rename : suffix:string -> t -> t
(** Append [suffix] to every non-pseudo variable name.  Cold-path renaming
    whose result names are user-visible (reports, observability spans);
    the hot path uses compiled rules and integer fresh variables instead. *)

val vars : t -> int list

val strip_contexts : t -> t
(** Remove both contexts; the paper strips contexts from rules and literals
    when they are sent to another peer. *)

val subsumes : general:t -> specific:t -> bool
(** [subsumes ~general ~specific] is [true] when [specific] is an instance
    of [general]: same signers, and some substitution of [general]'s
    variables maps its head and body onto [specific]'s.  Contexts are
    ignored (like {!canonical}).  Used to recognise an instantiated rule in
    a proof trace as a use of a stored credential. *)

val canonical : t -> string
(** A canonical serialisation used as the signing payload for signed rules.
    Two alpha-equivalent rules share a canonical form. *)

(** {2 Compiled rules}

    A rule pre-processed for the resolution hot path: variables renumbered
    into a compiled-local block and signed head variants precomputed, so
    renaming apart is one counter bump plus a structure-sharing shift.
    Ground rules instantiate with zero allocation. *)

type compiled

val compile : t -> compiled

val source : compiled -> t
(** The original rule (as stored in the KB); traces and signatures use it. *)

val compiled_is_fact : compiled -> bool

val nvars : compiled -> int
(** Number of distinct non-pseudo variables in the rule. *)

val slot_names : compiled -> string array
(** Source display name of each compiled variable slot, in slot order; used
    to name the fresh variables of an instantiation for user-visible output
    ({!Store.note_names}). *)

val instantiate : compiled -> t * Literal.t list * int
(** A copy of the rule renamed apart with globally fresh variables, paired
    with its head variants (head plus one [head @ signer] per signature)
    and the fresh-block offset [k0] ([0] when the rule is ground). *)

val flat_heads : compiled -> Flat.head array
(** Flat forms of the head variants, in {!instantiate} order; unified
    against flat goals at a fresh-block offset ({!Flat.unify}). *)

val instantiate_at : compiled -> int -> t
(** The boxed rule shifted into an already reserved fresh-block offset
    (ignored when the rule has no variables).  With {!flat_heads} this
    lets the solver defer the boxed instantiation until a head variant
    has actually unified. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

type t = { pred : string; args : Term.t list; auth : Term.t list }

let make ?(auth = []) pred args = { pred; args; auth }
let arity l = List.length l.args
let key l = (l.pred, arity l)

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c
  else
    let c = Term.compare_lists a.args b.args in
    if c <> 0 then c else Term.compare_lists a.auth b.auth

let equal a b = compare a b = 0

let outer_authority l =
  match List.rev l.auth with [] -> None | a :: _ -> Some a

let pop_authority l =
  match List.rev l.auth with
  | [] -> None
  | a :: rest -> Some ({ l with auth = List.rev rest }, a)

let push_authority l a = { l with auth = l.auth @ [ a ] }

let apply s l =
  {
    l with
    args = List.map (Subst.apply s) l.args;
    auth = List.map (Subst.apply s) l.auth;
  }

let resolve st l =
  {
    l with
    args = List.map (Store.resolve st) l.args;
    auth = List.map (Store.resolve st) l.auth;
  }

let display st l =
  {
    l with
    args = List.map (Store.display st) l.args;
    auth = List.map (Store.display st) l.auth;
  }

let rename_with mapping l =
  {
    l with
    args = List.map (Term.rename_with mapping) l.args;
    auth = List.map (Term.rename_with mapping) l.auth;
  }

let rename_apart l = rename_with (Hashtbl.create 8) l

let shift_fresh k0 l =
  let args = Term.map_sharing (Term.shift_fresh k0) l.args in
  let auth = Term.map_sharing (Term.shift_fresh k0) l.auth in
  if args == l.args && auth == l.auth then l else { l with args; auth }

let map_vars f l =
  let args = Term.map_sharing (Term.map_vars f) l.args in
  let auth = Term.map_sharing (Term.map_vars f) l.auth in
  if args == l.args && auth == l.auth then l else { l with args; auth }

let add_vars seen acc l =
  List.iter (Term.add_vars seen acc) l.args;
  List.iter (Term.add_vars seen acc) l.auth

let vars l =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  add_vars seen acc l;
  List.rev !acc

let is_ground l =
  List.for_all Term.is_ground l.args && List.for_all Term.is_ground l.auth

let at_sym = Sym.intern "@"

let to_term l =
  let base =
    match l.args with
    | [] -> Term.atom l.pred
    | args -> Term.compound l.pred args
  in
  List.fold_left (fun t a -> Term.Compound (at_sym, [ t; a ])) base l.auth

let of_term t =
  let rec strip acc = function
    | Term.Compound (f, [ inner; a ]) when Sym.equal f at_sym ->
        strip (a :: acc) inner
    | base -> (base, acc)
  in
  match strip [] t with
  | Term.Atom p, auth -> Some { pred = Sym.name p; args = []; auth }
  | Term.Compound (p, args), auth when not (Sym.equal p at_sym) ->
      Some { pred = Sym.name p; args; auth }
  | (Term.Var _ | Term.Str _ | Term.Int _ | Term.Compound _), _ -> None

let unify a b s =
  if String.equal a.pred b.pred && arity a = arity b then
    match Unify.term_lists a.args b.args s with
    | Some s' -> Unify.term_lists a.auth b.auth s'
    | None -> None
  else None

(* Trailed variant: caller brackets with Store.mark/undo. *)
let unify_store st a b =
  String.equal a.pred b.pred
  && Unify.store_term_lists st a.args b.args
  && Unify.store_term_lists st a.auth b.auth

let negate l = { pred = "not"; args = [ to_term l ]; auth = [] }

let naf_inner l =
  match (l.pred, l.args, l.auth) with
  | "not", [ t ], [] -> of_term t
  | _, _, _ -> None

let infix_ops = [ "="; "!="; "<"; "<="; ">"; ">=" ]

let rec pp fmt l =
  match naf_inner l with
  | Some inner -> Format.fprintf fmt "not %a" pp inner
  | None -> (
      (* Built-in comparisons print infix so they re-parse. *)
      match (l.pred, l.args, l.auth) with
      | op, [ a; b ], [] when List.mem op infix_ops ->
          Format.fprintf fmt "%a %s %a" Term.pp a op Term.pp b
      | _, _, _ -> pp_plain fmt l)

and pp_plain fmt l =
  (match l.args with
  | [] -> Format.pp_print_string fmt l.pred
  | args ->
      Format.fprintf fmt "%s(%a)" l.pred
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           Term.pp)
        args);
  List.iter (fun a -> Format.fprintf fmt " @@ %a" Term.pp a) l.auth

let to_string l = Format.asprintf "%a" pp l

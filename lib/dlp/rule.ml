type ctx = Literal.t list

type t = {
  head : Literal.t;
  head_ctx : ctx option;
  rule_ctx : ctx option;
  body : Literal.t list;
  signer : string list;
}

let make ?head_ctx ?rule_ctx ?(signer = []) head body =
  { head; head_ctx; rule_ctx; body; signer }

let fact ?signer head = make ?signer head []
let is_fact r = r.body = []
let is_signed r = r.signer <> []

let compare_ctx a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some xs, Some ys -> List.compare Literal.compare xs ys

let compare a b =
  let c = Literal.compare a.head b.head in
  if c <> 0 then c
  else
    let c = List.compare Literal.compare a.body b.body in
    if c <> 0 then c
    else
      let c = compare_ctx a.head_ctx b.head_ctx in
      if c <> 0 then c
      else
        let c = compare_ctx a.rule_ctx b.rule_ctx in
        if c <> 0 then c else List.compare String.compare a.signer b.signer

let equal a b = compare a b = 0

let map_literals f r =
  let ctx = Option.map (List.map f) in
  {
    r with
    head = f r.head;
    head_ctx = ctx r.head_ctx;
    rule_ctx = ctx r.rule_ctx;
    body = List.map f r.body;
  }

let apply s r = map_literals (Literal.apply s) r
let display st r = map_literals (Literal.display st) r
let rename_apart r = map_literals (Literal.rename_with (Hashtbl.create 8)) r

(* Name-based renaming for the cold paths (release-rule evaluation, policy
   unfolding) whose suffixed variable names are user-visible in reports and
   observability output. *)
let rename ~suffix r =
  let mapping = Hashtbl.create 8 in
  let f v =
    if Term.is_pseudo v then v
    else
      match Hashtbl.find_opt mapping v with
      | Some v' -> v'
      | None ->
          let v' = Term.var_id (Term.var_name v ^ suffix) in
          Hashtbl.add mapping v v';
          v'
  in
  map_literals (Literal.map_vars f) r

let vars r =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let of_lits = List.iter (Literal.add_vars seen acc) in
  of_lits [ r.head ];
  of_lits (Option.value ~default:[] r.head_ctx);
  of_lits (Option.value ~default:[] r.rule_ctx);
  of_lits r.body;
  List.rev !acc

let strip_contexts r = { r with head_ctx = None; rule_ctx = None }

let subsumes ~general ~specific =
  List.compare_lengths general.body specific.body = 0
  && List.equal String.equal general.signer specific.signer
  &&
  let g = rename_apart general in
  let terms r = Literal.to_term r.head :: List.map Literal.to_term r.body in
  let rec go pairs s =
    match pairs with
    | [] -> true
    | (p, t) :: rest -> (
        match Unify.one_way p t s with
        | Some s' -> go rest s'
        | None -> false)
  in
  go (List.combine (terms g) (terms specific)) Subst.empty

(* Canonical form: variables numbered by first occurrence, fixed printing.
   Contexts are excluded: signatures cover what is sent over the wire, and
   contexts are stripped before sending (paper, section 3.1). *)
let canonical r =
  let counter = ref 0 in
  let tbl = Hashtbl.create 8 in
  let var v =
    match Hashtbl.find_opt tbl v with
    | Some n -> n
    | None ->
        let n = Printf.sprintf "_V%d" !counter in
        incr counter;
        Hashtbl.add tbl v n;
        n
  in
  let buf = Buffer.create 128 in
  let rec term = function
    | Term.Var v -> Buffer.add_string buf (var v)
    | Term.Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (String.escaped (Sym.name s));
        Buffer.add_char buf '"'
    | Term.Int i -> Buffer.add_string buf (string_of_int i)
    | Term.Atom a -> Buffer.add_string buf (Sym.name a)
    | Term.Compound (f, args) ->
        Buffer.add_string buf (Sym.name f);
        Buffer.add_char buf '(';
        List.iteri
          (fun i t ->
            if i > 0 then Buffer.add_char buf ',';
            term t)
          args;
        Buffer.add_char buf ')'
  in
  let literal (l : Literal.t) =
    Buffer.add_string buf l.Literal.pred;
    Buffer.add_char buf '(';
    List.iteri
      (fun i t ->
        if i > 0 then Buffer.add_char buf ',';
        term t)
      l.Literal.args;
    Buffer.add_char buf ')';
    List.iter
      (fun a ->
        Buffer.add_char buf '@';
        term a)
      l.Literal.auth
  in
  literal r.head;
  Buffer.add_string buf ":-";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char buf ',';
      literal l)
    r.body;
  Buffer.contents buf

(* Compiled form: the rule with its distinct non-pseudo variables renumbered
   into the compiled-local id space [Term.local_id 0 .. local_id (n-1)], the
   signed head variants precomputed, and the variable count recorded.
   Renaming apart at resolution time is then a single fresh-block bump plus
   one structure-sharing shift — no hash tables, no string building.  The
   source rule is kept alongside: traces, signatures and equality all refer
   to it. *)
type compiled = {
  c_source : t;
  c_rule : t;
  c_nvars : int;
  c_names : string array;
  c_heads : Literal.t list;
  c_flat_heads : Flat.head array;
  c_is_fact : bool;
}

let compile r =
  let mapping = Hashtbl.create 8 in
  let n = ref 0 in
  let names = ref [] in
  let f v =
    if Term.is_pseudo v then v
    else
      match Hashtbl.find_opt mapping v with
      | Some j -> j
      | None ->
          let j = Term.local_id !n in
          incr n;
          names := Term.var_name v :: !names;
          Hashtbl.add mapping v j;
          j
  in
  let c_rule = map_literals (Literal.map_vars f) r in
  (* A rule without compilable variables maps to itself; share the source
     record so million-fact KBs don't carry a second copy of every fact. *)
  let c_rule = if !n = 0 then r else c_rule in
  let c_heads =
    c_rule.head
    ::
    (if is_signed c_rule then
       List.map
         (fun a -> Literal.push_authority c_rule.head (Term.str a))
         c_rule.signer
     else [])
  in
  {
    c_source = r;
    c_rule;
    c_nvars = !n;
    c_names = Array.of_list (List.rev !names);
    c_heads;
    c_flat_heads = Array.of_list (List.map Flat.compile_head c_heads);
    c_is_fact = is_fact r;
  }

let source c = c.c_source
let compiled_is_fact c = c.c_is_fact
let nvars c = c.c_nvars
let slot_names c = c.c_names
let flat_heads c = c.c_flat_heads

let instantiate c =
  if c.c_nvars = 0 then (c.c_rule, c.c_heads, 0)
  else begin
    let k0 = Term.fresh_block c.c_nvars in
    ( map_literals (Literal.shift_fresh k0) c.c_rule,
      List.map (Literal.shift_fresh k0) c.c_heads,
      k0 )
  end

(* The boxed rule at an already reserved fresh-block offset; paired with
   {!flat_heads}, which lets the solver unify heads before paying for the
   boxed instantiation (only successful candidates need the boxed body and
   trace snapshot). *)
let instantiate_at c k0 =
  if c.c_nvars = 0 then c.c_rule
  else map_literals (Literal.shift_fresh k0) c.c_rule

let pp_ctx fmt = function
  | [] -> Format.pp_print_string fmt "true"
  | lits ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
        Literal.pp fmt lits

let pp fmt r =
  Literal.pp fmt r.head;
  Option.iter (fun c -> Format.fprintf fmt " $ %a" pp_ctx c) r.head_ctx;
  (match (r.rule_ctx, r.body) with
  | None, [] -> ()
  | rc, body ->
      Format.pp_print_string fmt " <-";
      Option.iter (fun c -> Format.fprintf fmt "{%a}" pp_ctx c) rc;
      if body <> [] then
        Format.fprintf fmt " %a"
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
             Literal.pp)
          body);
  if r.signer <> [] then
    Format.fprintf fmt " signedBy [%a]"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (fun fmt s -> Format.fprintf fmt "%S" s))
      r.signer;
  Format.pp_print_string fmt "."

let to_string r = Format.asprintf "%a" pp r

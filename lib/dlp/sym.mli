(** Global symbol interner.

    Functor names, atoms and string constants are interned into dense
    integer ids: equality becomes integer comparison, and first-argument
    index keys are built from ints instead of freshly allocated strings.
    Ids are process-global and never reused. *)

type t = int

val intern : string -> t
val name : t -> string
val equal : t -> t -> bool

val compare_ids : t -> t -> int
(** Fast arbitrary total order (interning order). *)

val compare_names : t -> t -> int
(** Total order by source text; interning-order independent, used wherever
    ordering is user-visible. *)

(** Reusable interner for secondary namespaces (e.g. variable names). *)
module Interner : sig
  type t

  val create : unit -> t
  val intern : t -> string -> int
  val name : t -> int -> string
  val find : t -> string -> int option
  val size : t -> int
end

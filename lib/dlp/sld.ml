module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer

type options = { max_depth : int; max_solutions : int }

let default_options = { max_depth = 64; max_solutions = 32 }

(* Always-on counters (a field update each); spans only when a tracer is
   installed. *)
let m_queries = Obs.counter "sld.queries"
let m_steps = Obs.counter "sld.steps"
let m_depth_cutoffs = Obs.counter "sld.depth_cutoffs"
let m_solutions = Obs.counter "sld.solutions"
let h_steps = Obs.histogram "sld.steps_per_query"

type answer = { subst : Subst.t; proofs : Trace.t list }
type external_fn = Literal.t -> Subst.t -> Subst.t list
type externals = string * int -> external_fn option
type remote = target:string -> Literal.t -> (Literal.t * Trace.t option) list

exception Enough

let no_externals : externals = fun _ -> None
let no_remote : remote = fun ~target:_ _ -> []

(* Fully instantiate a finished trace with the answer substitution; traces
   are built with partially bound rules as resolution proceeds. *)
let rec apply_trace s = function
  | Trace.Apply (r, subs) ->
      Trace.Apply (Rule.apply s r, List.map (apply_trace s) subs)
  | Trace.Builtin l -> Trace.Builtin (Literal.apply s l)
  | Trace.External l -> Trace.External (Literal.apply s l)
  | Trace.Remote { peer; goal; proof } ->
      Trace.Remote
        {
          peer;
          goal = Literal.apply s goal;
          proof = Option.map (apply_trace s) proof;
        }

let peer_name_of_term = function
  | Term.Str s | Term.Atom s -> Some s
  | Term.Var _ | Term.Int _ | Term.Compound _ -> None

let solve_body ?(options = default_options) ?(externals = no_externals)
    ?(remote = no_remote) ?(bindings = []) ~self kb goals =
  let initial =
    let s =
      List.fold_left
        (fun s (v, t) ->
          if String.equal v "Self" then s else Subst.bind v t s)
        Subst.empty bindings
    in
    Subst.bind "Self" (Term.Str self) s
  in
  let fresh = ref 0 in
  let results = ref [] in
  let count = ref 0 in
  (* Pop authority layers that refer to the local peer. *)
  let rec strip_self subst goal =
    match Literal.pop_authority goal with
    | Some (inner, a) -> (
        match peer_name_of_term (Subst.walk subst a) with
        | Some name when String.equal name self -> strip_self subst inner
        | Some _ | None -> goal)
    | None -> goal
  in
  let is_ancestor subst goal ancestors =
    let gt = Literal.to_term goal in
    List.exists
      (fun anc ->
        Unify.variant (Literal.to_term (Literal.apply subst anc)) gt)
      ancestors
  in
  (* Remote dispatch is disabled inside negation-as-failure sub-proofs:
     absence of a remote answer is not evidence of falsity. *)
  let remote_enabled = ref true in
  let rec prove_one goal subst depth ancestors k =
    Metric.incr m_steps;
    if depth <= 0 then Metric.incr m_depth_cutoffs
    else
      let goal = strip_self subst (Literal.apply subst goal) in
      match Literal.naf_inner goal with
      | Some inner ->
          (* Negation as failure: only for ground inner literals (a
             non-ground NAF goal flounders and fails). *)
          if Literal.is_ground inner then begin
            let found = ref false in
            let exception Found in
            let saved = !remote_enabled in
            remote_enabled := false;
            Fun.protect
              ~finally:(fun () -> remote_enabled := saved)
              (fun () ->
                try
                  prove_one inner subst (depth - 1) ancestors (fun _ _ ->
                      found := true;
                      raise Found)
                with Found -> ());
            if not !found then k subst (Trace.Builtin goal)
          end
      | None -> (
      match Builtin.eval goal subst with
      | Some substs ->
          List.iter
            (fun s' -> k s' (Trace.Builtin (Literal.apply s' goal)))
            substs
      | None -> (
          match externals (Literal.key goal) with
          | Some f ->
              List.iter
                (fun s' -> k s' (Trace.External (Literal.apply s' goal)))
                (f goal subst)
          | None ->
              if is_ancestor subst goal ancestors then ()
              else begin
                let ancestors' = goal :: ancestors in
                let local_hit = ref false in
                let k s tr =
                  local_hit := true;
                  k s tr
                in
                let resolve_with rule =
                  incr fresh;
                  let r = Rule.rename ~suffix:(Printf.sprintf "~%d" !fresh) rule in
                  let heads =
                    r.Rule.head
                    ::
                    (if Rule.is_signed r then
                       List.map
                         (fun a ->
                           Literal.push_authority r.Rule.head (Term.Str a))
                         r.Rule.signer
                     else [])
                  in
                  let try_head head =
                    match Literal.unify goal head subst with
                    | None -> ()
                    | Some s' ->
                        prove_goals r.Rule.body s' (depth - 1) ancestors'
                          (fun s'' children ->
                            k s'' (Trace.Apply (r, children)))
                  in
                  List.iter try_head heads
                in
                (* Facts first: a cached credential or learned instance
                   answers the goal without the counter-queries a proper
                   rule's body might trigger. *)
                let facts, proper =
                  List.partition Rule.is_fact (Kb.matching goal kb)
                in
                List.iter resolve_with facts;
                List.iter resolve_with proper;
                (* Remote dispatch is a fallback: a peer asks another peer
                   only when it cannot establish the goal from its own
                   rules (each peer controls how much effort it spends on
                   other peers' behalf — §3.2). *)
                if !local_hit || not !remote_enabled then ()
                else
                match Literal.pop_authority goal with
                | None -> ()
                | Some (inner, a) -> (
                    match peer_name_of_term (Subst.walk subst a) with
                    | Some peer when not (String.equal peer self) ->
                        let shipped = Literal.apply subst inner in
                        let use_instance (inst, proof) =
                          let inst_lit =
                            Literal.push_authority inst (Term.Str peer)
                          in
                          match Literal.unify goal inst_lit subst with
                          | Some s' ->
                              k s'
                                (Trace.Remote
                                   {
                                     peer;
                                     goal = Literal.apply s' goal;
                                     proof;
                                   })
                          | None -> ()
                        in
                        List.iter use_instance (remote ~target:peer shipped)
                    | Some _ | None -> ())
              end))
  and prove_goals goals subst depth ancestors k =
    match goals with
    | [] -> k subst []
    | g :: rest ->
        prove_one g subst depth ancestors (fun s' tr ->
            prove_goals rest s' depth ancestors (fun s'' trs ->
                k s'' (tr :: trs)))
  in
  (try
     prove_goals goals initial options.max_depth [] (fun s trs ->
         results := { subst = s; proofs = List.map (apply_trace s) trs } :: !results;
         incr count;
         if !count >= options.max_solutions then raise Enough)
   with Enough -> ());
  List.rev !results

let solve ?options ?externals ?remote ?bindings ~self kb goals =
  Metric.incr m_queries;
  let steps_before = Metric.value m_steps in
  let run () = solve_body ?options ?externals ?remote ?bindings ~self kb goals in
  let result =
    let tracer = Obs.tracer () in
    if Otracer.enabled tracer then
      Otracer.with_span tracer
        ~attrs:
          [
            ( "goal",
              Peertrust_obs.Json.Str
                (String.concat ", " (List.map Literal.to_string goals)) );
            ("self", Peertrust_obs.Json.Str self);
          ]
        "sld.solve" run
    else run ()
  in
  Metric.observe_int h_steps (Metric.value m_steps - steps_before);
  Metric.add m_solutions (List.length result);
  result

let provable ?options ?externals ?remote ?bindings ~self kb goals =
  let opts =
    { (Option.value ~default:default_options options) with max_solutions = 1 }
  in
  solve ~options:opts ?externals ?remote ?bindings ~self kb goals <> []

let answers ?options ?externals ?remote ?bindings ~self kb goals =
  let qvars =
    List.concat_map Literal.vars goals
    |> List.filter (fun v -> not (Term.is_pseudo v))
  in
  let all = solve ?options ?externals ?remote ?bindings ~self kb goals in
  let restricted = List.map (fun a -> Subst.restrict qvars a.subst) all in
  let rec dedup seen = function
    | [] -> []
    | s :: rest ->
        let key = Subst.to_string s in
        if List.mem key seen then dedup seen rest
        else s :: dedup (key :: seen) rest
  in
  dedup [] restricted

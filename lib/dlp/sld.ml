module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer

type options = { max_depth : int; max_solutions : int; max_steps : int }

let default_options =
  { max_depth = 64; max_solutions = 32; max_steps = max_int }

(* Always-on counters (a field update each); spans only when a tracer is
   installed. *)
let m_queries = Obs.counter "sld.queries"
let m_steps = Obs.counter "sld.steps"
let m_depth_cutoffs = Obs.counter "sld.depth_cutoffs"
let m_step_cutoffs = Obs.counter "sld.step_cutoffs"
let m_solutions = Obs.counter "sld.solutions"
let h_steps = Obs.histogram "sld.steps_per_query"

type answer = { subst : Subst.t; proofs : Trace.t list }
type external_fn = Literal.t -> Subst.t -> Subst.t list
type externals = string * int -> external_fn option
type remote = target:string -> Literal.t -> (Literal.t * Trace.t option) list

exception Enough

let no_externals : externals = fun _ -> None
let no_remote : remote = fun ~target:_ _ -> []

(* Fully instantiate a finished trace against the store at answer time;
   traces are built with partially bound rules as resolution proceeds, so
   their snapshots still contain raw solver variables.  [display] both
   resolves them and converts leftover named fresh variables to their
   user-visible [name~ordinal] form. *)
let rec display_trace st = function
  | Trace.Apply (r, subs) ->
      Trace.Apply (Rule.display st r, List.map (display_trace st) subs)
  | Trace.Builtin l -> Trace.Builtin (Literal.display st l)
  | Trace.External l -> Trace.External (Literal.display st l)
  | Trace.Remote { peer; goal; proof } ->
      Trace.Remote
        {
          peer;
          goal = Literal.display st goal;
          proof = Option.map (display_trace st) proof;
        }

let peer_name_of_term = function
  | Term.Str s | Term.Atom s -> Some (Sym.name s)
  | Term.Var _ | Term.Int _ | Term.Compound _ -> None

let not_sym = Sym.intern "not"

(* Ancestor stack for the variant loop check: an immutable list, because a
   goal's entry must scope over its own subtree only — the continuation [k]
   escapes to sibling goals, which must not see it.  Each entry is tagged
   with its predicate symbol so the canonical comparison runs only against
   same-predicate ancestors (an int compare skips the rest). *)
type anc = Anil | Acons of Sym.t * Literal.t * anc

(* The solver threads one trailed {!Store} through the whole proof:
   unification binds cells destructively, each choice point brackets its
   attempt with mark/undo, and persistent substitutions are materialised
   only at the boundaries (answers, external calls).  Goals are flattened
   ({!Flat}) at each resolution step, so candidate lookup and head
   unification run on int arrays; the boxed rule is instantiated only
   after a head has unified. *)
let solve_body ?(options = default_options) ?(externals = no_externals)
    ?(remote = no_remote) ?(bindings = []) ~self kb goals =
  let st = Store.create () in
  let arena = Flat.arena () in
  let bind_initial v t =
    let id = Term.var_id v in
    if Store.is_bound st id then
      invalid_arg ("Subst.bind: already bound: " ^ v)
    else Store.bind st id t
  in
  List.iter
    (fun (v, t) -> if not (String.equal v "Self") then bind_initial v t)
    bindings;
  bind_initial "Self" (Term.str self);
  (* Rule-application ordinal: fresh variables of application [n] display
     as [Name~n], the user-visible renaming scheme (deterministic per
     solve, so transcripts do not depend on global solver state). *)
  let app = ref 0 in
  let results = ref [] in
  let count = ref 0 in
  (* This solve's own resolution steps; nested solves (remote callbacks
     enter fresh [solve_body]s) count theirs, so per-query histogram
     observations sum to the global step counter. *)
  let local_steps = ref 0 in
  (* Pop authority layers that refer to the local peer. *)
  let rec strip_self goal =
    match Literal.pop_authority goal with
    | Some (inner, a) -> (
        match peer_name_of_term (Store.walk st a) with
        | Some name when String.equal name self -> strip_self inner
        | Some _ | None -> goal)
    | None -> goal
  in
  (* The goal's canonical encoding is computed lazily: only if some
     ancestor shares its predicate symbol (goals are recorded unresolved;
     both sides resolve through the store inside the encoder, which is
     sound because store resolution is monotone along a derivation). *)
  let is_ancestor psym goal ancestors =
    let set = ref false in
    let rec scan = function
      | Anil -> false
      | Acons (p, anc, rest) ->
          (Sym.equal p psym
          && begin
               if not !set then begin
                 Flat.canon_set arena st goal;
                 set := true
               end;
               Flat.canon_eq arena st anc
             end)
          || scan rest
    in
    scan ancestors
  in
  (* Merge the delta of an external's answer substitution back into the
     store (externals work on materialised substitutions). *)
  let merge_delta s' =
    Subst.fold_ids
      (fun v t () -> if not (Store.is_bound st v) then Store.bind st v t)
      s' ()
  in
  (* Remote dispatch is disabled inside negation-as-failure sub-proofs:
     absence of a remote answer is not evidence of falsity. *)
  let remote_enabled = ref true in
  (* Resolution work budget: each [prove_one] call burns one unit of
     fuel; at zero the remaining search space is abandoned (answers
     found so far survive).  This is the per-requester work quota the
     guard layer threads in — a bound on effort spent on one
     counterparty's behalf, not a soundness device. *)
  let fuel = ref options.max_steps in
  let rec prove_one goal depth ancestors k =
    Metric.incr m_steps;
    incr local_steps;
    if !fuel <= 0 then Metric.incr m_step_cutoffs
    else if depth <= 0 then Metric.incr m_depth_cutoffs
    else begin
      decr fuel;
      let goal = strip_self goal in
      let fg = Flat.flatten arena st goal in
      let psym = Flat.pred fg in
      let nargs = Flat.nargs fg in
      let naf =
        (* Negation as failure; the inner literal is decoded from the
           resolved goal (its argument may be a bound variable). *)
        if Sym.equal psym not_sym && nargs = 1 && Flat.nauth fg = 0 then begin
          let rg = Literal.resolve st goal in
          match Literal.naf_inner rg with
          | Some inner -> Some (rg, inner)
          | None -> None
        end
        else None
      in
      match naf with
      | Some (rg, inner) ->
          (* Only for ground inner literals (a non-ground NAF goal
             flounders and fails). *)
          if Literal.is_ground inner then begin
            let found = ref false in
            let exception Found in
            let saved = !remote_enabled in
            remote_enabled := false;
            let m = Store.mark st in
            Fun.protect
              ~finally:(fun () ->
                remote_enabled := saved;
                Store.undo st m)
              (fun () ->
                try
                  prove_one inner (depth - 1) ancestors (fun _ ->
                      found := true;
                      raise Found)
                with Found -> ());
            if not !found then k (Trace.Builtin rg)
          end
      | None -> (
      match
        if Builtin.is_builtin_sym psym && nargs = 2 then
          Builtin.eval_store st goal
        else None
      with
      | Some holds -> if holds then k (Trace.Builtin (Literal.resolve st goal))
      | None -> (
          match externals (goal.Literal.pred, nargs) with
          | Some f ->
              let s = Store.to_subst st in
              List.iter
                (fun s' ->
                  let m = Store.mark st in
                  merge_delta s';
                  k (Trace.External (Literal.resolve st goal));
                  Store.undo st m)
                (f (Literal.resolve st goal) s)
          | None ->
              if is_ancestor psym goal ancestors then ()
              else begin
                let ancestors' = Acons (psym, goal, ancestors) in
                let local_hit = ref false in
                let k tr =
                  local_hit := true;
                  k tr
                in
                let resolve_with compiled =
                  incr app;
                  let nv = Rule.nvars compiled in
                  let k0 = if nv = 0 then 0 else Term.fresh_block nv in
                  if nv > 0 then
                    Store.note_names st k0 (Rule.slot_names compiled) !app;
                  let heads = Rule.flat_heads compiled in
                  for hi = 0 to Array.length heads - 1 do
                    let m = Store.mark st in
                    if Flat.unify st ~k0 fg heads.(hi) then begin
                      (* Boxed instantiation deferred to here: failed
                         candidates cost the flat unify only. *)
                      let r = Rule.instantiate_at compiled k0 in
                      prove_goals r.Rule.body (depth - 1) ancestors'
                        (fun children -> k (Trace.Apply (r, children)))
                    end;
                    Store.undo st m
                  done
                in
                (* Facts first: a cached credential or learned instance
                   answers the goal without the counter-queries a proper
                   rule's body might trigger. *)
                let facts, proper =
                  Kb.matching_parts (psym, nargs) (Flat.goal_first_key fg) kb
                in
                List.iter resolve_with facts;
                List.iter resolve_with proper;
                (* Remote dispatch is a fallback: a peer asks another peer
                   only when it cannot establish the goal from its own
                   rules (each peer controls how much effort it spends on
                   other peers' behalf — §3.2). *)
                if !local_hit || not !remote_enabled then ()
                else
                match Literal.pop_authority goal with
                | None -> ()
                | Some (inner, a) -> (
                    match peer_name_of_term (Store.walk st a) with
                    | Some peer when not (String.equal peer self) ->
                        let shipped = Literal.display st inner in
                        let use_instance (inst, proof) =
                          let inst_lit =
                            Literal.push_authority inst (Term.str peer)
                          in
                          let m = Store.mark st in
                          if Literal.unify_store st goal inst_lit then
                            k
                              (Trace.Remote
                                 {
                                   peer;
                                   goal = Literal.resolve st goal;
                                   proof;
                                 });
                          Store.undo st m
                        in
                        List.iter use_instance (remote ~target:peer shipped)
                    | Some _ | None -> ())
              end))
    end
  and prove_goals goals depth ancestors k =
    match goals with
    | [] -> k []
    | g :: rest ->
        prove_one g depth ancestors (fun tr ->
            prove_goals rest depth ancestors (fun trs -> k (tr :: trs)))
  in
  (try
     prove_goals goals options.max_depth Anil (fun trs ->
         let s = Store.answer_subst st in
         results :=
           { subst = s; proofs = List.map (display_trace st) trs } :: !results;
         incr count;
         if !count >= options.max_solutions then raise Enough)
   with Enough -> ());
  (List.rev !results, !local_steps)

let solve ?options ?externals ?remote ?bindings ~self kb goals =
  Metric.incr m_queries;
  let run () = solve_body ?options ?externals ?remote ?bindings ~self kb goals in
  let result, steps =
    let tracer = Obs.tracer () in
    if Otracer.enabled tracer then
      Otracer.with_span tracer
        ~attrs:
          [
            ( "goal",
              Peertrust_obs.Json.Str
                (String.concat ", " (List.map Literal.to_string goals)) );
            ("self", Peertrust_obs.Json.Str self);
          ]
        "sld.solve" run
    else run ()
  in
  Metric.observe_int h_steps steps;
  Metric.add m_solutions (List.length result);
  result

let provable ?options ?externals ?remote ?bindings ~self kb goals =
  let opts =
    { (Option.value ~default:default_options options) with max_solutions = 1 }
  in
  solve ~options:opts ?externals ?remote ?bindings ~self kb goals <> []

let answers ?options ?externals ?remote ?bindings ~self kb goals =
  let qvars =
    List.concat_map Literal.vars goals
    |> List.filter (fun v -> not (Term.is_pseudo v))
  in
  let all = solve ?options ?externals ?remote ?bindings ~self kb goals in
  let restricted = List.map (fun a -> Subst.restrict qvars a.subst) all in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      let key = Flat.subst_key s in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    restricted

type result = { facts : Literal.t list; rounds : int; derived : int }

module LitSet = Set.Make (Literal)

type store = {
  mutable all : LitSet.t;
  index : (string * int, Literal.t list) Hashtbl.t;
  mutable order : Literal.t list;  (* reverse derivation order *)
}

let store_create () =
  { all = LitSet.empty; index = Hashtbl.create 64; order = [] }

let store_add st lit =
  if LitSet.mem lit st.all then false
  else begin
    st.all <- LitSet.add lit st.all;
    let key = Literal.key lit in
    let prev = Option.value ~default:[] (Hashtbl.find_opt st.index key) in
    Hashtbl.replace st.index key (lit :: prev);
    st.order <- lit :: st.order;
    true
  end

let store_find st key = Option.value ~default:[] (Hashtbl.find_opt st.index key)

(* Instances a signed head stands for: [h] itself plus [h @ A] for each
   signer [A] (the signed-rule axiom). *)
let head_variants (r : Rule.t) =
  r.Rule.head
  :: (if Rule.is_signed r then
        List.map
          (fun a -> Literal.push_authority r.Rule.head (Term.str a))
          r.Rule.signer
      else [])

let strip_self_auth ~self lit =
  let rec go l =
    match Literal.pop_authority l with
    | Some (inner, a) -> (
        match Term.const_name a with
        | Some n when String.equal n self -> go inner
        | Some _ | None -> l)
    | None -> l
  in
  go lit

let saturate ?(bindings = []) ?(max_rounds = 1000) ?(max_facts = 100_000)
    ~self kb =
  let initial =
    List.fold_left
      (fun s (v, t) -> if String.equal v "Self" then s else Subst.bind v t s)
      Subst.empty bindings
    |> Subst.bind "Self" (Term.str self)
  in
  let st = store_create () in
  let facts0, proper_rules =
    List.partition (fun (r : Rule.t) -> Rule.is_fact r) (Kb.rules kb)
  in
  let add_fact lit delta =
    let lit = strip_self_auth ~self (Literal.apply initial lit) in
    if Literal.is_ground lit && store_add st lit then lit :: delta else delta
  in
  let delta0 =
    List.fold_left
      (fun delta r ->
        List.fold_left (fun d h -> add_fact h d) delta (head_variants r))
      [] facts0
  in
  let initial_count = List.length delta0 in
  (* Join the rule body against the store; with [require_delta], at least
     one body literal must match a fact derived in the previous round. *)
  let join (r : Rule.t) ~delta_set ~require_delta emit =
    let rec go body subst used_delta =
      match body with
      | [] -> if used_delta || not require_delta then emit subst
      | b :: rest -> (
          let b_applied = Literal.apply subst b in
          match Builtin.eval b_applied subst with
          | Some substs -> List.iter (fun s' -> go rest s' used_delta) substs
          | None ->
              let b_local = strip_self_auth ~self b_applied in
              let try_fact f =
                match Literal.unify b_local f subst with
                | Some s' -> go rest s' (used_delta || LitSet.mem f delta_set)
                | None -> ()
              in
              List.iter try_fact (store_find st (Literal.key b_local)))
    in
    go r.Rule.body initial false
  in
  let rounds = ref 0 in
  let delta = ref delta0 in
  while
    !delta <> [] && !rounds < max_rounds && LitSet.cardinal st.all < max_facts
  do
    incr rounds;
    let delta_set = LitSet.of_list !delta in
    let next = ref [] in
    let fire r =
      let fresh = Rule.rename_apart r in
      join fresh ~delta_set ~require_delta:(!rounds > 1) (fun subst ->
          let derive h =
            let inst = strip_self_auth ~self (Literal.apply subst h) in
            if Literal.is_ground inst && store_add st inst then
              next := inst :: !next
          in
          List.iter derive (head_variants fresh))
    in
    List.iter fire proper_rules;
    delta := !next
  done;
  let facts = List.rev st.order in
  { facts; rounds = !rounds; derived = List.length facts - initial_count }

let derives ?bindings ~self kb goal =
  let { facts; _ } = saturate ?bindings ~self kb in
  let goal = strip_self_auth ~self goal in
  List.exists
    (fun f -> Option.is_some (Literal.unify goal f Subst.empty))
    facts

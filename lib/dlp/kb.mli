(** A peer's knowledge base: a persistent store of rules indexed by the
    [(predicate, arity)] key of their heads, with first-argument indexing
    inside each predicate bucket (the classic Prolog optimisation: a goal
    whose first argument is a constant only meets the clauses whose head
    starts with the same constant, plus those starting with a variable).

    The KB is immutable; peers that learn new rules during a negotiation
    hold a mutable reference to a KB value. *)

type t

val empty : t
(** First-argument indexing enabled. *)

val empty_linear : t
(** No first-argument indexing — {!matching} always scans the whole
    predicate bucket.  Exists for the indexing ablation (bench E12). *)

val add : Rule.t -> t -> t
(** Add a rule.  Duplicates (structurally equal rules) are ignored. *)

val add_list : Rule.t list -> t -> t
val remove : Rule.t -> t -> t
val mem : Rule.t -> t -> bool

val find : string * int -> t -> Rule.t list
(** Rules whose head has the given predicate key, in insertion order. *)

val matching : Literal.t -> t -> Rule.t list
(** Rules whose head can possibly unify with the literal: same predicate
    key, and (with indexing) a compatible first argument.  Insertion
    order. *)

val matching_compiled : Literal.t -> t -> Rule.compiled list
(** As {!matching}, returning the pre-compiled rules; the resolution hot
    path instantiates these without re-processing the source rules. *)

val matching_parts :
  Sym.t * int -> Flat.fkey -> t -> Rule.compiled list * Rule.compiled list
(** As {!matching_compiled}, keyed by an interned predicate symbol and a
    flat first-argument key ({!Flat.goal_first_key}), split into
    [(facts, proper_rules)] — each in insertion order.  The flat solver's
    entry point: no literal rebuilt, no partition per call. *)

val rules : t -> Rule.t list
(** All rules, in insertion order. *)

val size : t -> int
val fold : (Rule.t -> 'a -> 'a) -> t -> 'a -> 'a

val signed_rules : t -> Rule.t list
(** The credentials: rules carrying at least one signature. *)

val of_string : ?indexing:bool -> string -> t
(** Parse a program text into a KB (indexing on by default).
    @raise Parser.Error on bad syntax. *)

val union : t -> t -> t
(** Left-biased union (duplicates dropped); keeps the left KB's indexing
    mode. *)

val pp : Format.formatter -> t -> unit

(** A peer: name, knowledge base, held certificates, external predicates
    and evaluation limits.

    A peer's signed rules are backed by certificates (issued at setup or
    learned during negotiation); the certificate store is keyed by the
    rule's canonical form so the engine can attach the right certificate
    when it discloses a credential. *)

open Peertrust_dlp

type t = {
  name : string;
  mutable kb : Kb.t;
  certs : (string, Peertrust_crypto.Cert.t) Hashtbl.t;
      (** canonical rule -> certificate *)
  origins : (int, string) Hashtbl.t;
      (** certificate serial -> peer it was received from (absent for the
          peer's own certificates) *)
  externals : Sld.externals;
  mutable options : Sld.options;
      (** evaluation limits; mutable so the reactor can cap [max_steps]
          for the duration of one requester's evaluation (the guard's
          per-requester work quota) *)
  mutable active : (string * string) list;
      (** in-flight (requester, goal skeleton) pairs, for cross-peer cycle
          detection *)
  mutable kb_watchers : (unit -> unit) list;
      (** callbacks fired on setup-style KB mutations; see
          {!on_kb_update} *)
}

val create :
  ?options:Sld.options -> ?externals:Sld.externals -> ?kb:Kb.t -> string -> t

val load_program : t -> string -> unit
(** Parse a program text and add its rules to the KB.
    @raise Parser.Error on bad syntax. *)

val set_kb : t -> Kb.t -> unit
(** Replace the KB wholesale and notify the KB watchers. *)

val on_kb_update : t -> (unit -> unit) -> unit
(** Register a callback fired after setup-style KB mutations
    ({!load_program}, {!set_kb}) — the hooks answer caches use to drop
    entries owned by this peer.  {!add_rule} does {e not} fire the
    watchers: it runs on the negotiation hot path and only adds facts,
    which is a monotone (cache-sound) change. *)

val add_rule : t -> Rule.t -> unit
val add_cert : ?origin:string -> t -> Peertrust_crypto.Cert.t -> unit
(** Store a certificate and add its rule to the KB.  [origin] records which
    peer it was received from. *)

val cert_origin : t -> Peertrust_crypto.Cert.t -> string option

val cert_for : t -> Rule.t -> Peertrust_crypto.Cert.t option
(** The certificate backing a signed rule, if held. *)

val goal_key : Literal.t -> string
(** Canonical skeleton of a goal (alpha-invariant), used for cycle
    detection. *)

val enter : t -> requester:string -> Literal.t -> bool
(** Record an in-flight goal; [false] if the same (requester, goal) is
    already active (a negotiation cycle). *)

val leave : t -> requester:string -> Literal.t -> unit

open Peertrust_dlp
module Net = Peertrust_net
module Crypto = Peertrust_crypto
module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer

type config = {
  enabled : bool;
  max_bytes : int;
  max_batch : int;
  max_goal_depth : int;
  rate : int;
  rate_window : int;
  quota : int;
  quarantine_after : int;
  violation_window : int;
  quarantine_ticks : int;
}

let defaults =
  {
    enabled = true;
    max_bytes = 8192;
    max_batch = 32;
    max_goal_depth = 16;
    rate = 8;
    rate_window = 8;
    quota = 50_000;
    quarantine_after = 4;
    violation_window = 64;
    quarantine_ticks = 128;
  }

let permissive = { defaults with enabled = false }

type violation =
  | Malformed of string
  | Oversized of int
  | Unsolicited of string
  | Bad_cert of string
  | Flooding
  | Quota_exhausted
  | Bomb of int
  | Quarantined

let violation_to_string = function
  | Malformed m -> "malformed: " ^ m
  | Oversized n -> Printf.sprintf "oversized: %d bytes" n
  | Unsolicited g -> "unsolicited: " ^ g
  | Bad_cert m -> "bad certificate: " ^ m
  | Flooding -> "flooding"
  | Quota_exhausted -> "quota exhausted"
  | Bomb d -> Printf.sprintf "delegation bomb: depth %d" d
  | Quarantined -> "quarantined"

(* The stable vocabulary {!Negotiation.classify_denial} matches on; the
   guarded peer owes a rejected query a reply from this list so the
   requester's negotiation terminates with a structured outcome. *)
let denial_reason = function
  | Quarantined -> "quarantined"
  | Flooding -> "rate-limited"
  | Quota_exhausted -> "quota"
  | Malformed _ -> "malformed"
  | Oversized _ -> "oversized"
  | Bad_cert _ -> "bad certificate"
  | Unsolicited _ -> "unsolicited"
  | Bomb _ -> "delegation bomb"

type verdict = Admit | Stale of string | Reject of violation

type breaker = Closed | Open of { until : int } | Half_open

(* Per directed (guarded peer, requester) pair. *)
type state = {
  mutable queries : int list;  (* recent query ticks, newest first *)
  mutable violations : int list;  (* recent violation ticks, newest first *)
  mutable work : int;  (* resolution steps spent on this requester *)
  mutable breaker : breaker;
}

type t = {
  config : config;
  verify : Crypto.Cert.t -> bool;
  states : (string * string, state) Hashtbl.t;  (* (target, from) *)
}

let m_admitted = Obs.counter "guard.admitted"
let m_rejected = Obs.counter "guard.rejected"
let m_stale = Obs.counter "guard.stale"
let m_quarantines = Obs.counter "guard.quarantines"
let m_recoveries = Obs.counter "guard.recoveries"
let m_malformed = Obs.counter "guard.malformed"
let m_oversized = Obs.counter "guard.oversized"
let m_unsolicited = Obs.counter "guard.unsolicited"
let m_bad_cert = Obs.counter "guard.bad_cert"
let m_rate_limited = Obs.counter "guard.rate_limited"
let m_quota = Obs.counter "guard.quota"
let m_bomb = Obs.counter "guard.bomb"

let violation_counter = function
  | Malformed _ -> m_malformed
  | Oversized _ -> m_oversized
  | Unsolicited _ -> m_unsolicited
  | Bad_cert _ -> m_bad_cert
  | Flooding -> m_rate_limited
  | Quota_exhausted -> m_quota
  | Bomb _ -> m_bomb
  | Quarantined -> m_quarantines

let create ?(config = permissive) ~verify () =
  if config.enabled then begin
    if config.rate < 1 then invalid_arg "Guard.create: rate must be >= 1";
    if config.rate_window < 1 then
      invalid_arg "Guard.create: rate_window must be >= 1";
    if config.quarantine_after < 1 then
      invalid_arg "Guard.create: quarantine_after must be >= 1"
  end;
  { config; verify; states = Hashtbl.create 16 }

let config t = t.config

let state t ~from ~target =
  let key = (target, from) in
  match Hashtbl.find_opt t.states key with
  | Some s -> s
  | None ->
      let s = { queries = []; violations = []; work = 0; breaker = Closed } in
      Hashtbl.add t.states key s;
      s

(* Sliding windows keep only ticks young enough to still matter. *)
let prune ~now ~window ticks = List.filter (fun tk -> now - tk < window) ticks

let rec term_depth = function
  | Term.Var _ | Term.Str _ | Term.Int _ | Term.Atom _ -> 1
  | Term.Compound (_, args) ->
      1 + List.fold_left (fun acc a -> max acc (term_depth a)) 0 args

let goal_depth (goal : Literal.t) =
  let terms = max (List.length goal.Literal.auth)
      (List.fold_left (fun acc a -> max acc (term_depth a)) 0 goal.Literal.args)
  in
  terms

let bad_cert t certs =
  List.find_map
    (fun (c : Crypto.Cert.t) ->
      if t.verify c then None
      else Some (Printf.sprintf "certificate #%d" c.Crypto.Cert.serial))
    certs

(* Structural + solicitation checks for one payload (no breaker, no
   violation recording — [admit] wraps this).  [in_batch] forbids nested
   batches. *)
let rec check t st ~now ~solicited ~in_batch payload =
  let cfg = t.config in
  let size = Net.Message.size payload in
  if size > cfg.max_bytes then Reject (Oversized size)
  else
    match payload with
    | Net.Message.Ack -> Admit
    | Net.Message.Raw s -> (
        (* Honest peers never put raw bytes on the wire; the only
           charitable reading is a certificate blob, so attempt a decode
           and blame the garbage precisely. *)
        match Crypto.Wire.decode_many s with
        | Error (Crypto.Wire.Malformed m) -> Reject (Malformed m)
        | Ok _ -> Reject (Malformed "raw certificate blob outside a disclosure"))
    | Net.Message.Query { goal } ->
        let depth = goal_depth goal in
        if depth > cfg.max_goal_depth then Reject (Bomb depth)
        else begin
          st.queries <- now :: prune ~now ~window:cfg.rate_window st.queries;
          if List.length st.queries > cfg.rate then Reject Flooding
          else if st.work >= cfg.quota then Reject Quota_exhausted
          else Admit
        end
    | Net.Message.Answer { goal; certs; _ } -> (
        match solicited goal with
        | `Unknown -> Reject (Unsolicited (Literal.to_string goal))
        | `Resolved -> Stale (Literal.to_string goal)
        | `Outstanding -> (
            match bad_cert t certs with
            | Some which -> Reject (Bad_cert which)
            | None -> Admit))
    | Net.Message.Deny { goal; _ } -> (
        match solicited goal with
        | `Unknown -> Reject (Unsolicited (Literal.to_string goal))
        | `Resolved -> Stale (Literal.to_string goal)
        | `Outstanding -> Admit)
    | Net.Message.Disclosure { certs; _ } -> (
        match bad_cert t certs with
        | Some which -> Reject (Bad_cert which)
        | None -> Admit)
    | Net.Message.Tquery { goal; path } ->
        (* Tabling control plane: structural checks only.  Solicitation
           tracking does not apply — a completed table legitimately
           pushes several answers for one query — and the rate/quota
           budget is charged like a query. *)
        let depth = goal_depth goal in
        if depth > cfg.max_goal_depth then Reject (Bomb depth)
        else if List.length path > 64 then
          Reject (Malformed "tabling path too long")
        else begin
          st.queries <- now :: prune ~now ~window:cfg.rate_window st.queries;
          if List.length st.queries > cfg.rate then Reject Flooding
          else if st.work >= cfg.quota then Reject Quota_exhausted
          else Admit
        end
    | Net.Message.Tanswer _ | Net.Message.Tprobe _ | Net.Message.Tstat _
    | Net.Message.Tcomplete _ ->
        Admit
    | Net.Message.Cancel _ ->
        (* Withdrawing one's own outstanding query is harmless: the
           receiver only drops work parked for the sender itself. *)
        Admit
    | Net.Message.Batch payloads ->
        if in_batch then Reject (Malformed "nested batch")
        else if payloads = [] then Reject (Malformed "empty batch")
        else if List.length payloads > cfg.max_batch then
          Reject (Malformed (Printf.sprintf "batch of %d" (List.length payloads)))
        else
          (* First rejection wins; a batch of nothing but stale
             duplicates is itself stale. *)
          let rec fold admit = function
            | [] -> if admit then Admit else Stale "batch"
            | p :: rest -> (
                match check t st ~now ~solicited ~in_batch:true p with
                | Reject v -> Reject v
                | Admit -> fold true rest
                | Stale _ -> fold admit rest)
          in
          fold false payloads

let record_violation t st ~now ~from ~target v =
  Metric.incr m_rejected;
  Metric.incr (violation_counter v);
  Otracer.event (Obs.tracer ())
    (Printf.sprintf "guard.reject %s -> %s: %s" from target
       (violation_to_string v));
  match st.breaker with
  | Open _ -> ()  (* already quarantined; nothing further to trip *)
  | Half_open ->
      (* A violation during probation re-opens immediately. *)
      Metric.incr m_quarantines;
      st.violations <- [];
      st.breaker <- Open { until = now + t.config.quarantine_ticks }
  | Closed ->
      st.violations <-
        now :: prune ~now ~window:t.config.violation_window st.violations;
      if List.length st.violations >= t.config.quarantine_after then begin
        Metric.incr m_quarantines;
        Otracer.event (Obs.tracer ())
          (Printf.sprintf "guard.quarantine %s at %s until %d" from target
             (now + t.config.quarantine_ticks));
        st.violations <- [];
        st.breaker <- Open { until = now + t.config.quarantine_ticks }
      end

let admit t ~now ~from ~target ?(solicited = fun _ -> `Unknown) payload =
  if not t.config.enabled then Admit
  else begin
    let st = state t ~from ~target in
    (* Expire a served quarantine into probation. *)
    (match st.breaker with
    | Open { until } when now >= until -> st.breaker <- Half_open
    | Open _ | Closed | Half_open -> ());
    match st.breaker with
    | Open _ ->
        Metric.incr m_rejected;
        Reject Quarantined
    | Closed | Half_open -> (
        match check t st ~now ~solicited ~in_batch:false payload with
        | Admit ->
            Metric.incr m_admitted;
            if st.breaker = Half_open then begin
              Metric.incr m_recoveries;
              Otracer.event (Obs.tracer ())
                (Printf.sprintf "guard.recover %s at %s" from target);
              st.breaker <- Closed;
              st.violations <- []
            end;
            Admit
        | Stale why ->
            Metric.incr m_stale;
            Stale why
        | Reject v ->
            record_violation t st ~now ~from ~target v;
            Reject v)
  end

let charge_work t ~from ~target n =
  if t.config.enabled && n > 0 then begin
    let st = state t ~from ~target in
    st.work <- st.work + n
  end

let remaining_work t ~from ~target =
  if not t.config.enabled then max_int
  else
    let st = state t ~from ~target in
    max 0 (t.config.quota - st.work)

let breaker_state t ~from ~target =
  if not t.config.enabled then Closed
  else
    match Hashtbl.find_opt t.states (target, from) with
    | None -> Closed
    | Some st -> st.breaker

let reset_peer t name =
  (* A crash-stop failure loses [name]'s volatile guard state: every
     rate window, work quota and breaker it kept about its requesters.
     State other peers keep about [name] survives — they did not crash. *)
  let stale =
    Hashtbl.fold
      (fun ((target, _) as key) _ acc ->
        if String.equal target name then key :: acc else acc)
      t.states []
  in
  List.iter (Hashtbl.remove t.states) stale

let quarantined t =
  Hashtbl.fold
    (fun key st acc ->
      match st.breaker with Open _ -> key :: acc | Closed | Half_open -> acc)
    t.states []
  |> List.sort compare

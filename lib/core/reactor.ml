open Peertrust_dlp
module Net = Peertrust_net
module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer
module Ojson = Peertrust_obs.Json
module Tctx = Peertrust_obs.Trace_context

let src = Logs.Src.create "peertrust.reactor" ~doc:"PeerTrust queued engine"

module Log = (val Logs.src_log src : Logs.LOG)

let m_steps = Obs.counter "reactor.steps"
let m_posts = Obs.counter "reactor.posts"
let m_parks = Obs.counter "reactor.parks"
let m_quiescence_breaks = Obs.counter "reactor.quiescence_breaks"
let m_drops = Obs.counter "reactor.drops"
let m_retries = Obs.counter "reactor.retries"
let m_timeouts = Obs.counter "reactor.timeouts"
let m_dup_deliveries = Obs.counter "reactor.dup_deliveries"
let m_dedup_evictions = Obs.counter "reactor.dedup_evictions"
let m_crashes = Obs.counter "reactor.crashes"
let m_restarts = Obs.counter "reactor.restarts"
let m_checkpoints = Obs.counter "reactor.checkpoints"
let m_crash_drops = Obs.counter "reactor.crash_drops"
let m_recovered_goals = Obs.counter "reactor.recovered_goals"
let m_reissued = Obs.counter "reactor.reissued_subqueries"
let m_stale_epoch = Obs.counter "reactor.stale_epoch"
let m_cancels = Obs.counter "reactor.cancels"
let m_cancelled_goals = Obs.counter "reactor.cancelled_goals"
let m_deadline_expiries = Obs.counter "reactor.deadline_expiries"
let g_outstanding = Obs.gauge "reactor.outstanding_subqueries"
let g_parked = Obs.gauge "reactor.parked_goals"
let h_steps = Obs.histogram "reactor.steps_per_run"

(* The SLD step counter, shared with the solver through the registry:
   the delta around an evaluation is the work charged against the
   requester's guard quota. *)
let m_sld_steps = Obs.counter "sld.steps"

(* Where the write-ahead journal lives.  [Journal_memory] is the
   simulator's stand-in for a durable disk: the buffer belongs to the
   reactor, not to the peer, so it survives the crash wipe exactly as a
   synced file would survive a process death. *)
type journal_mode = Journal_off | Journal_memory | Journal_dir of string

type config = {
  rto : int;  (* initial retransmission timeout, ticks *)
  retry_limit : int;  (* retransmissions per sub-query before timeout *)
  cache : Answer_cache.t option;
  (* answer cache consulted before posting a sub-query and filled on
     answer delivery; pass one reactor's cache to the next for the
     shared cross-session mode *)
  batch : bool;
  (* coalesce same-tick sub-queries to one peer into a single Batch
     envelope *)
  dedup_cap : int;
  (* capacity of the delivered-envelope-id dedup set; past it the
     oldest ids are forgotten (counted as reactor.dedup_evictions) *)
  tabling : bool;
  (* route requests through distributed tabling: per-goal tables at the
     owning peer, monotone answer views, SCC completion at quiescence —
     terminates on mutually recursive cross-peer policies.  Off by
     default; fault-free transcripts with tabling off are unchanged. *)
  journal : journal_mode;
  (* write-ahead journal per peer: learned certificates, learned
     says-facts, completed table answers and accepted root goals are
     appended as they happen, and a restarting incarnation replays the
     journal instead of starting cold.  Off by default. *)
}

let default_config =
  {
    rto = 8;
    retry_limit = 3;
    cache = None;
    batch = false;
    dedup_cap = 8192;
    tabling = false;
    journal = Journal_off;
  }

type parked = {
  pk_peer : string;  (* the peer holding the goal *)
  pk_requester : string;  (* whom to answer *)
  pk_goal : Literal.t;
  mutable pk_waiting : (string * string) list;  (* (target, goal key) *)
  pk_request : int option;  (* top-level request id *)
}

(* Retransmission state of one outstanding sub-query. *)
type timer = {
  tm_goal : Literal.t;
  mutable tm_attempt : int;
  mutable tm_rto : int;
  mutable tm_next : int;  (* clock tick of the next retransmit/timeout *)
  tm_trace : Tctx.t option;
      (* trace context captured when the timer was armed, so retransmits
         and timeout denials stay on the originating negotiation's trace *)
  tm_path : (string * string) list option;
      (* [Some path] when the outstanding sub-query is a tabling Tquery;
         retransmits must resend the same payload kind *)
}

(* Delivery queue ordered by (deliver_at, envelope id): earliest delivery
   first, post order on ties — plain FIFO when no delays are injected. *)
module Dq = Map.Make (struct
  type t = int * int

  let compare = compare
end)

(* A peer's durable baseline, captured at reactor creation: the world a
   crash-stop restart falls back to before replaying its journal.  The
   KB value is immutable (cheap to hold); the cert/origin tables are
   copied. *)
type snapshot = {
  sn_kb : Kb.t;
  sn_certs : (string, Peertrust_crypto.Cert.t) Hashtbl.t;
  sn_origins : (int, string) Hashtbl.t;
}

(* Scheduled point events on the reactor timeline, merged with
   deliveries and timers (events first on ties). *)
type event =
  | Ev_crash of string
  | Ev_restart of string
  | Ev_deadline of int  (* request id *)

type t = {
  session : Session.t;
  config : config;
  guard : Guard.t;
  adversaries : (string, Net.Adversary.t) Hashtbl.t;
  mutable dq : Net.Envelope.t Dq.t;
  mutable next_synth : int;  (* ids for locally synthesized messages, < 0 *)
  rings : (string, Net.Dedup.t) Hashtbl.t;
  (* delivered envelope ids, one bounded dedup ring per receiving peer —
     volatile state a crash wipes for that peer alone *)
  timers : (string * string * string, timer) Hashtbl.t;
  (* (peer, target, goal key) -> resolved? — each sub-query is posted at
     most once per asking peer. *)
  pending : (string * string * string, bool ref) Hashtbl.t;
  (* (peer, target, goal key) -> instances of the last Answer *)
  answers : (string * string * string, Engine.instance list) Hashtbl.t;
  (* (peer, target, goal key) -> reason of the last Deny *)
  denials : (string * string * string, string) Hashtbl.t;
  mutable parked : parked list;
  results : (int, Negotiation.outcome) Hashtbl.t;
  mutable next_request : int;
  mutable budget_hit : bool;
  tabling_st : Tabling.t option;  (* present iff [config.tabling] *)
  (* -------- crash-stop machinery -------- *)
  mutable events : (int * event) list;  (* sorted by tick, stable *)
  incarnations : (string, int) Hashtbl.t;  (* peer -> current, 0 at boot *)
  observed_inc : (string * string, int) Hashtbl.t;
  (* (observer, sender) -> highest incarnation seen from sender *)
  last_crash : (string, int) Hashtbl.t;  (* peer -> tick of last crash *)
  snapshots : (string, snapshot) Hashtbl.t;
  journals : (string, Persist.Journal.t) Hashtbl.t;
  awaiting : (string, ((string * string * string) * timer) list) Hashtbl.t;
  (* crashed target -> sub-queries suspended until it restarts *)
  req_owner : (int, string) Hashtbl.t;  (* request id -> requester *)
}

type request = int

let create ?(config = default_config) session =
  if config.rto < 1 then invalid_arg "Reactor.create: rto must be >= 1";
  if config.retry_limit < 0 then
    invalid_arg "Reactor.create: retry_limit must be >= 0";
  (* Detach any synchronous handlers: reactor sessions route everything
     through the queue.  A handler that acks keeps Network.send usable for
     unrelated traffic without invoking the engine. *)
  Hashtbl.iter
    (fun name _ ->
      Net.Network.register session.Session.network name (fun ~from:_ _ ->
          Net.Message.Ack))
    session.Session.peers;
  let verify =
    if session.Session.config.Session.verify_signatures then fun c ->
      Peertrust_crypto.Cert.verify session.Session.keystore
        ~now:session.Session.config.Session.now c
      = Ok ()
    else fun _ -> true
  in
  let events =
    Net.Faults.crashes (Net.Network.faults session.Session.network)
    |> List.concat_map (fun (peer, at_tick, restart_tick) ->
           (at_tick, Ev_crash peer)
           ::
           (if restart_tick = max_int then []
            else [ (restart_tick, Ev_restart peer) ]))
    |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let snapshots = Hashtbl.create 8 in
  Hashtbl.iter
    (fun name (peer : Peer.t) ->
      Hashtbl.replace snapshots name
        {
          sn_kb = peer.Peer.kb;
          sn_certs = Hashtbl.copy peer.Peer.certs;
          sn_origins = Hashtbl.copy peer.Peer.origins;
        })
    session.Session.peers;
  let journals = Hashtbl.create 8 in
  (match config.journal with
  | Journal_off -> ()
  | Journal_memory ->
      Hashtbl.iter
        (fun name _ ->
          Hashtbl.replace journals name (Persist.Journal.in_memory ()))
        session.Session.peers
  | Journal_dir dir ->
      Hashtbl.iter
        (fun name _ ->
          Hashtbl.replace journals name (Persist.Journal.for_peer ~dir ~peer:name))
        session.Session.peers);
  let t =
    {
      session;
      config;
      guard =
        Guard.create ~config:session.Session.config.Session.guard ~verify ();
      adversaries = Hashtbl.create 4;
      dq = Dq.empty;
      next_synth = -1;
      rings = Hashtbl.create 8;
      timers = Hashtbl.create 16;
      pending = Hashtbl.create 64;
      answers = Hashtbl.create 64;
      denials = Hashtbl.create 16;
      parked = [];
      results = Hashtbl.create 8;
      next_request = 1;
      budget_hit = false;
      tabling_st =
        (if config.tabling then Some (Tabling.create session) else None);
      events;
      incarnations = Hashtbl.create 8;
      observed_inc = Hashtbl.create 16;
      last_crash = Hashtbl.create 8;
      snapshots;
      journals;
      awaiting = Hashtbl.create 8;
      req_owner = Hashtbl.create 8;
    }
  in
  (* Cross-process recovery: a disk journal left by an earlier process
     replays its knowledge into the freshly loaded world.  Goal entries
     are not auto-resubmitted across processes — the driver owns request
     ids — but [next_request] moves past them so ids never collide. *)
  (match config.journal with
  | Journal_dir _ ->
      let names =
        Hashtbl.fold (fun n _ acc -> n :: acc) journals []
        |> List.sort String.compare
      in
      List.iter
        (fun name ->
          match Persist.Journal.entries (Hashtbl.find journals name) with
          | Ok entries ->
              Persist.Journal.replay_peer (Session.peer session name) entries;
              List.iter
                (function
                  | Persist.Journal.Goal { id; _ } ->
                      if id >= t.next_request then t.next_request <- id + 1
                  | _ -> ())
                entries
          | Error _ -> ())
        names
  | Journal_off | Journal_memory -> ());
  t

let goal_key = Peer.goal_key
let now t = Net.Clock.now (Net.Network.clock t.session.Session.network)
let enqueue t env = t.dq <- Dq.add (env.Net.Envelope.deliver_at, env.Net.Envelope.id) env t.dq

(* The trace context a message sent right now should carry: the innermost
   open span's, [None] on untraced runs.  Callers that act on behalf of a
   message received earlier (retransmits, timeout denials) pass the
   context they captured instead. *)
let ambient_trace () =
  let tracer = Obs.tracer () in
  if Otracer.enabled tracer then Otracer.current_context tracer else None

let resolve_trace = function
  | Some _ as explicit -> explicit
  | None -> ambient_trace ()

(* Enqueue a locally synthesized message (not charged on the network):
   the denial a sender owes itself when a target is unreachable or a
   sub-query times out, or a cache replay. *)
let enqueue_synthetic ?trace t ~from ~target payload =
  let id = t.next_synth in
  t.next_synth <- id - 1;
  let at = now t in
  enqueue t
    {
      Net.Envelope.id;
      seq = 0;
      from_ = from;
      target;
      sent_at = at;
      deliver_at = at;
      attempt = 0;
      incarnation = 0;
      trace = resolve_trace trace;
      payload;
    }

let incarnation_of t peer =
  Option.value ~default:0 (Hashtbl.find_opt t.incarnations peer)

let journal_of t peer = Hashtbl.find_opt t.journals peer

(* Append one durable entry to a peer's journal (a no-op with
   journaling off).  Every append is one checkpoint write. *)
let jappend t peer entry =
  match journal_of t peer with
  | None -> ()
  | Some j ->
      Persist.Journal.append j entry;
      Metric.incr m_checkpoints

(* Post a message: account it on the network under the fault plan and
   enqueue the surviving copies.  An unreachable target of a query turns
   into a synthetic denial; other payloads to unreachable peers are
   counted and traced as reactor drops. *)
let post ?attempt ?trace t ~from ~target payload =
  Metric.incr m_posts;
  let trace = resolve_trace trace in
  match
    Net.Network.post t.session.Session.network ~from ~target ?attempt
      ~incarnation:(incarnation_of t from) ?trace payload
  with
  | envelopes -> List.iter (enqueue t) envelopes
  | exception Net.Network.Unreachable _ ->
      let rec unreachable payload =
        match payload with
        | Net.Message.Query { goal } ->
            enqueue_synthetic ?trace t ~from:target ~target:from
              (Net.Message.Deny { goal; reason = "unreachable" })
        | Net.Message.Tquery { goal; _ } ->
            enqueue_synthetic ?trace t ~from:target ~target:from
              (Net.Message.Deny { goal; reason = "unreachable" })
        | Net.Message.Batch payloads -> List.iter unreachable payloads
        | Net.Message.Answer _ | Net.Message.Deny _
        | Net.Message.Disclosure _ | Net.Message.Ack | Net.Message.Raw _
        | Net.Message.Tanswer _ | Net.Message.Tprobe _ | Net.Message.Tstat _
        | Net.Message.Tcomplete _ | Net.Message.Cancel _ ->
            Metric.incr m_drops;
            Otracer.event (Obs.tracer ())
              (Printf.sprintf "reactor.drop %s -> %s: %s (unreachable)" from
                 target
                 (Net.Message.summary payload));
            Log.debug (fun m ->
                m "dropping %s -> %s: %s (unreachable)" from target
                  (Net.Message.summary payload))
      in
      unreachable payload
  | exception Net.Network.Budget_exhausted -> t.budget_hit <- true

(* Retransmission timers only run under an active fault plan: without one
   every posted message is delivered, and spurious retransmits would
   perturb the fault-free transcript. *)
let resilient t =
  not (Net.Faults.is_none (Net.Network.faults t.session.Session.network))

let arm_timer ?trace ?path t ~peer ~target ~key goal =
  if resilient t then
    let pkey = (peer, target, key) in
    if not (Hashtbl.mem t.timers pkey) then
      Hashtbl.replace t.timers pkey
        {
          tm_goal = goal;
          tm_attempt = 0;
          tm_rto = t.config.rto;
          tm_next = now t + t.config.rto;
          tm_trace = resolve_trace trace;
          tm_path = path;
        }

(* Consult the answer cache (if configured) for a sub-query; [None] with
   the cache off. *)
let cache_find t ~asker ~owner goal =
  match t.config.cache with
  | None -> None
  | Some c -> Answer_cache.find c ~now:(now t) ~asker ~owner goal

(* Send one sub-query whose pending entry the caller has registered: a
   cache hit short-circuits into a locally synthesized Answer (no
   envelope, no timer); a miss posts the query and arms its
   retransmission timer. *)
let send_query ?trace t ~from ~target ~key goal =
  match cache_find t ~asker:from ~owner:target goal with
  | Some a ->
      Otracer.event (Obs.tracer ())
        (Printf.sprintf "reactor.cache_hit %s -> %s: %s" from target
           (Literal.to_string goal));
      enqueue_synthetic ?trace t ~from:target ~target:from
        (Net.Message.Answer
           {
             goal;
             instances = a.Answer_cache.instances;
             certs = a.Answer_cache.certs;
           })
  | None ->
      post ?trace t ~from ~target (Net.Message.Query { goal });
      arm_timer ?trace t ~peer:from ~target ~key goal

(* Post a sub-query, registering it as pending and arming its
   retransmission timer. *)
let post_query ?trace t ~from ~target ~key goal =
  Hashtbl.add t.pending (from, target, key) (ref false);
  send_query ?trace t ~from ~target ~key goal

(* Send a group of fresh sub-queries from one peer (pending entries
   already registered).  With batching on, cache misses bound for the
   same target coalesce into one Batch envelope — one envelope of
   transport accounting for the whole group — while each query keeps its
   own pending entry and retransmission timer (retries travel
   individually). *)
let flush_queries t ~from items =
  if not t.config.batch then
    List.iter
      (fun (target, key, goal) -> send_query t ~from ~target ~key goal)
      items
  else
    let to_send =
      List.filter
        (fun (target, key, goal) ->
          match cache_find t ~asker:from ~owner:target goal with
          | Some a ->
              Otracer.event (Obs.tracer ())
                (Printf.sprintf "reactor.cache_hit %s -> %s: %s" from target
                   (Literal.to_string goal));
              enqueue_synthetic t ~from:target ~target:from
                (Net.Message.Answer
                   {
                     goal;
                     instances = a.Answer_cache.instances;
                     certs = a.Answer_cache.certs;
                   });
              ignore key;
              false
          | None -> true)
        items
    in
    let targets =
      List.sort_uniq String.compare
        (List.map (fun (target, _, _) -> target) to_send)
    in
    List.iter
      (fun target ->
        let group =
          List.filter (fun (tg, _, _) -> String.equal tg target) to_send
        in
        (match group with
        | [ (_, _, goal) ] -> post t ~from ~target (Net.Message.Query { goal })
        | _ ->
            post t ~from ~target
              (Net.Message.Batch
                 (List.map
                    (fun (_, _, goal) -> Net.Message.Query { goal })
                    group)));
        List.iter
          (fun (_, key, goal) -> arm_timer t ~peer:from ~target ~key goal)
          group)
      targets

let resolve t pkey =
  (match Hashtbl.find_opt t.pending pkey with
  | Some resolved -> resolved := true
  | None -> Hashtbl.add t.pending pkey (ref true));
  Hashtbl.remove t.timers pkey

(* Put a batch of tabling posts on the wire.  Tqueries get a pending
   entry (so the guard's solicitation oracle accepts the eventual
   answers), a cache consult — a hit short-circuits into a synthetic
   final Tanswer, which is sound because the cache only ever holds
   completed tables — and a retransmission timer carrying the call path.
   Everything else (answer pushes, probe traffic) is fire-and-forget:
   losses are repaired by quiescence healing, not timers. *)
let tabling_send ?trace t posts =
  List.iter
    (fun { Tabling.p_from; p_target; p_payload } ->
      match p_payload with
      | Net.Message.Tquery { goal; path } -> (
          let key = goal_key goal in
          let pkey = (p_from, p_target, key) in
          if not (Hashtbl.mem t.pending pkey) then
            Hashtbl.add t.pending pkey (ref false);
          match cache_find t ~asker:p_from ~owner:p_target goal with
          | Some a ->
              Otracer.event (Obs.tracer ())
                (Printf.sprintf "reactor.cache_hit %s -> %s: %s" p_from
                   p_target (Literal.to_string goal));
              enqueue_synthetic ?trace t ~from:p_target ~target:p_from
                (Net.Message.Tanswer
                   {
                     goal;
                     instances = List.map fst a.Answer_cache.instances;
                     final = true;
                   })
          | None ->
              post ?trace t ~from:p_from ~target:p_target p_payload;
              arm_timer ?trace ~path t ~peer:p_from ~target:p_target ~key goal)
      | _ -> post ?trace t ~from:p_from ~target:p_target p_payload)
    posts

let with_tabling t f =
  match t.tabling_st with None -> () | Some tb -> tabling_send t (f tb)

(* Evaluate a goal at a peer with a collecting remote callback; either
   respond (true) or report the blocked sub-goals (false).  Work is done
   on [requester]'s behalf: each inner solve is capped at the
   requester's unspent guard quota and the steps actually burnt are
   charged against it. *)
let evaluate_goal t peer ~requester goal ~respond =
  let blocked = ref [] in
  let collector ~target lit =
    blocked := (target, lit) :: !blocked;
    []
  in
  let answer () =
    let remaining =
      Guard.remaining_work t.guard ~from:requester ~target:peer.Peer.name
    in
    if remaining = max_int then
      Engine.answer ~remote:collector t.session peer ~requester goal
    else begin
      let saved = peer.Peer.options in
      peer.Peer.options <-
        { saved with Sld.max_steps = min remaining saved.Sld.max_steps };
      let before = Metric.value m_sld_steps in
      Fun.protect
        ~finally:(fun () ->
          peer.Peer.options <- saved;
          Guard.charge_work t.guard ~from:requester ~target:peer.Peer.name
            (Metric.value m_sld_steps - before))
        (fun () -> Engine.answer ~remote:collector t.session peer ~requester goal)
    end
  in
  match answer () with
  | Ok (instances, certs) ->
      respond (Net.Message.Answer { goal; instances; certs });
      `Settled
  | Error reason ->
      let pairs =
        List.sort_uniq compare
          (List.map (fun (tg, lit) -> (tg, goal_key lit, lit)) !blocked)
      in
      let fresh = ref [] in
      let waiting =
        List.filter_map
          (fun (target, key, lit) ->
            let pkey = (peer.Peer.name, target, key) in
            match Hashtbl.find_opt t.pending pkey with
            | Some resolved -> if !resolved then None else Some (target, key)
            | None ->
                (* Register before sending so a later variant of the same
                   goal in [pairs] is not posted twice. *)
                Hashtbl.add t.pending pkey (ref false);
                fresh := (target, key, lit) :: !fresh;
                Some (target, key))
          pairs
      in
      flush_queries t ~from:peer.Peer.name (List.rev !fresh);
      if waiting = [] then begin
        respond (Net.Message.Deny { goal; reason });
        `Settled
      end
      else `Parked waiting

(* Checkpoint compaction threshold: once this many root goals have
   settled since the last compaction, the journal is rewritten without
   their Goal/Done pairs (and without duplicate knowledge entries). *)
let compact_after = 8

let maybe_compact t owner =
  match journal_of t owner with
  | None -> ()
  | Some j -> (
      match Persist.Journal.entries j with
      | Error _ -> ()
      | Ok entries ->
          let finished =
            List.filter_map
              (function Persist.Journal.Done { id } -> Some id | _ -> None)
              entries
          in
          if List.length finished >= compact_after then begin
            let live =
              List.filter
                (function
                  | Persist.Journal.Done { id } | Persist.Journal.Goal { id; _ }
                    ->
                      not (List.mem id finished)
                  | Persist.Journal.Cert _ | Persist.Journal.Fact _
                  | Persist.Journal.Answer _ ->
                      true)
                entries
            in
            let rec dedup acc = function
              | [] -> List.rev acc
              | e :: rest ->
                  if List.mem e acc then dedup acc rest
                  else dedup (e :: acc) rest
            in
            Persist.Journal.rewrite j (dedup [] live);
            Otracer.event (Obs.tracer ())
              (Printf.sprintf "reactor.compact %s journal -> %d entries" owner
                 (List.length live))
          end)

let settle_request t id outcome =
  if not (Hashtbl.mem t.results id) then begin
    Hashtbl.replace t.results id outcome;
    match Hashtbl.find_opt t.req_owner id with
    | None -> ()
    | Some owner ->
        jappend t owner (Persist.Journal.Done { id });
        maybe_compact t owner
  end

(* A transport-level denial (injected by the resilience machinery, not
   by the target's policies) or a guard rejection surfaces as a
   structured outcome reason. *)
let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let denial_reason t ~target pkey =
  match Hashtbl.find_opt t.denials pkey with
  | Some (( "timeout" | "unreachable" | "quarantined" | "rate-limited"
          | "quota" | "crashed" ) as structured) ->
      Printf.sprintf "%s: %s" structured target
  | Some reason when has_prefix ~prefix:"unsupported" reason ->
      (* A tabled evaluation hit a feature outside its fragment (NAF);
         keep the reason so {!Negotiation.classify_denial} sees it. *)
      reason
  | Some _ | None -> "denied by target"

(* Try to settle one parked goal; [true] when it is resolved. *)
let try_settle t p =
  let peer = Session.peer t.session p.pk_peer in
  match p.pk_request with
  | Some id -> (
      (* Top-level: resolved by its single sub-query. *)
      match p.pk_waiting with
      | [ (target, key) ] -> (
          let pkey = (p.pk_peer, target, key) in
          match Hashtbl.find_opt t.pending pkey with
          | Some { contents = true } ->
              (match Hashtbl.find_opt t.answers pkey with
              | Some instances -> settle_request t id (Negotiation.Granted instances)
              | None ->
                  settle_request t id
                    (Negotiation.Denied (denial_reason t ~target pkey)));
              true
          | Some _ | None -> false)
      | _ -> false)
  | None -> (
      let respond payload =
        post t ~from:p.pk_peer ~target:p.pk_requester payload
      in
      match evaluate_goal t peer ~requester:p.pk_requester p.pk_goal ~respond with
      | `Settled -> true
      | `Parked waiting ->
          p.pk_waiting <- waiting;
          false)

let reevaluate t peer_name =
  let mine, others =
    List.partition (fun p -> String.equal p.pk_peer peer_name) t.parked
  in
  let still = List.filter (fun p -> not (try_settle t p)) mine in
  t.parked <- still @ others

let handle_query t peer ~from goal =
  let respond payload = post t ~from:peer.Peer.name ~target:from payload in
  match evaluate_goal t peer ~requester:from goal ~respond with
  | `Settled -> ()
  | `Parked waiting ->
      Metric.incr m_parks;
      Log.debug (fun m ->
          m "%s parks %s for %s (%d sub-quer%s outstanding)" peer.Peer.name
            (Literal.to_string goal) from (List.length waiting)
            (if List.length waiting = 1 then "y" else "ies"));
      t.parked <-
        {
          pk_peer = peer.Peer.name;
          pk_requester = from;
          pk_goal = goal;
          pk_waiting = waiting;
          pk_request = None;
        }
        :: t.parked

(* Learn inbound certificates, journalling each one the peer did not
   already hold and that survived verification — checked against the
   wallet before and after so replaying the journal can never learn a
   certificate twice. *)
let learn_certs t (peer : Peer.t) ~from certs =
  let ckey (c : Peertrust_crypto.Cert.t) =
    Rule.canonical c.Peertrust_crypto.Cert.rule
  in
  let fresh =
    List.filter (fun c -> not (Hashtbl.mem peer.Peer.certs (ckey c))) certs
  in
  Engine.learn ~from_:from t.session peer certs;
  List.iter
    (fun c ->
      if Hashtbl.mem peer.Peer.certs (ckey c) then
        jappend t peer.Peer.name (Persist.Journal.Cert c))
    fresh

let rec dispatch t ~synthetic (from, target, payload) =
  match Hashtbl.find_opt t.session.Session.peers target with
  | None -> ()
  | Some peer -> (
      match payload with
      | Net.Message.Query { goal } -> handle_query t peer ~from goal
      | Net.Message.Answer { goal; instances; certs } ->
          learn_certs t peer ~from certs;
          List.iter
            (fun ((inst : Literal.t), _) ->
              if Literal.is_ground inst then begin
                let r =
                  Rule.fact (Literal.push_authority inst (Term.str from))
                in
                if not (Kb.mem r peer.Peer.kb) then
                  jappend t target (Persist.Journal.Fact r);
                Peer.add_rule peer r
              end)
            instances;
          (* Fill the cache from answers that travelled the wire; replayed
             (synthetic) hits must not refresh their own TTL. *)
          (match t.config.cache with
          | Some c when not synthetic ->
              Answer_cache.store c ~now:(now t) ~asker:target ~owner:from
                goal
                { Answer_cache.instances; certs }
          | Some _ | None -> ());
          let pkey = (target, from, goal_key goal) in
          Hashtbl.replace t.answers pkey instances;
          resolve t pkey;
          reevaluate t target
      | Net.Message.Deny { goal; reason } ->
          (* When tabling is on, a denial may kill a table's dependency
             view; the failure cascades to the view's dependent tables. *)
          with_tabling t (fun tb ->
              Tabling.handle_deny tb ~consumer:target ~from goal reason);
          let pkey = (target, from, goal_key goal) in
          if not (Hashtbl.mem t.answers pkey) then
            Hashtbl.replace t.denials pkey reason;
          resolve t pkey;
          reevaluate t target
      | Net.Message.Disclosure { certs; _ } ->
          learn_certs t peer ~from certs;
          reevaluate t target
      | Net.Message.Cancel { goal } ->
          (* The requester withdrew this goal (deadline expiry): drop
             the work parked on its behalf; sub-queries the evaluation
             already posted resolve into answers nobody consumes. *)
          let key = goal_key goal in
          let cancelled, kept =
            List.partition
              (fun p ->
                p.pk_request = None
                && String.equal p.pk_peer target
                && String.equal p.pk_requester from
                && String.equal (goal_key p.pk_goal) key)
              t.parked
          in
          List.iter
            (fun _ ->
              Metric.incr m_cancelled_goals;
              Otracer.event (Obs.tracer ())
                (Printf.sprintf "reactor.cancelled %s withdraws %s at %s" from
                   key target))
            cancelled;
          t.parked <- kept
      | Net.Message.Batch payloads ->
          List.iter (fun p -> dispatch t ~synthetic (from, target, p)) payloads
      | Net.Message.Ack -> ()
      | Net.Message.Raw _ ->
          (* Garbage on the wire: without a guard there is nothing to do
             with it; the guard layer rejects it before dispatch. *)
          ()
      | Net.Message.Tquery { goal; path } ->
          with_tabling t (fun tb ->
              Tabling.handle_query tb ~owner:target ~from ~path goal)
      | Net.Message.Tanswer { goal; instances; final } ->
          with_tabling t (fun tb ->
              Tabling.handle_answer tb ~consumer:target ~from goal instances
                ~final);
          let pkey = (target, from, goal_key goal) in
          if final then begin
            (* Only completed tables reach the cache: the [completed]
               gate makes a premature (still-in-SCC) store impossible. *)
            (match t.config.cache with
            | Some c when not synthetic ->
                Answer_cache.store ~completed:true c ~now:(now t)
                  ~asker:target ~owner:from goal
                  {
                    Answer_cache.instances =
                      List.map (fun i -> (i, None)) instances;
                    certs = [];
                  }
            | Some _ | None -> ());
            jappend t target
              (Persist.Journal.Answer { owner = from; goal; instances });
            Hashtbl.replace t.answers pkey
              (List.map (fun i -> (i, None)) instances);
            resolve t pkey;
            reevaluate t target
          end
          else
            (* A non-final push proves the link is alive — stand the
               retransmission timer down, but keep the request pending
               until the table completes. *)
            Hashtbl.remove t.timers pkey
      | Net.Message.Tprobe { leader; epoch; members } ->
          with_tabling t (fun tb ->
              Tabling.handle_probe tb ~peer:target ~from
                (leader, epoch, members))
      | Net.Message.Tstat { leader; epoch; entries } ->
          with_tabling t (fun tb ->
              Tabling.handle_stat tb ~peer:target ~from
                (leader, epoch, entries))
      | Net.Message.Tcomplete { leader; epoch; members } ->
          with_tabling t (fun tb ->
              Tabling.handle_complete tb ~peer:target
                (leader, epoch, members)))

(* Insert a scheduled event keeping the list sorted by tick; among
   equal ticks, earlier insertions fire first. *)
let insert_event t tick ev =
  let rec go = function
    | (tk, e) :: rest when tk <= tick -> (tk, e) :: go rest
    | later -> (tick, ev) :: later
  in
  t.events <- go t.events

(* Put a root goal in flight under an already allocated request id —
   shared by {!submit} and crash recovery, which re-launches a goal
   recovered from the journal under its original id. *)
let launch_root ?trace t ~id ~requester ~target goal =
  let key = goal_key goal in
  (match t.tabling_st with
  | Some tb ->
      Tabling.register_root tb ~consumer:requester ~owner:target goal;
      tabling_send ?trace t
        [
          {
            Tabling.p_from = requester;
            p_target = target;
            p_payload = Net.Message.Tquery { goal; path = [] };
          };
        ]
  | None ->
      if not (Hashtbl.mem t.pending (requester, target, key)) then
        post_query ?trace t ~from:requester ~target ~key goal);
  let p =
    {
      pk_peer = requester;
      pk_requester = requester;
      pk_goal = goal;
      pk_waiting = [ (target, key) ];
      pk_request = Some id;
    }
  in
  if not (try_settle t p) then t.parked <- p :: t.parked

let submit ?deadline t ~requester ~target goal =
  let id = t.next_request in
  t.next_request <- id + 1;
  Hashtbl.replace t.req_owner id requester;
  let key = goal_key goal in
  (* Root of the causal trace: join the ambient context (a surrounding
     [Negotiation.measure] span) or mint a fresh trace, and record the
     request itself as a zero-width span so every downstream span — on
     any peer — hangs off one negotiation root. *)
  let trace =
    let tracer = Obs.tracer () in
    if not (Otracer.enabled tracer) then None
    else
      let ctx =
        match Otracer.current_context tracer with
        | Some _ as ambient -> ambient
        | None -> Otracer.mint tracer
      in
      match ctx with
      | None -> None
      | Some c -> (
          match
            Otracer.record tracer ~ctx:c
              ~attrs:
                [
                  ("peer", Ojson.Str requester);
                  ("requester", Ojson.Str requester);
                  ("target", Ojson.Str target);
                  ("goal", Ojson.Str key);
                ]
              ~name:"negotiation.request" ~start_ticks:(now t)
              ~end_ticks:(now t) ()
          with
          | Some span -> Some (Tctx.child c ~parent_span:span.Peertrust_obs.Span.id)
          | None -> Some c)
  in
  (* The accepted goal is the journal's recovery anchor: a restart
     re-launches every Goal entry with no matching Done. *)
  jappend t requester (Persist.Journal.Goal { id; target; goal });
  Option.iter
    (fun tick ->
      if tick < 0 then invalid_arg "Reactor.submit: deadline must be >= 0";
      insert_event t tick (Ev_deadline id))
    deadline;
  launch_root ?trace t ~id ~requester ~target goal;
  id

(* ------------------------------------------------------------------ *)
(* Event loop: deliveries and retransmission timers on one timeline *)

let next_timer t =
  Hashtbl.fold
    (fun key tm acc ->
      match acc with
      | Some (bt, bk, _) when (bt, bk) <= (tm.tm_next, key) -> acc
      | Some _ | None -> Some (tm.tm_next, key, tm))
    t.timers None

let clock_to t tick =
  Net.Clock.advance_to (Net.Network.clock t.session.Session.network) tick

let restart_upcoming t name =
  List.exists
    (fun (_, ev) -> match ev with Ev_restart p -> String.equal p name | _ -> false)
    t.events

(* A timer came due: retransmit with doubled timeout while the retry
   budget lasts, then give up.  Exhaustion against a live target is a
   timeout denial; against a crashed target it is a [crashed] denial —
   unless a restart is scheduled, in which case the sub-query is
   suspended and reissued the moment the target comes back. *)
let fire_timer t ((peer, target, _key) as pkey) tm =
  clock_to t tm.tm_next;
  (* Timer work runs outside any negotiation span, so the captured
     context re-attaches it to the originating trace; the retransmit
     (resp. denial) is posted inside the span and inherits from it. *)
  let in_span name body =
    let tracer = Obs.tracer () in
    if Otracer.enabled tracer then
      Otracer.with_span tracer ?ctx:tm.tm_trace
        ~attrs:
          [
            ("peer", Ojson.Str peer);
            ("target", Ojson.Str target);
            ("goal", Ojson.Str (goal_key tm.tm_goal));
            ("attempt", Ojson.Int tm.tm_attempt);
          ]
        name body
    else body ()
  in
  if tm.tm_attempt < t.config.retry_limit then begin
    tm.tm_attempt <- tm.tm_attempt + 1;
    tm.tm_rto <- tm.tm_rto * 2;
    tm.tm_next <- now t + tm.tm_rto;
    Metric.incr m_retries;
    Log.debug (fun m ->
        m "retry #%d %s -> %s: %s" tm.tm_attempt peer target
          (Literal.to_string tm.tm_goal));
    in_span "reactor.retry" (fun () ->
        Otracer.event (Obs.tracer ())
          (Printf.sprintf "reactor.retry #%d %s -> %s: %s" tm.tm_attempt peer
             target
             (Literal.to_string tm.tm_goal));
        let payload =
          match tm.tm_path with
          | Some path -> Net.Message.Tquery { goal = tm.tm_goal; path }
          | None -> Net.Message.Query { goal = tm.tm_goal }
        in
        post ~attempt:tm.tm_attempt t ~from:peer ~target payload)
  end
  else begin
    Hashtbl.remove t.timers pkey;
    Metric.incr m_timeouts;
    let crashed =
      Net.Faults.in_crash
        (Net.Network.faults t.session.Session.network)
        target ~now:(now t)
    in
    if crashed && restart_upcoming t target then begin
      Log.debug (fun m ->
          m "suspend %s -> %s: %s (awaiting restart)" peer target
            (Literal.to_string tm.tm_goal));
      in_span "reactor.timeout" (fun () ->
          Otracer.event (Obs.tracer ())
            (Printf.sprintf
               "reactor.timeout %s -> %s: %s (suspended awaiting restart)"
               peer target
               (Literal.to_string tm.tm_goal)));
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt t.awaiting target)
      in
      Hashtbl.replace t.awaiting target (prev @ [ (pkey, tm) ])
    end
    else begin
      let reason = if crashed then "crashed" else "timeout" in
      Log.debug (fun m ->
          m "%s %s -> %s: %s" reason peer target
            (Literal.to_string tm.tm_goal));
      in_span "reactor.timeout" (fun () ->
          Otracer.event (Obs.tracer ())
            (Printf.sprintf "reactor.%s %s -> %s: %s (after %d retries)"
               reason peer target
               (Literal.to_string tm.tm_goal)
               tm.tm_attempt);
          enqueue_synthetic t ~from:target ~target:peer
            (Net.Message.Deny { goal = tm.tm_goal; reason }))
    end
  end

(* The guard's solicitation oracle: does [target] have this sub-query
   outstanding toward [from]? *)
let solicited_by t ~from ~target goal =
  match Hashtbl.find_opt t.pending (target, from, goal_key goal) with
  | None -> `Unknown
  | Some resolved -> if !resolved then `Resolved else `Outstanding

(* A rejected query still owes its sender a reply — the honest reading
   of a rejection is a denial, and an honest requester that trips a
   limit must terminate with a structured outcome rather than hang.
   One Deny per query inside the payload (1:1, no amplification);
   rejected non-query payloads are dropped silently. *)
let reject_payload t ~from ~target violation payload =
  let reason = Guard.denial_reason violation in
  let rec deny = function
    | Net.Message.Query { goal } ->
        post t ~from:target ~target:from (Net.Message.Deny { goal; reason })
    | Net.Message.Tquery { goal; _ } ->
        post t ~from:target ~target:from (Net.Message.Deny { goal; reason })
    | Net.Message.Batch payloads -> List.iter deny payloads
    | Net.Message.Answer _ | Net.Message.Deny _ | Net.Message.Disclosure _
    | Net.Message.Ack | Net.Message.Raw _ | Net.Message.Tanswer _
    | Net.Message.Tprobe _ | Net.Message.Tstat _ | Net.Message.Tcomplete _
    | Net.Message.Cancel _ ->
        ()
  in
  deny payload

(* Inbound traffic for a registered adversary: let it misbehave in
   response. *)
let dispatch_adversary t adv ~from payload =
  List.iter
    (fun { Net.Adversary.act_target; act_payload } ->
      post t ~from:(Net.Adversary.name adv) ~target:act_target act_payload)
    (Net.Adversary.react adv ~from payload)

(* Goal skeleton of a payload, for span attributes. *)
let payload_goal = function
  | Net.Message.Query { goal }
  | Net.Message.Answer { goal; _ }
  | Net.Message.Deny { goal; _ }
  | Net.Message.Tquery { goal; _ }
  | Net.Message.Tanswer { goal; _ }
  | Net.Message.Cancel { goal } ->
      Some (goal_key goal)
  | Net.Message.Batch _ | Net.Message.Disclosure _ | Net.Message.Ack
  | Net.Message.Raw _ | Net.Message.Tprobe _ | Net.Message.Tstat _
  | Net.Message.Tcomplete _ ->
      None

let ring_of t target =
  match Hashtbl.find_opt t.rings target with
  | Some r -> r
  | None ->
      let r = Net.Dedup.create ~cap:t.config.dedup_cap in
      Hashtbl.replace t.rings target r;
      r

(* Incarnation hygiene for an envelope that travelled the wire: discard
   anything sent by an incarnation that has since crashed (its sender
   died after posting), and anything stamped with a lower incarnation
   than the receiver has already observed from that sender. *)
let stale_incarnation t (env : Net.Envelope.t) =
  match Hashtbl.find_opt t.last_crash env.Net.Envelope.from_ with
  | Some ct when env.Net.Envelope.sent_at < ct -> true
  | Some _ | None ->
      let okey = (env.Net.Envelope.target, env.Net.Envelope.from_) in
      let observed =
        Option.value ~default:0 (Hashtbl.find_opt t.observed_inc okey)
      in
      if env.Net.Envelope.incarnation < observed then true
      else begin
        if env.Net.Envelope.incarnation > observed then
          Hashtbl.replace t.observed_inc okey env.Net.Envelope.incarnation;
        false
      end

let deliver_envelope t env =
  clock_to t env.Net.Envelope.deliver_at;
  let wire = env.Net.Envelope.id >= 0 in
  if
    wire
    && Net.Faults.in_crash
         (Net.Network.faults t.session.Session.network)
         env.Net.Envelope.target ~now:(now t)
  then begin
    (* Landed inside the target's crash window (e.g. a multi-tick delay
       bridged the crash): the dead peer hears nothing. *)
    Metric.incr m_crash_drops;
    Otracer.event (Obs.tracer ())
      (Printf.sprintf "reactor.crash_drop %s" (Net.Envelope.summary env))
  end
  else if wire && stale_incarnation t env then begin
    Metric.incr m_stale_epoch;
    Otracer.event (Obs.tracer ())
      (Printf.sprintf "reactor.stale_epoch %s" (Net.Envelope.summary env))
  end
  else if Net.Dedup.mem (ring_of t env.Net.Envelope.target) env.Net.Envelope.id
  then begin
    Metric.incr m_dup_deliveries;
    Otracer.event (Obs.tracer ())
      (Printf.sprintf "reactor.duplicate %s" (Net.Envelope.summary env))
  end
  else begin
    if Net.Dedup.add (ring_of t env.Net.Envelope.target) env.Net.Envelope.id
    then Metric.incr m_dedup_evictions;
    let from = env.Net.Envelope.from_ in
    let target = env.Net.Envelope.target in
    let payload = env.Net.Envelope.payload in
    let tracer = Obs.tracer () in
    let body () =
      match Hashtbl.find_opt t.adversaries target with
      | Some adv -> dispatch_adversary t adv ~from payload
      | None ->
          (* Synthetic envelopes (ids < 0) are the reactor's own bookkeeping
             — cache replays, timeout/unreachable denials — and bypass the
             guard; everything that travelled the wire is judged first. *)
          if env.Net.Envelope.id < 0 || not (Hashtbl.mem t.session.Session.peers target)
          then dispatch t ~synthetic:(env.Net.Envelope.id < 0) (from, target, payload)
          else
            match
              Guard.admit t.guard ~now:(now t) ~from ~target
                ~solicited:(solicited_by t ~from ~target)
                payload
            with
            | Guard.Admit -> dispatch t ~synthetic:false (from, target, payload)
            | Guard.Stale why ->
                Otracer.event tracer
                  (Printf.sprintf "guard.stale %s -> %s: %s" from target why)
            | Guard.Reject violation ->
                Otracer.set_attr tracer "denial.class"
                  (Ojson.Str
                     (Negotiation.denial_class_to_string
                        (Negotiation.classify_denial
                           (Guard.denial_reason violation))));
                reject_payload t ~from ~target violation payload
    in
    (* Join the sender's trace: reconstruct the wire transit as a
       retrospective span (real envelopes only — synthetic ones never
       travelled), then process the delivery in a receive span parented
       under it, so cross-peer causality survives the queue. *)
    match env.Net.Envelope.trace with
    | Some c when Otracer.enabled tracer && c.Tctx.sampled ->
        let kind = Net.Stats.kind_to_string (Net.Message.kind payload) in
        let ctx =
          if env.Net.Envelope.id < 0 then c
          else
            match
              Otracer.record tracer ~ctx:c
                ~attrs:
                  [
                    ("from", Ojson.Str from);
                    ("target", Ojson.Str target);
                    ("kind", Ojson.Str kind);
                    ("attempt", Ojson.Int env.Net.Envelope.attempt);
                  ]
                ~name:"net.wire" ~start_ticks:env.Net.Envelope.sent_at
                ~end_ticks:env.Net.Envelope.deliver_at ()
            with
            | Some span ->
                Tctx.child c ~parent_span:span.Peertrust_obs.Span.id
            | None -> c
        in
        let attrs =
          [
            ("peer", Ojson.Str target);
            ("requester", Ojson.Str from);
            ("kind", Ojson.Str kind);
          ]
          @
          match payload_goal payload with
          | Some g -> [ ("goal", Ojson.Str g) ]
          | None -> []
        in
        Otracer.with_span tracer ~ctx ~attrs ("recv." ^ kind) body
    | Some _ | None -> body ()
  end

(* ------------------------------------------------------------------ *)
(* Crash-stop: scheduled crash, restart and deadline events *)

let journaling t = t.config.journal <> Journal_off

(* Wipe everything volatile a crash-stop destroys at [name]: in-flight
   deliveries addressed to it, its own outstanding sub-queries, parked
   goals, dedup ring, guard admission state, cached answers, tables —
   and roll its knowledge back to the boot snapshot.  The journal (held
   by the reactor, standing in for a synced disk) survives. *)
let crash_peer t name =
  Metric.incr m_crashes;
  Hashtbl.replace t.last_crash name (now t);
  Otracer.event (Obs.tracer ())
    (Printf.sprintf "reactor.crash %s @%d" name (now t));
  Log.debug (fun m -> m "%s crashes at %d" name (now t));
  (* In-flight envelopes addressed to the dead peer: wire ones were sent
     at a live incarnation and die with it (stale epoch); synthetic ones
     are its own bookkeeping and vanish silently. *)
  let doomed =
    Dq.fold
      (fun k (env : Net.Envelope.t) acc ->
        if String.equal env.Net.Envelope.target name then
          (k, env.Net.Envelope.id >= 0) :: acc
        else acc)
      t.dq []
  in
  List.iter
    (fun (k, wire) ->
      t.dq <- Dq.remove k t.dq;
      if wire then Metric.incr m_stale_epoch)
    doomed;
  let drop_mine tbl =
    let stale =
      Hashtbl.fold
        (fun ((p, _, _) as k) _ acc ->
          if String.equal p name then k :: acc else acc)
        tbl []
    in
    List.iter (Hashtbl.remove tbl) stale
  in
  drop_mine t.timers;
  drop_mine t.pending;
  drop_mine t.answers;
  drop_mine t.denials;
  Hashtbl.remove t.rings name;
  Guard.reset_peer t.guard name;
  (match t.config.cache with
  | Some c ->
      ignore (Answer_cache.invalidate_asker c name : int);
      ignore (Answer_cache.invalidate_owner c name : int)
  | None -> ());
  (match t.tabling_st with Some tb -> Tabling.crash tb name | None -> ());
  let mine, others =
    List.partition (fun p -> String.equal p.pk_peer name) t.parked
  in
  t.parked <- others;
  List.iter
    (fun p ->
      match p.pk_request with
      | Some _ when journaling t && restart_upcoming t name ->
          (* the journal's Goal entry re-launches it at restart *)
          ()
      | Some id -> settle_request t id (Negotiation.Denied "peer crashed")
      | None -> ())
    mine;
  match Hashtbl.find_opt t.snapshots name with
  | Some sn ->
      let peer = Session.peer t.session name in
      peer.Peer.kb <- sn.sn_kb;
      Hashtbl.reset peer.Peer.certs;
      Hashtbl.iter (Hashtbl.replace peer.Peer.certs) sn.sn_certs;
      Hashtbl.reset peer.Peer.origins;
      Hashtbl.iter (Hashtbl.replace peer.Peer.origins) sn.sn_origins
  | None -> ()

(* A restart brings the peer back under a bumped incarnation: replay the
   journal (knowledge first, then unfinished root goals), then reissue
   the sub-queries counterparties had suspended awaiting the restart. *)
let restart_peer t name =
  Metric.incr m_restarts;
  let inc = incarnation_of t name + 1 in
  Hashtbl.replace t.incarnations name inc;
  Otracer.event (Obs.tracer ())
    (Printf.sprintf "reactor.restart %s (incarnation %d)" name inc);
  Log.debug (fun m ->
      m "%s restarts at %d (incarnation %d)" name (now t) inc);
  (match journal_of t name with
  | None -> ()
  | Some j -> (
      match Persist.Journal.entries j with
      | Error _ -> ()  (* mid-stream corruption: restart cold *)
      | Ok entries ->
          let peer = Session.peer t.session name in
          Persist.Journal.replay_peer peer entries;
          (match t.config.cache with
          | Some c ->
              List.iter
                (function
                  | Persist.Journal.Answer { owner; goal; instances } ->
                      Answer_cache.store ~completed:true c ~now:(now t)
                        ~asker:name ~owner goal
                        {
                          Answer_cache.instances =
                            List.map (fun i -> (i, None)) instances;
                          certs = [];
                        }
                  | _ -> ())
                entries
          | None -> ());
          let finished =
            List.filter_map
              (function Persist.Journal.Done { id } -> Some id | _ -> None)
              entries
          in
          List.iter
            (function
              | Persist.Journal.Goal { id; target; goal }
                when (not (List.mem id finished))
                     && not (Hashtbl.mem t.results id) ->
                  Metric.incr m_recovered_goals;
                  Otracer.event (Obs.tracer ())
                    (Printf.sprintf "reactor.recover %s request#%d: %s" name
                       id (goal_key goal));
                  launch_root t ~id ~requester:name ~target goal
              | _ -> ())
            entries));
  match Hashtbl.find_opt t.awaiting name with
  | None -> ()
  | Some suspended ->
      Hashtbl.remove t.awaiting name;
      List.iter
        (fun (((peer, target, _) as pkey), tm) ->
          match Hashtbl.find_opt t.pending pkey with
          | Some { contents = false } ->
              Metric.incr m_reissued;
              Otracer.event (Obs.tracer ())
                (Printf.sprintf "reactor.reissue %s -> %s: %s" peer target
                   (Literal.to_string tm.tm_goal));
              tm.tm_attempt <- 0;
              tm.tm_rto <- t.config.rto;
              tm.tm_next <- now t + t.config.rto;
              Hashtbl.replace t.timers pkey tm;
              let payload =
                match tm.tm_path with
                | Some path ->
                    Net.Message.Tquery { goal = tm.tm_goal; path }
                | None -> Net.Message.Query { goal = tm.tm_goal }
              in
              post ?trace:tm.tm_trace t ~from:peer ~target payload
          | Some _ | None -> ())
        suspended

(* The requester's deadline passed with the request unsettled: deny it
   and withdraw its outstanding sub-queries with Cancel messages so
   counterparties drop the parked work. *)
let expire_deadline t id =
  if not (Hashtbl.mem t.results id) then begin
    Metric.incr m_deadline_expiries;
    let requester =
      Option.value ~default:"" (Hashtbl.find_opt t.req_owner id)
    in
    Otracer.event (Obs.tracer ())
      (Printf.sprintf "reactor.deadline request#%d at %s expired" id
         requester);
    let mine =
      Hashtbl.fold
        (fun ((p, _, _) as k) tm acc ->
          if String.equal p requester then (k, tm) :: acc else acc)
        t.timers []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter
      (fun (((_, target, _) as pkey), tm) ->
        Metric.incr m_cancels;
        resolve t pkey;
        post ?trace:tm.tm_trace t ~from:requester ~target
          (Net.Message.Cancel { goal = tm.tm_goal }))
      mine;
    let akeys = Hashtbl.fold (fun k _ acc -> k :: acc) t.awaiting [] in
    List.iter
      (fun k ->
        Hashtbl.replace t.awaiting k
          (List.filter
             (fun ((p, _, _), _) -> not (String.equal p requester))
             (Hashtbl.find t.awaiting k)))
      akeys;
    t.parked <- List.filter (fun p -> p.pk_request <> Some id) t.parked;
    settle_request t id (Negotiation.Denied "deadline expired")
  end

let process_event t = function
  | Ev_crash name -> crash_peer t name
  | Ev_restart name -> restart_peer t name
  | Ev_deadline id -> expire_deadline t id

(* Process the next event — a scheduled crash/restart/deadline, a
   delivery or a timer, whichever is due first (scheduled events win
   ties, then deliveries); [false] when all timelines are empty. *)
let step t =
  let ev_tick = match t.events with [] -> max_int | (tk, _) :: _ -> tk in
  let dv = Dq.min_binding_opt t.dq in
  let tmr = next_timer t in
  let dq_tick = match dv with Some ((at, _), _) -> at | None -> max_int in
  let tm_tick = match tmr with Some (tt, _, _) -> tt | None -> max_int in
  if ev_tick = max_int && dv = None && tmr = None then false
  else if ev_tick <= dq_tick && ev_tick <= tm_tick then begin
    (match t.events with
    | (tick, ev) :: rest ->
        t.events <- rest;
        clock_to t tick;
        process_event t ev
    | [] -> assert false);
    true
  end
  else
    match (dv, tmr) with
    | Some (dkey, env), _ when dq_tick <= tm_tick ->
        t.dq <- Dq.remove dkey t.dq;
        deliver_envelope t env;
        true
    | _, Some (_, tkey, tm) ->
        fire_timer t tkey tm;
        true
    | _ -> assert false

(* At quiescence, parked goals form dependency cycles (or wait on goals
   that do).  Force-deny one non-top-level goal to break the cycle — the
   finite-failure reading of cyclic policies — and let the denial
   propagate; top-level survivors are denied as quiescent. *)
let break_quiescence t =
  match
    List.partition (fun p -> p.pk_request = None) t.parked
  with
  | p :: rest, tops ->
      t.parked <- rest @ tops;
      post t ~from:p.pk_peer ~target:p.pk_requester
        (Net.Message.Deny { goal = p.pk_goal; reason = "negotiation cycle" });
      true
  | [], p :: rest -> (
      match p.pk_request with
      | Some id ->
          settle_request t id (Negotiation.Denied "negotiation quiescent");
          t.parked <- rest;
          true
      | None -> false)
  | [], [] -> false

(* Tabling's quiescence hook: heal lagging views, then (if all in sync)
   start an SCC probe epoch.  Runs before [break_quiescence] so cyclic
   tabled goals complete rather than being force-denied. *)
let tabling_quiesce t =
  match t.tabling_st with
  | None -> false
  | Some tb -> (
      match Tabling.quiesce tb with
      | [] -> false
      | posts ->
          tabling_send t posts;
          true)

let run_inner ?(max_steps = 100_000) t =
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < max_steps && not t.budget_hit do
    if step t then begin
      incr steps;
      Metric.incr m_steps
    end
    else if tabling_quiesce t then Metric.incr m_steps
    else if break_quiescence t then Metric.incr m_quiescence_breaks
    else continue := false
  done;
  if t.budget_hit then
    List.iter
      (fun p ->
        match p.pk_request with
        | Some id ->
            settle_request t id (Negotiation.Denied "message budget exhausted")
        | None -> ())
      t.parked;
  !steps

let run ?max_steps t =
  let steps =
    let tracer = Obs.tracer () in
    if Otracer.enabled tracer then
      Otracer.with_span tracer "reactor.run" (fun () ->
          let steps = run_inner ?max_steps t in
          Otracer.set_attr tracer "steps" (Peertrust_obs.Json.Int steps);
          steps)
    else run_inner ?max_steps t
  in
  Metric.observe_int h_steps steps;
  Metric.set g_outstanding
    (float_of_int
       (Hashtbl.fold
          (fun _ resolved acc -> if !resolved then acc else acc + 1)
          t.pending 0));
  Metric.set g_parked (float_of_int (List.length t.parked));
  steps

let result t id = Hashtbl.find_opt t.results id

let outcome t id =
  match result t id with
  | Some o -> o
  | None -> Negotiation.Denied "negotiation quiescent"

let parked_count t = List.length t.parked
let pending_timers t = Hashtbl.length t.timers

let tabling_summary t =
  match t.tabling_st with None -> [] | Some tb -> Tabling.summary tb
let guard t = t.guard
let dedup_evictions t =
  Hashtbl.fold (fun _ ring acc -> acc + Net.Dedup.evictions ring) t.rings 0

(* Register an adversary: give it a network identity (an inert handler,
   so posts to it succeed) and queue its opening burst against
   [targets] (default: every honest session peer). *)
let add_adversary ?targets t adv =
  let name = Net.Adversary.name adv in
  Net.Network.register t.session.Session.network name (fun ~from:_ _ ->
      Net.Message.Ack);
  Hashtbl.replace t.adversaries name adv;
  let targets =
    match targets with
    | Some l -> l
    | None -> Session.peer_names t.session
  in
  List.iter
    (fun { Net.Adversary.act_target; act_payload } ->
      post t ~from:name ~target:act_target act_payload)
    (Net.Adversary.burst adv ~targets)

let negotiate ?config ?max_steps ?(adversaries = []) session ~requester
    ~target goal =
  Negotiation.measure session (fun () ->
      let tracer = Obs.tracer () in
      if Otracer.enabled tracer then begin
        Otracer.set_attr tracer "requester" (Ojson.Str requester);
        Otracer.set_attr tracer "target" (Ojson.Str target);
        Otracer.set_attr tracer "goal" (Ojson.Str (goal_key goal))
      end;
      let t = create ?config session in
      List.iter (add_adversary t) adversaries;
      let id = submit t ~requester ~target goal in
      ignore (run ?max_steps t);
      outcome t id)

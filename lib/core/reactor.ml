open Peertrust_dlp
module Net = Peertrust_net
module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer
module Ojson = Peertrust_obs.Json
module Tctx = Peertrust_obs.Trace_context

let src = Logs.Src.create "peertrust.reactor" ~doc:"PeerTrust queued engine"

module Log = (val Logs.src_log src : Logs.LOG)

let m_steps = Obs.counter "reactor.steps"
let m_posts = Obs.counter "reactor.posts"
let m_parks = Obs.counter "reactor.parks"
let m_quiescence_breaks = Obs.counter "reactor.quiescence_breaks"
let m_drops = Obs.counter "reactor.drops"
let m_retries = Obs.counter "reactor.retries"
let m_timeouts = Obs.counter "reactor.timeouts"
let m_dup_deliveries = Obs.counter "reactor.dup_deliveries"
let m_dedup_evictions = Obs.counter "reactor.dedup_evictions"
let h_steps = Obs.histogram "reactor.steps_per_run"

(* The SLD step counter, shared with the solver through the registry:
   the delta around an evaluation is the work charged against the
   requester's guard quota. *)
let m_sld_steps = Obs.counter "sld.steps"

type config = {
  rto : int;  (* initial retransmission timeout, ticks *)
  retry_limit : int;  (* retransmissions per sub-query before timeout *)
  cache : Answer_cache.t option;
  (* answer cache consulted before posting a sub-query and filled on
     answer delivery; pass one reactor's cache to the next for the
     shared cross-session mode *)
  batch : bool;
  (* coalesce same-tick sub-queries to one peer into a single Batch
     envelope *)
  dedup_cap : int;
  (* capacity of the delivered-envelope-id dedup set; past it the
     oldest ids are forgotten (counted as reactor.dedup_evictions) *)
  tabling : bool;
  (* route requests through distributed tabling: per-goal tables at the
     owning peer, monotone answer views, SCC completion at quiescence —
     terminates on mutually recursive cross-peer policies.  Off by
     default; fault-free transcripts with tabling off are unchanged. *)
}

let default_config =
  {
    rto = 8;
    retry_limit = 3;
    cache = None;
    batch = false;
    dedup_cap = 8192;
    tabling = false;
  }

type parked = {
  pk_peer : string;  (* the peer holding the goal *)
  pk_requester : string;  (* whom to answer *)
  pk_goal : Literal.t;
  mutable pk_waiting : (string * string) list;  (* (target, goal key) *)
  pk_request : int option;  (* top-level request id *)
}

(* Retransmission state of one outstanding sub-query. *)
type timer = {
  tm_goal : Literal.t;
  mutable tm_attempt : int;
  mutable tm_rto : int;
  mutable tm_next : int;  (* clock tick of the next retransmit/timeout *)
  tm_trace : Tctx.t option;
      (* trace context captured when the timer was armed, so retransmits
         and timeout denials stay on the originating negotiation's trace *)
  tm_path : (string * string) list option;
      (* [Some path] when the outstanding sub-query is a tabling Tquery;
         retransmits must resend the same payload kind *)
}

(* Delivery queue ordered by (deliver_at, envelope id): earliest delivery
   first, post order on ties — plain FIFO when no delays are injected. *)
module Dq = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type t = {
  session : Session.t;
  config : config;
  guard : Guard.t;
  adversaries : (string, Net.Adversary.t) Hashtbl.t;
  mutable dq : Net.Envelope.t Dq.t;
  mutable next_synth : int;  (* ids for locally synthesized messages, < 0 *)
  seen : Net.Dedup.t;  (* delivered envelope ids (bounded dedup) *)
  timers : (string * string * string, timer) Hashtbl.t;
  (* (peer, target, goal key) -> resolved? — each sub-query is posted at
     most once per asking peer. *)
  pending : (string * string * string, bool ref) Hashtbl.t;
  (* (peer, target, goal key) -> instances of the last Answer *)
  answers : (string * string * string, Engine.instance list) Hashtbl.t;
  (* (peer, target, goal key) -> reason of the last Deny *)
  denials : (string * string * string, string) Hashtbl.t;
  mutable parked : parked list;
  results : (int, Negotiation.outcome) Hashtbl.t;
  mutable next_request : int;
  mutable budget_hit : bool;
  tabling_st : Tabling.t option;  (* present iff [config.tabling] *)
}

type request = int

let create ?(config = default_config) session =
  if config.rto < 1 then invalid_arg "Reactor.create: rto must be >= 1";
  if config.retry_limit < 0 then
    invalid_arg "Reactor.create: retry_limit must be >= 0";
  (* Detach any synchronous handlers: reactor sessions route everything
     through the queue.  A handler that acks keeps Network.send usable for
     unrelated traffic without invoking the engine. *)
  Hashtbl.iter
    (fun name _ ->
      Net.Network.register session.Session.network name (fun ~from:_ _ ->
          Net.Message.Ack))
    session.Session.peers;
  let verify =
    if session.Session.config.Session.verify_signatures then fun c ->
      Peertrust_crypto.Cert.verify session.Session.keystore
        ~now:session.Session.config.Session.now c
      = Ok ()
    else fun _ -> true
  in
  {
    session;
    config;
    guard = Guard.create ~config:session.Session.config.Session.guard ~verify ();
    adversaries = Hashtbl.create 4;
    dq = Dq.empty;
    next_synth = -1;
    seen = Net.Dedup.create ~cap:config.dedup_cap;
    timers = Hashtbl.create 16;
    pending = Hashtbl.create 64;
    answers = Hashtbl.create 64;
    denials = Hashtbl.create 16;
    parked = [];
    results = Hashtbl.create 8;
    next_request = 1;
    budget_hit = false;
    tabling_st = (if config.tabling then Some (Tabling.create session) else None);
  }

let goal_key = Peer.goal_key
let now t = Net.Clock.now (Net.Network.clock t.session.Session.network)
let enqueue t env = t.dq <- Dq.add (env.Net.Envelope.deliver_at, env.Net.Envelope.id) env t.dq

(* The trace context a message sent right now should carry: the innermost
   open span's, [None] on untraced runs.  Callers that act on behalf of a
   message received earlier (retransmits, timeout denials) pass the
   context they captured instead. *)
let ambient_trace () =
  let tracer = Obs.tracer () in
  if Otracer.enabled tracer then Otracer.current_context tracer else None

let resolve_trace = function
  | Some _ as explicit -> explicit
  | None -> ambient_trace ()

(* Enqueue a locally synthesized message (not charged on the network):
   the denial a sender owes itself when a target is unreachable or a
   sub-query times out, or a cache replay. *)
let enqueue_synthetic ?trace t ~from ~target payload =
  let id = t.next_synth in
  t.next_synth <- id - 1;
  let at = now t in
  enqueue t
    {
      Net.Envelope.id;
      seq = 0;
      from_ = from;
      target;
      sent_at = at;
      deliver_at = at;
      attempt = 0;
      trace = resolve_trace trace;
      payload;
    }

(* Post a message: account it on the network under the fault plan and
   enqueue the surviving copies.  An unreachable target of a query turns
   into a synthetic denial; other payloads to unreachable peers are
   counted and traced as reactor drops. *)
let post ?attempt ?trace t ~from ~target payload =
  Metric.incr m_posts;
  let trace = resolve_trace trace in
  match
    Net.Network.post t.session.Session.network ~from ~target ?attempt ?trace
      payload
  with
  | envelopes -> List.iter (enqueue t) envelopes
  | exception Net.Network.Unreachable _ ->
      let rec unreachable payload =
        match payload with
        | Net.Message.Query { goal } ->
            enqueue_synthetic ?trace t ~from:target ~target:from
              (Net.Message.Deny { goal; reason = "unreachable" })
        | Net.Message.Tquery { goal; _ } ->
            enqueue_synthetic ?trace t ~from:target ~target:from
              (Net.Message.Deny { goal; reason = "unreachable" })
        | Net.Message.Batch payloads -> List.iter unreachable payloads
        | Net.Message.Answer _ | Net.Message.Deny _
        | Net.Message.Disclosure _ | Net.Message.Ack | Net.Message.Raw _
        | Net.Message.Tanswer _ | Net.Message.Tprobe _ | Net.Message.Tstat _
        | Net.Message.Tcomplete _ ->
            Metric.incr m_drops;
            Otracer.event (Obs.tracer ())
              (Printf.sprintf "reactor.drop %s -> %s: %s (unreachable)" from
                 target
                 (Net.Message.summary payload));
            Log.debug (fun m ->
                m "dropping %s -> %s: %s (unreachable)" from target
                  (Net.Message.summary payload))
      in
      unreachable payload
  | exception Net.Network.Budget_exhausted -> t.budget_hit <- true

(* Retransmission timers only run under an active fault plan: without one
   every posted message is delivered, and spurious retransmits would
   perturb the fault-free transcript. *)
let resilient t =
  not (Net.Faults.is_none (Net.Network.faults t.session.Session.network))

let arm_timer ?trace ?path t ~peer ~target ~key goal =
  if resilient t then
    let pkey = (peer, target, key) in
    if not (Hashtbl.mem t.timers pkey) then
      Hashtbl.replace t.timers pkey
        {
          tm_goal = goal;
          tm_attempt = 0;
          tm_rto = t.config.rto;
          tm_next = now t + t.config.rto;
          tm_trace = resolve_trace trace;
          tm_path = path;
        }

(* Consult the answer cache (if configured) for a sub-query; [None] with
   the cache off. *)
let cache_find t ~asker ~owner goal =
  match t.config.cache with
  | None -> None
  | Some c -> Answer_cache.find c ~now:(now t) ~asker ~owner goal

(* Send one sub-query whose pending entry the caller has registered: a
   cache hit short-circuits into a locally synthesized Answer (no
   envelope, no timer); a miss posts the query and arms its
   retransmission timer. *)
let send_query ?trace t ~from ~target ~key goal =
  match cache_find t ~asker:from ~owner:target goal with
  | Some a ->
      Otracer.event (Obs.tracer ())
        (Printf.sprintf "reactor.cache_hit %s -> %s: %s" from target
           (Literal.to_string goal));
      enqueue_synthetic ?trace t ~from:target ~target:from
        (Net.Message.Answer
           {
             goal;
             instances = a.Answer_cache.instances;
             certs = a.Answer_cache.certs;
           })
  | None ->
      post ?trace t ~from ~target (Net.Message.Query { goal });
      arm_timer ?trace t ~peer:from ~target ~key goal

(* Post a sub-query, registering it as pending and arming its
   retransmission timer. *)
let post_query ?trace t ~from ~target ~key goal =
  Hashtbl.add t.pending (from, target, key) (ref false);
  send_query ?trace t ~from ~target ~key goal

(* Send a group of fresh sub-queries from one peer (pending entries
   already registered).  With batching on, cache misses bound for the
   same target coalesce into one Batch envelope — one envelope of
   transport accounting for the whole group — while each query keeps its
   own pending entry and retransmission timer (retries travel
   individually). *)
let flush_queries t ~from items =
  if not t.config.batch then
    List.iter
      (fun (target, key, goal) -> send_query t ~from ~target ~key goal)
      items
  else
    let to_send =
      List.filter
        (fun (target, key, goal) ->
          match cache_find t ~asker:from ~owner:target goal with
          | Some a ->
              Otracer.event (Obs.tracer ())
                (Printf.sprintf "reactor.cache_hit %s -> %s: %s" from target
                   (Literal.to_string goal));
              enqueue_synthetic t ~from:target ~target:from
                (Net.Message.Answer
                   {
                     goal;
                     instances = a.Answer_cache.instances;
                     certs = a.Answer_cache.certs;
                   });
              ignore key;
              false
          | None -> true)
        items
    in
    let targets =
      List.sort_uniq String.compare
        (List.map (fun (target, _, _) -> target) to_send)
    in
    List.iter
      (fun target ->
        let group =
          List.filter (fun (tg, _, _) -> String.equal tg target) to_send
        in
        (match group with
        | [ (_, _, goal) ] -> post t ~from ~target (Net.Message.Query { goal })
        | _ ->
            post t ~from ~target
              (Net.Message.Batch
                 (List.map
                    (fun (_, _, goal) -> Net.Message.Query { goal })
                    group)));
        List.iter
          (fun (_, key, goal) -> arm_timer t ~peer:from ~target ~key goal)
          group)
      targets

let resolve t pkey =
  (match Hashtbl.find_opt t.pending pkey with
  | Some resolved -> resolved := true
  | None -> Hashtbl.add t.pending pkey (ref true));
  Hashtbl.remove t.timers pkey

(* Put a batch of tabling posts on the wire.  Tqueries get a pending
   entry (so the guard's solicitation oracle accepts the eventual
   answers), a cache consult — a hit short-circuits into a synthetic
   final Tanswer, which is sound because the cache only ever holds
   completed tables — and a retransmission timer carrying the call path.
   Everything else (answer pushes, probe traffic) is fire-and-forget:
   losses are repaired by quiescence healing, not timers. *)
let tabling_send ?trace t posts =
  List.iter
    (fun { Tabling.p_from; p_target; p_payload } ->
      match p_payload with
      | Net.Message.Tquery { goal; path } -> (
          let key = goal_key goal in
          let pkey = (p_from, p_target, key) in
          if not (Hashtbl.mem t.pending pkey) then
            Hashtbl.add t.pending pkey (ref false);
          match cache_find t ~asker:p_from ~owner:p_target goal with
          | Some a ->
              Otracer.event (Obs.tracer ())
                (Printf.sprintf "reactor.cache_hit %s -> %s: %s" p_from
                   p_target (Literal.to_string goal));
              enqueue_synthetic ?trace t ~from:p_target ~target:p_from
                (Net.Message.Tanswer
                   {
                     goal;
                     instances = List.map fst a.Answer_cache.instances;
                     final = true;
                   })
          | None ->
              post ?trace t ~from:p_from ~target:p_target p_payload;
              arm_timer ?trace ~path t ~peer:p_from ~target:p_target ~key goal)
      | _ -> post ?trace t ~from:p_from ~target:p_target p_payload)
    posts

let with_tabling t f =
  match t.tabling_st with None -> () | Some tb -> tabling_send t (f tb)

(* Evaluate a goal at a peer with a collecting remote callback; either
   respond (true) or report the blocked sub-goals (false).  Work is done
   on [requester]'s behalf: each inner solve is capped at the
   requester's unspent guard quota and the steps actually burnt are
   charged against it. *)
let evaluate_goal t peer ~requester goal ~respond =
  let blocked = ref [] in
  let collector ~target lit =
    blocked := (target, lit) :: !blocked;
    []
  in
  let answer () =
    let remaining =
      Guard.remaining_work t.guard ~from:requester ~target:peer.Peer.name
    in
    if remaining = max_int then
      Engine.answer ~remote:collector t.session peer ~requester goal
    else begin
      let saved = peer.Peer.options in
      peer.Peer.options <-
        { saved with Sld.max_steps = min remaining saved.Sld.max_steps };
      let before = Metric.value m_sld_steps in
      Fun.protect
        ~finally:(fun () ->
          peer.Peer.options <- saved;
          Guard.charge_work t.guard ~from:requester ~target:peer.Peer.name
            (Metric.value m_sld_steps - before))
        (fun () -> Engine.answer ~remote:collector t.session peer ~requester goal)
    end
  in
  match answer () with
  | Ok (instances, certs) ->
      respond (Net.Message.Answer { goal; instances; certs });
      `Settled
  | Error reason ->
      let pairs =
        List.sort_uniq compare
          (List.map (fun (tg, lit) -> (tg, goal_key lit, lit)) !blocked)
      in
      let fresh = ref [] in
      let waiting =
        List.filter_map
          (fun (target, key, lit) ->
            let pkey = (peer.Peer.name, target, key) in
            match Hashtbl.find_opt t.pending pkey with
            | Some resolved -> if !resolved then None else Some (target, key)
            | None ->
                (* Register before sending so a later variant of the same
                   goal in [pairs] is not posted twice. *)
                Hashtbl.add t.pending pkey (ref false);
                fresh := (target, key, lit) :: !fresh;
                Some (target, key))
          pairs
      in
      flush_queries t ~from:peer.Peer.name (List.rev !fresh);
      if waiting = [] then begin
        respond (Net.Message.Deny { goal; reason });
        `Settled
      end
      else `Parked waiting

let settle_request t id outcome =
  if not (Hashtbl.mem t.results id) then Hashtbl.replace t.results id outcome

(* A transport-level denial (injected by the resilience machinery, not
   by the target's policies) or a guard rejection surfaces as a
   structured outcome reason. *)
let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let denial_reason t ~target pkey =
  match Hashtbl.find_opt t.denials pkey with
  | Some (("timeout" | "unreachable" | "quarantined" | "rate-limited" | "quota")
          as structured) ->
      Printf.sprintf "%s: %s" structured target
  | Some reason when has_prefix ~prefix:"unsupported" reason ->
      (* A tabled evaluation hit a feature outside its fragment (NAF);
         keep the reason so {!Negotiation.classify_denial} sees it. *)
      reason
  | Some _ | None -> "denied by target"

(* Try to settle one parked goal; [true] when it is resolved. *)
let try_settle t p =
  let peer = Session.peer t.session p.pk_peer in
  match p.pk_request with
  | Some id -> (
      (* Top-level: resolved by its single sub-query. *)
      match p.pk_waiting with
      | [ (target, key) ] -> (
          let pkey = (p.pk_peer, target, key) in
          match Hashtbl.find_opt t.pending pkey with
          | Some { contents = true } ->
              (match Hashtbl.find_opt t.answers pkey with
              | Some instances -> settle_request t id (Negotiation.Granted instances)
              | None ->
                  settle_request t id
                    (Negotiation.Denied (denial_reason t ~target pkey)));
              true
          | Some _ | None -> false)
      | _ -> false)
  | None -> (
      let respond payload =
        post t ~from:p.pk_peer ~target:p.pk_requester payload
      in
      match evaluate_goal t peer ~requester:p.pk_requester p.pk_goal ~respond with
      | `Settled -> true
      | `Parked waiting ->
          p.pk_waiting <- waiting;
          false)

let reevaluate t peer_name =
  let mine, others =
    List.partition (fun p -> String.equal p.pk_peer peer_name) t.parked
  in
  let still = List.filter (fun p -> not (try_settle t p)) mine in
  t.parked <- still @ others

let handle_query t peer ~from goal =
  let respond payload = post t ~from:peer.Peer.name ~target:from payload in
  match evaluate_goal t peer ~requester:from goal ~respond with
  | `Settled -> ()
  | `Parked waiting ->
      Metric.incr m_parks;
      Log.debug (fun m ->
          m "%s parks %s for %s (%d sub-quer%s outstanding)" peer.Peer.name
            (Literal.to_string goal) from (List.length waiting)
            (if List.length waiting = 1 then "y" else "ies"));
      t.parked <-
        {
          pk_peer = peer.Peer.name;
          pk_requester = from;
          pk_goal = goal;
          pk_waiting = waiting;
          pk_request = None;
        }
        :: t.parked

let rec dispatch t ~synthetic (from, target, payload) =
  match Hashtbl.find_opt t.session.Session.peers target with
  | None -> ()
  | Some peer -> (
      match payload with
      | Net.Message.Query { goal } -> handle_query t peer ~from goal
      | Net.Message.Answer { goal; instances; certs } ->
          Engine.learn ~from_:from t.session peer certs;
          List.iter
            (fun ((inst : Literal.t), _) ->
              if Literal.is_ground inst then
                Peer.add_rule peer
                  (Rule.fact (Literal.push_authority inst (Term.str from))))
            instances;
          (* Fill the cache from answers that travelled the wire; replayed
             (synthetic) hits must not refresh their own TTL. *)
          (match t.config.cache with
          | Some c when not synthetic ->
              Answer_cache.store c ~now:(now t) ~asker:target ~owner:from
                goal
                { Answer_cache.instances; certs }
          | Some _ | None -> ());
          let pkey = (target, from, goal_key goal) in
          Hashtbl.replace t.answers pkey instances;
          resolve t pkey;
          reevaluate t target
      | Net.Message.Deny { goal; reason } ->
          (* When tabling is on, a denial may kill a table's dependency
             view; the failure cascades to the view's dependent tables. *)
          with_tabling t (fun tb ->
              Tabling.handle_deny tb ~consumer:target ~from goal reason);
          let pkey = (target, from, goal_key goal) in
          if not (Hashtbl.mem t.answers pkey) then
            Hashtbl.replace t.denials pkey reason;
          resolve t pkey;
          reevaluate t target
      | Net.Message.Disclosure { certs; _ } ->
          Engine.learn ~from_:from t.session peer certs;
          reevaluate t target
      | Net.Message.Batch payloads ->
          List.iter (fun p -> dispatch t ~synthetic (from, target, p)) payloads
      | Net.Message.Ack -> ()
      | Net.Message.Raw _ ->
          (* Garbage on the wire: without a guard there is nothing to do
             with it; the guard layer rejects it before dispatch. *)
          ()
      | Net.Message.Tquery { goal; path } ->
          with_tabling t (fun tb ->
              Tabling.handle_query tb ~owner:target ~from ~path goal)
      | Net.Message.Tanswer { goal; instances; final } ->
          with_tabling t (fun tb ->
              Tabling.handle_answer tb ~consumer:target ~from goal instances
                ~final);
          let pkey = (target, from, goal_key goal) in
          if final then begin
            (* Only completed tables reach the cache: the [completed]
               gate makes a premature (still-in-SCC) store impossible. *)
            (match t.config.cache with
            | Some c when not synthetic ->
                Answer_cache.store ~completed:true c ~now:(now t)
                  ~asker:target ~owner:from goal
                  {
                    Answer_cache.instances =
                      List.map (fun i -> (i, None)) instances;
                    certs = [];
                  }
            | Some _ | None -> ());
            Hashtbl.replace t.answers pkey
              (List.map (fun i -> (i, None)) instances);
            resolve t pkey;
            reevaluate t target
          end
          else
            (* A non-final push proves the link is alive — stand the
               retransmission timer down, but keep the request pending
               until the table completes. *)
            Hashtbl.remove t.timers pkey
      | Net.Message.Tprobe { leader; epoch; members } ->
          with_tabling t (fun tb ->
              Tabling.handle_probe tb ~peer:target ~from
                (leader, epoch, members))
      | Net.Message.Tstat { leader; epoch; entries } ->
          with_tabling t (fun tb ->
              Tabling.handle_stat tb ~peer:target ~from
                (leader, epoch, entries))
      | Net.Message.Tcomplete { leader; epoch; members } ->
          with_tabling t (fun tb ->
              Tabling.handle_complete tb ~peer:target
                (leader, epoch, members)))

let submit t ~requester ~target goal =
  let id = t.next_request in
  t.next_request <- id + 1;
  let key = goal_key goal in
  (* Root of the causal trace: join the ambient context (a surrounding
     [Negotiation.measure] span) or mint a fresh trace, and record the
     request itself as a zero-width span so every downstream span — on
     any peer — hangs off one negotiation root. *)
  let trace =
    let tracer = Obs.tracer () in
    if not (Otracer.enabled tracer) then None
    else
      let ctx =
        match Otracer.current_context tracer with
        | Some _ as ambient -> ambient
        | None -> Otracer.mint tracer
      in
      match ctx with
      | None -> None
      | Some c -> (
          match
            Otracer.record tracer ~ctx:c
              ~attrs:
                [
                  ("peer", Ojson.Str requester);
                  ("requester", Ojson.Str requester);
                  ("target", Ojson.Str target);
                  ("goal", Ojson.Str key);
                ]
              ~name:"negotiation.request" ~start_ticks:(now t)
              ~end_ticks:(now t) ()
          with
          | Some span -> Some (Tctx.child c ~parent_span:span.Peertrust_obs.Span.id)
          | None -> Some c)
  in
  (match t.tabling_st with
  | Some tb ->
      (* Tabled mode: the request rides the tabling control plane.  A
         root view (empty path) is registered so quiescence healing can
         re-push a final answer the requester lost to faults. *)
      Tabling.register_root tb ~consumer:requester ~owner:target goal;
      tabling_send ?trace t
        [
          {
            Tabling.p_from = requester;
            p_target = target;
            p_payload = Net.Message.Tquery { goal; path = [] };
          };
        ]
  | None ->
      if not (Hashtbl.mem t.pending (requester, target, key)) then
        post_query ?trace t ~from:requester ~target ~key goal);
  let p =
    {
      pk_peer = requester;
      pk_requester = requester;
      pk_goal = goal;
      pk_waiting = [ (target, key) ];
      pk_request = Some id;
    }
  in
  if not (try_settle t p) then t.parked <- p :: t.parked;
  id

(* ------------------------------------------------------------------ *)
(* Event loop: deliveries and retransmission timers on one timeline *)

let next_timer t =
  Hashtbl.fold
    (fun key tm acc ->
      match acc with
      | Some (bt, bk, _) when (bt, bk) <= (tm.tm_next, key) -> acc
      | Some _ | None -> Some (tm.tm_next, key, tm))
    t.timers None

let clock_to t tick =
  Net.Clock.advance_to (Net.Network.clock t.session.Session.network) tick

(* A timer came due: retransmit with doubled timeout while the retry
   budget lasts, then give up and synthesize a timeout denial. *)
let fire_timer t ((peer, target, _key) as pkey) tm =
  clock_to t tm.tm_next;
  (* Timer work runs outside any negotiation span, so the captured
     context re-attaches it to the originating trace; the retransmit
     (resp. denial) is posted inside the span and inherits from it. *)
  let in_span name body =
    let tracer = Obs.tracer () in
    if Otracer.enabled tracer then
      Otracer.with_span tracer ?ctx:tm.tm_trace
        ~attrs:
          [
            ("peer", Ojson.Str peer);
            ("target", Ojson.Str target);
            ("goal", Ojson.Str (goal_key tm.tm_goal));
            ("attempt", Ojson.Int tm.tm_attempt);
          ]
        name body
    else body ()
  in
  if tm.tm_attempt < t.config.retry_limit then begin
    tm.tm_attempt <- tm.tm_attempt + 1;
    tm.tm_rto <- tm.tm_rto * 2;
    tm.tm_next <- now t + tm.tm_rto;
    Metric.incr m_retries;
    Log.debug (fun m ->
        m "retry #%d %s -> %s: %s" tm.tm_attempt peer target
          (Literal.to_string tm.tm_goal));
    in_span "reactor.retry" (fun () ->
        Otracer.event (Obs.tracer ())
          (Printf.sprintf "reactor.retry #%d %s -> %s: %s" tm.tm_attempt peer
             target
             (Literal.to_string tm.tm_goal));
        let payload =
          match tm.tm_path with
          | Some path -> Net.Message.Tquery { goal = tm.tm_goal; path }
          | None -> Net.Message.Query { goal = tm.tm_goal }
        in
        post ~attempt:tm.tm_attempt t ~from:peer ~target payload)
  end
  else begin
    Hashtbl.remove t.timers pkey;
    Metric.incr m_timeouts;
    Log.debug (fun m ->
        m "timeout %s -> %s: %s" peer target (Literal.to_string tm.tm_goal));
    in_span "reactor.timeout" (fun () ->
        Otracer.event (Obs.tracer ())
          (Printf.sprintf "reactor.timeout %s -> %s: %s (after %d retries)"
             peer target
             (Literal.to_string tm.tm_goal)
             tm.tm_attempt);
        enqueue_synthetic t ~from:target ~target:peer
          (Net.Message.Deny { goal = tm.tm_goal; reason = "timeout" }))
  end

(* The guard's solicitation oracle: does [target] have this sub-query
   outstanding toward [from]? *)
let solicited_by t ~from ~target goal =
  match Hashtbl.find_opt t.pending (target, from, goal_key goal) with
  | None -> `Unknown
  | Some resolved -> if !resolved then `Resolved else `Outstanding

(* A rejected query still owes its sender a reply — the honest reading
   of a rejection is a denial, and an honest requester that trips a
   limit must terminate with a structured outcome rather than hang.
   One Deny per query inside the payload (1:1, no amplification);
   rejected non-query payloads are dropped silently. *)
let reject_payload t ~from ~target violation payload =
  let reason = Guard.denial_reason violation in
  let rec deny = function
    | Net.Message.Query { goal } ->
        post t ~from:target ~target:from (Net.Message.Deny { goal; reason })
    | Net.Message.Tquery { goal; _ } ->
        post t ~from:target ~target:from (Net.Message.Deny { goal; reason })
    | Net.Message.Batch payloads -> List.iter deny payloads
    | Net.Message.Answer _ | Net.Message.Deny _ | Net.Message.Disclosure _
    | Net.Message.Ack | Net.Message.Raw _ | Net.Message.Tanswer _
    | Net.Message.Tprobe _ | Net.Message.Tstat _ | Net.Message.Tcomplete _ ->
        ()
  in
  deny payload

(* Inbound traffic for a registered adversary: let it misbehave in
   response. *)
let dispatch_adversary t adv ~from payload =
  List.iter
    (fun { Net.Adversary.act_target; act_payload } ->
      post t ~from:(Net.Adversary.name adv) ~target:act_target act_payload)
    (Net.Adversary.react adv ~from payload)

(* Goal skeleton of a payload, for span attributes. *)
let payload_goal = function
  | Net.Message.Query { goal }
  | Net.Message.Answer { goal; _ }
  | Net.Message.Deny { goal; _ }
  | Net.Message.Tquery { goal; _ }
  | Net.Message.Tanswer { goal; _ } ->
      Some (goal_key goal)
  | Net.Message.Batch _ | Net.Message.Disclosure _ | Net.Message.Ack
  | Net.Message.Raw _ | Net.Message.Tprobe _ | Net.Message.Tstat _
  | Net.Message.Tcomplete _ ->
      None

let deliver_envelope t env =
  clock_to t env.Net.Envelope.deliver_at;
  if Net.Dedup.mem t.seen env.Net.Envelope.id then begin
    Metric.incr m_dup_deliveries;
    Otracer.event (Obs.tracer ())
      (Printf.sprintf "reactor.duplicate %s" (Net.Envelope.summary env))
  end
  else begin
    if Net.Dedup.add t.seen env.Net.Envelope.id then
      Metric.incr m_dedup_evictions;
    let from = env.Net.Envelope.from_ in
    let target = env.Net.Envelope.target in
    let payload = env.Net.Envelope.payload in
    let tracer = Obs.tracer () in
    let body () =
      match Hashtbl.find_opt t.adversaries target with
      | Some adv -> dispatch_adversary t adv ~from payload
      | None ->
          (* Synthetic envelopes (ids < 0) are the reactor's own bookkeeping
             — cache replays, timeout/unreachable denials — and bypass the
             guard; everything that travelled the wire is judged first. *)
          if env.Net.Envelope.id < 0 || not (Hashtbl.mem t.session.Session.peers target)
          then dispatch t ~synthetic:(env.Net.Envelope.id < 0) (from, target, payload)
          else
            match
              Guard.admit t.guard ~now:(now t) ~from ~target
                ~solicited:(solicited_by t ~from ~target)
                payload
            with
            | Guard.Admit -> dispatch t ~synthetic:false (from, target, payload)
            | Guard.Stale why ->
                Otracer.event tracer
                  (Printf.sprintf "guard.stale %s -> %s: %s" from target why)
            | Guard.Reject violation ->
                Otracer.set_attr tracer "denial.class"
                  (Ojson.Str
                     (Negotiation.denial_class_to_string
                        (Negotiation.classify_denial
                           (Guard.denial_reason violation))));
                reject_payload t ~from ~target violation payload
    in
    (* Join the sender's trace: reconstruct the wire transit as a
       retrospective span (real envelopes only — synthetic ones never
       travelled), then process the delivery in a receive span parented
       under it, so cross-peer causality survives the queue. *)
    match env.Net.Envelope.trace with
    | Some c when Otracer.enabled tracer && c.Tctx.sampled ->
        let kind = Net.Stats.kind_to_string (Net.Message.kind payload) in
        let ctx =
          if env.Net.Envelope.id < 0 then c
          else
            match
              Otracer.record tracer ~ctx:c
                ~attrs:
                  [
                    ("from", Ojson.Str from);
                    ("target", Ojson.Str target);
                    ("kind", Ojson.Str kind);
                    ("attempt", Ojson.Int env.Net.Envelope.attempt);
                  ]
                ~name:"net.wire" ~start_ticks:env.Net.Envelope.sent_at
                ~end_ticks:env.Net.Envelope.deliver_at ()
            with
            | Some span ->
                Tctx.child c ~parent_span:span.Peertrust_obs.Span.id
            | None -> c
        in
        let attrs =
          [
            ("peer", Ojson.Str target);
            ("requester", Ojson.Str from);
            ("kind", Ojson.Str kind);
          ]
          @
          match payload_goal payload with
          | Some g -> [ ("goal", Ojson.Str g) ]
          | None -> []
        in
        Otracer.with_span tracer ~ctx ~attrs ("recv." ^ kind) body
    | Some _ | None -> body ()
  end

(* Process the next event — a delivery or a timer, whichever is due
   first (delivery wins ties); [false] when both timelines are empty. *)
let step t =
  match (Dq.min_binding_opt t.dq, next_timer t) with
  | None, None -> false
  | Some ((at, _), _), Some (tt, tkey, tm) when tt < at ->
      fire_timer t tkey tm;
      true
  | Some (dkey, env), _ ->
      t.dq <- Dq.remove dkey t.dq;
      deliver_envelope t env;
      true
  | None, Some (_, tkey, tm) ->
      fire_timer t tkey tm;
      true

(* At quiescence, parked goals form dependency cycles (or wait on goals
   that do).  Force-deny one non-top-level goal to break the cycle — the
   finite-failure reading of cyclic policies — and let the denial
   propagate; top-level survivors are denied as quiescent. *)
let break_quiescence t =
  match
    List.partition (fun p -> p.pk_request = None) t.parked
  with
  | p :: rest, tops ->
      t.parked <- rest @ tops;
      post t ~from:p.pk_peer ~target:p.pk_requester
        (Net.Message.Deny { goal = p.pk_goal; reason = "negotiation cycle" });
      true
  | [], p :: rest -> (
      match p.pk_request with
      | Some id ->
          settle_request t id (Negotiation.Denied "negotiation quiescent");
          t.parked <- rest;
          true
      | None -> false)
  | [], [] -> false

(* Tabling's quiescence hook: heal lagging views, then (if all in sync)
   start an SCC probe epoch.  Runs before [break_quiescence] so cyclic
   tabled goals complete rather than being force-denied. *)
let tabling_quiesce t =
  match t.tabling_st with
  | None -> false
  | Some tb -> (
      match Tabling.quiesce tb with
      | [] -> false
      | posts ->
          tabling_send t posts;
          true)

let run_inner ?(max_steps = 100_000) t =
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < max_steps && not t.budget_hit do
    if step t then begin
      incr steps;
      Metric.incr m_steps
    end
    else if tabling_quiesce t then Metric.incr m_steps
    else if break_quiescence t then Metric.incr m_quiescence_breaks
    else continue := false
  done;
  if t.budget_hit then
    List.iter
      (fun p ->
        match p.pk_request with
        | Some id ->
            settle_request t id (Negotiation.Denied "message budget exhausted")
        | None -> ())
      t.parked;
  !steps

let run ?max_steps t =
  let steps =
    let tracer = Obs.tracer () in
    if Otracer.enabled tracer then
      Otracer.with_span tracer "reactor.run" (fun () ->
          let steps = run_inner ?max_steps t in
          Otracer.set_attr tracer "steps" (Peertrust_obs.Json.Int steps);
          steps)
    else run_inner ?max_steps t
  in
  Metric.observe_int h_steps steps;
  steps

let result t id = Hashtbl.find_opt t.results id

let outcome t id =
  match result t id with
  | Some o -> o
  | None -> Negotiation.Denied "negotiation quiescent"

let parked_count t = List.length t.parked
let pending_timers t = Hashtbl.length t.timers

let tabling_summary t =
  match t.tabling_st with None -> [] | Some tb -> Tabling.summary tb
let guard t = t.guard
let dedup_evictions t = Net.Dedup.evictions t.seen

(* Register an adversary: give it a network identity (an inert handler,
   so posts to it succeed) and queue its opening burst against
   [targets] (default: every honest session peer). *)
let add_adversary ?targets t adv =
  let name = Net.Adversary.name adv in
  Net.Network.register t.session.Session.network name (fun ~from:_ _ ->
      Net.Message.Ack);
  Hashtbl.replace t.adversaries name adv;
  let targets =
    match targets with
    | Some l -> l
    | None -> Session.peer_names t.session
  in
  List.iter
    (fun { Net.Adversary.act_target; act_payload } ->
      post t ~from:name ~target:act_target act_payload)
    (Net.Adversary.burst adv ~targets)

let negotiate ?config ?max_steps ?(adversaries = []) session ~requester
    ~target goal =
  Negotiation.measure session (fun () ->
      let tracer = Obs.tracer () in
      if Otracer.enabled tracer then begin
        Otracer.set_attr tracer "requester" (Ojson.Str requester);
        Otracer.set_attr tracer "target" (Ojson.Str target);
        Otracer.set_attr tracer "goal" (Ojson.Str (goal_key goal))
      end;
      let t = create ?config session in
      List.iter (add_adversary t) adversaries;
      let id = submit t ~requester ~target goal in
      ignore (run ?max_steps t);
      outcome t id)

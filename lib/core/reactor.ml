open Peertrust_dlp
module Net = Peertrust_net
module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer

let src = Logs.Src.create "peertrust.reactor" ~doc:"PeerTrust queued engine"

module Log = (val Logs.src_log src : Logs.LOG)

let m_steps = Obs.counter "reactor.steps"
let m_posts = Obs.counter "reactor.posts"
let m_parks = Obs.counter "reactor.parks"
let m_quiescence_breaks = Obs.counter "reactor.quiescence_breaks"
let h_steps = Obs.histogram "reactor.steps_per_run"

type parked = {
  pk_peer : string;  (* the peer holding the goal *)
  pk_requester : string;  (* whom to answer *)
  pk_goal : Literal.t;
  mutable pk_waiting : (string * string) list;  (* (target, goal key) *)
  pk_request : int option;  (* top-level request id *)
}

type t = {
  session : Session.t;
  queue : (string * string * Net.Message.payload) Queue.t;  (* from, target *)
  (* (peer, target, goal key) -> resolved? — each sub-query is posted at
     most once per asking peer. *)
  pending : (string * string * string, bool ref) Hashtbl.t;
  (* (peer, target, goal key) -> instances of the last Answer *)
  answers : (string * string * string, Engine.instance list) Hashtbl.t;
  mutable parked : parked list;
  results : (int, Negotiation.outcome) Hashtbl.t;
  mutable next_request : int;
  mutable budget_hit : bool;
}

type request = int

let create session =
  (* Detach any synchronous handlers: reactor sessions route everything
     through the queue.  A handler that acks keeps Network.send usable for
     unrelated traffic without invoking the engine. *)
  Hashtbl.iter
    (fun name _ ->
      Net.Network.register session.Session.network name (fun ~from:_ _ ->
          Net.Message.Ack))
    session.Session.peers;
  {
    session;
    queue = Queue.create ();
    pending = Hashtbl.create 64;
    answers = Hashtbl.create 64;
    parked = [];
    results = Hashtbl.create 8;
    next_request = 1;
    budget_hit = false;
  }

let goal_key = Peer.goal_key

(* Post a message: account it on the network and enqueue for delivery.  An
   unreachable target of a query turns into a synthetic denial; other
   payloads to unreachable peers are dropped. *)
let post t ~from ~target payload =
  Metric.incr m_posts;
  match Net.Network.notify t.session.Session.network ~from ~target payload with
  | () -> Queue.add (from, target, payload) t.queue
  | exception Net.Network.Unreachable _ -> (
      match payload with
      | Net.Message.Query { goal } ->
          Queue.add
            (target, from, Net.Message.Deny { goal; reason = "unreachable" })
            t.queue
      | Net.Message.Answer _ | Net.Message.Deny _ | Net.Message.Disclosure _
      | Net.Message.Ack ->
          ())
  | exception Net.Network.Budget_exhausted -> t.budget_hit <- true

(* Evaluate a goal at a peer with a collecting remote callback; either
   respond (true) or report the blocked sub-goals (false). *)
let evaluate_goal t peer ~requester goal ~respond =
  let blocked = ref [] in
  let collector ~target lit =
    blocked := (target, lit) :: !blocked;
    []
  in
  match Engine.answer ~remote:collector t.session peer ~requester goal with
  | Ok (instances, certs) ->
      respond (Net.Message.Answer { goal; instances; certs });
      `Settled
  | Error reason ->
      let pairs =
        List.sort_uniq compare
          (List.map (fun (tg, lit) -> (tg, goal_key lit, lit)) !blocked)
      in
      let waiting =
        List.filter_map
          (fun (target, key, lit) ->
            let pkey = (peer.Peer.name, target, key) in
            match Hashtbl.find_opt t.pending pkey with
            | Some resolved -> if !resolved then None else Some (target, key)
            | None ->
                Hashtbl.add t.pending pkey (ref false);
                post t ~from:peer.Peer.name ~target
                  (Net.Message.Query { goal = lit });
                Some (target, key))
          pairs
      in
      if waiting = [] then begin
        respond (Net.Message.Deny { goal; reason });
        `Settled
      end
      else `Parked waiting

let settle_request t id outcome =
  if not (Hashtbl.mem t.results id) then Hashtbl.replace t.results id outcome

(* Try to settle one parked goal; [true] when it is resolved. *)
let try_settle t p =
  let peer = Session.peer t.session p.pk_peer in
  match p.pk_request with
  | Some id -> (
      (* Top-level: resolved by its single sub-query. *)
      match p.pk_waiting with
      | [ (target, key) ] -> (
          let pkey = (p.pk_peer, target, key) in
          match Hashtbl.find_opt t.pending pkey with
          | Some { contents = true } ->
              (match Hashtbl.find_opt t.answers pkey with
              | Some instances -> settle_request t id (Negotiation.Granted instances)
              | None -> settle_request t id (Negotiation.Denied "denied by target"));
              true
          | Some _ | None -> false)
      | _ -> false)
  | None -> (
      let respond payload =
        post t ~from:p.pk_peer ~target:p.pk_requester payload
      in
      match evaluate_goal t peer ~requester:p.pk_requester p.pk_goal ~respond with
      | `Settled -> true
      | `Parked waiting ->
          p.pk_waiting <- waiting;
          false)

let reevaluate t peer_name =
  let mine, others =
    List.partition (fun p -> String.equal p.pk_peer peer_name) t.parked
  in
  let still = List.filter (fun p -> not (try_settle t p)) mine in
  t.parked <- still @ others

let handle_query t peer ~from goal =
  let respond payload = post t ~from:peer.Peer.name ~target:from payload in
  match evaluate_goal t peer ~requester:from goal ~respond with
  | `Settled -> ()
  | `Parked waiting ->
      Metric.incr m_parks;
      Log.debug (fun m ->
          m "%s parks %s for %s (%d sub-quer%s outstanding)" peer.Peer.name
            (Literal.to_string goal) from (List.length waiting)
            (if List.length waiting = 1 then "y" else "ies"));
      t.parked <-
        {
          pk_peer = peer.Peer.name;
          pk_requester = from;
          pk_goal = goal;
          pk_waiting = waiting;
          pk_request = None;
        }
        :: t.parked

let dispatch t (from, target, payload) =
  match Hashtbl.find_opt t.session.Session.peers target with
  | None -> ()
  | Some peer -> (
      match payload with
      | Net.Message.Query { goal } -> handle_query t peer ~from goal
      | Net.Message.Answer { goal; instances; certs } ->
          Engine.learn ~from_:from t.session peer certs;
          List.iter
            (fun ((inst : Literal.t), _) ->
              if Literal.is_ground inst then
                Peer.add_rule peer
                  (Rule.fact (Literal.push_authority inst (Term.Str from))))
            instances;
          let pkey = (target, from, goal_key goal) in
          Hashtbl.replace t.answers pkey instances;
          (match Hashtbl.find_opt t.pending pkey with
          | Some resolved -> resolved := true
          | None -> Hashtbl.add t.pending pkey (ref true));
          reevaluate t target
      | Net.Message.Deny { goal; _ } ->
          let pkey = (target, from, goal_key goal) in
          (match Hashtbl.find_opt t.pending pkey with
          | Some resolved -> resolved := true
          | None -> Hashtbl.add t.pending pkey (ref true));
          reevaluate t target
      | Net.Message.Disclosure { certs; _ } ->
          Engine.learn ~from_:from t.session peer certs;
          reevaluate t target
      | Net.Message.Ack -> ())

let submit t ~requester ~target goal =
  let id = t.next_request in
  t.next_request <- id + 1;
  let key = goal_key goal in
  let pkey = (requester, target, key) in
  if not (Hashtbl.mem t.pending pkey) then begin
    Hashtbl.add t.pending pkey (ref false);
    post t ~from:requester ~target (Net.Message.Query { goal })
  end;
  let p =
    {
      pk_peer = requester;
      pk_requester = requester;
      pk_goal = goal;
      pk_waiting = [ (target, key) ];
      pk_request = Some id;
    }
  in
  if not (try_settle t p) then t.parked <- p :: t.parked;
  id

let step t =
  match Queue.take_opt t.queue with
  | None -> false
  | Some msg ->
      dispatch t msg;
      true

(* At quiescence, parked goals form dependency cycles (or wait on goals
   that do).  Force-deny one non-top-level goal to break the cycle — the
   finite-failure reading of cyclic policies — and let the denial
   propagate; top-level survivors are denied as quiescent. *)
let break_quiescence t =
  match
    List.partition (fun p -> p.pk_request = None) t.parked
  with
  | p :: rest, tops ->
      t.parked <- rest @ tops;
      post t ~from:p.pk_peer ~target:p.pk_requester
        (Net.Message.Deny { goal = p.pk_goal; reason = "negotiation cycle" });
      true
  | [], p :: rest -> (
      match p.pk_request with
      | Some id ->
          settle_request t id (Negotiation.Denied "negotiation quiescent");
          t.parked <- rest;
          true
      | None -> false)
  | [], [] -> false

let run_inner ?(max_steps = 100_000) t =
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < max_steps && not t.budget_hit do
    if step t then begin
      incr steps;
      Metric.incr m_steps
    end
    else if break_quiescence t then Metric.incr m_quiescence_breaks
    else continue := false
  done;
  if t.budget_hit then
    List.iter
      (fun p ->
        match p.pk_request with
        | Some id ->
            settle_request t id (Negotiation.Denied "message budget exhausted")
        | None -> ())
      t.parked;
  !steps

let run ?max_steps t =
  let steps =
    let tracer = Obs.tracer () in
    if Otracer.enabled tracer then
      Otracer.with_span tracer "reactor.run" (fun () ->
          let steps = run_inner ?max_steps t in
          Otracer.set_attr tracer "steps" (Peertrust_obs.Json.Int steps);
          steps)
    else run_inner ?max_steps t
  in
  Metric.observe_int h_steps steps;
  steps

let result t id = Hashtbl.find_opt t.results id

let outcome t id =
  match result t id with
  | Some o -> o
  | None -> Negotiation.Denied "negotiation quiescent"

let parked_count t = List.length t.parked

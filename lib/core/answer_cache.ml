open Peertrust_dlp
module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer

let m_hits = Obs.counter "cache.hits"
let m_misses = Obs.counter "cache.misses"
let m_evictions = Obs.counter "cache.evictions"
let m_invalidations = Obs.counter "cache.invalidations"
let m_rejected_incomplete = Obs.counter "cache.rejected_incomplete"

type answer = {
  instances : (Literal.t * Trace.t option) list;
  certs : Peertrust_crypto.Cert.t list;
}

type slot = {
  sl_answer : answer;
  sl_owner : string;
  sl_expires : int;  (* first tick the entry is no longer live *)
  sl_stamp : int;  (* insertion order, for oldest-first eviction *)
}

type t = {
  ttl : int;
  capacity : int;
  (* (asker, owner, goal skeleton) -> slot *)
  table : (string * string * string, slot) Hashtbl.t;
  mutable stamp : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(ttl = 1024) ?(capacity = 4096) () =
  if ttl < 1 then invalid_arg "Answer_cache.create: ttl must be >= 1";
  if capacity < 1 then invalid_arg "Answer_cache.create: capacity must be >= 1";
  {
    ttl;
    capacity;
    table = Hashtbl.create 64;
    stamp = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let key ~asker ~owner goal = (asker, owner, Peer.goal_key goal)

let evict t k =
  Hashtbl.remove t.table k;
  t.evictions <- t.evictions + 1;
  Metric.incr m_evictions

let find t ~now ~asker ~owner goal =
  let k = key ~asker ~owner goal in
  match Hashtbl.find_opt t.table k with
  | Some slot when now < slot.sl_expires ->
      t.hits <- t.hits + 1;
      Metric.incr m_hits;
      Some slot.sl_answer
  | Some _ ->
      (* Expired: drop on contact so the table does not accumulate dead
         entries between stores. *)
      evict t k;
      t.misses <- t.misses + 1;
      Metric.incr m_misses;
      None
  | None ->
      t.misses <- t.misses + 1;
      Metric.incr m_misses;
      None

let evict_oldest t =
  let oldest =
    Hashtbl.fold
      (fun k slot acc ->
        match acc with
        | Some (_, s) when s.sl_stamp <= slot.sl_stamp -> acc
        | Some _ | None -> Some (k, slot))
      t.table None
  in
  Option.iter (fun (k, _) -> evict t k) oldest

let store ?(completed = true) t ~now ~asker ~owner goal answer =
  if not completed then
    (* An incomplete (still-growing) table must never be replayed as an
       answer: a later hit would serve a subset and the requester would
       settle on it.  Refuse the insert and count the refusal. *)
    Metric.incr m_rejected_incomplete
  else begin
    let k = key ~asker ~owner goal in
    if (not (Hashtbl.mem t.table k)) && Hashtbl.length t.table >= t.capacity
    then evict_oldest t;
    t.stamp <- t.stamp + 1;
    Hashtbl.replace t.table k
      {
        sl_answer = answer;
        sl_owner = owner;
        sl_expires = now + t.ttl;
        sl_stamp = t.stamp;
      }
  end

let invalidate_where t pred =
  let doomed =
    Hashtbl.fold
      (fun k slot acc -> if pred k slot then k :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed;
  let n = List.length doomed in
  t.invalidations <- t.invalidations + n;
  Metric.add m_invalidations n;
  if n > 0 then
    Otracer.event (Obs.tracer ())
      (Printf.sprintf "cache.invalidate %d entr%s" n
         (if n = 1 then "y" else "ies"));
  n

let invalidate_owner t owner =
  invalidate_where t (fun _ slot -> String.equal slot.sl_owner owner)

let invalidate_asker t asker =
  invalidate_where t (fun (a, _, _) _ -> String.equal a asker)

let invalidate_goal t ~owner goal =
  let skel = Peer.goal_key goal in
  invalidate_where t (fun (_, o, s) _ ->
      String.equal o owner && String.equal s skel)

let watch_accounts t ~owner accounts =
  Externals.Accounts.subscribe accounts (fun _account ->
      ignore (invalidate_owner t owner : int))

let watch_peer t (peer : Peer.t) =
  Peer.on_kb_update peer (fun () ->
      ignore (invalidate_owner t peer.Peer.name : int))

let clear t = ignore (invalidate_where t (fun _ _ -> true) : int)
let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let invalidations t = t.invalidations

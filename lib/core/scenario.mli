(** Ready-made negotiation worlds: the paper's two scenarios (§4.1, §4.2)
    and the parametric workloads used by the benchmark harness.

    Deviations from the paper's listings (documented in DESIGN.md §4):
    cached public certificates carry an explicit [$ true] guard, and a few
    literals the paper leaves implicitly releasable (Bob's email, E-Learn's
    enroll results) get explicit [$] guards — under the paper's stated
    default (private) the scenarios would not terminate successfully. *)

type scenario1 = {
  s1_session : Session.t;
  s1_alice : string;
  s1_elearn : string;
  s1_uiuc : string;
}

val scenario1 : ?config:Session.config -> ?key_bits:int -> unit -> scenario1
(** Alice & E-Learn: discounted enrolment for UIUC students (via ELENA's
    preferred-customer rule), with the registrar delegation and Alice's
    BBB-membership release policy. *)

val scenario1_goal : unit -> Peertrust_dlp.Literal.t
(** The headline §4.1 goal: [discountEnroll(spanish101, "Alice")]. *)

type scenario2 = {
  s2_session : Session.t;
  s2_bob : string;
  s2_elearn : string;
  s2_visa : string;
  s2_accounts : Externals.Accounts.t;
      (** the VISA peer's account table (pred [approve]); revoking or
          re-limiting the ["IBM"] account changes what
          [purchaseApproved] admits — and fires the table's watchers
          (see {!Externals.Accounts.subscribe},
          {!Answer_cache.watch_accounts}) *)
}

val scenario2 :
  ?config:Session.config -> ?key_bits:int -> ?visa_limit:int -> unit ->
  scenario2
(** Signing up for learning services: free courses for employees of ELENA
    members, pay-per-use courses against a company VISA card protected by
    policy27, and the purchase-approval external call to the VISA peer
    (default credit limit 5000). *)

val scenario2_goal_free : unit -> Peertrust_dlp.Literal.t
(** The §4.2 free-course goal: [enroll(cs101, "Bob", "IBM", Email, 0)]. *)

val scenario2_goal_paid : unit -> Peertrust_dlp.Literal.t
(** The §4.2 pay-per-use goal:
    [enroll(cs411, "Bob", "IBM", Email, Price)]. *)

type chain_world = {
  cw_session : Session.t;
  cw_requester : string;  (** peer that requests the resource *)
  cw_owner : string;  (** peer that owns the resource *)
  cw_goal : Peertrust_dlp.Literal.t;
}

val policy_chain :
  ?config:Session.config -> ?extra_creds:int -> ?missing:int -> depth:int ->
  unit -> chain_world
(** Bilateral alternating policy chain of length [depth]: the resource
    needs [cred1] from the requester, releasing [cred1] needs [cred2] from
    the owner, and so on; [cred<depth>] is public.  [extra_creds] adds that
    many unrelated public credentials to each side (disclosed by the eager
    strategy but not by the relevant one).  [missing] (1..depth) omits that
    credential, making the negotiation unsatisfiable. *)

val fanout :
  ?config:Session.config -> width:int -> unit -> chain_world
(** The resource requires [width] independent public credentials from the
    requester. *)

type grid = {
  g_session : Session.t;
  g_user : string;  (** the researcher *)
  g_cluster : string;  (** the compute resource *)
}

val grid : ?config:Session.config -> unit -> grid
(** The grid scenario the paper points to (Basney et al., SemPGRID'04):
    a cluster admits jobs from virtual-organisation members (membership
    delegated to a registration service); the researcher releases her VO
    credential only to resources certified by the Grid CA; RDF metadata
    describes the cluster's queues.  Goals look like
    [submit(batch, "ada", 256)]. *)

type recursion_world = {
  rw_session : Session.t;
  rw_requester : string;  (** the client peer submitting the request *)
  rw_target : string;  (** the peer owning the top-level goal *)
  rw_goal : Peertrust_dlp.Literal.t;
  rw_expected : Peertrust_dlp.Literal.t list;
      (** the complete answer set a terminating evaluation must produce *)
  rw_peers : string list;  (** the policy-bearing peers, [rw_requester]
                               excluded *)
}

val mutual_accreditation :
  ?config:Session.config -> ?n:int -> unit -> recursion_world
(** A mutual-accreditation web: [n] (>= 2, default 2) peers in a ring
    where each accepts whatever the next accredits
    ([accredited(X) <- accredited(X) @ next]) and [peer0] holds one base
    fact.  The plain engines loop forever on it (the reactor force-denies
    it as a cycle); under {!Reactor.config}[.tabling] every table
    completes with exactly [rw_expected].  With [n = 2] this is the
    "A accredits B iff B accredits A" policy pair. *)

val federation :
  ?config:Session.config -> ?clusters:int -> ?size:int -> unit ->
  recursion_world
(** Chained accreditation federations: [clusters] rings of [size] peers;
    each cluster's entry peer holds that federation's member fact and
    accepts accreditations from the next cluster downstream.  Cyclic
    within a cluster, acyclic between clusters — the SCCs must complete
    in dependency order, last cluster first, so [rw_expected] (all
    [clusters] member facts) reaches the front entry peer. *)

type marketplace = {
  mp_session : Session.t;
  mp_learners : string list;
  mp_providers : string list;
  mp_goals : (string * string * Peertrust_dlp.Literal.t) list;
      (** (learner, provider, enrolment goal) work items *)
}

val marketplace :
  ?config:Session.config ->
  ?seed:int64 ->
  providers:int ->
  learners:int ->
  courses_per_provider:int ->
  unit ->
  marketplace
(** A deterministic ELENA-style marketplace: [providers] course providers
    (each with a registry of priced courses, public metadata, and an
    enrolment policy demanding a student credential), and [learners]
    (each with a student credential released only to accredited
    providers).  [mp_goals] enrols every learner in one randomly chosen
    course per provider. *)

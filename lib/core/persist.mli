(** Saving and loading negotiation worlds.

    A world directory holds one policy program and one credential wallet
    per peer, plus an index:

    {v
      world.meta       index: format version + one line per peer
      peer0.pt         policy program (pretty-printed knowledge base)
      peer0.wallet     certificates (Wire format), possibly empty
      ...
    v}

    Peer names are hex-encoded in the index so arbitrary names survive.
    Keys are not stored: the simulated PKI derives them from the session
    seed, so load a world with the same [seed] it was built with (the
    default matches {!Session.create}'s default). *)

type error = Bad_world of string

val save : Session.t -> dir:string -> unit
(** Write the world; creates [dir] if needed.  @raise Sys_error on I/O
    problems. *)

val load :
  ?config:Session.config -> ?seed:int64 -> dir:string -> unit ->
  (Session.t, error) result
(** Rebuild a session from a world directory: peers, programs, wallets;
    handlers attached.  Total over corrupt input: a missing or truncated
    index, unreadable files, garbage [.pt]/[.wallet] contents all come
    back as [Error (Bad_world reason)] — with the reason naming the file
    and offending line where a parser is involved — never an
    exception. *)

val pp_error : Format.formatter -> error -> unit

(** Saving and loading negotiation worlds.

    A world directory holds one policy program and one credential wallet
    per peer, plus an index:

    {v
      world.meta       index: format version + one line per peer
      peer0.pt         policy program (pretty-printed knowledge base)
      peer0.wallet     certificates (Wire format), possibly empty
      ...
    v}

    Peer names are hex-encoded in the index so arbitrary names survive.
    Keys are not stored: the simulated PKI derives them from the session
    seed, so load a world with the same [seed] it was built with (the
    default matches {!Session.create}'s default). *)

type error = Bad_world of string

val save : Session.t -> dir:string -> unit
(** Write the world; creates [dir] if needed.  Every file lands
    crash-atomically (temp file + rename), so a crash mid-save leaves
    the previous world intact rather than a torn one.  @raise Sys_error
    on I/O problems. *)

val load :
  ?config:Session.config -> ?seed:int64 -> dir:string -> unit ->
  (Session.t, error) result
(** Rebuild a session from a world directory: peers, programs, wallets;
    handlers attached.  Total over corrupt input: a missing or truncated
    index, unreadable files, garbage [.pt]/[.wallet] contents all come
    back as [Error (Bad_world reason)] — with the reason naming the file
    and offending line where a parser is involved — never an
    exception. *)

val pp_error : Format.formatter -> error -> unit

(** Incremental write-ahead journal backing crash-stop recovery.

    A full {!save} is a checkpoint; between checkpoints a peer appends
    one line per durable event — a learned certificate, a learned
    says-fact, a completed table answer, an accepted root goal — and a
    restarting incarnation replays world + journal instead of starting
    cold.  One journal per peer (its file name hex-encodes the peer
    name), line-oriented with hex-armoured payloads so arbitrary
    contents cannot fake a record boundary.

    Recovery is total over torn files: a crash interrupts at most the
    last append, so the unterminated (or unparseable) final line is
    dropped and the intact prefix used.  Corruption {e earlier} in the
    stream is not crash-shaped and surfaces as a line-numbered
    {!error}. *)
module Journal : sig
  type entry =
    | Cert of Peertrust_crypto.Cert.t  (** a credential learned *)
    | Fact of Peertrust_dlp.Rule.t  (** a says-fact learned *)
    | Answer of {
        owner : string;
        goal : Peertrust_dlp.Literal.t;
        instances : Peertrust_dlp.Literal.t list;
      }  (** a completed (final) remote answer set *)
    | Goal of { id : int; target : string; goal : Peertrust_dlp.Literal.t }
        (** a root goal accepted for negotiation (request [id]) *)
    | Done of { id : int }  (** that root goal settled *)

  type t

  val in_memory : unit -> t
  (** A buffer-backed journal — the simulator default, so journalled
      runs need no filesystem and stay hermetic. *)

  val on_disk : string -> t
  (** Backed by one append-only file; created on first append. *)

  val for_peer : dir:string -> peer:string -> t
  (** [on_disk] under [dir] (created if needed) with the peer's name
      hex-encoded into the file name. *)

  val append : t -> entry -> unit
  (** Append one entry and flush it (disk sinks open/close per append:
      a crash can tear at most the line being written). *)

  val entries : t -> (entry list, error) result
  (** Parse the journal back.  Torn-tail tolerant: the trailing
      unterminated or unparseable last line is dropped ([Ok] of the
      usable prefix); damage on an earlier line is a line-numbered
      [Bad_world].  Never raises. *)

  val parse : string -> (entry list, error) result
  (** {!entries} over raw text (exposed for durability tests). *)

  val contents : t -> string
  (** Raw journal bytes as currently stored. *)

  val rewrite : t -> entry list -> unit
  (** Checkpoint compaction: atomically replace the journal with just
      [entries] (temp file + rename for disk sinks). *)

  val reset : t -> unit
  (** [rewrite t []]. *)

  val appends : t -> int
  (** Appends since creation (feeds the [reactor.checkpoints]
      counter). *)

  val replay_peer : Peer.t -> entry list -> unit
  (** Re-learn [Cert] and [Fact] entries into a peer.  Idempotent —
      {!Peer.add_cert} and the KB dedup structurally — so replaying a
      journal twice equals replaying it once.  [Answer]/[Goal]/[Done]
      entries are reactor-level and ignored here. *)
end

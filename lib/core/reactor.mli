(** The queued (asynchronous) negotiation engine — the architecture the
    paper actually describes for PeerTrust 1.0: an outer layer that "keeps
    queues of propositions that are in the process of being proved" around
    the logic engine.

    Where {!Engine} answers a query by synchronous recursion through the
    network, the reactor is message-driven:

    - an incoming query is evaluated against the local KB only; if that
      does not settle it, the goal is {e parked} and one sub-query is
      posted for each blocked remote sub-goal (each distinct
      (peer, goal) is asked at most once per peer);
    - an incoming answer is verified and learned (certificates plus the
      "peer says" facts), then every parked goal waiting on it is
      re-evaluated from scratch over the grown knowledge base — the KB
      only grows, so re-evaluation is monotone;
    - a parked goal whose sub-queries are all resolved and which still has
      no releasable answer is denied upstream.

    Consequences the synchronous engine cannot offer: any number of
    negotiations proceed {e interleaved} over one queue, and policy
    deadlocks manifest as quiescence (an empty queue with unresolved
    goals) rather than needing an in-flight cycle check.

    Messages are accounted on the session network (statistics, transcript,
    latency, budget) exactly like synchronous traffic.

    {2 Resilience under faults}

    When the session network carries an active {!Peertrust_net.Faults}
    plan, the reactor tolerates lost, duplicated, delayed and reordered
    deliveries: messages travel in {!Peertrust_net.Envelope}s whose ids
    make duplicate deliveries idempotent, deliveries are ordered by their
    simulated delivery time, and every outstanding sub-query carries a
    retransmission timer with exponential backoff ({!config}).  A
    sub-query that exhausts its retry budget degrades into a structured
    denial — [timeout: <peer>] or [unreachable: <peer>] — that propagates
    through {!Negotiation.outcome} (see {!Negotiation.classify_denial})
    instead of hanging the negotiation.  With the fault-free plan the
    timers stay disarmed and behaviour is identical to the plain queue.

    {2 Answer caching and batching}

    With {!config}[.cache] set, a sub-query whose variant the cache has
    already seen answered by the same peer (for the same asker) is
    short-circuited: the cached answer is replayed as a locally
    synthesized delivery — no envelope is posted and no retransmission
    timer is armed — and answers delivered off the wire fill the cache
    (see {!Answer_cache} for keying, TTL and invalidation).  With
    {!config}[.batch] set, the sub-queries one goal evaluation emits
    towards the same peer travel as one {!Peertrust_net.Message.Batch}
    envelope.  Both default off; the default configuration's fault-free
    transcripts are byte-identical to the cache-less engine.

    {2 Guards and adversaries}

    Every envelope that travelled the wire is judged by the session's
    {!Guard} before dispatch (synthetic reactor bookkeeping — cache
    replays, timeout denials — bypasses it).  A rejected query is
    answered with a [Deny] carrying the guard's structured reason
    ([quarantined]/[rate-limited]/[quota]/...), one reply per query so a
    flood cannot amplify; other rejected payloads are dropped.  The
    guard's work quota caps {!Peertrust_dlp.Sld.options} [max_steps]
    while a requester's goal is evaluated and is charged with the solver
    steps actually burnt.  With the default {!Guard.permissive} config
    every payload is admitted and transcripts are unchanged.

    {!add_adversary} attaches a misbehaving {!Peertrust_net.Adversary}:
    it gets a network identity, opens with a burst against the honest
    peers, and reacts to whatever it is sent until its action budget is
    spent.

    {2 Crash-stop peers and durable journals}

    When the fault plan schedules crashes
    ({!Peertrust_net.Faults.add_crash}), the reactor executes them as
    first-class timeline events, ordered before same-tick deliveries.  A
    crash wipes everything volatile at the victim — parked goals, its
    outstanding sub-query timers, its dedup ring, guard admission state,
    cached answers, distributed tables — and rolls its knowledge base
    and certificate wallet back to the boot snapshot.  Counterparties
    see the crash through the protocol, not an oracle: envelopes carry
    the sender's {e incarnation} number, so answers sent by a dead
    incarnation are discarded as [reactor.stale_epoch], and sub-queries
    that time out against a peer whose restart is scheduled are
    suspended and {e reissued} (fresh timer, attempt 0) once it returns;
    against a peer that never restarts they degrade into a structured
    [crashed: <peer>] denial (see {!Negotiation.classify_denial}).

    With {!config}[.journal] set, each peer also keeps a write-ahead
    journal ({!Persist.Journal}) of its durable facts — learned
    certificates, [peer says] facts, completed table answers, and the
    root goals it has accepted.  The journal survives the crash (it
    stands in for a synced disk); at restart it is replayed — learning
    is idempotent, so replay never double-counts a certificate — and
    journalled root goals with no [Done] record are re-launched
    ([reactor.recovered_goals]).  Journals are compacted once enough
    roots settle.  [Journal_off] (the default) keeps crash-free
    transcripts byte-identical to the pre-journal reactor. *)

open Peertrust_dlp

type t

type journal_mode =
  | Journal_off  (** no journal: a crash loses everything volatile *)
  | Journal_memory
      (** per-peer journals held by the reactor — the simulated stand-in
          for a synced local disk; survives crashes within one reactor *)
  | Journal_dir of string
      (** per-peer journal files under the directory (created on
          demand); existing journals are replayed at {!create}, so a
          restarted {e process} resumes where it crashed *)

type config = {
  rto : int;
      (** initial retransmission timeout in simulated ticks (doubles per
          retry) *)
  retry_limit : int;  (** retransmissions per sub-query before giving up *)
  cache : Answer_cache.t option;
      (** answer cache consulted before a sub-query is posted (and before
          its retransmission timer is armed) and filled when an answer is
          delivered off the wire.  [Some (Answer_cache.create ())] gives
          per-reactor caching; passing the {e same} cache value to several
          reactors (even over rebuilt sessions) gives the shared
          cross-session mode.  [None] (the default) disables caching and
          keeps fault-free transcripts byte-identical to the pre-cache
          engine. *)
  batch : bool;
      (** coalesce the same-tick sub-queries a goal evaluation emits
          towards one peer into a single {!Peertrust_net.Message.Batch}
          envelope.  Off by default: batching changes the transcript
          shape (fewer, larger envelopes). *)
  dedup_cap : int;
      (** capacity of the delivered-envelope-id dedup set; past it the
          oldest ids are forgotten, counted as
          [reactor.dedup_evictions] *)
  tabling : bool;
      (** evaluate goals through the distributed {!Tabling} engine: one
          table per goal skeleton at its owning peer, monotone answer
          pushes, and GEM-style SCC completion at quiescence — so
          mutually recursive cross-peer policies terminate with their
          complete answer sets instead of being force-denied as cycles.
          Off by default: tabling-off transcripts are byte-identical to
          the plain reactor. *)
  journal : journal_mode;
      (** write-ahead journalling of durable per-peer state (learned
          certificates, says-facts, completed table answers, accepted
          root goals) replayed at restart after a scheduled crash.
          [Journal_off] by default. *)
}

val default_config : config
(** [{ rto = 8; retry_limit = 3; cache = None; batch = false;
    dedup_cap = 8192; tabling = false; journal = Journal_off }] — a
    sub-query is abandoned as timed out after 8 + 16 + 32 + 64
    unanswered ticks; caching, batching, tabling and journalling are
    opt-in. *)

val create : ?config:config -> Session.t -> t
(** The reactor replaces the peers' network handlers; create it after all
    peers are added.  Sessions should not mix reactor and synchronous
    {!Engine} traffic.  @raise Invalid_argument on [rto < 1] or a negative
    [retry_limit]. *)

type request

val submit :
  ?deadline:int ->
  t ->
  requester:string ->
  target:string ->
  Literal.t ->
  request
(** Enqueue a top-level negotiation; nothing runs until {!run}/{!step}.
    [deadline] is an absolute simulated tick: a request still unsettled
    when it passes is denied as [deadline expired] and its outstanding
    sub-queries are withdrawn with [Cancel] messages so counterparties
    drop the parked work.  @raise Invalid_argument on a negative
    [deadline]. *)

val step : t -> bool
(** Process one event — the earliest scheduled crash/restart/deadline,
    queued delivery or retransmission timer (scheduled events win ties,
    then deliveries); [false] when all timelines are empty. *)

val run : ?max_steps:int -> t -> int
(** Process events until quiescence (or [max_steps], default 100_000);
    unresolved requests are then denied as quiescent.  Returns the number
    of events processed. *)

val result : t -> request -> Negotiation.outcome option
(** [None] while the request is still unresolved. *)

val outcome : t -> request -> Negotiation.outcome
(** Like {!result}, but an unresolved request reports
    [Denied "negotiation quiescent"]. *)

val parked_count : t -> int
(** Goals currently parked across all peers (for tests/monitoring). *)

val pending_timers : t -> int
(** Outstanding retransmission timers (for tests/monitoring). *)

val guard : t -> Guard.t
(** The guard instance judging this reactor's inbound traffic (built
    from [Session.config.guard]); inspect it after a run for breaker
    states and quarantined peers. *)

val dedup_evictions : t -> int
(** Ids forgotten by this reactor's bounded dedup set. *)

val tabling_summary : t -> (string * string * int * string) list
(** [(peer, goal key, answer count, status)] for every distributed
    table, sorted — empty unless {!config}[.tabling] is set.  The chaos
    suite compares this signature between fault-free and fault-injected
    runs. *)

val add_adversary :
  ?targets:string list -> t -> Peertrust_net.Adversary.t -> unit
(** Register a misbehaving peer on the session network and queue its
    opening burst against [targets] (default: all session peers). *)

val negotiate :
  ?config:config ->
  ?max_steps:int ->
  ?adversaries:Peertrust_net.Adversary.t list ->
  Session.t ->
  requester:string ->
  target:string ->
  Literal.t ->
  Negotiation.report
(** One-shot convenience: create a reactor, submit the goal, run to
    quiescence and wrap the outcome in a measured {!Negotiation.report}
    (used by the CLI's fault-injected runs). *)

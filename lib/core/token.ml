open Peertrust_dlp
module Crypto = Peertrust_crypto

type t = Crypto.Cert.t

type error =
  | Invalid of Crypto.Cert.error
  | Wrong_holder of string
  | Wrong_service
  | Not_a_token

(* The service a goal denotes, abstracted from its concrete arguments:
   the predicate key.  The holder is bound separately, so a token covers
   "this peer using this service", not one fixed argument vector. *)
let service_skeleton goal =
  let p, n = Literal.key goal in
  Printf.sprintf "%s/%d" p n

let token_rule ~issuer ~holder ~goal =
  Rule.fact ~signer:[ issuer ]
    (Literal.make "accessToken"
       [ Term.str holder; Term.str (service_skeleton goal) ])

let grant session ~issuer ~holder ~goal ~ttl =
  let rule = token_rule ~issuer ~holder ~goal in
  let now = session.Session.config.Session.now in
  match
    Crypto.Cert.issue session.Session.keystore ~not_before:now
      ~not_after:(now + ttl) rule
  with
  | Ok cert -> cert
  | Error e ->
      invalid_arg (Format.asprintf "Token.grant: %a" Crypto.Cert.pp_error e)

let negotiate_with_token session ~requester ~target ~ttl goal =
  let report = Negotiation.request session ~requester ~target goal in
  if Negotiation.succeeded report then
    (report, Some (grant session ~issuer:target ~holder:requester ~goal ~ttl))
  else (report, None)

let redeem session ~issuer ~bearer ~goal (token : t) =
  match token.Crypto.Cert.rule.Rule.head with
  | { Literal.pred = "accessToken";
      args = [ Term.Str holder; Term.Str service ];
      auth = [];
    } ->
      let holder = Sym.name holder and service = Sym.name service in
      if not (List.mem issuer token.Crypto.Cert.rule.Rule.signer) then
        Error (Invalid (Crypto.Cert.Missing_signature issuer))
      else if not (String.equal holder bearer) then Error (Wrong_holder bearer)
      else if not (String.equal service (service_skeleton goal)) then
        Error Wrong_service
      else (
        match
          Crypto.Cert.verify session.Session.keystore
            ~now:session.Session.config.Session.now token
        with
        | Ok () -> Ok ()
        | Error e -> Error (Invalid e))
  | _ -> Error Not_a_token

let revoke session (token : t) =
  Crypto.Keystore.revoke session.Session.keystore
    ~serial:token.Crypto.Cert.serial

let pp_error fmt = function
  | Invalid e -> Format.fprintf fmt "invalid token: %a" Crypto.Cert.pp_error e
  | Wrong_holder b -> Format.fprintf fmt "token is not transferable (bearer %s)" b
  | Wrong_service -> Format.pp_print_string fmt "token covers a different service"
  | Not_a_token -> Format.pp_print_string fmt "not an access token"

open Peertrust_dlp

type decision = Granted | Denied of string

type prover = requester:string -> Literal.t list -> Sld.answer option

let releasable ~prover ~requester ~self ctx =
  match ctx with
  | None ->
      (* Default context: Requester = Self. *)
      if String.equal requester self then Granted
      else Denied "default context (Requester = Self)"
  | Some [] -> Granted
  | Some lits -> (
      match prover ~requester lits with
      | Some _ -> Granted
      | None -> Denied "release context not satisfied")

let rule_releasable ~prover ~requester ~self (r : Rule.t) =
  releasable ~prover ~requester ~self r.Rule.rule_ctx

let is_release_rule (r : Rule.t) = Option.is_some r.Rule.head_ctx

(* Heads a credential can stand for: itself, plus [h @ signer] through the
   signed-rule axiom. *)
let credential_heads (c : Rule.t) =
  c.Rule.head
  :: List.map
       (fun s -> Literal.push_authority c.Rule.head (Term.str s))
       c.Rule.signer

let credential_releasable ~prover ~kb ~requester ~self (c : Rule.t) =
  match rule_releasable ~prover ~requester ~self c with
  | Granted -> Granted
  | Denied _ -> (
      (* Look for a release rule whose head covers the credential. *)
      let covers rr =
        let rr = Rule.rename ~suffix:"~rr" rr in
        match rr.Rule.head_ctx with
        | None -> None
        | Some ctx ->
            let applies head =
              match Literal.unify head rr.Rule.head Subst.empty with
              | None -> None
              | Some s -> Some (List.map (Literal.apply s) ctx)
            in
            List.find_map applies (credential_heads c)
      in
      let candidates =
        List.concat_map
          (fun head -> Kb.matching head kb)
          (credential_heads c)
        |> List.filter_map covers
      in
      let granted =
        List.exists
          (fun ctx -> Option.is_some (prover ~requester ctx))
          candidates
      in
      if granted then Granted
      else if candidates = [] then Denied "no release rule covers credential"
      else Denied "release context not satisfied")

let pp_decision fmt = function
  | Granted -> Format.pp_print_string fmt "granted"
  | Denied reason -> Format.fprintf fmt "denied (%s)" reason

(** Distributed tabling: {!Peertrust_dlp.Tabled} ported across the
    reactor, with GEM-style termination detection.

    Each goal skeleton has one table at its owning peer; consumers keep
    monotone views of remote tables, fed by full-list [Tanswer] pushes
    (idempotent under duplication and reorder).  Acyclic chains complete
    bottom-up; genuine cross-peer SCCs are frozen at reactor quiescence
    by an epoch-stamped probe round ([Tprobe]/[Tstat]/[Tcomplete]) in
    which the minimal member — the leader — verifies with the members'
    size/seen counters that every intra-SCC edge is fully propagated
    before broadcasting completion.

    The module is a pure state machine owned by {!Reactor}: handlers
    consume decoded payloads and return the {!post}s to put on the wire.
    All iteration is sorted, keeping fault-free runs byte-deterministic. *)

open Peertrust_dlp
module Net := Peertrust_net

type t

type post = {
  p_from : string;
  p_target : string;
  p_payload : Net.Message.payload;
}

val create : Session.t -> t

val register_root : t -> consumer:string -> owner:string -> Literal.t -> unit
(** Register a top-level requester's view of [goal]'s table before the
    initial [Tquery] is posted, so quiescence healing covers a final
    answer lost on the last hop back to the requester. *)

val handle_query :
  t ->
  owner:string ->
  from:string ->
  path:(string * string) list ->
  Literal.t ->
  post list
(** A [Tquery] arrived at [owner]: find or create the goal's table,
    subscribe [from], evaluate, and always leave [from] with at least a
    state reply.  A [path] already containing the table increments the
    [tabling.loops_detected] counter. *)

val handle_answer :
  t ->
  consumer:string ->
  from:string ->
  Literal.t ->
  Literal.t list ->
  final:bool ->
  post list
(** A [Tanswer] arrived at [consumer]: merge into the view and
    re-evaluate dependent tables.  Returns [[]] for a top-level request
    (no view) — the reactor settles those itself. *)

val handle_deny :
  t -> consumer:string -> from:string -> Literal.t -> string -> post list
(** A [Deny] for a tabled sub-goal: mark the view failed and fail every
    dependent table (propagating the reason to their consumers). *)

val handle_probe :
  t ->
  peer:string ->
  from:string ->
  (string * string) * int * (string * string) list ->
  post list
(** [Tprobe (leader, epoch, members)]: report this peer's member-table
    counters back to the leader. *)

val handle_stat :
  t ->
  peer:string ->
  from:string ->
  (string * string) * int * Net.Message.tstat_entry list ->
  post list
(** [Tstat]: record a member report on the leader.  When the last report
    of the current epoch arrives and every intra-SCC edge checks out
    (consumer seen = producer size, external deps final), completes the
    leader's own members and broadcasts [Tcomplete]; otherwise the epoch
    is aborted and the next quiescence retries. *)

val handle_complete :
  t ->
  peer:string ->
  (string * string) * int * (string * string) list ->
  post list
(** [Tcomplete]: freeze this peer's member tables and push their final
    answers to all consumers. *)

val crash : t -> string -> unit
(** The peer crash-stopped: drop its tables and the views it consumes
    (volatile state), remove it from surviving tables' consumer lists,
    and abort any in-flight completion round that involves it.  Views
    held {e by others} on the crashed peer's tables stay registered —
    the next {!quiesce} finds their tables missing and re-posts the
    [Tquery], re-healing once the peer restarts. *)

val quiesce : t -> post list
(** Called by the reactor when the network is quiet but tables remain
    active.  First heals any consumer view lagging its owner table
    (re-pushing lost answers / re-posting lost queries — the simulated
    runtime's stand-in for per-link retransmission); only when every
    view is in sync does it elect the first ready SCC and start a probe
    epoch.  Returns [[]] when there is nothing left to do. *)

val summary : t -> (string * string * int * string) list
(** [(peer, key, answers, status)] for every table, sorted — the
    "completed tables" signature the chaos suite compares across fault
    plans. *)

val table_count : t -> int

open Peertrust_dlp
module Net = Peertrust_net
module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer
module Ojson = Peertrust_obs.Json

type outcome = Granted of Engine.instance list | Denied of string

type denial_class =
  | Policy
  | Timeout
  | Unreachable
  | Budget
  | Cycle
  | Quiescent
  | Quarantined
  | Rate_limited
  | Quota
  | Unsupported
  | Crashed

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* The resilience machinery uses a small stable vocabulary of reasons;
   anything else is an ordinary policy denial. *)
let classify_denial reason =
  if has_prefix ~prefix:"timeout" reason then Timeout
  else if
    has_prefix ~prefix:"unreachable" reason
    || has_prefix ~prefix:"peer unreachable" reason
  then Unreachable
  else if String.equal reason "message budget exhausted" then Budget
  else if String.equal reason "negotiation cycle" then Cycle
  else if String.equal reason "negotiation quiescent" then Quiescent
  else if has_prefix ~prefix:"quarantined" reason then Quarantined
  else if has_prefix ~prefix:"rate-limited" reason then Rate_limited
  else if has_prefix ~prefix:"quota" reason then Quota
  else if has_prefix ~prefix:"unsupported" reason then Unsupported
  else if
    has_prefix ~prefix:"crashed" reason
    || has_prefix ~prefix:"peer crashed" reason
  then Crashed
  else Policy

let denial_class_to_string = function
  | Policy -> "policy"
  | Timeout -> "timeout"
  | Unreachable -> "unreachable"
  | Budget -> "budget"
  | Cycle -> "cycle"
  | Quiescent -> "quiescent"
  | Quarantined -> "quarantined"
  | Rate_limited -> "rate-limited"
  | Quota -> "quota"
  | Unsupported -> "unsupported"
  | Crashed -> "crashed"

(* Denials produced by transport failures rather than policy decisions. *)
let transport_denial reason =
  match classify_denial reason with
  | Timeout | Unreachable | Budget -> true
  | Policy | Cycle | Quiescent | Quarantined | Rate_limited | Quota
  | Unsupported | Crashed ->
      (* A crash denial is a fate of the counterparty, not of the
         links: retransmitting harder cannot help, so it is not a
         transport denial. *)
      false

type report = {
  outcome : outcome;
  messages : int;
  bytes : int;
  disclosures : int;
  elapsed : int;
  transcript : Net.Network.entry list;
}

let succeeded r = match r.outcome with Granted _ -> true | Denied _ -> false

let m_negotiations = Obs.counter "negotiation.count"
let m_granted = Obs.counter "negotiation.granted"
let m_denied = Obs.counter "negotiation.denied"
let h_messages = Obs.histogram "negotiation.messages"
let h_bytes = Obs.histogram "negotiation.bytes"
let h_disclosures = Obs.histogram "negotiation.disclosures"
let h_ticks = Obs.histogram "negotiation.ticks"

let measure_inner session run =
  let net = session.Session.network in
  let stats = Net.Network.stats net in
  let clock = Net.Network.clock net in
  let msgs0 = Net.Stats.messages stats in
  let bytes0 = Net.Stats.bytes stats in
  let t0 = Net.Clock.now clock in
  let log0 = List.length (Net.Network.transcript net) in
  let outcome =
    try run () with
    | Net.Network.Budget_exhausted -> Denied "message budget exhausted"
    | Net.Network.Unreachable peer -> Denied ("peer unreachable: " ^ peer)
  in
  let transcript =
    let all = Net.Network.transcript net in
    List.filteri (fun i _ -> i >= log0) all
  in
  {
    outcome;
    messages = Net.Stats.messages stats - msgs0;
    bytes = Net.Stats.bytes stats - bytes0;
    disclosures =
      List.fold_left (fun acc e -> acc + e.Net.Network.certs_) 0 transcript;
    elapsed = Net.Clock.now clock - t0;
    transcript;
  }

let measure session run =
  let report =
    let tracer = Obs.tracer () in
    if Otracer.enabled tracer then
      (* Each negotiation roots its own causal trace; the minted context
         propagates on every message the engines send on its behalf. *)
      let ctx = Otracer.mint tracer in
      Otracer.with_span tracer ?ctx "negotiation" (fun () ->
          let r = measure_inner session run in
          Otracer.set_attr tracer "outcome"
            (Ojson.Str (if succeeded r then "granted" else "denied"));
          (match r.outcome with
          | Denied reason ->
              Otracer.set_attr tracer "denial.class"
                (Ojson.Str (denial_class_to_string (classify_denial reason)))
          | Granted _ -> ());
          Otracer.set_attr tracer "messages" (Ojson.Int r.messages);
          Otracer.set_attr tracer "disclosures" (Ojson.Int r.disclosures);
          r)
    else measure_inner session run
  in
  Metric.incr m_negotiations;
  Metric.incr (if succeeded report then m_granted else m_denied);
  Metric.observe_int h_messages report.messages;
  Metric.observe_int h_bytes report.bytes;
  Metric.observe_int h_disclosures report.disclosures;
  Metric.observe_int h_ticks report.elapsed;
  report

let request session ~requester ~target goal =
  measure session (fun () ->
      match Engine.query session ~requester ~target goal with
      | [] -> Denied "request denied or not derivable"
      | instances -> Granted instances)

let request_str session ~requester ~target goal_src =
  request session ~requester ~target (Parser.parse_literal goal_src)

let pp_outcome fmt = function
  | Granted instances ->
      Format.fprintf fmt "granted: %a"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
           (fun fmt (l, _) -> Literal.pp fmt l))
        instances
  | Denied reason -> Format.fprintf fmt "denied (%s)" reason

let pp_report fmt r =
  Format.fprintf fmt
    "%a@\n%d message(s), %d byte(s), %d disclosure(s), %d tick(s)" pp_outcome
    r.outcome r.messages r.bytes r.disclosures r.elapsed

module Crypto = Peertrust_crypto

type error = Bad_world of string

let hex_of_string s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    s;
  Buffer.contents buf

let string_of_hex h =
  if String.length h mod 2 <> 0 then None
  else
    try
      Some
        (String.init
           (String.length h / 2)
           (fun i -> Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2))))
    with Failure _ | Invalid_argument _ -> None

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let magic = "peertrust-world 1"

let save session ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let peers =
    Hashtbl.fold (fun name peer acc -> (name, peer) :: acc)
      session.Session.peers []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let meta = Buffer.create 256 in
  Buffer.add_string meta magic;
  Buffer.add_char meta '\n';
  List.iteri
    (fun i (name, (peer : Peer.t)) ->
      Buffer.add_string meta (Printf.sprintf "peer: %d %s\n" i (hex_of_string name));
      write_file
        (Filename.concat dir (Printf.sprintf "peer%d.pt" i))
        (Peertrust_dlp.Program.to_string (Peertrust_dlp.Kb.rules peer.Peer.kb));
      let certs = Hashtbl.fold (fun _ c acc -> c :: acc) peer.Peer.certs [] in
      write_file
        (Filename.concat dir (Printf.sprintf "peer%d.wallet" i))
        (Crypto.Wire.encode_many certs))
    peers;
  write_file (Filename.concat dir "world.meta") (Buffer.contents meta)

(* Loading must survive a corrupt world directory: a truncated meta
   file, garbage rule or wallet files, unreadable entries — every
   failure is a structured [Bad_world] naming the file and (where a
   parser is involved) the offending line, never an exception. *)
let load ?config ?seed ~dir () =
  let meta_path = Filename.concat dir "world.meta" in
  if not (Sys.file_exists meta_path) then
    Error (Bad_world "missing world.meta")
  else begin
    match read_file meta_path with
    | exception Sys_error m -> Error (Bad_world m)
    | exception End_of_file ->
        Error (Bad_world "world.meta: truncated file")
    | meta_contents -> (
    match String.split_on_char '\n' meta_contents with
    | first :: rest when String.equal (String.trim first) magic -> (
        let parse_line lineno line =
          let line = String.trim line in
          let err msg =
            Error (Bad_world (Printf.sprintf "world.meta line %d: %s" lineno msg))
          in
          if line = "" then Ok None
          else if String.length line > 6 && String.sub line 0 6 = "peer: " then begin
            let payload = String.sub line 6 (String.length line - 6) in
            match String.index_opt payload ' ' with
            | None -> err ("bad index line: " ^ line)
            | Some i -> (
                let idx = String.sub payload 0 i in
                let name_hex =
                  String.sub payload (i + 1) (String.length payload - i - 1)
                in
                match (int_of_string_opt idx, string_of_hex name_hex) with
                | Some idx, Some name -> Ok (Some (idx, name))
                | _, _ -> err ("bad index line: " ^ line))
          end
          else err ("unrecognised line: " ^ line)
        in
        let rec collect acc lineno = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
              match parse_line lineno line with
              | Ok None -> collect acc (lineno + 1) rest
              | Ok (Some entry) -> collect (entry :: acc) (lineno + 1) rest
              | Error e -> Error e)
        in
        (* The magic header is line 1; entries start on line 2. *)
        match collect [] 2 rest with
        | Error e -> Error e
        | Ok entries -> (
            let session = Session.create ?config ?seed () in
            let load_peer (idx, name) =
              let program_path =
                Filename.concat dir (Printf.sprintf "peer%d.pt" idx)
              in
              if not (Sys.file_exists program_path) then
                Error (Bad_world (Printf.sprintf "missing peer%d.pt" idx))
              else begin
                match
                  Session.add_peer session ~program:(read_file program_path)
                    name
                with
                | exception Sys_error m -> Error (Bad_world m)
                | exception Peertrust_dlp.Parser.Error (m, l, _) ->
                    Error
                      (Bad_world
                         (Printf.sprintf "peer%d.pt line %d: %s" idx l m))
                | peer -> (
                    let wallet_path =
                      Filename.concat dir (Printf.sprintf "peer%d.wallet" idx)
                    in
                    if not (Sys.file_exists wallet_path) then Ok ()
                    else
                      match Crypto.Wire.decode_many (read_file wallet_path) with
                      | exception Sys_error m -> Error (Bad_world m)
                      | Ok certs ->
                          List.iter (Peer.add_cert peer) certs;
                          Ok ()
                      | Error (Crypto.Wire.Malformed m) ->
                          Error
                            (Bad_world
                               (Printf.sprintf "peer%d.wallet: %s" idx m)))
              end
            in
            let rec load_all = function
              | [] -> Ok ()
              | entry :: rest -> (
                  match load_peer entry with
                  | Ok () -> load_all rest
                  | Error e -> Error e)
            in
            match load_all entries with
            | Error e -> Error e
            | Ok () ->
                Engine.attach_all session;
                Ok session))
    | _ -> Error (Bad_world "world.meta line 1: bad magic line"))
  end

let pp_error fmt (Bad_world msg) = Format.fprintf fmt "bad world: %s" msg

module Crypto = Peertrust_crypto

type error = Bad_world of string

let hex_of_string s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    s;
  Buffer.contents buf

let string_of_hex h =
  if String.length h mod 2 <> 0 then None
  else
    try
      Some
        (String.init
           (String.length h / 2)
           (fun i -> Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2))))
    with Failure _ | Invalid_argument _ -> None

(* Crash-atomic: a reader never observes a half-written file.  The
   contents land in a sibling temp file first; the final [Sys.rename]
   is atomic on POSIX, so a crash between the two leaves either the old
   file or the complete new one, plus at worst an orphan [.tmp]. *)
let write_file path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc contents;
      flush oc);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let magic = "peertrust-world 1"

let save session ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let peers =
    Hashtbl.fold (fun name peer acc -> (name, peer) :: acc)
      session.Session.peers []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let meta = Buffer.create 256 in
  Buffer.add_string meta magic;
  Buffer.add_char meta '\n';
  List.iteri
    (fun i (name, (peer : Peer.t)) ->
      Buffer.add_string meta (Printf.sprintf "peer: %d %s\n" i (hex_of_string name));
      write_file
        (Filename.concat dir (Printf.sprintf "peer%d.pt" i))
        (Peertrust_dlp.Program.to_string (Peertrust_dlp.Kb.rules peer.Peer.kb));
      let certs = Hashtbl.fold (fun _ c acc -> c :: acc) peer.Peer.certs [] in
      write_file
        (Filename.concat dir (Printf.sprintf "peer%d.wallet" i))
        (Crypto.Wire.encode_many certs))
    peers;
  write_file (Filename.concat dir "world.meta") (Buffer.contents meta)

(* Loading must survive a corrupt world directory: a truncated meta
   file, garbage rule or wallet files, unreadable entries — every
   failure is a structured [Bad_world] naming the file and (where a
   parser is involved) the offending line, never an exception. *)
let load ?config ?seed ~dir () =
  let meta_path = Filename.concat dir "world.meta" in
  if not (Sys.file_exists meta_path) then
    Error (Bad_world "missing world.meta")
  else begin
    match read_file meta_path with
    | exception Sys_error m -> Error (Bad_world m)
    | exception End_of_file ->
        Error (Bad_world "world.meta: truncated file")
    | meta_contents -> (
    match String.split_on_char '\n' meta_contents with
    | first :: rest when String.equal (String.trim first) magic -> (
        let parse_line lineno line =
          let line = String.trim line in
          let err msg =
            Error (Bad_world (Printf.sprintf "world.meta line %d: %s" lineno msg))
          in
          if line = "" then Ok None
          else if String.length line > 6 && String.sub line 0 6 = "peer: " then begin
            let payload = String.sub line 6 (String.length line - 6) in
            match String.index_opt payload ' ' with
            | None -> err ("bad index line: " ^ line)
            | Some i -> (
                let idx = String.sub payload 0 i in
                let name_hex =
                  String.sub payload (i + 1) (String.length payload - i - 1)
                in
                match (int_of_string_opt idx, string_of_hex name_hex) with
                | Some idx, Some name -> Ok (Some (idx, name))
                | _, _ -> err ("bad index line: " ^ line))
          end
          else err ("unrecognised line: " ^ line)
        in
        let rec collect acc lineno = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
              match parse_line lineno line with
              | Ok None -> collect acc (lineno + 1) rest
              | Ok (Some entry) -> collect (entry :: acc) (lineno + 1) rest
              | Error e -> Error e)
        in
        (* The magic header is line 1; entries start on line 2. *)
        match collect [] 2 rest with
        | Error e -> Error e
        | Ok entries -> (
            let session = Session.create ?config ?seed () in
            let load_peer (idx, name) =
              let program_path =
                Filename.concat dir (Printf.sprintf "peer%d.pt" idx)
              in
              if not (Sys.file_exists program_path) then
                Error (Bad_world (Printf.sprintf "missing peer%d.pt" idx))
              else begin
                match
                  Session.add_peer session ~program:(read_file program_path)
                    name
                with
                | exception Sys_error m -> Error (Bad_world m)
                | exception Peertrust_dlp.Parser.Error (m, l, _) ->
                    Error
                      (Bad_world
                         (Printf.sprintf "peer%d.pt line %d: %s" idx l m))
                | peer -> (
                    let wallet_path =
                      Filename.concat dir (Printf.sprintf "peer%d.wallet" idx)
                    in
                    if not (Sys.file_exists wallet_path) then Ok ()
                    else
                      match Crypto.Wire.decode_many (read_file wallet_path) with
                      | exception Sys_error m -> Error (Bad_world m)
                      | Ok certs ->
                          List.iter (Peer.add_cert peer) certs;
                          Ok ()
                      | Error (Crypto.Wire.Malformed m) ->
                          Error
                            (Bad_world
                               (Printf.sprintf "peer%d.wallet: %s" idx m)))
              end
            in
            let rec load_all = function
              | [] -> Ok ()
              | entry :: rest -> (
                  match load_peer entry with
                  | Ok () -> load_all rest
                  | Error e -> Error e)
            in
            match load_all entries with
            | Error e -> Error e
            | Ok () ->
                Engine.attach_all session;
                Ok session))
    | _ -> Error (Bad_world "world.meta line 1: bad magic line"))
  end

let pp_error fmt (Bad_world msg) = Format.fprintf fmt "bad world: %s" msg

module Journal = struct
  module Dlp = Peertrust_dlp

  type entry =
    | Cert of Crypto.Cert.t
    | Fact of Dlp.Rule.t
    | Answer of {
        owner : string;
        goal : Dlp.Literal.t;
        instances : Dlp.Literal.t list;
      }
    | Goal of { id : int; target : string; goal : Dlp.Literal.t }
    | Done of { id : int }

  type sink = Disk of string | Memory of Buffer.t
  type t = { sink : sink; mutable appends : int }

  let in_memory () = { sink = Memory (Buffer.create 256); appends = 0 }
  let on_disk path = { sink = Disk path; appends = 0 }

  let for_peer ~dir ~peer =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    on_disk (Filename.concat dir (hex_of_string peer ^ ".journal"))

  let appends t = t.appends

  (* One line per entry; every free-form field (peer names, literal
     text) is hex-armoured so newlines and spaces in the payload cannot
     break the line discipline the torn-tail recovery depends on. *)
  let line_of_entry = function
    | Cert c -> "cert " ^ hex_of_string (Crypto.Wire.encode c)
    | Fact r -> "fact " ^ hex_of_string (Dlp.Rule.to_string r)
    | Answer { owner; goal; instances } ->
        Printf.sprintf "answer %s %s %s" (hex_of_string owner)
          (hex_of_string (Dlp.Literal.to_string goal))
          (match instances with
          | [] -> "-"
          | is ->
              String.concat ","
                (List.map
                   (fun i -> hex_of_string (Dlp.Literal.to_string i))
                   is))
    | Goal { id; target; goal } ->
        Printf.sprintf "goal %d %s %s" id (hex_of_string target)
          (hex_of_string (Dlp.Literal.to_string goal))
    | Done { id } -> Printf.sprintf "done %d" id

  let literal_of_hex h =
    match string_of_hex h with
    | None -> Error "bad hex"
    | Some s -> (
        match Dlp.Parser.parse_literal s with
        | lit -> Ok lit
        | exception Dlp.Parser.Error (m, _, _) -> Error m
        | exception _ -> Error "unparseable literal")

  let parse_line line =
    let ( let* ) = Result.bind in
    match String.split_on_char ' ' line with
    | [ "cert"; hex ] -> (
        match string_of_hex hex with
        | None -> Error "cert: bad hex"
        | Some blob -> (
            match Crypto.Wire.decode blob with
            | Ok c -> Ok (Cert c)
            | Error (Crypto.Wire.Malformed m) -> Error ("cert: " ^ m)))
    | [ "fact"; hex ] -> (
        match string_of_hex hex with
        | None -> Error "fact: bad hex"
        | Some text -> (
            match Dlp.Parser.parse_rule text with
            | r -> Ok (Fact r)
            | exception Dlp.Parser.Error (m, _, _) -> Error ("fact: " ^ m)
            | exception _ -> Error "fact: unparseable rule"))
    | [ "answer"; owner_hex; goal_hex; insts ] -> (
        match string_of_hex owner_hex with
        | None -> Error "answer: bad owner hex"
        | Some owner ->
            let* goal =
              Result.map_error (fun m -> "answer: goal: " ^ m)
                (literal_of_hex goal_hex)
            in
            let* instances =
              if String.equal insts "-" then Ok []
              else
                List.fold_right
                  (fun h acc ->
                    let* acc = acc in
                    let* lit =
                      Result.map_error (fun m -> "answer: instance: " ^ m)
                        (literal_of_hex h)
                    in
                    Ok (lit :: acc))
                  (String.split_on_char ',' insts)
                  (Ok [])
            in
            Ok (Answer { owner; goal; instances }))
    | [ "goal"; id; target_hex; goal_hex ] -> (
        match (int_of_string_opt id, string_of_hex target_hex) with
        | Some id, Some target ->
            let* goal =
              Result.map_error (fun m -> "goal: " ^ m)
                (literal_of_hex goal_hex)
            in
            Ok (Goal { id; target; goal })
        | None, _ -> Error "goal: bad id"
        | _, None -> Error "goal: bad target hex")
    | [ "done"; id ] -> (
        match int_of_string_opt id with
        | Some id -> Ok (Done { id })
        | None -> Error "done: bad id")
    | _ -> Error "unrecognised entry"

  (* Total over arbitrary bytes.  The final segment without a trailing
     newline is a torn tail — the write the crash interrupted — and is
     dropped; so is an unparseable {e last} complete line (a flush can
     land the newline before the crash).  Damage earlier in the stream
     is not crash-shaped and comes back as a line-numbered error. *)
  let parse text =
    let complete =
      match List.rev (String.split_on_char '\n' text) with
      | _torn_tail :: rev -> List.rev rev
      | [] -> []
    in
    let rec go acc n = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
          if String.trim line = "" then go acc (n + 1) rest
          else
            match parse_line line with
            | Ok e -> go (e :: acc) (n + 1) rest
            | Error _ when rest = [] -> Ok (List.rev acc)
            | Error m ->
                Error
                  (Bad_world (Printf.sprintf "journal line %d: %s" n m)))
    in
    go [] 1 complete

  let append t entry =
    let line = line_of_entry entry ^ "\n" in
    (match t.sink with
    | Memory b -> Buffer.add_string b line
    | Disk path ->
        let oc =
          open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
        in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc line;
            flush oc));
    t.appends <- t.appends + 1

  let contents t =
    match t.sink with
    | Memory b -> Buffer.contents b
    | Disk path -> if Sys.file_exists path then read_file path else ""

  let entries t = parse (contents t)

  let rewrite t entries =
    let text =
      String.concat "" (List.map (fun e -> line_of_entry e ^ "\n") entries)
    in
    match t.sink with
    | Memory b ->
        Buffer.clear b;
        Buffer.add_string b text
    | Disk path -> write_file path text

  let reset t = rewrite t []

  let replay_peer peer entries =
    List.iter
      (function
        | Cert c -> Peer.add_cert peer c
        | Fact r -> Peer.add_rule peer r
        | Answer _ | Goal _ | Done _ -> ())
      entries
end

(** Inbound guards and per-requester admission control at a peer's
    network boundary.

    PeerTrust's run-time otherwise assumes counterparties that follow
    the protocol; on the open Semantic Web a peer must survive partners
    that lie, flood or speak garbage.  The guard sits in front of the
    queued reactor's dispatch and classifies every inbound envelope
    before it can touch the engine:

    - {b structural} checks — payload size caps, batch shape, authority-
      chain/term depth of query goals (delegation bombs), certificate
      well-formedness ({!Peertrust_crypto.Wire} decoding for raw blobs)
      and signature verification via the session keystore;
    - {b solicitation} checks — an [Answer]/[Deny] must match a
      sub-query this peer actually has outstanding: spoofed or replayed
      answers are rejected as violations (late duplicates of already
      resolved sub-queries are dropped as {e stale}, without blame);
    - {b admission control} per (guarded peer, requester) pair — a
      sliding-window query rate limit, a resolution work quota (charged
      in SLD solver steps, enforced through {!Peertrust_dlp.Sld.options}
      [max_steps]), and a circuit breaker that quarantines a requester
      after [quarantine_after] violations inside [violation_window]
      ticks, with timed half-open recovery on the simulated clock.

    State is keyed by directed pair, so one abusive requester cannot get
    an honest third party quarantined.  All limits live in {!config};
    the {!permissive} default disables the guard entirely, keeping
    existing transcripts byte-identical. *)

type config = {
  enabled : bool;
  max_bytes : int;  (** per-payload wire-size cap *)
  max_batch : int;  (** payloads per batch; nested batches are malformed *)
  max_goal_depth : int;
      (** cap on a query goal's authority-chain length and term depth *)
  rate : int;  (** queries admitted per requester per window *)
  rate_window : int;  (** rate-limit sliding window, ticks *)
  quota : int;  (** SLD solver steps spent per requester, whole session *)
  quarantine_after : int;  (** violations inside the window that trip it *)
  violation_window : int;  (** violation sliding window, ticks *)
  quarantine_ticks : int;  (** Open duration before a half-open probe *)
}

val permissive : config
(** Guard disabled ([enabled = false]): every payload is admitted. *)

val defaults : config
(** The tuned enabled configuration behind [--guard]: generous enough
    that honest scenario traffic never trips it, tight enough that every
    flooding/malformed adversary lands in quarantine. *)

type violation =
  | Malformed of string  (** unparseable or ill-shaped payload *)
  | Oversized of int  (** payload byte size above [max_bytes] *)
  | Unsolicited of string  (** answer/deny without an outstanding query *)
  | Bad_cert of string  (** certificate failing signature verification *)
  | Flooding  (** query rate above [rate] per [rate_window] *)
  | Quota_exhausted  (** requester's resolution work quota spent *)
  | Bomb of int  (** query goal deeper than [max_goal_depth] *)
  | Quarantined  (** requester's circuit breaker is open *)

val violation_to_string : violation -> string

val denial_reason : violation -> string
(** Stable reason vocabulary for the [Deny] sent back for a rejected
    query — ["quarantined"], ["rate-limited"], ["quota"], ... — the
    strings {!Negotiation.classify_denial} recognises. *)

type verdict =
  | Admit
  | Stale of string
      (** harmless late duplicate (already-resolved sub-query): dropped,
          no violation recorded *)
  | Reject of violation

type breaker =
  | Closed
  | Open of { until : int }  (** rejects everything until [until] *)
  | Half_open  (** probation: next admit closes it, next violation re-opens *)

type t

val create : ?config:config -> verify:(Peertrust_crypto.Cert.t -> bool) -> unit -> t
(** [verify] checks one inbound certificate (typically
    {!Peertrust_crypto.Cert.verify} against the session keystore at the
    session's validity instant; [fun _ -> true] when the session has
    signature verification off). *)

val config : t -> config

val admit :
  t ->
  now:int ->
  from:string ->
  target:string ->
  ?solicited:(Peertrust_dlp.Literal.t -> [ `Outstanding | `Resolved | `Unknown ]) ->
  Peertrust_net.Message.payload ->
  verdict
(** Judge one inbound payload addressed to guarded peer [target] from
    requester [from].  [solicited] reports whether an answered goal has
    a matching sub-query outstanding (default: [`Unknown], i.e. nothing
    is ever solicited).  Rejections record a violation against [from]
    and may trip its breaker; admissions while half-open close it. *)

val charge_work : t -> from:string -> target:string -> int -> unit
(** Charge [n] resolution steps spent on [from]'s behalf against its
    quota. *)

val remaining_work : t -> from:string -> target:string -> int
(** Unspent quota ([max_int] when the guard is disabled); feed it to
    {!Peertrust_dlp.Sld.options} [max_steps] when evaluating on the
    requester's behalf. *)

val breaker_state : t -> from:string -> target:string -> breaker

val reset_peer : t -> string -> unit
(** Forget everything guarded peer [name] kept about its requesters —
    rate windows, work quotas, breakers.  Called when [name] crash-stops:
    admission state is volatile and does not survive a restart.  State
    {e other} peers hold about [name] is untouched. *)

val quarantined : t -> (string * string) list
(** Directed [(target, from)] pairs whose breaker is currently open,
    sorted; a post-run snapshot (no expiry applied). *)

open Peertrust_dlp

let authority_fact ~pred ~authority =
  Rule.fact (Literal.make "authority" [ Term.atom pred; Term.str authority ])

let install_directory peer directory =
  List.iter
    (fun (pred, authority) ->
      Peer.add_rule peer (authority_fact ~pred ~authority))
    directory

let add_broker session ~name ~directory =
  let peer = Session.add_peer session name in
  List.iter
    (fun (pred, authority) ->
      let fact = authority_fact ~pred ~authority in
      (* Publicly queryable directory entry. *)
      Peer.add_rule peer { fact with Rule.head_ctx = Some [] })
    directory;
  Engine.attach session peer;
  peer

let lookup session ~requester ~broker ~pred =
  let goal =
    Literal.make "authority" [ Term.atom pred; Term.var "Authority" ]
  in
  Engine.query session ~requester ~target:broker goal
  |> List.filter_map (fun ((inst : Literal.t), _) ->
         match inst.Literal.args with
         | [ _; a ] -> Term.const_name a
         | _ -> None)

open Peertrust_dlp

let vars_of_arity n = List.init n (fun i -> Term.var (Printf.sprintf "X%d" (i + 1)))

let delegation_rule ?(release = []) ~issuer ~delegate ~pred ~arity () =
  let args = vars_of_arity arity in
  Rule.make ~rule_ctx:release ~signer:[ issuer ]
    (Literal.make ~auth:[ Term.str issuer ] pred args)
    [ Literal.make ~auth:[ Term.str delegate ] pred args ]

let credential_fact ?(release = []) ~issuer ~pred ~subject () =
  Rule.make ~head_ctx:release ~signer:[ issuer ]
    (Literal.make ~auth:[ Term.str issuer ] pred subject)
    []

let grant session ~holder rule =
  if not (Rule.is_signed rule) then
    invalid_arg "Delegation.grant: rule is unsigned";
  match Peertrust_crypto.Cert.issue session.Session.keystore rule with
  | Ok cert ->
      Peer.add_cert holder cert;
      cert
  | Error e ->
      invalid_arg
        (Format.asprintf "Delegation.grant: %a" Peertrust_crypto.Cert.pp_error e)

let chain_of_trace ~pred trace =
  List.filter
    (fun (r : Rule.t) -> String.equal r.Rule.head.Literal.pred pred)
    (Trace.credentials trace)

let chain_rooted ~root ~pred trace =
  match chain_of_trace ~pred trace with
  | [] -> false
  | first :: _ -> List.mem root first.Rule.signer

open Peertrust_dlp
module Rdf = Peertrust_rdf

type t = { projection : string list; body : Literal.t list }
type row = Term.t list

let parse src =
  let arrow =
    let n = String.length src in
    let rec find i =
      if i + 1 >= n then None
      else if src.[i] = '<' && src.[i + 1] = '-' then Some i
      else find (i + 1)
    in
    find 0
  in
  match arrow with
  | None -> invalid_arg "Qel.parse: expected 'vars <- body'"
  | Some i ->
      let head = String.trim (String.sub src 0 i) in
      let body_src = String.sub src (i + 2) (String.length src - i - 2) in
      let projection =
        if head = "" then []
        else
          String.split_on_char ',' head
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
      in
      List.iter
        (fun v ->
          match Parser.parse_term v with
          | Term.Var _ -> ()
          | _ -> invalid_arg ("Qel.parse: projection is not a variable: " ^ v))
        projection;
      let body = Parser.parse_query body_src in
      let body_vars = List.concat_map Literal.vars body in
      List.iter
        (fun v ->
          if not (List.mem (Term.var_id v) body_vars) then
            invalid_arg ("Qel.parse: unbound projection variable " ^ v))
        projection;
      { projection; body }

let to_string q =
  Format.asprintf "%s <- %a"
    (String.concat ", " q.projection)
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Literal.pp)
    q.body

let dedup_rows rows =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun row ->
      let key = String.concat "|" (List.map Term.to_string row) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    rows

let project q substs =
  dedup_rows
    (List.map
       (fun s -> List.map (fun v -> Subst.apply s (Term.var v)) q.projection)
       substs)

let eval_kb ~self kb q = project q (Sld.answers ~self kb q.body)

let eval_store store q = eval_kb ~self:"local" (Rdf.Mapping.kb_of_store store) q

let searchable_program registry =
  let kb = Rdf.Registry.to_kb registry in
  let preds =
    Kb.rules kb
    |> List.map (fun (r : Rule.t) -> Literal.key r.Rule.head)
    |> List.sort_uniq compare
  in
  let buf = Buffer.create 512 in
  (* The metadata facts themselves... *)
  List.iter
    (fun r ->
      Buffer.add_string buf (Rule.to_string r);
      Buffer.add_char buf '\n')
    (Kb.rules kb);
  (* ...and a public release rule per metadata predicate. *)
  List.iter
    (fun (name, arity) ->
      let vars =
        String.concat ", " (List.init arity (fun i -> Printf.sprintf "X%d" i))
      in
      let head = if arity = 0 then name else Printf.sprintf "%s(%s)" name vars in
      Buffer.add_string buf
        (Printf.sprintf "%s $ true <-{true} %s.\n" head head))
    preds;
  Buffer.contents buf

let search session ~requester ~provider q =
  let peer = Session.peer session requester in
  let decorated =
    List.map
      (fun l -> Literal.push_authority l (Term.str provider))
      q.body
  in
  let answers = Engine.evaluate session peer decorated in
  project q (List.map (fun (a : Sld.answer) -> a.Sld.subst) answers)

let search_all session ~requester ~providers q =
  List.filter_map
    (fun provider ->
      match search session ~requester ~provider q with
      | rows -> Some (provider, rows)
      | exception Peertrust_net.Network.Unreachable _ -> None)
    providers

open Peertrust_dlp

type t = {
  name : string;
  mutable kb : Kb.t;
  certs : (string, Peertrust_crypto.Cert.t) Hashtbl.t;
  origins : (int, string) Hashtbl.t;
  externals : Sld.externals;
  mutable options : Sld.options;
  mutable active : (string * string) list;
  mutable kb_watchers : (unit -> unit) list;
}

let create ?(options = Sld.default_options) ?(externals = fun _ -> None)
    ?(kb = Kb.empty) name =
  {
    name;
    kb;
    certs = Hashtbl.create 16;
    origins = Hashtbl.create 16;
    externals;
    options;
    active = [];
    kb_watchers = [];
  }

let on_kb_update t f = t.kb_watchers <- f :: t.kb_watchers
let notify_kb t = List.iter (fun f -> f ()) (List.rev t.kb_watchers)

let load_program t src =
  t.kb <- Kb.add_list (Parser.parse_program src) t.kb;
  notify_kb t

let set_kb t kb =
  t.kb <- kb;
  notify_kb t

(* Deliberately does NOT notify the KB watchers: [add_rule] fires for
   every fact learned during a negotiation (the hot path), and learned
   facts only ever grow the derivable set — cached answers stay sound. *)
let add_rule t r = t.kb <- Kb.add r t.kb

let add_cert ?origin t (c : Peertrust_crypto.Cert.t) =
  let key = Rule.canonical c.Peertrust_crypto.Cert.rule in
  if not (Hashtbl.mem t.certs key) then Hashtbl.add t.certs key c;
  Option.iter
    (fun o ->
      if not (Hashtbl.mem t.origins c.Peertrust_crypto.Cert.serial) then
        Hashtbl.add t.origins c.Peertrust_crypto.Cert.serial o)
    origin;
  add_rule t c.Peertrust_crypto.Cert.rule

let cert_origin t (c : Peertrust_crypto.Cert.t) =
  Hashtbl.find_opt t.origins c.Peertrust_crypto.Cert.serial

let cert_for t r =
  match Hashtbl.find_opt t.certs (Rule.canonical r) with
  | Some c -> Some c
  | None ->
      (* Rules in proof traces are instantiated; fall back to a subsumption
         scan so the backing credential is still found. *)
      Hashtbl.fold
        (fun _ (c : Peertrust_crypto.Cert.t) acc ->
          match acc with
          | Some _ -> acc
          | None ->
              if
                Rule.subsumes ~general:c.Peertrust_crypto.Cert.rule ~specific:r
              then Some c
              else None)
        t.certs None

let goal_key lit = Rule.canonical (Rule.fact lit)

let enter t ~requester lit =
  let key = (requester, goal_key lit) in
  if List.mem key t.active then false
  else begin
    t.active <- key :: t.active;
    true
  end

let leave t ~requester lit =
  let key = (requester, goal_key lit) in
  let rec remove_first = function
    | [] -> []
    | k :: rest -> if k = key then rest else k :: remove_first rest
  in
  t.active <- remove_first t.active

(** Ready-made external predicates — the run-time hooks the paper calls
    "external predicates" and uses in its examples:

    - [authenticatesTo(X, Y)] (footnote 3): the requester [X] proves at
      run time that it owns identity [Y] under which another authority
      knows it.  Backed by an identity registry filled at enrolment time.
    - [rating(Subject, R)] (§2: "ratings from a local or remote reputation
      monitoring service can also be included in a policy").
    - [purchaseApproved(Company, Price)]-style limit checks (§4.2),
      parameterised by account limits, with optional account revocation —
      the run-time interpretation of the paper's revocation speech acts.

    Externals combine with {!combine}; a peer gets the resulting table at
    construction ([Session.add_peer ~externals]). *)

open Peertrust_dlp

val none : Sld.externals

val combine : Sld.externals list -> Sld.externals
(** First table claiming a key wins. *)

(** Identity equivalences for [authenticatesTo/2]. *)
module Identity : sig
  type t

  val create : unit -> t

  val enroll : t -> principal:string -> identity:string -> unit
  (** Record that [principal] owns [identity] (e.g. Alice's student
      number). *)

  val externals : t -> Sld.externals
  (** Provides [authenticatesTo(X, Y)]: succeeds when the ground [X] has
      enrolled identity [Y]; with [Y] unbound, enumerates [X]'s
      identities. *)
end

(** A reputation table for [rating/2]. *)
module Reputation : sig
  type t

  val create : unit -> t
  val rate : t -> subject:string -> int -> unit
  (** Record a rating; {!externals} reports the rounded average. *)

  val average : t -> subject:string -> int option

  val externals : t -> Sld.externals
  (** Provides [rating(Subject, R)]: binds or checks [R] against the
      average rating of [Subject]; fails for unrated subjects. *)
end

(** Account limits and revocation for approval checks. *)
module Accounts : sig
  type t

  val create : unit -> t
  val set_limit : t -> account:string -> int -> unit
  val revoke : t -> account:string -> unit

  val subscribe : t -> (string -> unit) -> unit
  (** [subscribe t f] registers [f] to be called with the account name
      whenever that account changes ({!set_limit} or {!revoke}) — the
      revocation speech act other components react to (e.g.
      {!Answer_cache} invalidation).  Watchers fire in subscription
      order. *)

  val externals : ?pred:string -> t -> Sld.externals
  (** Provides [<pred>(Account, Amount)] (default pred
      ["purchaseApproved"]): succeeds when the account exists, is not
      revoked, and [Amount] is within its limit. *)
end

open Peertrust_dlp
module Net = Peertrust_net
module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer

type t = Relevant | Eager | Push_relevant

let m_eager_rounds = Obs.counter "strategy.eager_rounds"

(* One disclosure round of the eager strategies, as a [round] span when
   tracing is on. *)
let in_round n f =
  Metric.incr m_eager_rounds;
  let tracer = Obs.tracer () in
  if Otracer.enabled tracer then
    Otracer.with_span tracer
      ~attrs:[ ("n", Peertrust_obs.Json.Int n) ]
      "round" f
  else f ()

let all = [ Relevant; Eager; Push_relevant ]

let to_string = function
  | Relevant -> "relevant"
  | Eager -> "eager"
  | Push_relevant -> "push-relevant"

let eager_rounds_limit = 64

(* Eager-mode message handler: answers are computed from the local KB only
   (no counter-queries); disclosures are learned as usual. *)
let eager_handler session peer : Net.Network.handler =
 fun ~from payload ->
  match payload with
  | Net.Message.Query { goal } -> (
      match Engine.answer ~allow_remote:false session peer ~requester:from goal with
      | Ok (instances, certs) -> Net.Message.Answer { goal; instances; certs }
      | Error reason -> Net.Message.Deny { goal; reason })
  | Net.Message.Disclosure { certs; rules } ->
      Engine.learn ~from_:from session peer certs;
      List.iter
        (fun r -> if not (Rule.is_signed r) then Peer.add_rule peer r)
        rules;
      Net.Message.Ack
  | Net.Message.Answer _ | Net.Message.Deny _ | Net.Message.Ack
  | Net.Message.Batch _ | Net.Message.Raw _ | Net.Message.Tquery _
  | Net.Message.Tanswer _ | Net.Message.Tprobe _ | Net.Message.Tstat _
  | Net.Message.Tcomplete _ | Net.Message.Cancel _ ->
      Net.Message.Ack

let run_eager session ~requester ~target goal =
  let r_peer = Session.peer session requester in
  let t_peer = Session.peer session target in
  let net = session.Session.network in
  Net.Network.register net requester (eager_handler session r_peer);
  Net.Network.register net target (eager_handler session t_peer);
  Fun.protect
    ~finally:(fun () ->
      (* Restore the standard (backward-chaining) handlers. *)
      Engine.attach session r_peer;
      Engine.attach session t_peer)
    (fun () ->
      let sent = Hashtbl.create 32 in
      (* (direction, serial) pairs already pushed *)
      let push from_peer to_name =
        let fresh =
          Engine.releasable_certs ~allow_remote:false session from_peer
            ~requester:to_name
          |> List.filter (fun (c : Peertrust_crypto.Cert.t) ->
                 not
                   (Hashtbl.mem sent
                      (from_peer.Peer.name, c.Peertrust_crypto.Cert.serial)))
        in
        List.iter
          (fun (c : Peertrust_crypto.Cert.t) ->
            Hashtbl.add sent
              (from_peer.Peer.name, c.Peertrust_crypto.Cert.serial)
              ())
          fresh;
        Engine.disclose session from_peer ~target:to_name fresh;
        fresh <> []
      in
      let rec round n =
        if n > eager_rounds_limit then
          Negotiation.Denied "eager rounds limit exceeded"
        else
          let decision =
            in_round n (fun () ->
                match
                  Net.Network.send net ~from:requester ~target
                    (Net.Message.Query { goal })
                with
                | Net.Message.Answer { instances; certs; _ } ->
                    Engine.learn ~from_:target session r_peer certs;
                    `Done (Negotiation.Granted instances)
                | Net.Message.Deny _ ->
                    let p1 = push r_peer target in
                    let p2 = push t_peer requester in
                    if p1 || p2 then `Retry
                    else `Done (Negotiation.Denied "no safe disclosure sequence")
                | Net.Message.Query _ | Net.Message.Disclosure _
                | Net.Message.Ack | Net.Message.Batch _ | Net.Message.Raw _
                | Net.Message.Tquery _ | Net.Message.Tanswer _
                | Net.Message.Tprobe _ | Net.Message.Tstat _
                | Net.Message.Tcomplete _ | Net.Message.Cancel _ ->
                    `Done (Negotiation.Denied "protocol error"))
          in
          match decision with `Done o -> o | `Retry -> round (n + 1)
      in
      round 1)

let run_eager_multi session ~participants ~requester ~target goal =
  if not (List.mem requester participants && List.mem target participants)
  then invalid_arg "Strategy.negotiate_multi: requester/target not listed";
  let peers = List.map (Session.peer session) participants in
  let net = session.Session.network in
  List.iter
    (fun p -> Net.Network.register net p.Peer.name (eager_handler session p))
    peers;
  Fun.protect
    ~finally:(fun () -> List.iter (Engine.attach session) peers)
    (fun () ->
      let r_peer = Session.peer session requester in
      let sent = Hashtbl.create 64 in
      let push from_peer to_name =
        let fresh =
          Engine.releasable_certs ~allow_remote:false session from_peer
            ~requester:to_name
          |> List.filter (fun (c : Peertrust_crypto.Cert.t) ->
                 not
                   (Hashtbl.mem sent
                      ( from_peer.Peer.name,
                        to_name,
                        c.Peertrust_crypto.Cert.serial )))
        in
        List.iter
          (fun (c : Peertrust_crypto.Cert.t) ->
            Hashtbl.add sent
              (from_peer.Peer.name, to_name, c.Peertrust_crypto.Cert.serial)
              ())
          fresh;
        Engine.disclose session from_peer ~target:to_name fresh;
        fresh <> []
      in
      let push_round () =
        List.fold_left
          (fun progress p ->
            List.fold_left
              (fun progress other ->
                if String.equal other p.Peer.name then progress
                else push p other || progress)
              progress participants)
          false peers
      in
      let rec round n =
        if n > eager_rounds_limit then
          Negotiation.Denied "eager rounds limit exceeded"
        else
          let decision =
            in_round n (fun () ->
                match
                  Net.Network.send net ~from:requester ~target
                    (Net.Message.Query { goal })
                with
                | Net.Message.Answer { instances; certs; _ } ->
                    Engine.learn ~from_:target session r_peer certs;
                    `Done (Negotiation.Granted instances)
                | Net.Message.Deny _ ->
                    if push_round () then `Retry
                    else `Done (Negotiation.Denied "no safe disclosure sequence")
                | Net.Message.Query _ | Net.Message.Disclosure _
                | Net.Message.Ack | Net.Message.Batch _ | Net.Message.Raw _
                | Net.Message.Tquery _ | Net.Message.Tanswer _
                | Net.Message.Tprobe _ | Net.Message.Tstat _
                | Net.Message.Tcomplete _ | Net.Message.Cancel _ ->
                    `Done (Negotiation.Denied "protocol error"))
          in
          match decision with `Done o -> o | `Retry -> round (n + 1)
      in
      round 1)

let negotiate_multi session ~participants ~requester ~target goal =
  Negotiation.measure session (fun () ->
      run_eager_multi session ~participants ~requester ~target goal)

let run_push_relevant session ~requester ~target goal =
  let r_peer = Session.peer session requester in
  let certs =
    Engine.releasable_certs ~allow_remote:false session r_peer
      ~requester:target
  in
  Engine.disclose session r_peer ~target certs;
  match Engine.query session ~requester ~target goal with
  | [] -> Negotiation.Denied "request denied or not derivable"
  | instances -> Negotiation.Granted instances

let negotiate session ~strategy ~requester ~target goal =
  match strategy with
  | Relevant -> Negotiation.request session ~requester ~target goal
  | Eager ->
      Negotiation.measure session (fun () ->
          run_eager session ~requester ~target goal)
  | Push_relevant ->
      Negotiation.measure session (fun () ->
          run_push_relevant session ~requester ~target goal)

let negotiate_str session ~strategy ~requester ~target goal_src =
  negotiate session ~strategy ~requester ~target
    (Parser.parse_literal goal_src)

(* Distributed tabling: the GEM-style port of {!Peertrust_dlp.Tabled}
   across the reactor.

   Every goal skeleton has exactly one table, living at the peer that
   owns the goal (the outermost authority).  Consumers hold a monotone
   *view* of each remote table they depend on; the owner pushes its full
   current instance list on every change ([Tanswer]), so duplicated,
   reordered or re-transmitted pushes merge idempotently.  Acyclic
   dependency chains complete bottom-up: a table whose remote deps are
   all final freezes as soon as it reaches its local fixpoint.  Genuine
   cross-peer loops (mutual accreditation, federations) form SCCs that
   no member can complete alone; those are detected and frozen at
   reactor quiescence with a probe protocol à la GEM's counters:

     1. heal — if any consumer view lags its owner table, re-push and
        wait for the next quiescence (this stands in for per-link
        retransmission under fault injection);
     2. elect — Tarjan over the still-active tables, pick the first
        ready SCC (all external deps final) and its minimal member as
        leader;
     3. probe — the leader collects every member's size/seen counters
        ([Tprobe]/[Tstat], epoch-stamped so stale replies are ignored);
     4. freeze — if every intra-SCC edge satisfies "consumer has seen
        exactly what the producer holds", the SCC is globally quiescent:
        the leader completes its own members and broadcasts [Tcomplete];
        otherwise the epoch is dropped and the next quiescence retries.

   This module is a pure state machine: handlers return the posts the
   reactor should put on the wire, and never touch the network
   themselves.  All iteration orders are sorted, so runs are
   deterministic and fault-free transcripts are byte-stable. *)

module Net = Peertrust_net
module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer
module Json = Peertrust_obs.Json
open Peertrust_dlp

let m_loops = Obs.counter "tabling.loops_detected"
let m_completions = Obs.counter "tabling.completions"
let m_sccs = Obs.counter "tabling.sccs"
let m_heals = Obs.counter "tabling.heals"
let m_probes_aborted = Obs.counter "tabling.probes_aborted"

exception Dep_failed of string

type post = {
  p_from : string;
  p_target : string;
  p_payload : Net.Message.payload;
}

type status = Active | Complete | Failed of string

type table = {
  tb_owner : string;
  tb_key : string;
  tb_call : Literal.t;
  tb_path : (string * string) list;  (* tables above this one *)
  tb_seen : (string, unit) Hashtbl.t;  (* instance skeletons *)
  mutable tb_instances : Literal.t list;  (* reverse order *)
  mutable tb_status : status;
  mutable tb_consumers : string list;  (* reverse subscription order *)
  mutable tb_deps : (string * string) list;  (* (owner, key) *)
}

type view = {
  vw_goal : Literal.t;  (* as shipped, for healing re-posts *)
  vw_path : (string * string) list;
  vw_seen : (string, unit) Hashtbl.t;
  mutable vw_instances : Literal.t list;
  mutable vw_final : bool;
  mutable vw_failed : string option;
}

type probe = {
  pr_leader : string * string;
  pr_epoch : int;
  pr_members : (string * string) list;
  mutable pr_waiting : string list;  (* peers yet to report *)
  mutable pr_stats : (string * Net.Message.tstat_entry list) list;
}

type t = {
  session : Session.t;
  tables : (string * string, table) Hashtbl.t;
  views : (string * string * string, view) Hashtbl.t;
      (* keyed (consumer, owner, key) *)
  mutable epoch : int;
  mutable probe : probe option;
}

let create session =
  {
    session;
    tables = Hashtbl.create 32;
    views = Hashtbl.create 32;
    epoch = 0;
    probe = None;
  }

let skeleton lit = Peer.goal_key lit
let find_table t owner key = Hashtbl.find_opt t.tables (owner, key)

(* A top-level requester is a consumer like any other, except no table
   of its own depends on the view: registering it here lets quiescence
   healing re-push a final answer the requester lost to faults, instead
   of mis-settling the negotiation as quiescent. *)
let register_root t ~consumer ~owner goal =
  let key = skeleton goal in
  if not (Hashtbl.mem t.views (consumer, owner, key)) then
    Hashtbl.replace t.views (consumer, owner, key)
      {
        vw_goal = goal;
        vw_path = [];
        vw_seen = Hashtbl.create 8;
        vw_instances = [];
        vw_final = false;
        vw_failed = None;
      }

(* ------------------------------------------------------------------ *)
(* Answer pushes and status transitions *)

let notify tb ~final =
  let instances = List.rev tb.tb_instances in
  List.rev_map
    (fun c ->
      {
        p_from = tb.tb_owner;
        p_target = c;
        p_payload = Net.Message.Tanswer { goal = tb.tb_call; instances; final };
      })
    tb.tb_consumers

let complete_table tb =
  match tb.tb_status with
  | Complete | Failed _ -> []
  | Active ->
      tb.tb_status <- Complete;
      Metric.incr m_completions;
      let tracer = Obs.tracer () in
      if Otracer.enabled tracer then
        Otracer.with_span tracer
          ~attrs:
            [
              ("peer", Json.Str tb.tb_owner);
              ("table", Json.Str tb.tb_key);
              ("answers", Json.Int (Hashtbl.length tb.tb_seen));
            ]
          "tabling.complete"
          (fun () -> ());
      notify tb ~final:true

let fail_table tb reason =
  match tb.tb_status with
  | Complete | Failed _ -> []
  | Active ->
      tb.tb_status <- Failed reason;
      List.rev_map
        (fun c ->
          {
            p_from = tb.tb_owner;
            p_target = c;
            p_payload = Net.Message.Deny { goal = tb.tb_call; reason };
          })
        tb.tb_consumers

(* ------------------------------------------------------------------ *)
(* Local evaluation of one table, with remote deps answered from views *)

let eval_table t tb =
  match tb.tb_status with
  | Complete | Failed _ -> []
  | Active -> (
      let posts = ref [] in
      let deps = ref [] in
      let hook ~target lit =
        let key = skeleton lit in
        if
          not
            (List.exists
               (fun (o, k) -> String.equal o target && String.equal k key)
               !deps)
        then deps := (target, key) :: !deps;
        match Hashtbl.find_opt t.views (tb.tb_owner, target, key) with
        | Some v -> (
            match v.vw_failed with
            | Some r -> raise (Dep_failed r)
            | None -> v.vw_instances)
        | None ->
            (* Canonicalise the call's variable names before they reach
               the wire: the engine's fresh variables carry a
               process-global counter, and a transcript that leaked it
               would not be reproducible across runs. *)
            let lit =
              let map = Hashtbl.create 4 in
              let next = ref 0 in
              Literal.map_vars
                (fun v ->
                  match Hashtbl.find_opt map v with
                  | Some c -> c
                  | None ->
                      let c = Term.var_id (Printf.sprintf "G%d" !next) in
                      incr next;
                      Hashtbl.replace map v c;
                      c)
                lit
            in
            let path = tb.tb_path @ [ (tb.tb_owner, tb.tb_key) ] in
            let v =
              {
                vw_goal = lit;
                vw_path = path;
                vw_seen = Hashtbl.create 8;
                vw_instances = [];
                vw_final = false;
                vw_failed = None;
              }
            in
            Hashtbl.replace t.views (tb.tb_owner, target, key) v;
            posts :=
              {
                p_from = tb.tb_owner;
                p_target = target;
                p_payload = Net.Message.Tquery { goal = lit; path };
              }
              :: !posts;
            []
      in
      let peer = Session.peer t.session tb.tb_owner in
      match
        Tabled.solve ~externals:peer.Peer.externals ~remote:hook
          ~self:tb.tb_owner peer.Peer.kb [ tb.tb_call ]
      with
      | exception Tabled.Unsupported msg ->
          fail_table tb ("unsupported: " ^ msg)
      | exception Dep_failed reason -> fail_table tb reason
      | answers ->
          tb.tb_deps <- List.rev !deps;
          let grew = ref false in
          List.iter
            (fun s ->
              let inst = Literal.apply s tb.tb_call in
              let k = skeleton inst in
              if not (Hashtbl.mem tb.tb_seen k) then begin
                Hashtbl.add tb.tb_seen k ();
                tb.tb_instances <- inst :: tb.tb_instances;
                grew := true
              end)
            answers;
          let all_final =
            List.for_all
              (fun (o, k) ->
                match Hashtbl.find_opt t.views (tb.tb_owner, o, k) with
                | Some v -> v.vw_final
                | None -> false)
              tb.tb_deps
          in
          let queries = List.rev !posts in
          if all_final && queries = [] then queries @ complete_table tb
          else if !grew then queries @ notify tb ~final:false
          else queries)

(* Re-evaluate every active table at [consumer] that depends on the
   remote table [(owner, key)], in sorted order. *)
let reeval_dependents t ~consumer ~owner ~key =
  Hashtbl.fold
    (fun (p, _) tb acc ->
      if
        String.equal p consumer
        && (match tb.tb_status with Active -> true | _ -> false)
        && List.exists
             (fun (o, k) -> String.equal o owner && String.equal k key)
             tb.tb_deps
      then tb :: acc
      else acc)
    t.tables []
  |> List.sort (fun a b ->
         compare (a.tb_owner, a.tb_key) (b.tb_owner, b.tb_key))
  |> List.concat_map (fun tb -> eval_table t tb)

(* ------------------------------------------------------------------ *)
(* Wire handlers *)

let state_reply tb ~target =
  let payload =
    match tb.tb_status with
    | Failed reason -> Net.Message.Deny { goal = tb.tb_call; reason }
    | Complete ->
        Net.Message.Tanswer
          {
            goal = tb.tb_call;
            instances = List.rev tb.tb_instances;
            final = true;
          }
    | Active ->
        Net.Message.Tanswer
          {
            goal = tb.tb_call;
            instances = List.rev tb.tb_instances;
            final = false;
          }
  in
  { p_from = tb.tb_owner; p_target = target; p_payload = payload }

let handle_query t ~owner ~from ~path goal =
  let key = skeleton goal in
  if
    List.exists
      (fun (p, k) -> String.equal p owner && String.equal k key)
      path
  then Metric.incr m_loops;
  let tb, posts =
    match find_table t owner key with
    | Some tb ->
        if not (List.exists (String.equal from) tb.tb_consumers) then
          tb.tb_consumers <- from :: tb.tb_consumers;
        (tb, [])
    | None ->
        let tb =
          {
            tb_owner = owner;
            tb_key = key;
            tb_call = goal;
            tb_path = path;
            tb_seen = Hashtbl.create 8;
            tb_instances = [];
            tb_status = Active;
            tb_consumers = [ from ];
            tb_deps = [];
          }
        in
        Hashtbl.replace t.tables (owner, key) tb;
        (tb, eval_table t tb)
  in
  (* Guarantee the asker a state reply (so its retransmission timer can
     stand down) unless evaluation already pushed one. *)
  let covered =
    List.exists
      (fun p ->
        String.equal p.p_target from
        &&
        match p.p_payload with
        | Net.Message.Tanswer { goal = g; _ } | Net.Message.Deny { goal = g; _ }
          ->
            String.equal (skeleton g) key
        | _ -> false)
      posts
  in
  if covered then posts else posts @ [ state_reply tb ~target:from ]

let merge_view v instances ~final =
  let grew = ref false in
  List.iter
    (fun inst ->
      let k = skeleton inst in
      if not (Hashtbl.mem v.vw_seen k) then begin
        Hashtbl.add v.vw_seen k ();
        v.vw_instances <- inst :: v.vw_instances;
        grew := true
      end)
    instances;
  let newly_final = final && not v.vw_final in
  if final then v.vw_final <- true;
  !grew || newly_final

let handle_answer t ~consumer ~from goal instances ~final =
  let key = skeleton goal in
  match Hashtbl.find_opt t.views (consumer, from, key) with
  | None -> []  (* top-level request: the reactor settles it directly *)
  | Some v ->
      if Option.is_some v.vw_failed then []
      else if merge_view v instances ~final then
        reeval_dependents t ~consumer ~owner:from ~key
      else []

let handle_deny t ~consumer ~from goal reason =
  let key = skeleton goal in
  match Hashtbl.find_opt t.views (consumer, from, key) with
  | None -> []
  | Some v ->
      if Option.is_some v.vw_failed || v.vw_final then []
      else begin
        v.vw_failed <- Some reason;
        Hashtbl.fold
          (fun (p, _) tb acc ->
            if
              String.equal p consumer
              && (match tb.tb_status with Active -> true | _ -> false)
              && List.exists
                   (fun (o, k) -> String.equal o from && String.equal k key)
                   tb.tb_deps
            then tb :: acc
            else acc)
          t.tables []
        |> List.sort (fun a b ->
               compare (a.tb_owner, a.tb_key) (b.tb_owner, b.tb_key))
        |> List.concat_map (fun tb -> fail_table tb reason)
      end

(* ------------------------------------------------------------------ *)
(* Probe protocol *)

let stats_for t ~peer members =
  List.filter_map
    (fun (mp, mk) ->
      if not (String.equal mp peer) then None
      else
        match find_table t peer mk with
        | Some tb when (match tb.tb_status with Active -> true | _ -> false)
          ->
            Some
              {
                Net.Message.ts_key = mk;
                ts_size = Hashtbl.length tb.tb_seen;
                ts_deps =
                  List.map
                    (fun (o, k) ->
                      match Hashtbl.find_opt t.views (peer, o, k) with
                      | Some v ->
                          (o, k, Hashtbl.length v.vw_seen, v.vw_final)
                      | None -> (o, k, 0, false))
                    tb.tb_deps;
              }
        (* A member that is no longer active reports a negative size so
           the leader aborts this epoch. *)
        | _ -> Some { Net.Message.ts_key = mk; ts_size = -1; ts_deps = [] })
    members

let handle_probe t ~peer ~from (leader, epoch, members) =
  [
    {
      p_from = peer;
      p_target = from;
      p_payload =
        Net.Message.Tstat
          { leader; epoch; entries = stats_for t ~peer members };
    };
  ]

let validate_probe p =
  let entry_of (o, k) =
    Option.bind (List.assoc_opt o p.pr_stats) (fun entries ->
        List.find_opt (fun e -> String.equal e.Net.Message.ts_key k) entries)
  in
  List.for_all
    (fun m ->
      match entry_of m with
      | None -> false
      | Some entry ->
          entry.Net.Message.ts_size >= 0
          && List.for_all
               (fun (o, k, seen, final) ->
                 if List.mem (o, k) p.pr_members then
                   match entry_of (o, k) with
                   | Some e -> seen = e.Net.Message.ts_size
                   | None -> false
                 else final)
               entry.Net.Message.ts_deps)
    p.pr_members

let complete_members t ~peer members =
  List.concat_map
    (fun (mp, mk) ->
      if not (String.equal mp peer) then []
      else
        match find_table t peer mk with
        | Some tb -> complete_table tb
        | None -> [])
    members

let handle_stat t ~peer ~from (leader, epoch, entries) =
  match t.probe with
  | Some p
    when p.pr_epoch = epoch
         && p.pr_leader = leader
         && String.equal (fst p.pr_leader) peer
         && List.exists (String.equal from) p.pr_waiting ->
      p.pr_stats <- (from, entries) :: p.pr_stats;
      p.pr_waiting <-
        List.filter (fun x -> not (String.equal x from)) p.pr_waiting;
      if p.pr_waiting <> [] then []
      else begin
        t.probe <- None;
        if validate_probe p then begin
          let others =
            List.sort_uniq String.compare (List.map fst p.pr_members)
            |> List.filter (fun x -> not (String.equal x peer))
          in
          List.map
            (fun target ->
              {
                p_from = peer;
                p_target = target;
                p_payload =
                  Net.Message.Tcomplete
                    { leader; epoch; members = p.pr_members };
              })
            others
          @ complete_members t ~peer p.pr_members
        end
        else begin
          Metric.incr m_probes_aborted;
          []
        end
      end
  | _ -> []  (* stale epoch or unexpected reporter *)

let handle_complete t ~peer (_leader, _epoch, members) =
  complete_members t ~peer members

(* A crash-stop wipes everything tabled {e at} the peer: its tables and
   the views it consumes are volatile state.  Tables elsewhere survive,
   but the crashed peer vanishes from their consumer lists so nothing
   is pushed at a dead incarnation.  Views naming the crashed peer as
   owner stay registered: once the owner restarts, quiescence healing
   finds the table missing and re-posts the Tquery — the re-heal path.
   An in-flight completion round touching the peer is aborted; its
   collected stats describe a dead incarnation. *)
let crash t peer =
  let doomed_tables =
    Hashtbl.fold
      (fun ((p, _) as k) _ acc ->
        if String.equal p peer then k :: acc else acc)
      t.tables []
  in
  List.iter (Hashtbl.remove t.tables) doomed_tables;
  let doomed_views =
    Hashtbl.fold
      (fun ((c, _, _) as k) _ acc ->
        if String.equal c peer then k :: acc else acc)
      t.views []
  in
  List.iter (Hashtbl.remove t.views) doomed_views;
  Hashtbl.iter
    (fun _ tb ->
      tb.tb_consumers <-
        List.filter (fun c -> not (String.equal c peer)) tb.tb_consumers)
    t.tables;
  match t.probe with
  | Some p
    when String.equal (fst p.pr_leader) peer
         || List.exists (fun (o, _) -> String.equal o peer) p.pr_members
         || List.mem peer p.pr_waiting ->
      t.probe <- None;
      Metric.incr m_probes_aborted
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Quiescence: heal lagging views, then probe the first ready SCC *)

let sorted_views t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.views []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let heal t =
  List.concat_map
    (fun ((consumer, owner, key), v) ->
      if Option.is_some v.vw_failed || v.vw_final then []
      else
        match find_table t owner key with
        | None ->
            (* The original Tquery (and all its retries) vanished; ask
               again. *)
            [
              {
                p_from = consumer;
                p_target = owner;
                p_payload =
                  Net.Message.Tquery { goal = v.vw_goal; path = v.vw_path };
              };
            ]
        | Some tb -> (
            match tb.tb_status with
            | Failed reason ->
                [
                  {
                    p_from = owner;
                    p_target = consumer;
                    p_payload =
                      Net.Message.Deny { goal = tb.tb_call; reason };
                  };
                ]
            | Complete ->
                [
                  {
                    p_from = owner;
                    p_target = consumer;
                    p_payload =
                      Net.Message.Tanswer
                        {
                          goal = tb.tb_call;
                          instances = List.rev tb.tb_instances;
                          final = true;
                        };
                  };
                ]
            | Active ->
                if Hashtbl.length v.vw_seen < Hashtbl.length tb.tb_seen then
                  [
                    {
                      p_from = owner;
                      p_target = consumer;
                      p_payload =
                        Net.Message.Tanswer
                          {
                            goal = tb.tb_call;
                            instances = List.rev tb.tb_instances;
                            final = false;
                          };
                    };
                  ]
                else []))
    (sorted_views t)

(* Tarjan's SCC algorithm over the active tables, deterministic by
   sorted node order.  Returns SCCs as sorted member lists, in order of
   their minimal member. *)
let active_sccs t =
  let nodes =
    Hashtbl.fold
      (fun (p, k) tb acc ->
        match tb.tb_status with Active -> ((p, k), tb) :: acc | _ -> acc)
      t.tables []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let edges (_, tb) =
    List.filter
      (fun (o, k) ->
        match find_table t o k with
        | Some d -> ( match d.tb_status with Active -> true | _ -> false)
        | None -> false)
      tb.tb_deps
    |> List.sort compare
  in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    let tb = Hashtbl.find t.tables v in
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (edges (v, tb));
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := List.sort compare (pop []) :: !sccs
    end
  in
  List.iter (fun (v, _) -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  List.sort
    (fun a b -> compare (List.hd a) (List.hd b))
    (List.rev !sccs)

let try_probe t =
  let sccs = active_sccs t in
  let ready members =
    (* Every dep leaving the SCC must be a final view. *)
    List.for_all
      (fun (mp, mk) ->
        match find_table t mp mk with
        | None -> false
        | Some tb ->
            List.for_all
              (fun (o, k) ->
                List.exists
                  (fun (xp, xk) -> String.equal xp o && String.equal xk k)
                  members
                ||
                match Hashtbl.find_opt t.views (mp, o, k) with
                | Some v -> v.vw_final
                | None -> false)
              tb.tb_deps)
      members
  in
  match List.find_opt ready sccs with
  | None -> []
  | Some members -> (
      let leader = List.hd members in
      let leader_peer = fst leader in
      let peers = List.sort_uniq String.compare (List.map fst members) in
      match List.filter (fun p -> not (String.equal p leader_peer)) peers with
      | [] ->
          (* Single-peer component: it is trivially quiescent once the
             reactor is — freeze it directly. *)
          complete_members t ~peer:leader_peer members
      | others ->
          t.epoch <- t.epoch + 1;
          Metric.incr m_sccs;
          t.probe <-
            Some
              {
                pr_leader = leader;
                pr_epoch = t.epoch;
                pr_members = members;
                pr_waiting = others;
                pr_stats = [ (leader_peer, stats_for t ~peer:leader_peer members) ];
              };
          List.map
            (fun target ->
              {
                p_from = leader_peer;
                p_target = target;
                p_payload =
                  Net.Message.Tprobe
                    { leader; epoch = t.epoch; members };
              })
            others)

let quiesce t =
  let heals = heal t in
  if heals <> [] then begin
    Metric.incr m_heals;
    if Option.is_some t.probe then begin
      t.probe <- None;
      Metric.incr m_probes_aborted
    end;
    heals
  end
  else begin
    (* A probe outstanding at quiescence lost messages — retry. *)
    if Option.is_some t.probe then begin
      t.probe <- None;
      Metric.incr m_probes_aborted
    end;
    try_probe t
  end

(* ------------------------------------------------------------------ *)
(* Introspection *)

let summary t =
  Hashtbl.fold
    (fun (p, k) tb acc ->
      let status =
        match tb.tb_status with
        | Active -> "active"
        | Complete -> "complete"
        | Failed r -> "failed: " ^ r
      in
      (p, k, Hashtbl.length tb.tb_seen, status) :: acc)
    t.tables []
  |> List.sort compare

let table_count t = Hashtbl.length t.tables

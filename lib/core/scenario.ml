open Peertrust_dlp

(* ------------------------------------------------------------------ *)
(* Scenario 1: Alice & E-Learn (§4.1) *)

type scenario1 = {
  s1_session : Session.t;
  s1_alice : string;
  s1_elearn : string;
  s1_uiuc : string;
}

let elearn_program_s1 =
  {|
    % Discounted enrolment: released to the party named in the request.
    discountEnroll(Course, Party) $ Requester = Party <-
      discountEnroll(Course, Party).
    discountEnroll(Course, Party) <- eligibleForDiscount(Party, Course).
    eligibleForDiscount(X, Course) <- course(Course), preferred(X) @ "ELENA".

    % ELENA's signed rule: UIUC students are preferred customers.
    preferred(X) @ "ELENA" <- signedBy ["ELENA"] student(X) @ "UIUC".

    % Ask students themselves for proof of their student status.
    student(X) @ University <- student(X) @ University @ X.

    % E-Learn's own BBB membership, publicly releasable.
    member("E-Learn") @ "BBB" $ true signedBy ["BBB"].

    course(spanish101).
    course(french201).
  |}

let alice_program_s1 =
  {|
    % Student ID issued by the registrar.
    student("Alice") @ "UIUC Registrar" signedBy ["UIUC Registrar"].

    % Cached copy of UIUC's delegation to its registrar (public rule).
    student(X) @ "UIUC" <-{true} signedBy ["UIUC"] student(X) @ "UIUC Registrar".

    % Release policy: student literals go only to BBB members that prove
    % their membership themselves.
    student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-{true}
      student(X) @ Y.
  |}

let uiuc_program_s1 =
  {|
    % UIUC answers student-status queries only for its registrar.
    student(X) $ Requester = "UIUC Registrar" <- student(X) @ "UIUC Registrar".
  |}

let scenario1_goal () =
  Parser.parse_literal {|discountEnroll(spanish101, "Alice")|}

let scenario1 ?config ?key_bits () =
  let session = Session.create ?config ?key_bits () in
  ignore (Session.add_peer session ~program:elearn_program_s1 "E-Learn");
  ignore (Session.add_peer session ~program:alice_program_s1 "Alice");
  ignore (Session.add_peer session ~program:uiuc_program_s1 "UIUC");
  Engine.attach_all session;
  {
    s1_session = session;
    s1_alice = "Alice";
    s1_elearn = "E-Learn";
    s1_uiuc = "UIUC";
  }

(* ------------------------------------------------------------------ *)
(* Scenario 2: signing up for learning services (§4.2) *)

type scenario2 = {
  s2_session : Session.t;
  s2_bob : string;
  s2_elearn : string;
  s2_visa : string;
  s2_accounts : Externals.Accounts.t;
}

let elearn_program_s2 =
  {|
    % Free courses for employees of ELENA member companies; enrolment
    % results are releasable to anyone who qualifies ($ true).
    enroll(Course, Requester, Company, Email, 0) $ true <-
      freeCourse(Course),
      freebieEligible(Course, Requester, Company, Email).

    % Pay-per-use courses; policy49 protects the billing requirements.
    enroll(Course, Requester, Company, Email, Price) $ true <-
      policy49(Course, Requester, Company, Price).

    % Private: reveals that the only free-course agreement is with ELENA.
    freebieEligible(Course, Requester, Company, Email) <-
      email(Requester, Email) @ Requester,
      employee(Requester) @ Company @ Requester,
      member(Company) @ "ELENA" @ Requester.

    policy49(Course, Requester, Company, Price) <-
      price(Course, Price),
      authorized(Requester, Price) @ Company @ Requester,
      visaCard(Company) @ "VISA" @ Requester,
      purchaseApproved(Company, Price) @ "VISA".

    freeCourse(cs101).
    freeCourse(cs102).
    price(cs411, 1000).
    price(cs500, 3000).

    % Cached public credentials.
    member("IBM") @ "ELENA" $ true signedBy ["ELENA"].
    member("E-Learn") @ "ELENA" $ true signedBy ["ELENA"].
    authorizedMerchant("E-Learn") $ true signedBy ["VISA"].
  |}

let bob_program_s2 =
  {|
    % Bob's email, released to ELENA members (adjusted from the paper's
    % implicit default; see DESIGN.md).
    email("Bob", "bob@ibm.com") $ member(Requester) @ "ELENA".

    % Employment and purchase authorization, released to ELENA members.
    employee("Bob") @ X $ member(Requester) @ "ELENA" <-{true}
      employee("Bob") @ X.
    employee("Bob") @ "IBM" signedBy ["IBM"].

    authorized("Bob", Price) @ X $ member(Requester) @ "ELENA" <-{true}
      authorized("Bob", Price) @ X.
    authorized("Bob", Price) @ "IBM" <- signedBy ["IBM"] Price < 2000.

    % ELENA membership checks are forwarded to the requester.
    member(Requester) @ "ELENA" <-{true} member(Requester) @ "ELENA" @ Requester.

    % The company VISA card, protected by policy27.
    visaCard("IBM") @ "VISA" $ policy27(Requester) <-{true} visaCard("IBM") @ "VISA".
    visaCard("IBM") signedBy ["VISA"].
    policy27(Requester) <-
      authorizedMerchant(Requester) @ "VISA" @ Requester,
      member(Requester) @ "ELENA".

    % Cached memberships from previous interactions (public certificates).
    member("IBM") @ "ELENA" $ true signedBy ["ELENA"].
    member("E-Learn") @ "ELENA" $ true signedBy ["ELENA"].
  |}

let visa_program = {|
    purchaseApproved(Company, Price) $ true <- approve(Company, Price).
  |}

(* The paper's credit-limit check backed by the revocable account table,
   so revocation speech acts (and cache invalidation) reach the
   scenario. *)
let visa_accounts limit =
  let accounts = Externals.Accounts.create () in
  Externals.Accounts.set_limit accounts ~account:"IBM" limit;
  accounts

let scenario2_goal_free () =
  Parser.parse_literal {|enroll(cs101, "Bob", "IBM", Email, 0)|}

let scenario2_goal_paid () =
  Parser.parse_literal {|enroll(cs411, "Bob", "IBM", Email, Price)|}

let scenario2 ?config ?key_bits ?(visa_limit = 5000) () =
  let session = Session.create ?config ?key_bits () in
  let accounts = visa_accounts visa_limit in
  ignore (Session.add_peer session ~program:elearn_program_s2 "E-Learn");
  ignore (Session.add_peer session ~program:bob_program_s2 "Bob");
  ignore
    (Session.add_peer session ~program:visa_program
       ~externals:(Externals.Accounts.externals ~pred:"approve" accounts)
       "VISA");
  Engine.attach_all session;
  {
    s2_session = session;
    s2_bob = "Bob";
    s2_elearn = "E-Learn";
    s2_visa = "VISA";
    s2_accounts = accounts;
  }

(* ------------------------------------------------------------------ *)
(* Parametric workloads *)

type chain_world = {
  cw_session : Session.t;
  cw_requester : string;
  cw_owner : string;
  cw_goal : Literal.t;
}

let redirect_rule j =
  Printf.sprintf {|cred%d(X) @ "CA" <- cred%d(X) @ "CA" @ X.|} j j

let cred_fact ~holder i =
  Printf.sprintf {|cred%d("%s") @ "CA" signedBy ["CA"].|} i holder

let cred_release ~depth i =
  if i = depth then
    Printf.sprintf {|cred%d(X) @ "CA" $ true <-{true} cred%d(X) @ "CA".|} i i
  else
    Printf.sprintf
      {|cred%d(X) @ "CA" $ cred%d(Requester) @ "CA" <-{true} cred%d(X) @ "CA".|}
      i (i + 1) i

let extra_cred_fact ~holder i =
  Printf.sprintf
    {|extra%d("%s") @ "CA" $ true signedBy ["CA"].|} i holder

let policy_chain ?config ?(extra_creds = 0) ?missing ~depth () =
  if depth < 1 then invalid_arg "Scenario.policy_chain: depth must be >= 1";
  (match missing with
  | Some k when k < 1 || k > depth ->
      invalid_arg "Scenario.policy_chain: missing credential out of range"
  | Some _ | None -> ());
  let config =
    match config with
    | Some c -> c
    | None ->
        { Session.default_config with Session.max_hops = (4 * depth) + 16 }
  in
  let session = Session.create ~config () in
  let requester = "alice" and owner = "bob" in
  let holder i = if i mod 2 = 1 then requester else owner in
  let buf_r = Buffer.create 256 and buf_o = Buffer.create 256 in
  Buffer.add_string buf_o
    {|resource(X) $ cred1(Requester) @ "CA" <-{true} haveResource(X).
      haveResource("r1").
    |};
  for i = 1 to depth do
    let buf = if String.equal (holder i) requester then buf_r else buf_o in
    if missing <> Some i then begin
      Buffer.add_string buf (cred_fact ~holder:(holder i) i);
      Buffer.add_char buf '\n'
    end;
    Buffer.add_string buf (cred_release ~depth i);
    Buffer.add_char buf '\n'
  done;
  for j = 1 to depth do
    Buffer.add_string buf_r (redirect_rule j);
    Buffer.add_char buf_r '\n';
    Buffer.add_string buf_o (redirect_rule j);
    Buffer.add_char buf_o '\n'
  done;
  for e = 1 to extra_creds do
    Buffer.add_string buf_r (extra_cred_fact ~holder:requester e);
    Buffer.add_char buf_r '\n';
    Buffer.add_string buf_o (extra_cred_fact ~holder:owner (e + extra_creds));
    Buffer.add_char buf_o '\n'
  done;
  ignore (Session.add_peer session ~program:(Buffer.contents buf_r) requester);
  ignore (Session.add_peer session ~program:(Buffer.contents buf_o) owner);
  Engine.attach_all session;
  {
    cw_session = session;
    cw_requester = requester;
    cw_owner = owner;
    cw_goal = Parser.parse_literal {|resource("r1")|};
  }

type grid = {
  g_session : Session.t;
  g_user : string;
  g_cluster : string;
}

let grid_cluster_metadata =
  {|
    @prefix grid: <http://grid.example.org/meta#> .
    grid:batch a grid:Queue ; grid:cores 512 ; grid:walltime 86400 .
    grid:debug a grid:Queue ; grid:cores 16 ; grid:walltime 3600 .
  |}

let grid_cluster_program =
  {|
    % Job submission: VO members may submit to any queue with enough cores.
    submit(Queue, Requester, Cores) $ true <-
      cores(Queue, Max), Cores <= Max,
      voMember(Requester) @ "PhysicsVO" @ Requester.

    % The cluster's grid credential, releasable to anyone.
    gridResource("cluster") @ "GridCA" $ true signedBy ["GridCA"].
  |}

let grid_user_program =
  {|
    % VO membership certified by the registration service, plus the VO's
    % delegation rule; released only to proven grid resources.
    voMember("ada") @ "VORegistration" signedBy ["VORegistration"].
    voMember(X) @ "PhysicsVO" <-{true} signedBy ["PhysicsVO"]
      voMember(X) @ "VORegistration".
    voMember(X) @ Y $ gridResource(Requester) @ "GridCA" @ Requester <-{true}
      voMember(X) @ Y.
  |}

let grid ?config () =
  let session = Session.create ?config () in
  let cluster = Session.add_peer session ~program:grid_cluster_program "cluster" in
  cluster.Peer.kb <-
    Kb.union cluster.Peer.kb
      (Peertrust_rdf.Mapping.kb_of_store
         (Peertrust_rdf.Turtle.load grid_cluster_metadata));
  ignore (Session.add_peer session ~program:grid_user_program "ada");
  Engine.attach_all session;
  { g_session = session; g_user = "ada"; g_cluster = "cluster" }

type marketplace = {
  mp_session : Session.t;
  mp_learners : string list;
  mp_providers : string list;
  mp_goals : (string * string * Literal.t) list;
}

let marketplace ?config ?(seed = 7L) ~providers ~learners
    ~courses_per_provider () =
  if providers < 1 || learners < 1 || courses_per_provider < 1 then
    invalid_arg "Scenario.marketplace: all sizes must be >= 1";
  let config =
    Option.value
      ~default:{ Session.default_config with Session.max_hops = 64 }
      config
  in
  let session = Session.create ~config () in
  let prng = Peertrust_crypto.Prng.create seed in
  let provider_names =
    List.init providers (fun i -> Printf.sprintf "provider%d" i)
  in
  let learner_names = List.init learners (fun i -> Printf.sprintf "learner%d" i) in
  let courses_of = Hashtbl.create 8 in
  List.iteri
    (fun pi name ->
      let course_ids =
        List.init courses_per_provider (fun ci ->
            Printf.sprintf "course%d_%d" pi ci)
      in
      Hashtbl.add courses_of name course_ids;
      let buf = Buffer.create 512 in
      List.iter
        (fun id ->
          Buffer.add_string buf
            (Printf.sprintf "price(%s, %d).\n" id
               (100 + Peertrust_crypto.Prng.next_int prng 1900)))
        course_ids;
      Buffer.add_string buf
        {|price(C, P) $ true <-{true} price(C, P).
          enroll(Course, Party) $ Requester = Party <-{true}
            price(Course, P), student(Party) @ "University" @ Party.
        |};
      Buffer.add_string buf
        (Printf.sprintf
           {|accredited("%s") @ "Agency" $ true signedBy ["Agency"].|} name);
      ignore (Session.add_peer session ~program:(Buffer.contents buf) name))
    provider_names;
  List.iter
    (fun name ->
      let program =
        Printf.sprintf
          {|student("%s") @ "University" signedBy ["University"].
            student(X) @ Y $ accredited(Requester) @ "Agency" @ Requester <-{true}
              student(X) @ Y.|}
          name
      in
      ignore (Session.add_peer session ~program name))
    learner_names;
  Engine.attach_all session;
  let goals =
    List.concat_map
      (fun learner ->
        List.map
          (fun provider ->
            let courses = Hashtbl.find courses_of provider in
            let course =
              List.nth courses
                (Peertrust_crypto.Prng.next_int prng (List.length courses))
            in
            ( learner,
              provider,
              Parser.parse_literal
                (Printf.sprintf {|enroll(%s, "%s")|} course learner) ))
          provider_names)
      learner_names
  in
  {
    mp_session = session;
    mp_learners = learner_names;
    mp_providers = provider_names;
    mp_goals = goals;
  }

(* ------------------------------------------------------------------ *)
(* Recursive (cyclic) workloads for the distributed tabling engine *)

type recursion_world = {
  rw_session : Session.t;
  rw_requester : string;
  rw_target : string;
  rw_goal : Literal.t;
  rw_expected : Literal.t list;
  rw_peers : string list;
}

let ring_rule ~next = Printf.sprintf {|accredited(X) <- accredited(X) @ "%s".|} next

let mutual_accreditation ?config ?(n = 2) () =
  if n < 2 then
    invalid_arg "Scenario.mutual_accreditation: ring needs >= 2 peers";
  let session = Session.create ?config () in
  let peer i = Printf.sprintf "peer%d" i in
  let peers = List.init n peer in
  List.iteri
    (fun i name ->
      let program =
        ring_rule ~next:(peer ((i + 1) mod n))
        ^ if i = 0 then {|
accredited("seed").|} else ""
      in
      ignore (Session.add_peer session ~program name))
    peers;
  ignore (Session.add_peer session "client");
  Engine.attach_all session;
  {
    rw_session = session;
    rw_requester = "client";
    rw_target = peer 0;
    rw_goal = Parser.parse_literal {|accredited(X)|};
    rw_expected = [ Parser.parse_literal {|accredited("seed")|} ];
    rw_peers = peers;
  }

let federation ?config ?(clusters = 2) ?(size = 2) () =
  if clusters < 1 then
    invalid_arg "Scenario.federation: clusters must be >= 1";
  if size < 2 then invalid_arg "Scenario.federation: ring size must be >= 2";
  let session = Session.create ?config () in
  let peer c i = Printf.sprintf "c%dp%d" c i in
  let peers =
    List.concat (List.init clusters (fun c -> List.init size (peer c)))
  in
  List.iter
    (fun name ->
      (* name is "c<c>p<i>" *)
      Scanf.sscanf name "c%dp%d" (fun c i ->
          let buf = Buffer.create 128 in
          Buffer.add_string buf (ring_rule ~next:(peer c ((i + 1) mod size)));
          Buffer.add_char buf '\n';
          if i = 0 then begin
            (* The cluster entry holds that federation's own member fact
               and, except for the last cluster, accepts accreditations
               from the next federation downstream. *)
            Buffer.add_string buf
              (Printf.sprintf {|accredited("member%d").|} c);
            Buffer.add_char buf '\n';
            if c < clusters - 1 then begin
              Buffer.add_string buf
                (Printf.sprintf {|accredited(X) <- accredited(X) @ "%s".|}
                   (peer (c + 1) 0));
              Buffer.add_char buf '\n'
            end
          end;
          ignore (Session.add_peer session ~program:(Buffer.contents buf) name)))
    peers;
  ignore (Session.add_peer session "client");
  Engine.attach_all session;
  {
    rw_session = session;
    rw_requester = "client";
    rw_target = peer 0 0;
    rw_goal = Parser.parse_literal {|accredited(X)|};
    rw_expected =
      List.init clusters (fun c ->
          Parser.parse_literal (Printf.sprintf {|accredited("member%d")|} c));
    rw_peers = peers;
  }

let fanout ?config ~width () =
  if width < 1 then invalid_arg "Scenario.fanout: width must be >= 1";
  let config =
    match config with
    | Some c -> c
    | None -> { Session.default_config with Session.max_hops = width + 16 }
  in
  let session = Session.create ~config () in
  let requester = "alice" and owner = "bob" in
  let ctx =
    String.concat ", "
      (List.init width (fun i ->
           Printf.sprintf {|need%d(Requester) @ "CA"|} (i + 1)))
  in
  let buf_o = Buffer.create 256 in
  Buffer.add_string buf_o
    (Printf.sprintf
       {|resource(X) $ %s <-{true} haveResource(X).
         haveResource("r1").
       |}
       ctx);
  let buf_r = Buffer.create 256 in
  for i = 1 to width do
    Buffer.add_string buf_o
      (Printf.sprintf {|need%d(X) @ "CA" <- need%d(X) @ "CA" @ X.|} i i);
    Buffer.add_char buf_o '\n';
    Buffer.add_string buf_r
      (Printf.sprintf {|need%d("%s") @ "CA" $ true signedBy ["CA"].|} i
         requester);
    Buffer.add_char buf_r '\n'
  done;
  ignore (Session.add_peer session ~program:(Buffer.contents buf_r) requester);
  ignore (Session.add_peer session ~program:(Buffer.contents buf_o) owner);
  Engine.attach_all session;
  {
    cw_session = session;
    cw_requester = requester;
    cw_owner = owner;
    cw_goal = Parser.parse_literal {|resource("r1")|};
  }

type config = {
  max_answers : int;
  max_hops : int;
  verify_signatures : bool;
  attach_proofs : bool;
  now : int;
  guard : Guard.config;
}

let default_config =
  {
    max_answers = 4;
    max_hops = 30;
    verify_signatures = true;
    attach_proofs = false;
    now = 0;
    guard = Guard.permissive;
  }

type t = {
  network : Peertrust_net.Network.t;
  keystore : Peertrust_crypto.Keystore.t;
  peers : (string, Peer.t) Hashtbl.t;
  config : config;
  depth : int ref;
}

let create ?(config = default_config) ?latency ?max_messages ?(seed = 1L)
    ?key_bits () =
  {
    network = Peertrust_net.Network.create ?latency ?max_messages ();
    keystore = Peertrust_crypto.Keystore.create ?bits:key_bits ~seed ();
    peers = Hashtbl.create 16;
    config;
    depth = ref 0;
  }

let issue_signed_rules t peer =
  List.iter
    (fun rule ->
      match Peer.cert_for peer rule with
      | Some _ -> ()
      | None -> (
          match Peertrust_crypto.Cert.issue t.keystore rule with
          | Ok cert -> Peer.add_cert peer cert
          | Error _ -> ()))
    (Peertrust_dlp.Kb.signed_rules peer.Peer.kb)

let add_peer t ?options ?externals ?program name =
  let peer = Peer.create ?options ?externals name in
  Option.iter (Peer.load_program peer) program;
  issue_signed_rules t peer;
  Hashtbl.replace t.peers name peer;
  peer

let peer t name =
  match Hashtbl.find_opt t.peers name with
  | Some p -> p
  | None -> raise Not_found

let peer_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.peers []
  |> List.sort String.compare

(** A negotiation session: the shared world — network, PKI, peers and
    engine configuration. *)

open Peertrust_dlp

type config = {
  max_answers : int;  (** answers returned per remote query *)
  max_hops : int;  (** bound on nested cross-peer query depth *)
  verify_signatures : bool;
      (** verify certificates before learning them (ablation switch for
          experiment E7) *)
  attach_proofs : bool;
      (** attach (redacted) proof traces to answers *)
  now : int;  (** certificate validity instant *)
  guard : Guard.config;
      (** inbound-guard and admission-control limits applied by the
          queued reactor at each peer's boundary; {!Guard.permissive}
          (disabled) by default so unguarded transcripts are unchanged *)
}

val default_config : config

type t = {
  network : Peertrust_net.Network.t;
  keystore : Peertrust_crypto.Keystore.t;
  peers : (string, Peer.t) Hashtbl.t;
  config : config;
  depth : int ref;  (** current nested query depth *)
}

val create :
  ?config:config ->
  ?latency:int ->
  ?max_messages:int ->
  ?seed:int64 ->
  ?key_bits:int ->
  unit ->
  t

val add_peer :
  t ->
  ?options:Sld.options ->
  ?externals:Sld.externals ->
  ?program:string ->
  string ->
  Peer.t
(** Create a peer, load [program] into it, and issue certificates for every
    signed rule in the program (the setup step the paper assumes: peers
    hold their credentials before negotiating).
    @raise Parser.Error on bad program syntax. *)

val peer : t -> string -> Peer.t
(** @raise Not_found for unknown names. *)

val peer_names : t -> string list

val issue_signed_rules : t -> Peer.t -> unit
(** (Re-)issue certificates for the peer's signed rules that lack one. *)

open Peertrust_dlp
module Net = Peertrust_net
module Crypto = Peertrust_crypto
module Obs = Peertrust_obs.Obs
module Metric = Peertrust_obs.Metric
module Otracer = Peertrust_obs.Tracer
module Ojson = Peertrust_obs.Json

type instance = Literal.t * Trace.t option

let src = Logs.Src.create "peertrust.engine" ~doc:"PeerTrust negotiation engine"

module Log = (val Logs.src_log src : Logs.LOG)

let fresh_counter = ref 0

let m_queries = Obs.counter "engine.queries"
let m_answers = Obs.counter "engine.answers"
let m_denials = Obs.counter "engine.denials"
let m_certs_learned = Obs.counter "engine.certs_learned"
let m_certs_rejected = Obs.counter "engine.certs_rejected"
let h_proof_depth = Obs.histogram "engine.proof_depth"

let learn ?from_ session peer certs =
  let ok (cert : Crypto.Cert.t) =
    (not session.Session.config.Session.verify_signatures)
    || Crypto.Cert.verify session.Session.keystore
         ~now:session.Session.config.Session.now cert
       = Ok ()
  in
  List.iter
    (fun (c : Crypto.Cert.t) ->
      if ok c then begin
        Metric.incr m_certs_learned;
        Peer.add_cert ?origin:from_ peer c
      end
      else begin
        Metric.incr m_certs_rejected;
        Log.warn (fun m ->
            m "%s rejects certificate #%d (verification failed)"
              peer.Peer.name c.Crypto.Cert.serial)
      end)
    certs

(* Remote dispatch used from inside a peer's local SLD evaluation: pop the
   outermost authority and ship the literal to that peer. *)
let rec remote_callback session peer ~target lit =
  Metric.incr m_queries;
  let run () =
    if !(session.Session.depth) >= session.Session.config.Session.max_hops
    then []
    else begin
      incr session.Session.depth;
      Fun.protect
        ~finally:(fun () -> decr session.Session.depth)
        (fun () ->
          match
            Net.Network.send session.Session.network ~from:peer.Peer.name
              ~target
              (Net.Message.Query { goal = lit })
          with
          | exception Net.Network.Unreachable _ -> []
          | Net.Message.Answer { instances; certs; _ } ->
              learn ~from_:target session peer certs;
              (* Cache each received instance as a "[target] says" fact —
                 the paper's axiom converting a literal received from peer P
                 into [lit @ P] — so later goals about it resolve locally. *)
              List.iter
                (fun (inst, _) ->
                  if Literal.is_ground inst then
                    Peer.add_rule peer
                      (Rule.fact
                         (Literal.push_authority inst (Term.str target))))
                instances;
              instances
          | Net.Message.Deny _ | Net.Message.Disclosure _ | Net.Message.Ack
          | Net.Message.Query _ | Net.Message.Batch _ | Net.Message.Raw _
          | Net.Message.Tquery _ | Net.Message.Tanswer _ | Net.Message.Tprobe _
          | Net.Message.Tstat _ | Net.Message.Tcomplete _
          | Net.Message.Cancel _ ->
              [])
    end
  in
  let tracer = Obs.tracer () in
  if Otracer.enabled tracer then
    Otracer.with_span tracer
      ~attrs:
        [
          ("requester", Ojson.Str peer.Peer.name);
          ("target", Ojson.Str target);
          ("goal", Ojson.Str (Literal.to_string lit));
        ]
      "query" run
  else run ()

and evaluate ?(allow_remote = true) ?remote ?solutions ?requester session
    peer goals =
  let bindings =
    match requester with
    | Some r -> [ ("Requester", Term.str r) ]
    | None -> []
  in
  let remote =
    match remote with
    | Some r -> r
    | None ->
        if allow_remote then remote_callback session peer
        else fun ~target:_ _ -> []
  in
  let options =
    match solutions with
    | None -> peer.Peer.options
    | Some n -> { peer.Peer.options with Sld.max_solutions = n }
  in
  Sld.solve ~options ~externals:peer.Peer.externals ~remote ~bindings
    ~self:peer.Peer.name peer.Peer.kb goals

let prover ?allow_remote ?remote session peer : Policy.prover =
 fun ~requester goals ->
  (* One witness suffices to grant a release. *)
  match
    evaluate ?allow_remote ?remote ~solutions:1 ~requester session peer goals
  with
  | [] -> None
  | a :: _ -> Some a

(* Rename the residual engine-generated variables ([X~e12], [Email~2], or
   raw fresh ids) in an answer instance to neutral names, so reports and
   clients see [_G1] instead of internal renaming suffixes. *)
let tidy_instance (l : Literal.t) =
  let mapping = Hashtbl.create 4 in
  let counter = ref 0 in
  let internal v =
    Term.is_fresh v || String.contains (Term.var_name v) '~'
  in
  let rec tidy = function
    | Term.Var v when internal v -> (
        match Hashtbl.find_opt mapping v with
        | Some fresh -> fresh
        | None ->
            incr counter;
            let fresh = Term.var (Printf.sprintf "_G%d" !counter) in
            Hashtbl.add mapping v fresh;
            fresh)
    | (Term.Var _ | Term.Str _ | Term.Int _ | Term.Atom _) as t -> t
    | Term.Compound (f, args) -> Term.Compound (f, List.map tidy args)
  in
  {
    l with
    Literal.args = List.map tidy l.Literal.args;
    Literal.auth = List.map tidy l.Literal.auth;
  }

(* Split a context into the cheap built-in guards (evaluated before the
   body, so they can bind variables like [Requester = Party]) and the
   proper literals (counter-query material, evaluated after the body). *)
let split_ctx ctx =
  List.partition (fun l -> Builtin.is_builtin (Literal.key l)) ctx

let dedup_certs certs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (c : Crypto.Cert.t) ->
      if Hashtbl.mem seen c.Crypto.Cert.serial then false
      else begin
        Hashtbl.add seen c.Crypto.Cert.serial ();
        true
      end)
    certs

(* Certificates backing the signed rules used in the given proofs, plus
   [extra] rules (the top-level rule when it is itself signed), filtered by
   their release policies towards [requester]. *)
let releasable_proof_certs ?allow_remote ?remote session peer ~requester
    proofs extra =
  let used = Trace.credentials_of_list proofs @ extra in
  let prover = prover ?allow_remote ?remote session peer in
  let self = peer.Peer.name in
  used
  |> List.filter_map (fun rule ->
         match Peer.cert_for peer rule with
         | None -> None
         | Some cert -> (
             match
               Policy.credential_releasable ~prover ~kb:peer.Peer.kb ~requester
                 ~self rule
             with
             | Policy.Granted -> Some cert
             | Policy.Denied _ -> None))
  |> dedup_certs

let answer_body ?(allow_remote = true) ?remote session peer ~requester goal =
  if not (Peer.enter peer ~requester goal) then Error "cycle"
  else
    Fun.protect
      ~finally:(fun () -> Peer.leave peer ~requester goal)
      (fun () ->
        let self = peer.Peer.name in
        let config = session.Session.config in
        let serials_before =
          Hashtbl.fold
            (fun _ (c : Crypto.Cert.t) acc -> c.Crypto.Cert.serial :: acc)
            peer.Peer.certs []
        in
        let bindings =
          Subst.bind "Requester" (Term.str requester)
            (Subst.bind "Self" (Term.str self) Subst.empty)
        in
        let results = ref [] (* (instance, proofs) *) in
        let certs = ref [] in
        let saw_release_rule = ref false in
        let consider rule =
          match rule.Rule.head_ctx with
          | None -> ()
          | Some _ ->
              saw_release_rule := true;
              incr fresh_counter;
              let r =
                Rule.rename ~suffix:(Printf.sprintf "~e%d" !fresh_counter) rule
              in
              let ctx = Option.value ~default:[] r.Rule.head_ctx in
              let ctx_builtin, ctx_rest = split_ctx ctx in
              let heads =
                r.Rule.head
                ::
                (if Rule.is_signed r then
                   List.map
                     (fun a -> Literal.push_authority r.Rule.head (Term.str a))
                     r.Rule.signer
                 else [])
              in
              let try_head head =
                if List.length !results >= config.Session.max_answers then ()
                else
                  match Literal.unify goal head bindings with
                  | None -> ()
                  | Some s0 ->
                      let pre_goals =
                        List.map (Literal.apply s0) (ctx_builtin @ r.Rule.body)
                      in
                      let body_answers =
                        evaluate ~allow_remote ?remote
                          ~solutions:config.Session.max_answers ~requester
                          session peer pre_goals
                      in
                      let n_builtin = List.length ctx_builtin in
                      let use_answer (a : Sld.answer) =
                        if List.length !results >= config.Session.max_answers
                        then ()
                        else begin
                          let s1 = a.Sld.subst in
                          let body_proofs =
                            List.filteri (fun i _ -> i >= n_builtin) a.Sld.proofs
                          in
                          let remaining =
                            List.map
                              (fun l -> Literal.apply s1 (Literal.apply s0 l))
                              ctx_rest
                          in
                          let ctx_ok =
                            match remaining with
                            | [] -> Some Subst.empty
                            | goals -> (
                                match
                                  evaluate ~allow_remote ?remote ~solutions:1
                                    ~requester session peer goals
                                with
                                | [] -> None
                                | a2 :: _ -> Some a2.Sld.subst)
                          in
                          match ctx_ok with
                          | None -> ()
                          | Some s2 ->
                              let instance =
                                tidy_instance
                                  (Literal.apply s2
                                     (Literal.apply s1 (Literal.apply s0 goal)))
                              in
                              let extra = if Rule.is_signed r then [ rule ] else [] in
                              let answer_certs =
                                releasable_proof_certs ~allow_remote ?remote
                                  session peer ~requester body_proofs extra
                              in
                              certs := !certs @ answer_certs;
                              let proof =
                                if config.Session.attach_proofs then
                                  Some
                                    (Trace.Apply
                                       ( Rule.apply s2 (Rule.apply s1 (Rule.apply s0 r)),
                                         body_proofs ))
                                else None
                              in
                              List.iter
                                (fun p ->
                                  Metric.observe_int h_proof_depth
                                    (Trace.depth p))
                                body_proofs;
                              results := (instance, proof) :: !results
                        end
                      in
                      List.iter use_answer body_answers
              in
              List.iter try_head heads
        in
        (* Second source of answers: a signed rule (credential) whose head —
           directly or through the signed-rule axiom [h @ signer] — matches
           the goal may be disclosed when its own release policy grants it,
           even without a covering [$]-context rule matching the decorated
           goal.  This is how a query for [visaCard(C) @ "VISA"] is answered
           from a VISA-signed card gated by an undecorated release rule. *)
        let consider_credential rule =
          (* Only credentials whose body is pure built-in guards qualify:
             disclosing an instance of such a rule reveals nothing beyond
             the (releasable) rule text.  A signed rule with proper body
             literals derives new statements, whose disclosure is governed
             by covering release rules, i.e. the first source. *)
          let builtin_only_body =
            List.for_all
              (fun l -> Builtin.is_builtin (Literal.key l))
              rule.Rule.body
          in
          if
            Rule.is_signed rule && builtin_only_body
            && List.length !results < config.Session.max_answers
          then begin
            incr fresh_counter;
            let r =
              Rule.rename ~suffix:(Printf.sprintf "~c%d" !fresh_counter) rule
            in
            let heads =
              r.Rule.head
              :: List.map
                   (fun a -> Literal.push_authority r.Rule.head (Term.str a))
                   r.Rule.signer
            in
            let try_head head =
              if List.length !results >= config.Session.max_answers then ()
              else
                match Literal.unify goal head bindings with
                | None -> ()
                | Some s0 -> (
                    saw_release_rule := true;
                    let prover = prover ~allow_remote ?remote session peer in
                    match
                      Policy.credential_releasable ~prover ~kb:peer.Peer.kb
                        ~requester ~self rule
                    with
                    | Policy.Denied _ -> ()
                    | Policy.Granted -> (
                        let body_goals =
                          List.map (Literal.apply s0) r.Rule.body
                        in
                        match
                          evaluate ~allow_remote ?remote ~solutions:1
                            ~requester session peer body_goals
                        with
                        | [] -> ()
                        | a :: _ ->
                            let s1 = a.Sld.subst in
                            let instance =
                              tidy_instance
                                (Literal.apply s1 (Literal.apply s0 goal))
                            in
                            let answer_certs =
                              releasable_proof_certs ~allow_remote ?remote
                                session peer ~requester a.Sld.proofs [ rule ]
                            in
                            certs := !certs @ answer_certs;
                            let proof =
                              if config.Session.attach_proofs then
                                Some
                                  (Trace.Apply
                                     ( Rule.apply s1 (Rule.apply s0 r),
                                       a.Sld.proofs ))
                              else None
                            in
                            results := (instance, proof) :: !results))
            in
            List.iter try_head heads
          end
        in
        let candidates = Kb.matching goal peer.Peer.kb in
        List.iter consider candidates;
        List.iter consider_credential candidates;
        (* Deduplicate instances (a signed [$ true] fact is found by both
           sources). *)
        let dedup_instances instances =
          let seen = Hashtbl.create 8 in
          List.filter
            (fun (l, _) ->
              let key = Literal.to_string l in
              if Hashtbl.mem seen key then false
              else begin
                Hashtbl.add seen key ();
                true
              end)
            instances
        in
        match dedup_instances (List.rev !results) with
        | [] ->
            Error
              (if !saw_release_rule then "release policy not satisfied"
               else "no release policy covers goal")
        | instances ->
            (* Relay: certificates acquired from other peers while
               computing this answer travel onwards with it, provided their
               release policies also grant the requester (this is how a
               delegation chain collected hop by hop reaches the original
               requester). *)
            let prover = prover ~allow_remote ?remote session peer in
            let relayed =
              Hashtbl.fold
                (fun _ (c : Crypto.Cert.t) acc ->
                  if
                    List.mem c.Crypto.Cert.serial serials_before
                    || Peer.cert_origin peer c = Some requester
                  then acc
                  else
                    match
                      Policy.credential_releasable ~prover ~kb:peer.Peer.kb
                        ~requester ~self c.Crypto.Cert.rule
                    with
                    | Policy.Granted -> c :: acc
                    | Policy.Denied _ -> acc)
                peer.Peer.certs []
            in
            Ok (instances, dedup_certs (!certs @ relayed)))

let answer ?allow_remote ?remote session peer ~requester goal =
  let run () = answer_body ?allow_remote ?remote session peer ~requester goal in
  let result =
    let tracer = Obs.tracer () in
    if Otracer.enabled tracer then
      Otracer.with_span tracer
        ~attrs:
          [
            ("peer", Ojson.Str peer.Peer.name);
            ("requester", Ojson.Str requester);
            ("goal", Ojson.Str (Literal.to_string goal));
          ]
        "answer"
        (fun () ->
          let r = run () in
          Otracer.set_attr tracer "outcome"
            (Ojson.Str
               (match r with
               | Ok _ -> "granted"
               | Error reason -> "denied: " ^ reason));
          r)
    else run ()
  in
  (match result with
  | Ok _ -> Metric.incr m_answers
  | Error _ -> Metric.incr m_denials);
  result

let handler session peer : Net.Network.handler =
 fun ~from payload ->
  match payload with
  | Net.Message.Query { goal } -> (
      match answer session peer ~requester:from goal with
      | Ok (instances, certs) ->
          Log.debug (fun m ->
              m "%s answers %s for %s: %d instance(s), %d cert(s)"
                peer.Peer.name (Literal.to_string goal) from
                (List.length instances) (List.length certs));
          Net.Message.Answer { goal; instances; certs }
      | Error reason ->
          Log.debug (fun m ->
              m "%s denies %s for %s: %s" peer.Peer.name
                (Literal.to_string goal) from reason);
          Net.Message.Deny { goal; reason })
  | Net.Message.Disclosure { certs; rules } ->
      learn ~from_:from session peer certs;
      (* Unsigned pushed rules are policy hints (e.g. a disseminated
         eligibility rule); they carry no authority of their own. *)
      List.iter
        (fun r -> if not (Rule.is_signed r) then Peer.add_rule peer r)
        rules;
      Net.Message.Ack
  | Net.Message.Answer _ | Net.Message.Deny _ | Net.Message.Ack
  | Net.Message.Batch _ | Net.Message.Raw _ | Net.Message.Tquery _
  | Net.Message.Tanswer _ | Net.Message.Tprobe _ | Net.Message.Tstat _
  | Net.Message.Tcomplete _ | Net.Message.Cancel _ ->
      (* Batches and the tabling control plane belong to the queued
         reactor; the synchronous request/response pair cannot carry
         several answers back. *)
      Net.Message.Ack

let handler_for = handler

let attach session peer =
  Net.Network.register session.Session.network peer.Peer.name
    (handler session peer)

let attach_all session =
  Hashtbl.iter (fun _ peer -> attach session peer) session.Session.peers

let query session ~requester ~target goal =
  let peer = Session.peer session requester in
  remote_callback session peer ~target goal

let releasable_certs ?allow_remote session peer ~requester =
  let prover = prover ?allow_remote session peer in
  let self = peer.Peer.name in
  Hashtbl.fold (fun _ c acc -> c :: acc) peer.Peer.certs []
  |> List.filter (fun (c : Crypto.Cert.t) ->
         match
           Policy.credential_releasable ~prover ~kb:peer.Peer.kb ~requester
             ~self c.Crypto.Cert.rule
         with
         | Policy.Granted -> true
         | Policy.Denied _ -> false)
  |> dedup_certs

let disclose session peer ~target certs =
  if certs <> [] then
    ignore
      (Net.Network.send session.Session.network ~from:peer.Peer.name ~target
         (Net.Message.Disclosure { certs; rules = [] }))

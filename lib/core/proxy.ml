module Net = Peertrust_net

(* Forward counters, keyed by device name (reset when a device is
   attached). *)
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 8

let forwarded_count _session ~device =
  match Hashtbl.find_opt counters device with Some r -> !r | None -> 0

let attach_device session ~device ~proxy =
  let proxy_peer = Session.peer session proxy in
  let device_peer = Session.add_peer session device in
  let counter = ref 0 in
  Hashtbl.replace counters device counter;
  let handler ~from payload =
    match payload with
    | Net.Message.Query { goal } -> (
        incr counter;
        (* Account for the device <-> proxy hops, then let the trusted
           proxy answer with the *original* requester bound, so release
           contexts are evaluated against the real counterparty. *)
        match
          Net.Network.notify session.Session.network ~from:device
            ~target:proxy payload
        with
        | exception Net.Network.Unreachable _ ->
            Net.Message.Deny { goal; reason = "proxy unreachable" }
        | () ->
            let response =
              match Engine.answer session proxy_peer ~requester:from goal with
              | Ok (instances, certs) ->
                  Net.Message.Answer { goal; instances; certs }
              | Error reason -> Net.Message.Deny { goal; reason }
            in
            Net.Network.notify session.Session.network ~from:proxy
              ~target:device response;
            response)
    | Net.Message.Disclosure { certs; rules = _ } ->
        incr counter;
        Net.Network.notify session.Session.network ~from:device ~target:proxy
          payload;
        Engine.learn ~from_:from session proxy_peer certs;
        Net.Message.Ack
    | Net.Message.Answer _ | Net.Message.Deny _ | Net.Message.Ack
    | Net.Message.Batch _ | Net.Message.Raw _ | Net.Message.Tquery _
    | Net.Message.Tanswer _ | Net.Message.Tprobe _ | Net.Message.Tstat _
    | Net.Message.Tcomplete _ | Net.Message.Cancel _ ->
        Net.Message.Ack
  in
  (* Replace the device's default handler with the forwarding one. *)
  Net.Network.register session.Session.network device handler;
  device_peer

(** Top-level trust negotiations and their measured reports.

    A negotiation is triggered when one peer requests a resource of
    another (§2): the requester sends the goal, the target answers under
    its release policies, counter-querying the requester as needed.  The
    report captures what the paper's evaluation narrates: the outcome, the
    sequence of disclosures, and the message/byte/latency cost. *)

open Peertrust_dlp

type outcome =
  | Granted of Engine.instance list
      (** access granted; the provable instances of the goal *)
  | Denied of string

type denial_class =
  | Policy  (** the target's policies do not release the resource *)
  | Timeout  (** a sub-query exhausted its retransmission budget *)
  | Unreachable  (** a peer was down or unregistered *)
  | Budget  (** the session's message budget ran out *)
  | Cycle  (** deadlocked release policies (negotiation cycle) *)
  | Quiescent  (** the queue drained without resolving the request *)
  | Quarantined  (** rejected by a guard: requester's breaker is open *)
  | Rate_limited  (** rejected by a guard: query rate above the limit *)
  | Quota  (** rejected by a guard: resolution work quota spent *)
  | Unsupported
      (** the goal hit a feature outside the evaluating engine's
          fragment (e.g. negation-as-failure under distributed
          tabling) *)
  | Crashed
      (** the counterparty crash-stopped with no restart in sight
          ([crashed: <peer>]), or the requester itself restarted
          without a journal ([peer crashed]) *)

val classify_denial : string -> denial_class
(** Classify a [Denied] reason string.  The queued engine's resilience
    machinery emits reasons from a stable vocabulary ([timeout: <peer>],
    [unreachable: <peer>], [message budget exhausted], ...); everything
    else is a {!Policy} denial. *)

val denial_class_to_string : denial_class -> string

val transport_denial : string -> bool
(** [true] for denials produced by transport failures ({!Timeout},
    {!Unreachable}, {!Budget}) rather than policy decisions. *)

type report = {
  outcome : outcome;
  messages : int;  (** messages exchanged during this negotiation *)
  bytes : int;
  disclosures : int;  (** certificates transferred *)
  elapsed : int;  (** simulated-clock ticks *)
  transcript : Peertrust_net.Network.entry list;
}

val succeeded : report -> bool

val request :
  Session.t -> requester:string -> target:string -> Literal.t -> report
(** Run one negotiation with the backward-chaining (relevant) strategy. *)

val request_str :
  Session.t -> requester:string -> target:string -> string -> report
(** Convenience: parse the goal from text.  @raise Parser.Error. *)

val measure : Session.t -> (unit -> outcome) -> report
(** Wrap an arbitrary negotiation procedure (used by {!Strategy}): snapshot
    network statistics around the call and collect the transcript delta.
    A message-budget exhaustion or an unreachable top-level target turns
    into a [Denied] outcome rather than an exception. *)

val pp_report : Format.formatter -> report -> unit

open Peertrust_dlp

type result = {
  found : bool;
  chain : Peertrust_crypto.Cert.t list;
  report : Negotiation.report;
}

let cert_serials (peer : Peer.t) =
  Hashtbl.fold
    (fun _ (c : Peertrust_crypto.Cert.t) acc ->
      c.Peertrust_crypto.Cert.serial :: acc)
    peer.Peer.certs []

let discover session ~requester ~root goal =
  let peer = Session.peer session requester in
  let before = cert_serials peer in
  let decorated = Literal.push_authority goal (Term.str root) in
  let report = Negotiation.request session ~requester ~target:root decorated in
  let chain =
    Hashtbl.fold
      (fun _ (c : Peertrust_crypto.Cert.t) acc ->
        if List.mem c.Peertrust_crypto.Cert.serial before then acc else c :: acc)
      peer.Peer.certs []
    |> List.sort (fun (a : Peertrust_crypto.Cert.t) b ->
           Int.compare a.Peertrust_crypto.Cert.serial
             b.Peertrust_crypto.Cert.serial)
  in
  { found = Negotiation.succeeded report; chain; report }

let linear_world ?session ~depth ~pred ~subject () =
  if depth < 1 then invalid_arg "Chain.linear_world: depth must be >= 1";
  let session =
    match session with
    | Some s -> s
    | None ->
        let config =
          { Session.default_config with Session.max_hops = (2 * depth) + 10 }
        in
        Session.create ~config ()
  in
  let auth i = Printf.sprintf "auth%d" i in
  for i = 0 to depth - 1 do
    let program =
      Printf.sprintf {|%s(X) $ true <- signedBy ["%s"] %s(X) @ "%s".|} pred
        (auth i) pred
        (auth (i + 1))
    in
    ignore (Session.add_peer session ~program (auth i))
  done;
  let last_program =
    Printf.sprintf {|%s("%s") $ true signedBy ["%s"].|} pred subject
      (auth depth)
  in
  ignore (Session.add_peer session ~program:last_program (auth depth));
  Engine.attach_all session;
  (session, auth 0, auth depth)

open Peertrust_dlp
module Crypto = Peertrust_crypto

type t = {
  prover : string;
  goal : Literal.t;
  trace : Trace.t;
  certs : Crypto.Cert.t list;
  signature : Crypto.Bignum.t;
}

type error =
  | Bad_package_signature
  | Missing_certificate of Rule.t
  | Certificate_invalid of Crypto.Cert.error
  | Unsound_step of string
  | Goal_mismatch

let conclusion = function
  | Trace.Apply (r, _) -> Some r.Rule.head
  | Trace.Builtin l | Trace.External l -> Some l
  | Trace.Remote { goal; _ } -> Some goal

(* Canonical byte string covered by the package signature. *)
let payload ~prover ~goal ~trace ~certs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf prover;
  Buffer.add_char buf '|';
  Buffer.add_string buf (Rule.canonical (Rule.fact goal));
  Buffer.add_char buf '|';
  let rec add_trace = function
    | Trace.Apply (r, children) ->
        Buffer.add_string buf "A(";
        Buffer.add_string buf (Rule.canonical r);
        List.iter add_trace children;
        Buffer.add_char buf ')'
    | Trace.Builtin l ->
        Buffer.add_string buf "B(";
        Buffer.add_string buf (Rule.canonical (Rule.fact l));
        Buffer.add_char buf ')'
    | Trace.External l ->
        Buffer.add_string buf "E(";
        Buffer.add_string buf (Rule.canonical (Rule.fact l));
        Buffer.add_char buf ')'
    | Trace.Remote { peer; goal; proof } -> (
        Buffer.add_string buf "R(";
        Buffer.add_string buf peer;
        Buffer.add_char buf ':';
        Buffer.add_string buf (Rule.canonical (Rule.fact goal));
        (match proof with Some p -> add_trace p | None -> ());
        Buffer.add_char buf ')')
  in
  add_trace trace;
  Buffer.add_char buf '|';
  List.iter
    (fun (c : Crypto.Cert.t) ->
      Buffer.add_string buf (string_of_int c.Crypto.Cert.serial);
      Buffer.add_char buf ',')
    certs;
  Buffer.contents buf

let create session ~prover ~goal trace =
  let peer = Session.peer session prover in
  let certs =
    List.filter_map (Peer.cert_for peer) (Trace.credentials trace)
  in
  let msg = payload ~prover ~goal ~trace ~certs in
  let kp = Crypto.Keystore.keypair session.Session.keystore prover in
  { prover; goal; trace; certs; signature = Crypto.Rsa.sign kp msg }

(* A literal [b] is established by conclusion [c] when they unify, possibly
   after extending [c] with a signer authority (the signed-rule axiom) or
   stripping prover-local authority layers. *)
let establishes ~signers b c =
  let unifies x y = Option.is_some (Literal.unify x y Subst.empty) in
  unifies b c
  || List.exists
       (fun s -> unifies b (Literal.push_authority c (Term.str s)))
       signers

let rec check_trace = function
  | Trace.Builtin l -> (
      match Builtin.eval l Subst.empty with
      | Some (_ :: _) -> Ok ()
      | Some [] | None ->
          Error (Unsound_step (Literal.to_string l ^ " does not hold")))
  | Trace.External _ -> Ok ()  (* external calls are trusted at the caller *)
  | Trace.Remote _ -> Ok ()  (* remote instances are certified separately *)
  | Trace.Apply (r, children) ->
      if List.length children <> List.length r.Rule.body then
        Error
          (Unsound_step
             (Printf.sprintf "rule %s: %d sub-proofs for %d body literals"
                (Rule.to_string r) (List.length children)
                (List.length r.Rule.body)))
      else begin
        let rec steps body children =
          match (body, children) with
          | [], [] -> Ok ()
          | b :: body', child :: children' -> (
              match conclusion child with
              | None -> Error (Unsound_step "sub-proof without conclusion")
              | Some c ->
                  let signers =
                    match child with
                    | Trace.Apply (r', _) -> r'.Rule.signer
                    | Trace.Builtin _ | Trace.External _ | Trace.Remote _ -> []
                  in
                  if establishes ~signers b c then
                    match check_trace child with
                    | Ok () -> steps body' children'
                    | Error _ as e -> e
                  else
                    Error
                      (Unsound_step
                         (Printf.sprintf "%s is not established by %s"
                            (Literal.to_string b) (Literal.to_string c))))
          | _, _ -> Error (Unsound_step "arity mismatch")
        in
        steps r.Rule.body children
      end

let verify session t =
  let msg =
    payload ~prover:t.prover ~goal:t.goal ~trace:t.trace ~certs:t.certs
  in
  let pub = Crypto.Keystore.public session.Session.keystore t.prover in
  if not (Crypto.Rsa.verify pub msg t.signature) then
    Error Bad_package_signature
  else begin
    (* Every signed rule used must be certificate-backed and valid. *)
    let find_cert rule =
      List.find_opt
        (fun (c : Crypto.Cert.t) ->
          Rule.subsumes ~general:c.Crypto.Cert.rule ~specific:rule)
        t.certs
    in
    let rec check_certs = function
      | [] -> Ok ()
      | rule :: rest -> (
          match find_cert rule with
          | None -> Error (Missing_certificate rule)
          | Some cert -> (
              match
                Crypto.Cert.verify session.Session.keystore
                  ~now:session.Session.config.Session.now cert
              with
              | Ok () -> check_certs rest
              | Error e -> Error (Certificate_invalid e)))
    in
    match check_certs (Trace.credentials t.trace) with
    | Error _ as e -> e
    | Ok () -> (
        match conclusion t.trace with
        | Some c
          when establishes
                 ~signers:
                   (match t.trace with
                   | Trace.Apply (r, _) -> r.Rule.signer
                   | _ -> [])
                 t.goal c ->
            check_trace t.trace
        | Some _ | None -> Error Goal_mismatch)
  end

let rec redact ~releasable ~self = function
  | Trace.Apply (r, children) ->
      if releasable r then
        Trace.Apply (r, List.map (redact ~releasable ~self) children)
      else Trace.Remote { peer = self; goal = r.Rule.head; proof = None }
  | (Trace.Builtin _ | Trace.External _) as t -> t
  | Trace.Remote { peer; goal; proof } ->
      Trace.Remote
        { peer; goal; proof = Option.map (redact ~releasable ~self) proof }

let pp_error fmt = function
  | Bad_package_signature -> Format.pp_print_string fmt "bad package signature"
  | Missing_certificate r ->
      Format.fprintf fmt "no certificate for signed rule %a" Rule.pp r
  | Certificate_invalid e ->
      Format.fprintf fmt "certificate invalid: %a" Crypto.Cert.pp_error e
  | Unsound_step s -> Format.fprintf fmt "unsound step: %s" s
  | Goal_mismatch -> Format.pp_print_string fmt "trace does not prove the goal"

open Peertrust_dlp

let none : Sld.externals = fun _ -> None

let combine tables : Sld.externals =
 fun key -> List.find_map (fun t -> t key) tables

module Identity = struct
  type t = (string, string list) Hashtbl.t  (* principal -> identities *)

  let create () : t = Hashtbl.create 16

  let enroll t ~principal ~identity =
    let prev = Option.value ~default:[] (Hashtbl.find_opt t principal) in
    if not (List.mem identity prev) then
      Hashtbl.replace t principal (identity :: prev)

  let externals t : Sld.externals = function
    | ("authenticatesTo", 2) ->
        Some
          (fun (lit : Literal.t) s ->
            match List.map (Subst.apply s) lit.Literal.args with
            | [ x; y ] -> (
                let name_of = Term.const_name in
                match name_of x with
                | None -> []  (* the principal must be known *)
                | Some principal -> (
                    let identities =
                      Option.value ~default:[] (Hashtbl.find_opt t principal)
                    in
                    match y with
                    | Term.Var _ ->
                        List.filter_map
                          (fun id -> Unify.terms y (Term.str id) s)
                          identities
                    | _ -> (
                        match name_of y with
                        | Some id when List.mem id identities -> [ s ]
                        | Some _ | None -> [])))
            | _ -> [])
    | _ -> None
end

module Reputation = struct
  type t = (string, int list) Hashtbl.t  (* subject -> ratings *)

  let create () : t = Hashtbl.create 16

  let rate t ~subject r =
    let prev = Option.value ~default:[] (Hashtbl.find_opt t subject) in
    Hashtbl.replace t subject (r :: prev)

  let average t ~subject =
    match Hashtbl.find_opt t subject with
    | None | Some [] -> None
    | Some rs ->
        let total = List.fold_left ( + ) 0 rs in
        (* Round half away from zero. *)
        let n = List.length rs in
        Some ((total + (n / 2)) / n)

  let externals t : Sld.externals = function
    | ("rating", 2) ->
        Some
          (fun (lit : Literal.t) s ->
            match List.map (Subst.apply s) lit.Literal.args with
            | [ subject_t; r_t ] -> (
                let subject = Term.const_name subject_t in
                match Option.map (fun n -> average t ~subject:n) subject with
                | Some (Some avg) -> (
                    match Unify.terms r_t (Term.Int avg) s with
                    | Some s' -> [ s' ]
                    | None -> [])
                | Some None | None -> [])
            | _ -> [])
    | _ -> None
end

module Accounts = struct
  type account = { mutable limit : int; mutable revoked : bool }

  type t = {
    accounts : (string, account) Hashtbl.t;
    mutable watchers : (string -> unit) list;
  }

  let create () : t = { accounts = Hashtbl.create 16; watchers = [] }
  let subscribe t f = t.watchers <- f :: t.watchers

  let notify t account =
    List.iter (fun f -> f account) (List.rev t.watchers)

  let get t name =
    match Hashtbl.find_opt t.accounts name with
    | Some a -> a
    | None ->
        let a = { limit = 0; revoked = false } in
        Hashtbl.add t.accounts name a;
        a

  let set_limit t ~account limit =
    (get t account).limit <- limit;
    notify t account

  let revoke t ~account =
    (get t account).revoked <- true;
    notify t account

  let externals ?(pred = "purchaseApproved") t : Sld.externals = function
    | (p, 2) when String.equal p pred ->
        Some
          (fun (lit : Literal.t) s ->
            match List.map (Subst.apply s) lit.Literal.args with
            | [ (Term.Str name | Term.Atom name); Term.Int amount ] -> (
                match Hashtbl.find_opt t.accounts (Sym.name name) with
                | Some a when (not a.revoked) && amount <= a.limit -> [ s ]
                | Some _ | None -> [])
            | _ -> [])
    | _ -> None
end

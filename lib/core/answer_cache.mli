(** Cross-negotiation answer cache.

    Negotiations repeatedly re-derive the same remote sub-goals — the
    paper's §4.2 scenario re-checks the same credentials (e.g.
    [member(Requester) @ institution]) across steps.  This cache lets a
    reactor skip the round-trip (and the full SLD proof at the remote
    peer) for a sub-query it has already seen answered.

    {2 Keying}

    An entry is keyed by the {e asker}, the {e owner} (the peer that
    produced the answer) and the variant of the sub-query — its
    alpha-invariant skeleton ({!Peer.goal_key}), so renamed-apart copies
    of the same goal share one entry.  The asker is part of the key
    because answers are computed under the owner's release policies for
    that particular requester: an answer released to one peer must never
    be replayed to another.

    Only positive answers are cached.  A denial may later become an
    answer as knowledge bases grow, so denials are re-asked; answers are
    monotonically safe until revoked.

    {2 Lifetime}

    Entries carry a TTL measured on the simulated clock
    ({!Peertrust_net.Clock}); [find ~now] treats an entry stored at [s]
    with TTL [ttl] as live while [now < s + ttl].  Because [now] is a
    parameter, one cache can be shared by sessions with independent
    clocks (the cross-session mode behind {!Reactor.config}).

    Explicit invalidation drops entries before their TTL:
    {!invalidate_owner} on revocation ({!watch_accounts} subscribes to
    {!Externals.Accounts} changes) or on a setup-style KB change at the
    owning peer ({!watch_peer} subscribes to {!Peer.on_kb_update}).

    Counters [cache.hits] / [cache.misses] / [cache.evictions] /
    [cache.invalidations] are exported through {!Peertrust_obs.Obs};
    per-instance totals are also available ({!hits} etc.) for tests that
    run several caches side by side. *)

open Peertrust_dlp

type t

type answer = {
  instances : (Literal.t * Trace.t option) list;
  certs : Peertrust_crypto.Cert.t list;
}
(** What an [Answer] payload carries: the provable instances (with
    optional proof traces) and the supporting credentials. *)

val create : ?ttl:int -> ?capacity:int -> unit -> t
(** [ttl] (default 1024 ticks) bounds entry lifetime on the simulated
    clock; [capacity] (default 4096 entries) bounds the table — storing
    beyond it evicts the oldest entry.  @raise Invalid_argument on
    [ttl < 1] or [capacity < 1]. *)

val find :
  t -> now:int -> asker:string -> owner:string -> Literal.t -> answer option
(** Look up a live entry for [goal] as asked of [owner] by [asker].
    Expired entries are dropped on contact (counted as evictions); every
    call counts a hit or a miss. *)

val store :
  ?completed:bool ->
  t ->
  now:int ->
  asker:string ->
  owner:string ->
  Literal.t ->
  answer ->
  unit
(** Insert or refresh an entry, stamping its expiry at [now + ttl].
    [completed] (default [true]) asserts the answer set is final;
    [~completed:false] — an answer drawn from a table still inside an
    unfinished SCC — {e refuses} the insert (counted as
    [cache.rejected_incomplete]), so a premature partial answer set can
    never be served to a later asker. *)

val invalidate_owner : t -> string -> int
(** Drop every entry answered by the given peer; returns the number of
    entries dropped (also added to [cache.invalidations]). *)

val invalidate_asker : t -> string -> int
(** Drop every entry the given peer learned as asker; returns the number
    dropped.  Cached answers are part of the asker's volatile state, so a
    crash-stop restart must forget them — the restarted incarnation
    re-asks (or replays its durable journal) instead of trusting a dead
    incarnation's memory. *)

val invalidate_goal : t -> owner:string -> Literal.t -> int
(** Drop the entries for one goal (any asker) at one owner — e.g. the
    top-level goals of a scenario, to force a fresh end-to-end run while
    keeping sub-query answers warm. *)

val watch_accounts : t -> owner:string -> Externals.Accounts.t -> unit
(** Subscribe to an account table backing [owner]'s external predicates:
    any revocation or limit change there invalidates every answer cached
    from [owner]. *)

val watch_peer : t -> Peer.t -> unit
(** Subscribe to setup-style KB updates at a peer: a reloaded or replaced
    program invalidates every answer cached from it. *)

val clear : t -> unit
(** Drop everything (counted as invalidations). *)

val length : t -> int

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val invalidations : t -> int
(** Per-instance totals since {!create} (the process-wide [cache.*]
    counters aggregate across instances). *)

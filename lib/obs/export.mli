(** Structured exporters for traces and metrics.

    Three formats:
    - a JSONL span log (one {!Span.to_json} object per line, start order),
    - a metrics JSON snapshot under {!Registry.schema_version} — the same
      schema the benchmark harness writes to [BENCH_*.json],
    - a human-readable span tree for terminal output.

    Each serialiser has an inverse, used by the round-trip tests and by
    external tooling that consumes the artifacts. *)

val spans_to_jsonl : Span.t list -> string
val spans_of_jsonl : string -> (Span.t list, string) result

val write_spans_jsonl : string -> Span.t list -> unit
(** @raise Sys_error on unwritable paths. *)

val spans_to_chrome : Span.t list -> string
(** Chrome [trace_event] JSON (one document): a process per trace id, a
    thread per peer lane, complete ("X") events for spans and instant
    ("i") events for span events.  Loadable in chrome://tracing and
    Perfetto; timestamps are simulated-clock ticks. *)

val write_spans_chrome : string -> Span.t list -> unit

val spans_to_causal_jsonl : Span.t list -> string
(** Flat causal stream: one JSONL record per span start / point event /
    span end, ordered by tick (ties keep recording order), each carrying
    its trace and parent ids. *)

val write_spans_causal : string -> Span.t list -> unit

val metrics_to_string : ?label:string -> Registry.snapshot -> string
val metrics_of_string : string -> (Registry.snapshot, string) result

val write_metrics_json : ?label:string -> string -> Registry.snapshot -> unit
(** @raise Sys_error on unwritable paths. *)

val span_tree : Span.t list -> string
(** {!Span.tree_to_string}. *)

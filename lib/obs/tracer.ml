type t = {
  enabled : bool;
  now : unit -> int;
  mutable next_id : int;
  mutable next_trace : int;  (* trace ids minted by this tracer *)
  mutable stack : Span.t list;  (* open spans, innermost first *)
  mutable recorded : Span.t list;  (* reverse insertion order *)
  max_spans : int;
}

let noop =
  {
    enabled = false;
    now = (fun () -> 0);
    next_id = 1;
    next_trace = 1;
    stack = [];
    recorded = [];
    max_spans = 0;
  }

let create ?(now = fun () -> 0) ?(max_spans = 1_000_000) () =
  {
    enabled = true;
    now;
    next_id = 1;
    next_trace = 1;
    stack = [];
    recorded = [];
    max_spans;
  }

let enabled t = t.enabled

let mint t =
  if not t.enabled then None
  else begin
    let id = t.next_trace in
    t.next_trace <- id + 1;
    Some (Trace_context.make ~trace_id:id ~parent_span:0 ())
  end

(* Parentage and trace membership of a fresh span: an explicit context
   wins (it crossed a wire or a timer); otherwise both are inherited
   from the innermost open span, so purely local nesting stays on the
   enclosing negotiation's trace. *)
let lineage t ctx =
  match ctx with
  | Some c ->
      ( (if c.Trace_context.parent_span = 0 then None
         else Some c.Trace_context.parent_span),
        c.Trace_context.trace_id )
  | None -> (
      match t.stack with
      | [] -> (None, 0)
      | s :: _ -> (Some s.Span.id, s.Span.trace))

let fresh_span t ?ctx ?(attrs = []) ~name ~start_ticks () =
  if t.next_id > t.max_spans then None (* cap: drop, don't grow *)
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let parent, trace = lineage t ctx in
    let span = Span.make ~trace ~id ~parent ~name ~start_ticks () in
    List.iter (fun (k, v) -> Span.set_attr span k v) attrs;
    t.recorded <- span :: t.recorded;
    Some span
  end

let sampled_out = function
  | Some { Trace_context.sampled = false; _ } -> true
  | Some _ | None -> false

let start t ?ctx ?attrs name =
  if (not t.enabled) || sampled_out ctx then None
  else
    match fresh_span t ?ctx ?attrs ~name ~start_ticks:(t.now ()) () with
    | None -> None
    | Some span ->
        t.stack <- span :: t.stack;
        Some span

let finish t = function
  | None -> ()
  | Some span ->
      Span.finish span ~at:(t.now ());
      (* Pop up to and including this span; handles mismatched nesting
         from exceptional exits conservatively. *)
      let rec pop = function
        | [] -> []
        | s :: rest when s == span -> rest
        | s :: rest ->
            Span.finish s ~at:(t.now ());
            pop rest
      in
      if List.memq span t.stack then t.stack <- pop t.stack

let with_span t ?ctx ?attrs name f =
  if not t.enabled then f ()
  else begin
    let span = start t ?ctx ?attrs name in
    Fun.protect ~finally:(fun () -> finish t span) f
  end

(* Retrospective recording: a span whose extent is already known — e.g.
   the wire transit of an envelope, reconstructed at delivery from its
   sent/deliver ticks.  Never touches the stack. *)
let record t ?ctx ?attrs ~name ~start_ticks ~end_ticks () =
  if (not t.enabled) || sampled_out ctx then None
  else
    match fresh_span t ?ctx ?attrs ~name ~start_ticks () with
    | None -> None
    | Some span ->
        Span.finish span ~at:end_ticks;
        Some span

let event t message =
  if t.enabled then
    match t.stack with
    | [] -> ()
    | span :: _ -> Span.add_event span ~at:(t.now ()) message

let set_attr t key value =
  if t.enabled then
    match t.stack with
    | [] -> ()
    | span :: _ -> Span.set_attr span key value

let current t = match t.stack with [] -> None | s :: _ -> Some s

let current_context t =
  match t.stack with
  | s :: _ when s.Span.trace <> 0 ->
      Some (Trace_context.make ~trace_id:s.Span.trace ~parent_span:s.Span.id ())
  | _ -> None

(* Retrospective spans can start before previously recorded ones, so the
   start-order contract needs an explicit (start, id) sort; the id
   tie-break reproduces insertion order for same-tick spans. *)
let spans t =
  List.sort
    (fun a b ->
      let c = Int.compare a.Span.start_ticks b.Span.start_ticks in
      if c <> 0 then c else Int.compare a.Span.id b.Span.id)
    (List.rev t.recorded)

let finished t = spans t |> List.filter (fun s -> s.Span.end_ticks <> None)

let clear t =
  t.stack <- [];
  t.recorded <- [];
  t.next_id <- 1;
  t.next_trace <- 1

type t = {
  enabled : bool;
  now : unit -> int;
  mutable next_id : int;
  mutable stack : Span.t list;  (* open spans, innermost first *)
  mutable recorded : Span.t list;  (* reverse start order *)
  max_spans : int;
}

let noop =
  {
    enabled = false;
    now = (fun () -> 0);
    next_id = 1;
    stack = [];
    recorded = [];
    max_spans = 0;
  }

let create ?(now = fun () -> 0) ?(max_spans = 1_000_000) () =
  { enabled = true; now; next_id = 1; stack = []; recorded = []; max_spans }

let enabled t = t.enabled

let start t ?(attrs = []) name =
  if not t.enabled then None
  else if t.next_id > t.max_spans then None (* cap: drop, don't grow *)
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let parent =
      match t.stack with [] -> None | s :: _ -> Some s.Span.id
    in
    let span = Span.make ~id ~parent ~name ~start_ticks:(t.now ()) in
    List.iter (fun (k, v) -> Span.set_attr span k v) attrs;
    t.stack <- span :: t.stack;
    t.recorded <- span :: t.recorded;
    Some span
  end

let finish t = function
  | None -> ()
  | Some span ->
      Span.finish span ~at:(t.now ());
      (* Pop up to and including this span; handles mismatched nesting
         from exceptional exits conservatively. *)
      let rec pop = function
        | [] -> []
        | s :: rest when s == span -> rest
        | s :: rest ->
            Span.finish s ~at:(t.now ());
            pop rest
      in
      if List.memq span t.stack then t.stack <- pop t.stack

let with_span t ?attrs name f =
  if not t.enabled then f ()
  else begin
    let span = start t ?attrs name in
    Fun.protect ~finally:(fun () -> finish t span) f
  end

let event t message =
  if t.enabled then
    match t.stack with
    | [] -> ()
    | span :: _ -> Span.add_event span ~at:(t.now ()) message

let set_attr t key value =
  if t.enabled then
    match t.stack with
    | [] -> ()
    | span :: _ -> Span.set_attr span key value

let current t = match t.stack with [] -> None | s :: _ -> Some s

let spans t = List.rev t.recorded

let finished t =
  List.rev t.recorded |> List.filter (fun s -> s.Span.end_ticks <> None)

let clear t =
  t.stack <- [];
  t.recorded <- [];
  t.next_id <- 1

(* Structured exporters: a JSONL span log, a metrics JSON snapshot, and
   the human-readable span tree. *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* ------------------------------------------------------------------ *)
(* Spans: JSONL, one span object per line, in start order *)

let spans_to_jsonl spans =
  let buf = Buffer.create 4096 in
  List.iter
    (fun span ->
      Json.to_buffer buf (Span.to_json span);
      Buffer.add_char buf '\n')
    spans;
  Buffer.contents buf

let spans_of_jsonl text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match Json.of_string line with
        | Error e -> Error e
        | Ok j -> (
            match Span.of_json j with
            | Some span -> go (span :: acc) rest
            | None -> Error (Printf.sprintf "not a span record: %s" line)))
  in
  go [] lines

let write_spans_jsonl path spans = write_file path (spans_to_jsonl spans)

(* ------------------------------------------------------------------ *)
(* Metrics snapshot *)

let metrics_to_string ?label snap =
  Json.to_string (Registry.to_json ?label snap) ^ "\n"

let metrics_of_string text =
  match Json.of_string (String.trim text) with
  | Error e -> Error e
  | Ok j -> Registry.of_json j

let write_metrics_json ?label path snap =
  write_file path (metrics_to_string ?label snap)

(* ------------------------------------------------------------------ *)
(* Human-readable span tree *)

let span_tree = Span.tree_to_string

(* Structured exporters: a JSONL span log, a metrics JSON snapshot, and
   the human-readable span tree. *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* ------------------------------------------------------------------ *)
(* Spans: JSONL, one span object per line, in start order *)

let spans_to_jsonl spans =
  let buf = Buffer.create 4096 in
  List.iter
    (fun span ->
      Json.to_buffer buf (Span.to_json span);
      Buffer.add_char buf '\n')
    spans;
  Buffer.contents buf

let spans_of_jsonl text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match Json.of_string line with
        | Error e -> Error e
        | Ok j -> (
            match Span.of_json j with
            | Some span -> go (span :: acc) rest
            | None -> Error (Printf.sprintf "not a span record: %s" line)))
  in
  go [] lines

let write_spans_jsonl path spans = write_file path (spans_to_jsonl spans)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON (chrome://tracing, Perfetto)

   Mapping: one process per trace id (pid = trace, 0 for untraced
   spans), one thread per peer lane within it (the span's "peer"
   attribute; "-" for spans with none).  Timestamps are simulated-clock
   ticks reported in the format's microsecond field. *)

let span_peer span =
  match List.assoc_opt "peer" span.Span.attrs with
  | Some (Json.Str p) -> p
  | Some _ | None -> "-"

let spans_to_chrome spans =
  (* Deterministic lane numbering: sorted (trace, peer) pairs. *)
  let lanes = Hashtbl.create 16 in
  let lane_list =
    List.map (fun s -> (s.Span.trace, span_peer s)) spans
    |> List.sort_uniq compare
  in
  List.iteri (fun i key -> Hashtbl.replace lanes key (i + 1)) lane_list;
  let lane span = Hashtbl.find lanes (span.Span.trace, span_peer span) in
  let meta =
    List.concat_map
      (fun (trace, peer) ->
        let tid = Hashtbl.find lanes (trace, peer) in
        let name_event which name =
          Json.Obj
            [
              ("ph", Json.Str "M");
              ("name", Json.Str which);
              ("pid", Json.Int trace);
              ("tid", Json.Int tid);
              ("args", Json.Obj [ ("name", Json.Str name) ]);
            ]
        in
        [
          name_event "process_name"
            (if trace = 0 then "untraced"
             else Printf.sprintf "trace %d" trace);
          name_event "thread_name" peer;
        ])
      lane_list
  in
  let of_span span =
    let base =
      [
        ("name", Json.Str span.Span.name);
        ("cat", Json.Str "peertrust");
        ("ph", Json.Str "X");
        ("ts", Json.Int span.Span.start_ticks);
        ("dur", Json.Int (Span.duration span));
        ("pid", Json.Int span.Span.trace);
        ("tid", Json.Int (lane span));
        ( "args",
          Json.Obj
            (("span", Json.Int span.Span.id)
             ::
             (match span.Span.parent with
             | Some p -> [ ("parent", Json.Int p) ]
             | None -> [])
            @ Span.attrs span) );
      ]
    in
    Json.Obj base
    :: List.map
         (fun (e : Span.event) ->
           Json.Obj
             [
               ("name", Json.Str e.Span.message);
               ("cat", Json.Str "peertrust");
               ("ph", Json.Str "i");
               ("s", Json.Str "t");
               ("ts", Json.Int e.Span.at);
               ("pid", Json.Int span.Span.trace);
               ("tid", Json.Int (lane span));
             ])
         (Span.events span)
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (meta @ List.concat_map of_span spans));
         ("displayTimeUnit", Json.Str "ms");
       ])
  ^ "\n"

let write_spans_chrome path spans = write_file path (spans_to_chrome spans)

(* ------------------------------------------------------------------ *)
(* Causal JSONL stream: span lifecycle flattened into time-ordered
   records, so a consumer can replay cross-peer causality without
   reassembling trees.  Ties on the tick preserve recording order. *)

let spans_to_causal_jsonl spans =
  let records =
    List.concat_map
      (fun span ->
        let shared =
          [
            ("span", Json.Int span.Span.id);
            ("trace", Json.Int span.Span.trace);
          ]
        in
        let start =
          ( span.Span.start_ticks,
            Json.Obj
              ([ ("ev", Json.Str "start"); ("t", Json.Int span.Span.start_ticks) ]
              @ shared
              @ [
                  ( "parent",
                    match span.Span.parent with
                    | Some p -> Json.Int p
                    | None -> Json.Null );
                  ("name", Json.Str span.Span.name);
                  ("peer", Json.Str (span_peer span));
                ]) )
        in
        let points =
          List.map
            (fun (e : Span.event) ->
              ( e.Span.at,
                Json.Obj
                  ([ ("ev", Json.Str "event"); ("t", Json.Int e.Span.at) ]
                  @ shared
                  @ [ ("msg", Json.Str e.Span.message) ]) ))
            (Span.events span)
        in
        let ends =
          match span.Span.end_ticks with
          | None -> []
          | Some at ->
              [
                ( at,
                  Json.Obj
                    ([ ("ev", Json.Str "end"); ("t", Json.Int at) ] @ shared) );
              ]
        in
        (start :: points) @ ends)
      spans
  in
  let ordered =
    List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) records
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (_, j) ->
      Json.to_buffer buf j;
      Buffer.add_char buf '\n')
    ordered;
  Buffer.contents buf

let write_spans_causal path spans = write_file path (spans_to_causal_jsonl spans)

(* ------------------------------------------------------------------ *)
(* Metrics snapshot *)

let metrics_to_string ?label snap =
  Json.to_string (Registry.to_json ?label snap) ^ "\n"

let metrics_of_string text =
  match Json.of_string (String.trim text) with
  | Error e -> Error e
  | Ok j -> Registry.of_json j

let write_metrics_json ?label path snap =
  write_file path (metrics_to_string ?label snap)

(* ------------------------------------------------------------------ *)
(* Human-readable span tree *)

let span_tree = Span.tree_to_string

(** Metric primitives: counters, gauges and fixed-bucket histograms.

    Instrumented code holds direct references to the cells, so recording is
    a field update — cheap enough to leave permanently enabled on hot paths
    (SLD steps, message deliveries).  {!Registry} names and collects
    them. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  bounds : float array;  (** strictly increasing upper bounds *)
  counts : int array;  (** one per bound, plus a final overflow bucket *)
  mutable sum : float;
  mutable count : int;
  mutable min_v : float;  (** observed minimum; meaningless while [count = 0] *)
  mutable max_v : float;  (** observed maximum; meaningless while [count = 0] *)
}

val default_buckets : float array
(** Powers of two, 1 to 65536. *)

val counter : string -> counter
val gauge : string -> gauge

val histogram : ?buckets:float array -> string -> histogram
(** @raise Invalid_argument unless [buckets] is non-empty, finite and
    strictly increasing. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one sample: bump the first bucket whose bound is [>=] the value
    (overflow bucket past the last bound). *)

val observe_int : histogram -> int -> unit

val reset_counter : counter -> unit
val reset_gauge : gauge -> unit
val reset_histogram : histogram -> unit

(** {2 Snapshots} *)

type histogram_snapshot = {
  hs_bounds : float array;
  hs_counts : int array;
  hs_sum : float;
  hs_count : int;
  hs_min : float;  (** observed minimum; 0 while [hs_count = 0] *)
  hs_max : float;  (** observed maximum; 0 while [hs_count = 0] *)
}

val snapshot_histogram : histogram -> histogram_snapshot

val merge_histogram_snapshots :
  histogram_snapshot -> histogram_snapshot -> histogram_snapshot
(** Bucket-wise sum.  @raise Invalid_argument when bounds differ. *)

val mean : histogram_snapshot -> float
(** 0 when empty. *)

val percentile : histogram_snapshot -> float -> float
(** [percentile hs q] for [q] in [[0,1]]: the upper bound of the bucket
    where the cumulative count crosses [q * count]; the unbounded
    overflow bucket reports the observed maximum (clamped to at least
    the last bound, so the result is monotone in [q]); 0 when empty.
    @raise Invalid_argument on [q] outside [[0,1]]. *)

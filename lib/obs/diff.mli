(** Bench-regression checking: compare a fresh {!Registry.snapshot}
    against a committed baseline with per-metric tolerances, producing a
    machine-readable verdict (the [bench diff] subcommand and the
    [check.sh] gate are built on this).

    Every comparison is two-sided: with tolerance [{tol_ratio; tol_abs}]
    and baseline value [b], the fresh value must stay inside
    [[b / ratio - abs, b * ratio + abs]] — growth past the band is a
    regression, collapse below it is lost coverage.  Metrics whose names
    end in [.ms], [.kwords] or [.ns] are wall-clock measurements and get
    the (much wider) timing tolerance.  Histograms are compared on
    [count], [mean] and the observed [max] (which is why snapshots carry
    min/max). *)

type tolerance = { tol_ratio : float; tol_abs : float }

type spec = {
  sp_default : tolerance;
  sp_timing : tolerance;
  sp_overrides : (string * tolerance) list;
      (** exact metric name -> tolerance, wins over both defaults *)
}

val default_tolerance : tolerance
(** ratio 1.5, abs 16 — generous for deterministic counters. *)

val timing_tolerance : tolerance
(** ratio 8, abs 50 — sub-millisecond timings are noisy across machines. *)

val default_spec : spec
val is_timing : string -> bool
val tolerance_for : spec -> string -> tolerance

type violation = {
  v_metric : string;
      (** metric name; histogram facets as [name.count] / [name.mean] /
          [name.max] *)
  v_baseline : float;
  v_fresh : float;
  v_allowed : float * float;  (** the [(lo, hi)] band the value left *)
}

type report = {
  r_ok : bool;  (** no violations and nothing missing *)
  r_checked : int;
  r_violations : violation list;
  r_missing : string list;  (** in baseline, absent from the fresh run *)
  r_extra : string list;  (** new in the fresh run (informational) *)
}

val compare_snapshots :
  ?spec:spec ->
  baseline:Registry.snapshot ->
  fresh:Registry.snapshot ->
  unit ->
  report

val report_to_json : report -> Json.t
(** Schema [peertrust.benchdiff/1] with a ["verdict"] of
    ["pass"]/["fail"]. *)

val pp_report : Format.formatter -> report -> unit

(** Ambient observability: the process-wide metrics registry and tracer
    slot that the engines are instrumented against.

    Metrics are always on — cells are plain mutable records
    ({!Metric.counter}), so recording costs a field update.  Tracing is
    off by default ({!Tracer.noop}); install a real tracer around a run to
    capture spans:

    {[
      Obs.reset_metrics ();
      Obs.set_tracer (Tracer.create ~now:(fun () -> Clock.now clock) ());
      (* ... run negotiations ... *)
      Export.write_metrics_json "m.json" (Obs.snapshot ());
      Export.write_spans_jsonl "t.jsonl" (Obs.spans ());
      Obs.disable_tracing ()
    ]} *)

val metrics : Registry.t
(** The global registry.  Lives for the whole process; {!reset_metrics}
    zeroes it in place. *)

val tracer : unit -> Tracer.t
val set_tracer : Tracer.t -> unit
val disable_tracing : unit -> unit

val counter : string -> Metric.counter
(** [Registry.counter metrics] — bind once at module initialisation. *)

val gauge : string -> Metric.gauge
val histogram : ?buckets:float array -> string -> Metric.histogram
val snapshot : unit -> Registry.snapshot
val reset_metrics : unit -> unit

val with_span :
  ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** {!Tracer.with_span} on the installed tracer. *)

val event : string -> unit
val set_attr : string -> Json.t -> unit

val spans : unit -> Span.t list
(** Spans recorded by the installed tracer, in start order. *)

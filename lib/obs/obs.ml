(* Ambient observability state.

   The repo's engines (Sld, Network, Engine, ...) are instrumented against
   this module rather than threading a context through every signature:
   one process-wide metrics registry whose cells are bound once at module
   initialisation, and one tracer slot holding Tracer.noop unless a caller
   (CLI, bench, tests) installs a real tracer. *)

let metrics = Registry.create ()
let tracer_ref = ref Tracer.noop

let tracer () = !tracer_ref
let set_tracer t = tracer_ref := t
let disable_tracing () = tracer_ref := Tracer.noop

let counter name = Registry.counter metrics name
let gauge name = Registry.gauge metrics name
let histogram ?buckets name = Registry.histogram ?buckets metrics name

let snapshot () = Registry.snapshot metrics
let reset_metrics () = Registry.reset metrics

let with_span ?attrs name f = Tracer.with_span !tracer_ref ?attrs name f
let event message = Tracer.event !tracer_ref message
let set_attr key value = Tracer.set_attr !tracer_ref key value
let spans () = Tracer.spans !tracer_ref

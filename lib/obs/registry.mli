(** A named collection of metrics with stable snapshots.

    Cells are created on first use and live for the registry's lifetime;
    {!reset} zeroes them in place so references held by instrumented
    modules stay valid.  Snapshots are pure data — mergeable (e.g. across
    benchmark shards) and exportable as JSON under a stable schema. *)

type t

val create : unit -> t

val counter : t -> string -> Metric.counter
(** Get or create. *)

val gauge : t -> string -> Metric.gauge

val histogram : ?buckets:float array -> t -> string -> Metric.histogram
(** Get or create ({!Metric.default_buckets} unless [buckets] is given).
    @raise Invalid_argument when re-registering a name with different
    buckets. *)

val reset : t -> unit

(** {2 Snapshots} *)

type snapshot = {
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_gauges : (string * float) list;
  sn_histograms : (string * Metric.histogram_snapshot) list;
}

val snapshot : t -> snapshot
val empty_snapshot : snapshot

val counter_value : snapshot -> string -> int
(** 0 for unknown names. *)

val histogram_snapshot : snapshot -> string -> Metric.histogram_snapshot option

val merge : snapshot -> snapshot -> snapshot
(** Counters and histograms add; for a gauge present on both sides the
    right value wins.  @raise Invalid_argument on histograms whose bucket
    bounds differ. *)

(** {2 JSON export} *)

val schema_version : string
(** ["peertrust.metrics/1"] — the schema tag carried by every exported
    snapshot (and the benchmark [BENCH_*.json] artifacts). *)

val to_json : ?label:string -> snapshot -> Json.t

val of_json : Json.t -> (snapshot, string) result
(** Inverse of {!to_json} (the [label] is not part of the snapshot). *)

val pp : Format.formatter -> snapshot -> unit

type t = {
  counters : (string, Metric.counter) Hashtbl.t;
  gauges : (string, Metric.gauge) Hashtbl.t;
  histograms : (string, Metric.histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 16;
  }

let get_or_create tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some m -> m
  | None ->
      let m = make name in
      Hashtbl.add tbl name m;
      m

let counter t name = get_or_create t.counters name Metric.counter
let gauge t name = get_or_create t.gauges name Metric.gauge

let histogram ?buckets t name =
  let h = get_or_create t.histograms name (Metric.histogram ?buckets) in
  (match buckets with
  | Some b when b <> h.Metric.bounds ->
      invalid_arg
        (Printf.sprintf "Registry.histogram: %s re-registered with different buckets"
           name)
  | Some _ | None -> ());
  h

let reset t =
  (* Zero in place: cells already bound by instrumented modules stay
     valid. *)
  Hashtbl.iter (fun _ c -> Metric.reset_counter c) t.counters;
  Hashtbl.iter (fun _ g -> Metric.reset_gauge g) t.gauges;
  Hashtbl.iter (fun _ h -> Metric.reset_histogram h) t.histograms

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type snapshot = {
  sn_counters : (string * int) list;  (* sorted by name *)
  sn_gauges : (string * float) list;
  sn_histograms : (string * Metric.histogram_snapshot) list;
}

let sorted_bindings tbl value =
  Hashtbl.fold (fun name m acc -> (name, value m) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t =
  {
    sn_counters = sorted_bindings t.counters Metric.value;
    sn_gauges = sorted_bindings t.gauges Metric.gauge_value;
    sn_histograms = sorted_bindings t.histograms Metric.snapshot_histogram;
  }

let empty_snapshot = { sn_counters = []; sn_gauges = []; sn_histograms = [] }

let counter_value snap name =
  Option.value ~default:0 (List.assoc_opt name snap.sn_counters)

let histogram_snapshot snap name = List.assoc_opt name snap.sn_histograms

(* Merge two sorted association lists with a combining function. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = String.compare ka kb in
      if c = 0 then (ka, combine va vb) :: merge_assoc combine ta tb
      else if c < 0 then (ka, va) :: merge_assoc combine ta b
      else (kb, vb) :: merge_assoc combine a tb

let merge a b =
  {
    sn_counters = merge_assoc ( + ) a.sn_counters b.sn_counters;
    sn_gauges = merge_assoc (fun _ v -> v) a.sn_gauges b.sn_gauges;
    sn_histograms =
      merge_assoc Metric.merge_histogram_snapshots a.sn_histograms
        b.sn_histograms;
  }

(* ------------------------------------------------------------------ *)
(* JSON *)

let schema_version = "peertrust.metrics/1"

let histogram_to_json (hs : Metric.histogram_snapshot) =
  let buckets =
    List.init
      (Array.length hs.Metric.hs_counts)
      (fun i ->
        let le =
          if i < Array.length hs.Metric.hs_bounds then
            Json.Float hs.Metric.hs_bounds.(i)
          else Json.Str "+inf"
        in
        Json.Obj [ ("le", le); ("count", Json.Int hs.Metric.hs_counts.(i)) ])
  in
  Json.Obj
    [
      ("buckets", Json.List buckets);
      ("sum", Json.Float hs.Metric.hs_sum);
      ("count", Json.Int hs.Metric.hs_count);
      ("min", Json.Float hs.Metric.hs_min);
      ("max", Json.Float hs.Metric.hs_max);
      ("mean", Json.Float (Metric.mean hs));
      ("p50", Json.Float (Metric.percentile hs 0.5));
      ("p90", Json.Float (Metric.percentile hs 0.9));
      ("p99", Json.Float (Metric.percentile hs 0.99));
    ]

let to_json ?label snap =
  let fields =
    [
      ("schema", Json.Str schema_version);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.sn_counters) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) snap.sn_gauges) );
      ( "histograms",
        Json.Obj
          (List.map (fun (k, v) -> (k, histogram_to_json v)) snap.sn_histograms)
      );
    ]
  in
  Json.Obj
    (match label with
    | Some l -> ("label", Json.Str l) :: fields
    | None -> fields)

let histogram_of_json j =
  let open Json in
  match (member "buckets" j, member "sum" j, member "count" j) with
  | Some (List buckets), Some sum, Some count ->
      let parsed =
        List.filter_map
          (fun b ->
            match (member "le" b, member "count" b) with
            | Some le, Some (Int c) ->
                let bound =
                  match le with
                  | Str "+inf" -> None
                  | other -> to_float other
                in
                Some (bound, c)
            | _ -> None)
          buckets
      in
      if List.length parsed <> List.length buckets then None
      else
        let bounds =
          List.filter_map (fun (b, _) -> b) parsed |> Array.of_list
        in
        let counts = List.map snd parsed |> Array.of_list in
        let hs_count = Option.value ~default:0 (to_int count) in
        let hs_sum = Option.value ~default:0. (to_float sum) in
        (* Files written before min/max tracking lack the fields;
           reconstruct conservative stand-ins from the buckets so
           percentiles over re-loaded snapshots stay monotone. *)
        let field name fallback =
          match Option.bind (member name j) to_float with
          | Some v -> v
          | None -> fallback
        in
        let last_nonempty_bound =
          let best = ref 0. in
          Array.iteri
            (fun i c -> if c > 0 && i < Array.length bounds then best := bounds.(i))
            counts;
          !best
        in
        Some
          {
            Metric.hs_bounds = bounds;
            hs_counts = counts;
            hs_sum;
            hs_count;
            hs_min = field "min" 0.;
            hs_max = field "max" last_nonempty_bound;
          }
  | _ -> None

let of_json j =
  let open Json in
  match member "schema" j with
  | Some (Str s) when s = schema_version ->
      let obj_fields key =
        match member key j with Some (Obj fields) -> fields | _ -> []
      in
      let counters =
        List.filter_map
          (fun (k, v) -> Option.map (fun i -> (k, i)) (to_int v))
          (obj_fields "counters")
      in
      let gauges =
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (to_float v))
          (obj_fields "gauges")
      in
      let histograms =
        List.filter_map
          (fun (k, v) -> Option.map (fun h -> (k, h)) (histogram_of_json v))
          (obj_fields "histograms")
      in
      let sort l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
      Ok
        {
          sn_counters = sort counters;
          sn_gauges = sort gauges;
          sn_histograms = sort histograms;
        }
  | Some (Str s) -> Error (Printf.sprintf "unknown metrics schema %S" s)
  | Some _ | None -> Error "missing metrics schema field"

let pp fmt snap =
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%s: %d@\n" name v)
    snap.sn_counters;
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%s: %g@\n" name v)
    snap.sn_gauges;
  List.iter
    (fun (name, hs) ->
      Format.fprintf fmt
        "%s: count=%d min=%g max=%g mean=%.2f p50=%g p99=%g@\n" name
        hs.Metric.hs_count hs.Metric.hs_min hs.Metric.hs_max (Metric.mean hs)
        (Metric.percentile hs 0.5)
        (Metric.percentile hs 0.99))
    snap.sn_histograms

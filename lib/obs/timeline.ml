(* Cross-peer timeline reconstruction over a flat span log.

   Spans tagged with the same trace id — possibly recorded at different
   peers and stitched by wire-propagated {!Trace_context}s — are grouped
   into one negotiation timeline: per-peer lanes on the simulated clock,
   the critical path (root to the span that determines the end-to-end
   latency), a latency breakdown by span category, and anomaly flags. *)

type category = Solve | Wire | Queue | Retransmit | Tabling | Other

let category_to_string = function
  | Solve -> "solve"
  | Wire -> "wire"
  | Queue -> "queue"
  | Retransmit -> "retransmit"
  | Tabling -> "tabling"
  | Other -> "other"

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let categorize (span : Span.t) =
  let n = span.Span.name in
  if has_prefix ~prefix:"sld." n || String.equal n "answer"
     || String.equal n "query"
  then Solve
  else if String.equal n "net.wire" || String.equal n "net.send" then Wire
  else if has_prefix ~prefix:"recv." n then Queue
  else if has_prefix ~prefix:"reactor.retry" n
          || has_prefix ~prefix:"reactor.timeout" n
  then Retransmit
  else if has_prefix ~prefix:"tabling." n then Tabling
  else Other

type anomaly =
  | Retransmit_storm of { retries : int; timeouts : int }
  | Breaker_trip of { at : int; detail : string }
  | Cache_stampede of { at : int; bursts : int }
  | Restart_storm of { restarts : int }

let anomaly_to_string = function
  | Retransmit_storm { retries; timeouts } ->
      Printf.sprintf "retransmit storm: %d retries, %d timeouts" retries
        timeouts
  | Breaker_trip { at; detail } ->
      Printf.sprintf "breaker trip at %d: %s" at detail
  | Cache_stampede { at; bursts } ->
      Printf.sprintf "cache-invalidation stampede at %d: %d bursts" at bursts
  | Restart_storm { restarts } ->
      Printf.sprintf "restart storm: %d restarts" restarts

type t = {
  tl_trace : int;
  tl_spans : Span.t list;  (* (start, id) order *)
  tl_root : Span.t option;
  tl_lanes : (string * Span.t list) list;  (* peer -> its spans, sorted *)
  tl_start : int;
  tl_end : int;
  tl_critical : Span.t list;  (* root-to-latest chain along parent links *)
  tl_breakdown : (category * int) list;  (* self ticks per category *)
  tl_anomalies : anomaly list;
}

let span_peer (span : Span.t) =
  match List.assoc_opt "peer" span.Span.attrs with
  | Some (Json.Str p) -> p
  | Some _ | None -> "-"

let span_end (span : Span.t) =
  match span.Span.end_ticks with
  | Some e -> e
  | None -> span.Span.start_ticks

(* Retransmit-storm threshold: fewer retries than this is the protocol
   doing its job; at or past it the trace is flagged. *)
let storm_threshold = 3
let stampede_threshold = 2

(* One crash-restart mid-negotiation is the fault model working as
   designed; a counterparty flapping twice or more inside one trace is
   a restart storm worth flagging. *)
let restart_storm_threshold = 2

let build_one trace spans =
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.Span.id s) spans;
  let known_parent s =
    match s.Span.parent with
    | Some p -> Hashtbl.mem by_id p
    | None -> false
  in
  let root =
    match List.filter (fun s -> not (known_parent s)) spans with
    | [] -> None
    | roots ->
        Some
          (List.fold_left
             (fun best s ->
               if
                 (s.Span.start_ticks, s.Span.id)
                 < (best.Span.start_ticks, best.Span.id)
               then s
               else best)
             (List.hd roots) (List.tl roots))
  in
  let lanes =
    List.fold_left
      (fun acc s ->
        let peer = span_peer s in
        let prev = Option.value ~default:[] (List.assoc_opt peer acc) in
        (peer, s :: prev) :: List.remove_assoc peer acc)
      [] spans
    |> List.map (fun (peer, ss) -> (peer, List.rev ss))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let tl_start =
    List.fold_left (fun acc s -> min acc s.Span.start_ticks) max_int spans
  in
  let tl_end = List.fold_left (fun acc s -> max acc (span_end s)) 0 spans in
  (* Critical path: the parent chain of the span with the latest end —
     the sequence of causally linked steps that determined when the
     negotiation finished. *)
  let critical =
    match spans with
    | [] -> []
    | first :: rest ->
        let latest =
          List.fold_left
            (fun best s ->
              if (span_end s, s.Span.id) > (span_end best, best.Span.id) then s
              else best)
            first rest
        in
        let rec up acc s =
          match s.Span.parent with
          | Some p when Hashtbl.mem by_id p ->
              let parent = Hashtbl.find by_id p in
              if List.memq parent acc then acc (* defensive: cyclic log *)
              else up (parent :: acc) parent
          | Some _ | None -> acc
        in
        up [ latest ] latest
  in
  (* Self time: a span's duration minus the time covered by its
     children, attributed to the span's own category. *)
  let child_time = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match s.Span.parent with
      | Some p when Hashtbl.mem by_id p ->
          let d = Span.duration s in
          Hashtbl.replace child_time p
            (d + Option.value ~default:0 (Hashtbl.find_opt child_time p))
      | Some _ | None -> ())
    spans;
  let breakdown =
    List.fold_left
      (fun acc s ->
        let self =
          max 0
            (Span.duration s
            - Option.value ~default:0 (Hashtbl.find_opt child_time s.Span.id))
        in
        let cat = categorize s in
        let prev = Option.value ~default:0 (List.assoc_opt cat acc) in
        (cat, prev + self) :: List.remove_assoc cat acc)
      [] spans
    |> List.sort compare
  in
  (* Anomalies, read off span names and events. *)
  let retries = ref 0 and timeouts = ref 0 in
  let restarts = ref 0 in
  let breaker = ref [] in
  let invalidations = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let cat = categorize s in
      (match cat with
      | Retransmit ->
          if has_prefix ~prefix:"reactor.timeout" s.Span.name then
            incr timeouts
          else incr retries
      | Solve | Wire | Queue | Tabling | Other -> ());
      List.iter
        (fun (e : Span.event) ->
          let msg = e.Span.message in
          (* Retry/timeout events inside a retransmit span describe the
             span itself — counting both would double every occurrence. *)
          if has_prefix ~prefix:"reactor.retry" msg then (
            if cat <> Retransmit then incr retries)
          else if has_prefix ~prefix:"reactor.timeout" msg then (
            if cat <> Retransmit then incr timeouts)
          else if has_prefix ~prefix:"reactor.restart" msg then incr restarts
          else if has_prefix ~prefix:"guard.quarantine" msg then
            breaker := (e.Span.at, msg) :: !breaker
          else if has_prefix ~prefix:"cache.invalidate" msg then
            Hashtbl.replace invalidations e.Span.at
              (1
              + Option.value ~default:0 (Hashtbl.find_opt invalidations e.Span.at)
              ))
        (Span.events s))
    spans;
  let anomalies =
    (if !retries + !timeouts >= storm_threshold then
       [ Retransmit_storm { retries = !retries; timeouts = !timeouts } ]
     else [])
    @ (List.rev !breaker
      |> List.map (fun (at, detail) -> Breaker_trip { at; detail }))
    @ (Hashtbl.fold (fun at n acc -> (at, n) :: acc) invalidations []
      |> List.filter (fun (_, n) -> n >= stampede_threshold)
      |> List.sort compare
      |> List.map (fun (at, bursts) -> Cache_stampede { at; bursts }))
    @
    if !restarts >= restart_storm_threshold then
      [ Restart_storm { restarts = !restarts } ]
    else []
  in
  {
    tl_trace = trace;
    tl_spans = spans;
    tl_root = root;
    tl_lanes = lanes;
    tl_start = (if spans = [] then 0 else tl_start);
    tl_end;
    tl_critical = critical;
    tl_breakdown = breakdown;
    tl_anomalies = anomalies;
  }

let build spans =
  let traced = List.filter (fun s -> s.Span.trace <> 0) spans in
  let ids =
    List.map (fun s -> s.Span.trace) traced |> List.sort_uniq Int.compare
  in
  List.map
    (fun trace ->
      build_one trace (List.filter (fun s -> s.Span.trace = trace) traced))
    ids

(* ------------------------------------------------------------------ *)
(* Rendering *)

let chart_width = 48

let render_lane fmt ~t0 ~t1 (peer, spans) =
  let extent = max 1 (t1 - t0) in
  let cells = Bytes.make chart_width '.' in
  List.iter
    (fun s ->
      let a = (s.Span.start_ticks - t0) * chart_width / extent in
      let b = (span_end s - t0) * chart_width / extent in
      for i = max 0 a to min (chart_width - 1) b do
        Bytes.set cells i '='
      done)
    spans;
  Format.fprintf fmt "  %-12s %4d |%s| %-4d (%d span%s)@\n" peer t0
    (Bytes.to_string cells) t1 (List.length spans)
    (if List.length spans = 1 then "" else "s")

let pp_span_line fmt (s : Span.t) =
  Format.fprintf fmt "[%d..%s] %s" s.Span.start_ticks
    (match s.Span.end_ticks with
    | Some e -> string_of_int e
    | None -> ")")
    s.Span.name;
  match span_peer s with
  | "-" -> ()
  | peer -> Format.fprintf fmt " @%s" peer

let render fmt t =
  Format.fprintf fmt "trace %d: %d span(s), %d peer lane(s), ticks %d..%d@\n"
    t.tl_trace (List.length t.tl_spans) (List.length t.tl_lanes) t.tl_start
    t.tl_end;
  (match t.tl_root with
  | Some root -> Format.fprintf fmt "  root: %a@\n" pp_span_line root
  | None -> ());
  List.iter (render_lane fmt ~t0:t.tl_start ~t1:t.tl_end) t.tl_lanes;
  if t.tl_critical <> [] then begin
    Format.fprintf fmt "  critical path (%d step(s)):@\n"
      (List.length t.tl_critical);
    List.iter
      (fun s -> Format.fprintf fmt "    %a@\n" pp_span_line s)
      t.tl_critical
  end;
  Format.fprintf fmt "  latency breakdown:";
  let total =
    List.fold_left (fun acc (_, ticks) -> acc + ticks) 0 t.tl_breakdown
  in
  List.iter
    (fun (cat, ticks) ->
      if ticks > 0 || cat = Other then
        Format.fprintf fmt " %s=%d" (category_to_string cat) ticks)
    t.tl_breakdown;
  Format.fprintf fmt " (self-time total %d)@\n" total;
  (match t.tl_anomalies with
  | [] -> Format.fprintf fmt "  anomalies: none@\n"
  | anomalies ->
      List.iter
        (fun a -> Format.fprintf fmt "  anomaly: %s@\n" (anomaly_to_string a))
        anomalies)

let to_string t =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  render fmt t;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let to_json t =
  Json.Obj
    [
      ("trace", Json.Int t.tl_trace);
      ("spans", Json.Int (List.length t.tl_spans));
      ("start", Json.Int t.tl_start);
      ("end", Json.Int t.tl_end);
      ( "peers",
        Json.List (List.map (fun (p, _) -> Json.Str p) t.tl_lanes) );
      ( "critical_path",
        Json.List
          (List.map
             (fun (s : Span.t) ->
               Json.Obj
                 [
                   ("span", Json.Int s.Span.id);
                   ("name", Json.Str s.Span.name);
                   ("peer", Json.Str (span_peer s));
                   ("start", Json.Int s.Span.start_ticks);
                   ("end", Json.Int (span_end s));
                 ])
             t.tl_critical) );
      ( "breakdown",
        Json.Obj
          (List.map
             (fun (cat, ticks) -> (category_to_string cat, Json.Int ticks))
             t.tl_breakdown) );
      ( "anomalies",
        Json.List
          (List.map (fun a -> Json.Str (anomaly_to_string a)) t.tl_anomalies)
      );
    ]

type t = { trace_id : int; parent_span : int; sampled : bool }

let make ?(sampled = true) ~trace_id ~parent_span () =
  if trace_id < 1 then invalid_arg "Trace_context.make: trace_id must be >= 1";
  if parent_span < 0 then
    invalid_arg "Trace_context.make: parent_span must be >= 0";
  { trace_id; parent_span; sampled }

let child ctx ~parent_span = { ctx with parent_span }

(* ------------------------------------------------------------------ *)
(* Wire header codec.

   The on-the-wire form follows the W3C traceparent shape —
   version - trace id - parent span - flags — with fixed-width
   lowercase hex fields:

     pt1-00000000000000c2-000000000000001f-01

   The decoder is total: any string that is not byte-for-byte a valid
   header maps to [None], never an exception, so a hostile peer cannot
   crash a receiver by corrupting the field (mirrors the
   [Crypto.Wire] totality contract). *)

let version = "pt1"
let field_width = 16
let header_length = 3 + 1 + field_width + 1 + field_width + 1 + 2

let to_header ctx =
  Printf.sprintf "%s-%016x-%016x-%s" version ctx.trace_id ctx.parent_span
    (if ctx.sampled then "01" else "00")

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | _ -> None

(* Fixed-width hex field -> non-negative int, [None] on a non-digit or a
   value past [max_int] (the encoder only emits native ints, so anything
   larger is corruption, not data). *)
let parse_hex s off =
  let rec go acc i =
    if i = field_width then Some acc
    else
      match hex_digit s.[off + i] with
      | None -> None
      | Some d ->
          if acc > (max_int - d) / 16 then None else go ((acc * 16) + d) (i + 1)
  in
  go 0 0

let of_header s =
  if String.length s <> header_length then None
  else if not (String.equal (String.sub s 0 3) version) then None
  else if s.[3] <> '-' || s.[3 + 1 + field_width] <> '-'
          || s.[3 + 2 + (2 * field_width)] <> '-'
  then None
  else
    match
      ( parse_hex s 4,
        parse_hex s (3 + 2 + field_width),
        String.sub s (3 + 3 + (2 * field_width)) 2 )
    with
    | Some trace_id, Some parent_span, flags when trace_id >= 1 -> (
        match flags with
        | "01" -> Some { trace_id; parent_span; sampled = true }
        | "00" -> Some { trace_id; parent_span; sampled = false }
        | _ -> None)
    | _ -> None

let pp fmt ctx = Format.pp_print_string fmt (to_header ctx)
let equal a b = a = b

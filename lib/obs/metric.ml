type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* one per bound, plus a final overflow bucket *)
  mutable sum : float;
  mutable count : int;
  mutable min_v : float;  (* observed extrema; meaningless while count = 0 *)
  mutable max_v : float;
}

(* Powers of two: cheap to bucket into and wide enough for step counts,
   message counts and byte sizes alike. *)
let default_buckets =
  Array.init 17 (fun i -> Float.of_int (1 lsl i)) (* 1 .. 65536 *)

let counter name = { c_name = name; c_value = 0 }
let gauge name = { g_name = name; g_value = 0. }

let histogram ?(buckets = default_buckets) name =
  let ok =
    Array.length buckets > 0
    && Array.for_all Float.is_finite buckets
    &&
    let sorted = ref true in
    for i = 1 to Array.length buckets - 1 do
      if buckets.(i) <= buckets.(i - 1) then sorted := false
    done;
    !sorted
  in
  if not ok then invalid_arg "Metric.histogram: buckets must be increasing";
  {
    h_name = name;
    bounds = Array.copy buckets;
    counts = Array.make (Array.length buckets + 1) 0;
    sum = 0.;
    count = 0;
    min_v = 0.;
    max_v = 0.;
  }

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value
let set g v = g.g_value <- v
let gauge_value g = g.g_value

let bucket_index bounds v =
  (* First bucket whose bound is >= v; length bounds = overflow. *)
  let n = Array.length bounds in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h v =
  let i = bucket_index h.bounds v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  if h.count = 0 then begin
    h.min_v <- v;
    h.max_v <- v
  end
  else begin
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v
  end;
  h.count <- h.count + 1

let observe_int h v = observe h (Float.of_int v)

let reset_counter c = c.c_value <- 0
let reset_gauge g = g.g_value <- 0.

let reset_histogram h =
  Array.fill h.counts 0 (Array.length h.counts) 0;
  h.sum <- 0.;
  h.count <- 0;
  h.min_v <- 0.;
  h.max_v <- 0.

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type histogram_snapshot = {
  hs_bounds : float array;
  hs_counts : int array;
  hs_sum : float;
  hs_count : int;
  hs_min : float;  (* observed extrema; 0 while hs_count = 0 *)
  hs_max : float;
}

let snapshot_histogram h =
  {
    hs_bounds = Array.copy h.bounds;
    hs_counts = Array.copy h.counts;
    hs_sum = h.sum;
    hs_count = h.count;
    hs_min = (if h.count = 0 then 0. else h.min_v);
    hs_max = (if h.count = 0 then 0. else h.max_v);
  }

let merge_histogram_snapshots a b =
  if a.hs_bounds <> b.hs_bounds then
    invalid_arg "Metric.merge_histogram_snapshots: bucket bounds differ";
  {
    hs_bounds = Array.copy a.hs_bounds;
    hs_counts =
      Array.init (Array.length a.hs_counts) (fun i ->
          a.hs_counts.(i) + b.hs_counts.(i));
    hs_sum = a.hs_sum +. b.hs_sum;
    hs_count = a.hs_count + b.hs_count;
    hs_min =
      (if a.hs_count = 0 then b.hs_min
       else if b.hs_count = 0 then a.hs_min
       else Float.min a.hs_min b.hs_min);
    hs_max =
      (if a.hs_count = 0 then b.hs_max
       else if b.hs_count = 0 then a.hs_max
       else Float.max a.hs_max b.hs_max);
  }

let mean hs = if hs.hs_count = 0 then 0. else hs.hs_sum /. Float.of_int hs.hs_count

(* Overflow samples exceed every bound by construction, so the observed
   maximum is the honest report for the unbounded bucket.  Clamping to
   the last bound keeps percentiles monotone even against snapshots
   deserialised from logs that predate max tracking (where [hs_max] is a
   reconstruction that may undershoot). *)
let overflow_report hs =
  let n = Array.length hs.hs_bounds in
  if n = 0 then hs.hs_max else Float.max hs.hs_max hs.hs_bounds.(n - 1)

let percentile hs q =
  if q < 0. || q > 1. then invalid_arg "Metric.percentile: q outside [0,1]";
  if hs.hs_count = 0 then 0.
  else begin
    let rank = Float.of_int hs.hs_count *. q in
    let n = Array.length hs.hs_counts in
    let cum = ref 0 in
    let result = ref None in
    let i = ref 0 in
    while !result = None && !i < n do
      let c = hs.hs_counts.(!i) in
      cum := !cum + c;
      if c > 0 && Float.of_int !cum >= rank then
        result :=
          Some
            (if !i < Array.length hs.hs_bounds then hs.hs_bounds.(!i)
             else overflow_report hs);
      i := !i + 1
    done;
    (* hs_count > 0 guarantees a non-empty bucket reaches [rank]. *)
    Option.value ~default:(overflow_report hs) !result
  end

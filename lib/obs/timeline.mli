(** Cross-peer negotiation timelines reconstructed from a flat span log.

    {!build} groups spans by trace id (see {!Trace_context}) and derives,
    per negotiation: per-peer lanes on the simulated clock (a span's lane
    is its ["peer"] attribute), the critical path — the parent chain of
    the span with the latest end tick, i.e. the causally linked steps
    that determined the end-to-end latency — a latency breakdown by span
    category (self time: a span's duration minus its children's), and
    anomaly flags (retransmit storms, breaker trips, cache-invalidation
    stampedes). *)

type category = Solve | Wire | Queue | Retransmit | Tabling | Other

val category_to_string : category -> string

val categorize : Span.t -> category
(** By span name: [sld.*]/[answer]/[query] solve, [net.wire]/[net.send]
    wire, [recv.*] queue, [reactor.retry*]/[reactor.timeout*] retransmit,
    [tabling.*] tabling (distributed-table completion waves), everything
    else other. *)

type anomaly =
  | Retransmit_storm of { retries : int; timeouts : int }
      (** at least {!storm_threshold} retries + timeouts in one trace *)
  | Breaker_trip of { at : int; detail : string }
      (** a [guard.quarantine] event — some requester tripped a breaker *)
  | Cache_stampede of { at : int; bursts : int }
      (** at least {!stampede_threshold} cache-invalidation bursts on one
          tick *)
  | Restart_storm of { restarts : int }
      (** at least {!restart_storm_threshold} crash-stop restarts
          ([reactor.restart] events) inside one trace — a flapping
          counterparty *)

val anomaly_to_string : anomaly -> string
val storm_threshold : int
val stampede_threshold : int
val restart_storm_threshold : int

type t = {
  tl_trace : int;
  tl_spans : Span.t list;  (** this trace's spans, (start, id) order *)
  tl_root : Span.t option;  (** earliest span with no in-trace parent *)
  tl_lanes : (string * Span.t list) list;  (** peer -> spans, sorted *)
  tl_start : int;
  tl_end : int;
  tl_critical : Span.t list;  (** root-to-latest parent chain *)
  tl_breakdown : (category * int) list;  (** self ticks per category *)
  tl_anomalies : anomaly list;
}

val build : Span.t list -> t list
(** One timeline per distinct non-zero trace id, ascending.  Untraced
    spans (trace 0) are ignored. *)

val render : Format.formatter -> t -> unit
(** Human-readable: header, per-peer lane chart, critical path, latency
    breakdown, anomalies. *)

val to_string : t -> string
val to_json : t -> Json.t

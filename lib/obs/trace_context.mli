(** Propagated trace context: the per-negotiation identity a message
    carries across peers so every receiver's spans attach to the
    originating negotiation's trace.

    A context names a trace ([trace_id], minted once per negotiation by
    {!Tracer.mint}), the span on whose behalf the message was sent
    ([parent_span]; 0 for a root context with no parent yet), and a
    sampling bit — a receiver honours [sampled = false] by not recording
    spans for the delivery even when its own tracer is enabled.

    The wire form ({!to_header}/{!of_header}) is a fixed-width
    traceparent-style header, e.g.
    ["pt1-00000000000000c2-000000000000001f-01"].  {!of_header} is
    total: malformed input returns [None], never an exception. *)

type t = {
  trace_id : int;  (** >= 1; 0 never names a trace *)
  parent_span : int;  (** sending span id; 0 when the context is a root *)
  sampled : bool;
}

val make : ?sampled:bool -> trace_id:int -> parent_span:int -> unit -> t
(** [sampled] defaults to [true].
    @raise Invalid_argument on [trace_id < 1] or [parent_span < 0]. *)

val child : t -> parent_span:int -> t
(** Same trace and sampling, re-parented under [parent_span]. *)

val to_header : t -> string
(** Fixed-width header, always {!header_length} bytes. *)

val of_header : string -> t option
(** Total inverse of {!to_header}: [None] on anything malformed. *)

val header_length : int

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

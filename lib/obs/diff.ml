(* Bench-regression checking: compare a fresh metrics snapshot against a
   committed baseline with per-metric tolerances and produce a
   machine-readable verdict.

   Checks are two-sided: a metric regresses when it grows past
   [base * ratio + abs] and collapses when it falls below
   [base / ratio - abs] — a counter dropping to zero usually means lost
   coverage, which is as much a regression as a slowdown.  Wall-clock
   gauges (names ending in [.ms] / [.kwords] / [.ns]) get a much wider
   default ratio plus absolute slack, since sub-millisecond measurements
   are noisy across machines. *)

type tolerance = { tol_ratio : float; tol_abs : float }

type spec = {
  sp_default : tolerance;
  sp_timing : tolerance;
  sp_overrides : (string * tolerance) list;  (* exact metric name *)
}

let default_tolerance = { tol_ratio = 1.5; tol_abs = 16. }
let timing_tolerance = { tol_ratio = 8.; tol_abs = 50. }

let default_spec =
  {
    sp_default = default_tolerance;
    sp_timing = timing_tolerance;
    sp_overrides = [];
  }

let has_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.equal (String.sub s (l - ls) ls) suffix

let is_timing name =
  has_suffix ~suffix:".ms" name
  || has_suffix ~suffix:".kwords" name
  || has_suffix ~suffix:".ns" name

let tolerance_for spec name =
  match List.assoc_opt name spec.sp_overrides with
  | Some tol -> tol
  | None -> if is_timing name then spec.sp_timing else spec.sp_default

type violation = {
  v_metric : string;  (* e.g. "net.messages" or "reactor.steps_per_run.p99" *)
  v_baseline : float;
  v_fresh : float;
  v_allowed : float * float;  (* the [lo, hi] band the fresh value left *)
}

type report = {
  r_ok : bool;
  r_checked : int;  (* comparisons performed *)
  r_violations : violation list;
  r_missing : string list;  (* in baseline, absent from fresh *)
  r_extra : string list;  (* in fresh, absent from baseline (informational) *)
}

let band tol base =
  let lo = (base /. tol.tol_ratio) -. tol.tol_abs in
  let hi = (base *. tol.tol_ratio) +. tol.tol_abs in
  (* Negative bases flip the ratio bounds. *)
  (Float.min lo hi, Float.max lo hi)

let check_value spec ~metric ~base ~fresh acc =
  let tol = tolerance_for spec metric in
  let lo, hi = band tol base in
  let checked, violations = acc in
  if fresh < lo || fresh > hi then
    ( checked + 1,
      {
        v_metric = metric;
        v_baseline = base;
        v_fresh = fresh;
        v_allowed = (lo, hi);
      }
      :: violations )
  else (checked + 1, violations)

(* Join two sorted assoc lists into (name, base option, fresh option). *)
let rec join a b =
  match (a, b) with
  | [], rest -> List.map (fun (k, v) -> (k, None, Some v)) rest
  | rest, [] -> List.map (fun (k, v) -> (k, Some v, None)) rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = String.compare ka kb in
      if c = 0 then (ka, Some va, Some vb) :: join ta tb
      else if c < 0 then (ka, Some va, None) :: join ta b
      else (kb, None, Some vb) :: join a tb

let compare_snapshots ?(spec = default_spec) ~baseline ~fresh () =
  let acc = ref (0, []) in
  let missing = ref [] and extra = ref [] in
  let walk pairs value =
    List.iter
      (fun (name, b, f) ->
        match (b, f) with
        | Some b, Some f ->
            acc := check_value spec ~metric:name ~base:(value b) ~fresh:(value f) !acc
        | Some _, None -> missing := name :: !missing
        | None, Some _ -> extra := name :: !extra
        | None, None -> ())
      pairs
  in
  walk
    (join baseline.Registry.sn_counters fresh.Registry.sn_counters)
    Float.of_int;
  walk (join baseline.Registry.sn_gauges fresh.Registry.sn_gauges) Fun.id;
  (* Histograms: compare the shape that matters for tails — count, mean
     and the observed max — each as its own named comparison. *)
  List.iter
    (fun (name, b, f) ->
      match (b, f) with
      | Some b, Some f ->
          List.iter
            (fun (facet, value) ->
              acc :=
                check_value spec
                  ~metric:(name ^ "." ^ facet)
                  ~base:(value b) ~fresh:(value f) !acc)
            [
              ("count", fun hs -> Float.of_int hs.Metric.hs_count);
              ("mean", Metric.mean);
              ("max", fun hs -> hs.Metric.hs_max);
            ]
      | Some _, None -> missing := name :: !missing
      | None, Some _ -> extra := name :: !extra
      | None, None -> ())
    (join baseline.Registry.sn_histograms fresh.Registry.sn_histograms);
  let checked, violations = !acc in
  {
    r_ok = violations = [] && !missing = [];
    r_checked = checked;
    r_violations = List.rev violations;
    r_missing = List.sort String.compare !missing;
    r_extra = List.sort String.compare !extra;
  }

(* ------------------------------------------------------------------ *)
(* Verdict *)

let violation_to_json v =
  let lo, hi = v.v_allowed in
  Json.Obj
    [
      ("metric", Json.Str v.v_metric);
      ("baseline", Json.Float v.v_baseline);
      ("fresh", Json.Float v.v_fresh);
      ("allowed_lo", Json.Float lo);
      ("allowed_hi", Json.Float hi);
    ]

let report_to_json r =
  Json.Obj
    [
      ("schema", Json.Str "peertrust.benchdiff/1");
      ("verdict", Json.Str (if r.r_ok then "pass" else "fail"));
      ("checked", Json.Int r.r_checked);
      ("violations", Json.List (List.map violation_to_json r.r_violations));
      ("missing", Json.List (List.map (fun m -> Json.Str m) r.r_missing));
      ("extra", Json.List (List.map (fun m -> Json.Str m) r.r_extra));
    ]

let pp_report fmt r =
  Format.fprintf fmt "bench diff: %s (%d comparison(s), %d violation(s))@\n"
    (if r.r_ok then "PASS" else "FAIL")
    r.r_checked
    (List.length r.r_violations);
  List.iter
    (fun v ->
      let lo, hi = v.v_allowed in
      Format.fprintf fmt "  %s: baseline %g, fresh %g, allowed [%g, %g]@\n"
        v.v_metric v.v_baseline v.v_fresh lo hi)
    r.r_violations;
  List.iter
    (fun m -> Format.fprintf fmt "  missing from fresh run: %s@\n" m)
    r.r_missing;
  List.iter
    (fun m -> Format.fprintf fmt "  new metric (not in baseline): %s@\n" m)
    r.r_extra

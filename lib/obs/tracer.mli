(** Span tracer: records hierarchical spans into an in-memory sink.

    The disabled tracer ({!noop}) is the default everywhere; every
    operation on it reduces to a single boolean test, so instrumentation
    can stay inline on hot paths.  An enabled tracer maintains a stack of
    open spans — nesting falls out of the synchronous call structure —
    and keeps every started span for later export ({!Export}).

    Cross-peer causality rides on {!Trace_context}: {!mint} a context at
    a negotiation root, capture {!current_context} when a message leaves,
    and pass it back as [?ctx] when the delivery is processed — the
    receiving span then joins the sender's trace with the sender's span
    as its parent, regardless of what is on the local stack.  A context
    with [sampled = false] suppresses recording for the spans it is
    passed to.

    Time comes from the [now] callback, wired by callers to the session's
    simulated {!Peertrust_net.Clock} (this library has no dependency on
    the network layer).  Both span and trace ids are deterministic
    counters, so identically seeded runs produce identical traces. *)

type t

val noop : t
(** Disabled: records nothing, costs a boolean test per operation. *)

val create : ?now:(unit -> int) -> ?max_spans:int -> unit -> t
(** An enabled tracer.  [now] defaults to a constant 0 (ordering is still
    meaningful via ids); [max_spans] (default 1_000_000) caps recorded
    spans — once hit, further spans are silently dropped. *)

val enabled : t -> bool

val mint : t -> Trace_context.t option
(** A fresh root context (next trace id, no parent span, sampled).
    [None] on a disabled tracer. *)

val with_span :
  t ->
  ?ctx:Trace_context.t ->
  ?attrs:(string * Json.t) list ->
  string ->
  (unit -> 'a) ->
  'a
(** Run the thunk inside a fresh span — a child of the innermost open one,
    or of [ctx]'s parent span (joining [ctx]'s trace) when given.  The
    span is finished even on exceptional exit. *)

val start :
  t ->
  ?ctx:Trace_context.t ->
  ?attrs:(string * Json.t) list ->
  string ->
  Span.t option
(** Explicit variant of {!with_span} for non-lexical extents.  [None] on a
    disabled tracer, past the span cap, or under an unsampled [ctx]. *)

val finish : t -> Span.t option -> unit
(** Close the span (and any still-open spans nested inside it). *)

val record :
  t ->
  ?ctx:Trace_context.t ->
  ?attrs:(string * Json.t) list ->
  name:string ->
  start_ticks:int ->
  end_ticks:int ->
  unit ->
  Span.t option
(** Record a span whose extent is already known (e.g. an envelope's wire
    transit, reconstructed at delivery).  Never touches the open-span
    stack; lineage comes from [ctx] exactly as in {!start}. *)

val event : t -> string -> unit
(** Attach a point event to the innermost open span (no-op without one). *)

val set_attr : t -> string -> Json.t -> unit
(** Set an attribute on the innermost open span (no-op without one). *)

val current : t -> Span.t option

val current_context : t -> Trace_context.t option
(** The context a message sent right now should carry: the innermost open
    span's trace with that span as parent; [None] when the innermost span
    is untraced (or no span is open). *)

val spans : t -> Span.t list
(** Every recorded span, ordered by [(start_ticks, id)]. *)

val finished : t -> Span.t list
(** Only finished spans, same order. *)

val clear : t -> unit

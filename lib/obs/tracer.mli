(** Span tracer: records hierarchical spans into an in-memory sink.

    The disabled tracer ({!noop}) is the default everywhere; every
    operation on it reduces to a single boolean test, so instrumentation
    can stay inline on hot paths.  An enabled tracer maintains a stack of
    open spans — nesting falls out of the synchronous call structure —
    and keeps every started span for later export ({!Export}).

    Time comes from the [now] callback, wired by callers to the session's
    simulated {!Peertrust_net.Clock} (this library has no dependency on
    the network layer). *)

type t

val noop : t
(** Disabled: records nothing, costs a boolean test per operation. *)

val create : ?now:(unit -> int) -> ?max_spans:int -> unit -> t
(** An enabled tracer.  [now] defaults to a constant 0 (ordering is still
    meaningful via ids); [max_spans] (default 1_000_000) caps recorded
    spans — once hit, further spans are silently dropped. *)

val enabled : t -> bool

val with_span :
  t -> ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a fresh span (child of the innermost open one).
    The span is finished even on exceptional exit. *)

val start : t -> ?attrs:(string * Json.t) list -> string -> Span.t option
(** Explicit variant of {!with_span} for non-lexical extents.  [None] on a
    disabled tracer or past the span cap. *)

val finish : t -> Span.t option -> unit
(** Close the span (and any still-open spans nested inside it). *)

val event : t -> string -> unit
(** Attach a point event to the innermost open span (no-op without one). *)

val set_attr : t -> string -> Json.t -> unit
(** Set an attribute on the innermost open span (no-op without one). *)

val current : t -> Span.t option

val spans : t -> Span.t list
(** Every recorded span, in start order. *)

val finished : t -> Span.t list
(** Only finished spans, in start order. *)

val clear : t -> unit

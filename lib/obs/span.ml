type event = { at : int; message : string }

type t = {
  id : int;
  parent : int option;
  trace : int;  (* 0 = not part of any cross-peer trace *)
  name : string;
  start_ticks : int;
  mutable end_ticks : int option;
  mutable attrs : (string * Json.t) list;  (* reverse insertion order *)
  mutable events : event list;  (* reverse insertion order *)
}

let make ?(trace = 0) ~id ~parent ~name ~start_ticks () =
  {
    id;
    parent;
    trace;
    name;
    start_ticks;
    end_ticks = None;
    attrs = [];
    events = [];
  }

let finish span ~at =
  if span.end_ticks = None then span.end_ticks <- Some at

let set_attr span key value =
  span.attrs <- (key, value) :: List.remove_assoc key span.attrs

let add_event span ~at message = span.events <- { at; message } :: span.events
let attrs span = List.rev span.attrs
let events span = List.rev span.events

let duration span =
  match span.end_ticks with
  | Some e -> e - span.start_ticks
  | None -> 0

(* ------------------------------------------------------------------ *)
(* JSON *)

let to_json span =
  Json.Obj
    ([
       ("id", Json.Int span.id);
       ( "parent",
         match span.parent with Some p -> Json.Int p | None -> Json.Null );
     ]
    @ (if span.trace = 0 then [] else [ ("trace", Json.Int span.trace) ])
    @ [
        ("name", Json.Str span.name);
      ("start", Json.Int span.start_ticks);
      ( "end",
        match span.end_ticks with Some e -> Json.Int e | None -> Json.Null );
      ("attrs", Json.Obj (attrs span));
        ( "events",
          Json.List
            (List.map
               (fun e ->
                 Json.Obj [ ("at", Json.Int e.at); ("msg", Json.Str e.message) ])
               (events span)) );
      ])

let of_json j =
  let open Json in
  match (member "id" j, member "name" j, member "start" j) with
  | Some (Int id), Some (Str name), Some (Int start_ticks) ->
      let parent =
        match member "parent" j with Some (Int p) -> Some p | _ -> None
      in
      let trace =
        match member "trace" j with Some (Int tr) -> tr | _ -> 0
      in
      let span = make ~trace ~id ~parent ~name ~start_ticks () in
      (match member "end" j with
      | Some (Int e) -> span.end_ticks <- Some e
      | _ -> ());
      (match member "attrs" j with
      | Some (Obj fields) ->
          List.iter (fun (k, v) -> set_attr span k v) fields
      | _ -> ());
      (match member "events" j with
      | Some (List evs) ->
          List.iter
            (fun e ->
              match (member "at" e, member "msg" e) with
              | Some (Int at), Some (Str msg) -> add_event span ~at msg
              | _ -> ())
            evs
      | _ -> ());
      Some span
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Tree rendering *)

let pp_attr fmt (k, v) =
  Format.fprintf fmt "%s=%s" k
    (match v with Json.Str s -> s | other -> Json.to_string other)

let pp_one fmt span =
  (match span.end_ticks with
  | Some e ->
      Format.fprintf fmt "%s [%d..%d]" span.name span.start_ticks e
  | None -> Format.fprintf fmt "%s [%d..)" span.name span.start_ticks);
  List.iter (fun a -> Format.fprintf fmt " %a" pp_attr a) (attrs span)

(* Spans come in start order; children preserve that order under each
   parent.  A span whose parent is unknown (e.g. a truncated log) renders
   as a root. *)
let pp_tree fmt spans =
  let known = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace known s.id ()) spans;
  let children = Hashtbl.create 64 in
  let roots =
    List.filter
      (fun s ->
        match s.parent with
        | Some p when Hashtbl.mem known p ->
            Hashtbl.replace children p
              (s :: Option.value ~default:[] (Hashtbl.find_opt children p));
            false
        | Some _ | None -> true)
      spans
  in
  let rec render indent span =
    Format.fprintf fmt "%s%a@\n" (String.make (2 * indent) ' ') pp_one span;
    List.iter (render (indent + 1))
      (List.rev (Option.value ~default:[] (Hashtbl.find_opt children span.id)))
  in
  List.iter (render 0) roots

let tree_to_string spans =
  let buf = Buffer.create 512 in
  let fmt = Format.formatter_of_buffer buf in
  pp_tree fmt spans;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(** Minimal JSON values: enough for the observability exporters and their
    round-trip tests, with no external dependency.  The writer emits
    compact one-line JSON (suitable for JSONL); the reader parses what the
    writer emits plus ordinary whitespace. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite floats become [null]. *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Parse one JSON document; [Error] carries a message with an offset. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field of an object ([None] on missing field or non-object). *)

val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option

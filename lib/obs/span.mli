(** One span of a hierarchical trace: a named interval on the simulated
    clock with attributes and point events.  Spans are produced by
    {!Tracer} and identify their parent by id, so a flat JSONL log can be
    re-assembled into the negotiation > query > resolution tree. *)

type event = { at : int; message : string }

type t = {
  id : int;
  parent : int option;
  trace : int;  (** {!Trace_context.trace_id}; 0 = not part of any trace *)
  name : string;
  start_ticks : int;
  mutable end_ticks : int option;  (** [None] while the span is open *)
  mutable attrs : (string * Json.t) list;
  mutable events : event list;
}

val make :
  ?trace:int ->
  id:int ->
  parent:int option ->
  name:string ->
  start_ticks:int ->
  unit ->
  t
(** [trace] defaults to 0 (untraced). *)

val finish : t -> at:int -> unit
(** Idempotent: the first end tick wins. *)

val set_attr : t -> string -> Json.t -> unit
(** Replaces an existing value for the same key. *)

val add_event : t -> at:int -> string -> unit

val attrs : t -> (string * Json.t) list
(** In insertion order. *)

val events : t -> event list
(** In insertion order. *)

val duration : t -> int
(** End minus start ticks; 0 while open. *)

val to_json : t -> Json.t
val of_json : Json.t -> t option

val pp_tree : Format.formatter -> t list -> unit
(** Render spans (given in start order) as an indented tree.  Spans with
    an unknown parent id render as roots. *)

val tree_to_string : t list -> string

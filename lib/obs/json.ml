type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_nan f || Float.is_integer f then "null"
    (* non-finite: JSON has no representation *)
  else if Float.is_finite f then Printf.sprintf "%.12g" f
  else "null"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent; enough for our own exporter output) *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | Some _ | None -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %c, got %c" c c')
  | None -> fail st (Printf.sprintf "expected %c, got end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
            let hex = String.sub st.src st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            (* Only BMP code points below 0x80 are emitted by our writer;
               encode the rest as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end;
            go ()
        | Some c -> fail st (Printf.sprintf "bad escape \\%c" c)
        | None -> fail st "unterminated escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List (List.rev (v :: acc))
          | _ -> fail st "expected , or ] in array"
        in
        items []
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields (kv :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev (kv :: acc))
          | _ -> fail st "expected , or } in object"
        in
        fields []
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos < String.length s then Error "trailing garbage"
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | Float f -> Some (int_of_float f) | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None

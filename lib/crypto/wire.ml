type error = Malformed of string

let header = "-----BEGIN PEERTRUST CERTIFICATE-----"
let footer = "-----END PEERTRUST CERTIFICATE-----"

let hex_of_string s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let string_of_hex h =
  if String.length h mod 2 <> 0 then None
  else
    try
      Some
        (String.init
           (String.length h / 2)
           (fun i -> Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2))))
    with Failure _ | Invalid_argument _ -> None

let encode (c : Cert.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "serial: %d\n" c.Cert.serial);
  Buffer.add_string buf (Printf.sprintf "not-before: %d\n" c.Cert.not_before);
  Buffer.add_string buf (Printf.sprintf "not-after: %d\n" c.Cert.not_after);
  Buffer.add_string buf
    (Printf.sprintf "rule: %s\n" (Peertrust_dlp.Rule.to_string c.Cert.rule));
  List.iter
    (fun (issuer, signature) ->
      Buffer.add_string buf
        (Printf.sprintf "sig: %s:%s\n" (hex_of_string issuer)
           (Bignum.to_hex signature)))
    c.Cert.signatures;
  Buffer.add_string buf footer;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let parse_field ~name line =
  let prefix = name ^ ": " in
  let pl = String.length prefix in
  if String.length line >= pl && String.sub line 0 pl = prefix then
    Some (String.sub line pl (String.length line - pl))
  else None

let hex_to_bignum h =
  (* Bignum.to_hex strips a leading zero nibble; re-pad if needed. *)
  let h = if String.length h mod 2 = 1 then "0" ^ h else h in
  match string_of_hex h with
  | Some bytes_str -> Some (Bignum.of_bytes_be (Bytes.of_string bytes_str))
  | None -> None

(* Lines travel as [(lineno, content)] pairs so every diagnostic can
   name the offending line of the source text. *)
let err_at lineno msg =
  Error (Malformed (Printf.sprintf "line %d: %s" lineno msg))

let decode_block ~start lines =
  let int_field name lines =
    match lines with
    | (n, line) :: rest -> (
        match parse_field ~name line with
        | Some v -> (
            match int_of_string_opt v with
            | Some i -> Ok (i, rest)
            | None -> err_at n (name ^ ": not an integer"))
        | None -> err_at n ("expected " ^ name))
    | [] -> err_at start ("missing " ^ name)
  in
  match int_field "serial" lines with
  | Error e -> Error e
  | Ok (serial, lines) -> (
      match int_field "not-before" lines with
      | Error e -> Error e
      | Ok (not_before, lines) -> (
          match int_field "not-after" lines with
          | Error e -> Error e
          | Ok (not_after, lines) -> (
              match lines with
              | (n, rule_line) :: rest -> (
                  match parse_field ~name:"rule" rule_line with
                  | None -> err_at n "expected rule"
                  | Some rule_src -> (
                      match Peertrust_dlp.Parser.parse_rule rule_src with
                      | exception Peertrust_dlp.Parser.Error (m, _, _) ->
                          err_at n ("bad rule: " ^ m)
                      | rule ->
                          let rec sigs acc = function
                            | [] -> Ok (List.rev acc)
                            | (n, line) :: rest -> (
                                match parse_field ~name:"sig" line with
                                | None -> err_at n "expected sig line"
                                | Some v -> (
                                    match String.index_opt v ':' with
                                    | None -> err_at n "sig: missing ':'"
                                    | Some i -> (
                                        let name_hex = String.sub v 0 i in
                                        let sig_hex =
                                          String.sub v (i + 1)
                                            (String.length v - i - 1)
                                        in
                                        match
                                          (string_of_hex name_hex,
                                           hex_to_bignum sig_hex)
                                        with
                                        | Some issuer, Some signature ->
                                            sigs ((issuer, signature) :: acc) rest
                                        | _, _ -> err_at n "sig: bad hex")))
                          in
                          (match sigs [] rest with
                          | Error e -> Error e
                          | Ok signatures ->
                              Ok
                                {
                                  Cert.serial;
                                  rule;
                                  not_before;
                                  not_after;
                                  signatures;
                                })))
              | [] -> err_at start "missing rule")))

let split_blocks src =
  let lines =
    String.split_on_char '\n' src
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let rec go acc current start in_block = function
    | [] ->
        if in_block then Error (Malformed "unexpected end of input: missing END")
        else Ok (List.rev acc)
    | (n, line) :: rest ->
        if String.equal line header then
          if in_block then err_at n "nested BEGIN"
          else go acc [] n true rest
        else if String.equal line footer then
          if in_block then go ((start, List.rev current) :: acc) [] 0 false rest
          else err_at n "END without BEGIN"
        else if in_block then go acc ((n, line) :: current) start true rest
        else err_at n ("garbage outside certificate: " ^ line)
  in
  go [] [] 0 false lines

let decode_many src =
  match split_blocks src with
  | Error e -> Error e
  | Ok blocks ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (start, block) :: rest -> (
            match decode_block ~start block with
            | Ok c -> go (c :: acc) rest
            | Error e -> Error e)
      in
      go [] blocks

let decode src =
  match decode_many src with
  | Ok [ c ] -> Ok c
  | Ok _ -> Error (Malformed "expected exactly one certificate")
  | Error e -> Error e

let encode_many certs = String.concat "" (List.map encode certs)

let pp_error fmt (Malformed msg) =
  Format.fprintf fmt "malformed certificate: %s" msg

(** Portable text encoding for certificates — the role X.509/PEM files
    played for the paper's prototype: credentials must survive being
    stored, mailed around and re-imported by other peers.

    Format (line-oriented, order fixed):

    {v
      -----BEGIN PEERTRUST CERTIFICATE-----
      serial: 17
      not-before: 0
      not-after: 4611686018427387903
      rule: student("Alice") @ "UIUC Registrar" signedBy ["UIUC Registrar"].
      sig: <issuer-name-hex>:<signature-hex>
      ...one sig line per signer...
      -----END PEERTRUST CERTIFICATE-----
    v}

    Issuer names are hex-encoded so arbitrary names (spaces, colons)
    round-trip. *)

type error = Malformed of string
(** Diagnostics name the offending line of the source text
    (["line 4: sig: bad hex"]) so a corrupt wallet file points at its
    damage. *)

val encode : Cert.t -> string

val decode : string -> (Cert.t, error) result
(** Parses one certificate.  Decoding performs no signature check — use
    {!Cert.verify} after import, exactly as the engine does for
    certificates received from the network. *)

val encode_many : Cert.t list -> string
val decode_many : string -> (Cert.t list, error) result
(** Concatenated certificates (a credential wallet file). *)

val pp_error : Format.formatter -> error -> unit

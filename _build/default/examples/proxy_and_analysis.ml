(* Two of the paper's forward-looking features together (§4.2, §6):

   1. Negotiation by proxy — a weak device forwards incoming queries to a
      trusted home machine that holds the principal's policies and
      credentials and negotiates on its behalf.
   2. Static analysis — before deploying policies, check which guarded
      resources can ever unlock and whether any release policies deadlock.

     dune exec examples/proxy_and_analysis.exe
*)

open Peertrust

let () =
  (* --- proxy ------------------------------------------------------- *)
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|paper(Id) $ subscriber(Requester) @ "Publisher" <-{true} inCatalog(Id).
           inCatalog(42).
           subscriber(X) @ "Publisher" <- subscriber(X) @ "Publisher" @ X.|}
       "journal");
  ignore
    (Session.add_peer session
       ~program:{|subscriber("phone") @ "Publisher" $ true signedBy ["Publisher"].|}
       "laptop");
  Engine.attach_all session;
  ignore (Proxy.attach_device session ~device:"phone" ~proxy:"laptop");

  let r =
    Negotiation.request_str session ~requester:"phone" ~target:"journal"
      "paper(Id)"
  in
  Format.printf "phone requests a paper: %a@." Negotiation.pp_report r;
  Format.printf "queries forwarded by the phone to the laptop: %d@.@."
    (Proxy.forwarded_count session ~device:"phone");
  List.iter
    (fun e ->
      Format.printf "  [%d] %-8s -> %-8s %s@." e.Peertrust_net.Network.time
        e.Peertrust_net.Network.from e.Peertrust_net.Network.target
        e.Peertrust_net.Network.summary)
    r.Negotiation.transcript;

  (* --- static analysis --------------------------------------------- *)
  Format.printf "@.Static analysis of a deadlocked policy pair:@.@.";
  let world =
    Analysis.world_of_programs
      [
        ( "seller",
          {|invoice("s") $ taxId(Requester) @ "Gov" <-{true} invoice("s").
            invoice("s") @ "Gov" signedBy ["Gov"].
            taxId(X) @ "Gov" <- taxId(X) @ "Gov" @ X.|} );
        ( "buyer",
          {|taxId("b") $ invoice(Requester) @ "Gov" <-{true} taxId("b").
            taxId("b") @ "Gov" signedBy ["Gov"].
            invoice(X) @ "Gov" <- invoice(X) @ "Gov" @ X.|} );
      ]
  in
  Format.printf "%a" Analysis.pp_report (Analysis.analyze world);
  Format.printf "may invoice(\"s\") at seller ever be granted? %b@."
    (Analysis.may_succeed world ~owner:"seller"
       ~goal:(Peertrust_dlp.Parser.parse_literal {|invoice("s")|}))

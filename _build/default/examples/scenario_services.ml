(* Scenario 2 of the paper (§4.2): Bob, from IBM's HR department, signs up
   for learning services at E-Learn.

   Shows:
   - free-course enrolment for employees of ELENA member companies (the
     eligibility rule itself stays private — policy protection);
   - pay-per-use enrolment against the company VISA card, which Bob only
     discloses to authorized VISA merchants that are ELENA members
     (policy27), with the purchase-approval external call at VISA;
   - the failure modes: a course over Bob's authorization limit, a VISA
     credit-limit refusal, and an outsider who can't see the card at all.

     dune exec examples/scenario_services.exe
*)

open Peertrust

let show label (r : Negotiation.report) =
  Format.printf "== %s ==@.%a@.@." label Negotiation.pp_report r

let () =
  let s = Scenario.scenario2 () in
  let session = s.Scenario.s2_session in
  let enroll course =
    Printf.sprintf {|enroll(%s, "Bob", "IBM", Email, Price)|} course
  in

  show "Free course (cs101)"
    (Negotiation.request_str session ~requester:"Bob" ~target:"E-Learn"
       {|enroll(cs101, "Bob", "IBM", Email, 0)|});

  show "Pay-per-use course (cs411, $1000)"
    (Negotiation.request_str session ~requester:"Bob" ~target:"E-Learn"
       (enroll "cs411"));

  show "Course over Bob's $2000 authorization (cs500, $3000) — denied"
    (Negotiation.request_str session ~requester:"Bob" ~target:"E-Learn"
       (enroll "cs500"));

  show "Asking for the private eligibility rule directly — denied"
    (Negotiation.request_str session ~requester:"Bob" ~target:"E-Learn"
       {|freebieEligible(cs101, "Bob", "IBM", Email)|});

  (* A tight-fisted VISA: the card is fine but the approval call fails. *)
  let s' = Scenario.scenario2 ~visa_limit:500 () in
  show "Same purchase with a $500 credit limit — denied at VISA"
    (Negotiation.request_str s'.Scenario.s2_session ~requester:"Bob"
       ~target:"E-Learn" (enroll "cs411"));

  (* An outsider cannot learn the card exists. *)
  ignore (Session.add_peer session "Eve");
  Engine.attach_all session;
  show "Eve asks Bob for the VISA card — denied"
    (Negotiation.request_str session ~requester:"Eve" ~target:"Bob"
       {|visaCard("IBM") @ "VISA"|})

(* Negotiating trust on the grid (the paper's pointer to Basney et al.,
   SemPGRID'04): a researcher's job submission to a compute cluster.

   - The cluster admits jobs from members of a virtual organisation (VO);
     VO membership certification is delegated by the VO to its
     registration service.
   - The researcher releases her VO membership only to resources that
     prove they are part of the grid (signed by the Grid CA).
   - RDF metadata describes the cluster's queues; policies range over the
     derived facts (an Edutella-style resource description).

     dune exec examples/scenario_grid.exe
*)

open Peertrust

let () =
  let g = Scenario.grid () in
  let session = g.Scenario.g_session in

  let submit q cores =
    Negotiation.request_str session ~requester:g.Scenario.g_user
      ~target:g.Scenario.g_cluster
      (Printf.sprintf {|submit(%s, "%s", %d)|} q g.Scenario.g_user cores)
  in

  let ok = submit "batch" 256 in
  Format.printf "submit(batch, 256 cores): %a@.@." Negotiation.pp_report ok;
  List.iter
    (fun e ->
      Format.printf "  [%d] %-10s -> %-10s %s@." e.Peertrust_net.Network.time
        e.Peertrust_net.Network.from e.Peertrust_net.Network.target
        e.Peertrust_net.Network.summary)
    ok.Negotiation.transcript;

  let too_big = submit "debug" 64 in
  Format.printf "@.submit(debug, 64 cores): %a@." Negotiation.pp_report too_big;

  (* An impostor cluster without the GridCA credential never sees Ada's VO
     membership. *)
  ignore
    (Session.add_peer session
       ~program:
         {|submit(Queue, Requester, Cores) $ true <-
             voMember(Requester) @ "PhysicsVO" @ Requester.|}
       "rogue");
  Engine.attach_all session;
  let rogue =
    Negotiation.request_str session ~requester:"ada" ~target:"rogue"
      {|submit(q, "ada", 1)|}
  in
  Format.printf "@.rogue cluster: %a@." Negotiation.pp_report rogue

(* Scenario 1 of the paper (§4.1): Alice negotiates a discounted Spanish
   course with E-Learn Associates.

   The dance, exactly as the paper narrates it:
   - Alice asks for the discounted enrolment;
   - E-Learn's policy needs proof that Alice is a UIUC student, and asks
     her for it (UIUC itself answers only its registrar);
   - Alice's release policy for her student credential demands that the
     requester prove Better-Business-Bureau membership, so she
     counter-queries E-Learn;
   - E-Learn presents its BBB certificate; Alice presents her
     registrar-issued student ID together with UIUC's delegation rule;
   - E-Learn completes the proof (via ELENA's signed preferred-customer
     rule) and grants the discount.

     dune exec examples/scenario_elearn.exe
*)

open Peertrust
module Dlp = Peertrust_dlp

let show_report label (r : Negotiation.report) =
  Format.printf "== %s ==@.%a@." label Negotiation.pp_report r;
  List.iter
    (fun e ->
      Format.printf "  [%d] %-8s -> %-8s %s@." e.Peertrust_net.Network.time
        e.Peertrust_net.Network.from e.Peertrust_net.Network.target
        e.Peertrust_net.Network.summary)
    r.Negotiation.transcript;
  Format.printf "@."

let () =
  let s = Scenario.scenario1 () in
  let session = s.Scenario.s1_session in

  (* The successful negotiation. *)
  let ok =
    Negotiation.request_str session ~requester:s.Scenario.s1_alice
      ~target:s.Scenario.s1_elearn {|discountEnroll(spanish101, "Alice")|}
  in
  show_report "Alice requests the discounted Spanish course" ok;

  (* What E-Learn cannot do: query UIUC directly about Alice. *)
  let refused =
    Negotiation.request_str session ~requester:s.Scenario.s1_elearn
      ~target:s.Scenario.s1_uiuc {|student("Alice")|}
  in
  show_report "E-Learn tries to ask UIUC directly (refused)" refused;

  (* Alice can produce a certified proof of her student status that any
     third party can check without re-running the negotiation. *)
  let alice = Session.peer session s.Scenario.s1_alice in
  let goal = Dlp.Parser.parse_literal {|student("Alice") @ "UIUC"|} in
  match Engine.evaluate session alice [ goal ] with
  | { Dlp.Sld.proofs = [ trace ]; _ } :: _ -> (
      let proof = Proof.create session ~prover:"Alice" ~goal trace in
      Format.printf "Certified proof of student status:@.%a@." Dlp.Trace.pp
        proof.Proof.trace;
      match Proof.verify session proof with
      | Ok () -> Format.printf "Proof package verifies: OK@."
      | Error e -> Format.printf "Proof package rejected: %a@." Proof.pp_error e)
  | _ -> Format.printf "no local proof@."

examples/strategies.ml: Format List Negotiation Peertrust Scenario Strategy

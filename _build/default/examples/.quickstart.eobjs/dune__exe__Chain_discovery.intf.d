examples/chain_discovery.mli:

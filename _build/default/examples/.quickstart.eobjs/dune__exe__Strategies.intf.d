examples/strategies.mli:

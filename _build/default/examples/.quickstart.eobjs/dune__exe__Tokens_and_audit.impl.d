examples/tokens_and_audit.ml: Audit Engine Format Negotiation Option Peertrust Peertrust_crypto Peertrust_dlp Peertrust_net Session Token

examples/proxy_and_analysis.ml: Analysis Engine Format List Negotiation Peertrust Peertrust_dlp Peertrust_net Proxy Session

examples/scenario_elearn.mli:

examples/quickstart.ml: Engine Format List Negotiation Peertrust Peertrust_net Session

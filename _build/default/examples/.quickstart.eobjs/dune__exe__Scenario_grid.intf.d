examples/scenario_grid.mli:

examples/scenario_elearn.ml: Engine Format List Negotiation Peertrust Peertrust_dlp Peertrust_net Proof Scenario Session

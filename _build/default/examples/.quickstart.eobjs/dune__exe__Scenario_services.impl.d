examples/scenario_services.ml: Engine Format Negotiation Peertrust Printf Scenario Session

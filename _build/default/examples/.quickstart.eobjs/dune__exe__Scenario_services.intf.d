examples/scenario_services.mli:

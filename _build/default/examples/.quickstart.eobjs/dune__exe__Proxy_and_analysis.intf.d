examples/proxy_and_analysis.mli:

examples/tokens_and_audit.mli:

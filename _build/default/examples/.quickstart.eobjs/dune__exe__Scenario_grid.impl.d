examples/scenario_grid.ml: Engine Format List Negotiation Peertrust Peertrust_net Printf Scenario Session

examples/chain_discovery.ml: Chain Engine Format List Negotiation Peertrust Peertrust_crypto Peertrust_dlp Peertrust_net Session

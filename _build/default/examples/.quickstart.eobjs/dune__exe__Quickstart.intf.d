examples/quickstart.mli:

examples/search_and_enroll.ml: Engine Format Int List Negotiation Peertrust Peertrust_dlp Peertrust_net Peertrust_rdf Printf Qel Session String

examples/search_and_enroll.mli:

(* Negotiation strategies compared (Yu et al. [21], §5 of the paper).

   Runs the same bilateral policy-chain workload under the three strategy
   families and prints the cost profile of each: the relevant
   (parsimonious) strategy discloses the minimum, the eager strategy
   trades disclosures for round trips, and the push variant saves the
   counter-query round trips when the requester can anticipate the
   target's needs.

     dune exec examples/strategies.exe
*)

open Peertrust

let run ~depth ~extra_creds strategy =
  let w = Scenario.policy_chain ~depth ~extra_creds () in
  Strategy.negotiate w.Scenario.cw_session ~strategy
    ~requester:w.Scenario.cw_requester ~target:w.Scenario.cw_owner
    w.Scenario.cw_goal

let () =
  Format.printf
    "Policy chain depth 4, with 3 irrelevant credentials per peer@.@.";
  Format.printf "%-14s %9s %9s %12s %8s@." "strategy" "messages" "bytes"
    "disclosures" "success";
  List.iter
    (fun strategy ->
      let r = run ~depth:4 ~extra_creds:3 strategy in
      Format.printf "%-14s %9d %9d %12d %8b@."
        (Strategy.to_string strategy)
        r.Negotiation.messages r.Negotiation.bytes r.Negotiation.disclosures
        (Negotiation.succeeded r))
    Strategy.all;

  Format.printf "@.Scaling in chain depth (relevant strategy):@.@.";
  Format.printf "%-6s %9s %12s %8s@." "depth" "messages" "disclosures" "ticks";
  List.iter
    (fun depth ->
      let r = run ~depth ~extra_creds:0 Strategy.Relevant in
      Format.printf "%-6d %9d %12d %8d@." depth r.Negotiation.messages
        r.Negotiation.disclosures r.Negotiation.elapsed)
    [ 1; 2; 4; 8; 12; 16 ]

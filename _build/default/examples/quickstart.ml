(* Quickstart: a minimal two-peer trust negotiation.

   A library releases its catalogue only to readers who prove they hold a
   city-issued library card; the reader releases the card to anyone
   (public release policy).  Run with:

     dune exec examples/quickstart.exe
*)

open Peertrust

let library_program =
  {|
    % The catalogue is released to requesters who present a City library
    % card; the card check is forwarded to the requester (the @ X idiom).
    catalogue(Doc) $ card(Requester) @ "City" <-{true} holding(Doc).
    card(X) @ "City" <- card(X) @ "City" @ X.

    holding("moby-dick").
    holding("ocaml-manual").
  |}

let reader_program =
  {|
    % The reader's library card, certified by the City, public release.
    card("reader") @ "City" $ true signedBy ["City"].
  |}

let () =
  (* 1. Create a world: network + keystore + configuration. *)
  let session = Session.create () in

  (* 2. Add peers with their policy programs; signed rules automatically
        get certificates from the simulated PKI. *)
  let _library = Session.add_peer session ~program:library_program "library" in
  let _reader = Session.add_peer session ~program:reader_program "reader" in
  Engine.attach_all session;

  (* 3. Negotiate: the reader asks for the catalogue. *)
  let report =
    Negotiation.request_str session ~requester:"reader" ~target:"library"
      "catalogue(Doc)"
  in
  Format.printf "Outcome: %a@.@." Negotiation.pp_report report;

  (* 4. Inspect the message exchange. *)
  Format.printf "Transcript:@.";
  List.iter
    (fun e ->
      Format.printf "  [%d] %s -> %s: %s@." e.Peertrust_net.Network.time
        e.Peertrust_net.Network.from e.Peertrust_net.Network.target
        e.Peertrust_net.Network.summary)
    report.Negotiation.transcript;

  (* 5. A stranger without the card is refused. *)
  ignore (Session.add_peer session "stranger");
  Engine.attach_all session;
  let refused =
    Negotiation.request_str session ~requester:"stranger" ~target:"library"
      "catalogue(Doc)"
  in
  Format.printf "@.Stranger: %a@." Negotiation.pp_report refused

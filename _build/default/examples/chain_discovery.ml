(* Distributed credential chain discovery — the paper's accreditation
   example (§2): to get the student discount, Bob must show that his
   university is accredited by ABET, but the supporting delegations are
   scattered across peers:

     ABET  delegates accreditation listing to  the regional board,
     the regional board                    to  the state board,
     the state board          certifies        Bob's university.

   Bob's peer discovers and collects the whole certificate chain by
   querying ABET and letting each authority follow its delegation.

     dune exec examples/chain_discovery.exe
*)

open Peertrust
module Dlp = Peertrust_dlp

let () =
  (* A linear delegation world of configurable depth. *)
  let depth = 4 in
  let session, root, last =
    Chain.linear_world ~depth ~pred:"accredited" ~subject:"tech_university" ()
  in
  ignore (Session.add_peer session "bob");
  Engine.attach_all session;

  Format.printf "Delegation chain: %s -> ... -> %s (%d hops)@.@." root last
    depth;

  let result =
    Chain.discover session ~requester:"bob" ~root
      (Dlp.Parser.parse_literal {|accredited("tech_university")|})
  in
  Format.printf "Discovered: %b@." result.Chain.found;
  Format.printf "Certificates collected: %d@." (List.length result.Chain.chain);
  List.iter
    (fun (c : Peertrust_crypto.Cert.t) ->
      Format.printf "  #%d %a@." c.Peertrust_crypto.Cert.serial Dlp.Rule.pp
        c.Peertrust_crypto.Cert.rule)
    result.Chain.chain;
  Format.printf "Cost: %d message(s), %d tick(s)@.@."
    result.Chain.report.Negotiation.messages
    result.Chain.report.Negotiation.elapsed;

  (* Severing a link breaks discovery. *)
  Peertrust_net.Network.set_down session.Session.network "auth2" true;
  let broken =
    Chain.discover session ~requester:"bob" ~root
      (Dlp.Parser.parse_literal {|accredited("another_university")|})
  in
  Format.printf "With auth2 down, a fresh discovery finds: %b@."
    broken.Chain.found

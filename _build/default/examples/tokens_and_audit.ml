(* The rest of the paper's §3 access-granting paragraph: after a
   successful negotiation the service can hand out a nontransferable,
   expiring token so repeat access skips the negotiation, and every
   decision lands in an audit trail.

     dune exec examples/tokens_and_audit.exe
*)

open Peertrust
module Dlp = Peertrust_dlp
module Net = Peertrust_net

let () =
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|course("spanish1", Party) $ Requester = Party <-{true}
             offered("spanish1"), student(Party) @ "University" @ Party.
           offered("spanish1").|}
       "elearn");
  ignore
    (Session.add_peer session
       ~program:{|student("alice") @ "University" $ true signedBy ["University"].|}
       "alice");
  Engine.attach_all session;
  let audit = Audit.create () in
  Audit.attach audit session;

  (* First access: full negotiation, then a 100-tick token. *)
  let goal = Dlp.Parser.parse_literal {|course("spanish1", "alice")|} in
  let report, token =
    Token.negotiate_with_token session ~requester:"alice" ~target:"elearn"
      ~ttl:100 goal
  in
  Format.printf "First access: %a@.@." Negotiation.pp_report report;
  let token = Option.get token in
  Format.printf "Token issued: serial #%d, valid until tick %d@.@."
    token.Peertrust_crypto.Cert.serial token.Peertrust_crypto.Cert.not_after;

  (* Repeat accesses redeem the token: zero messages. *)
  let stats = Net.Network.stats session.Session.network in
  let before = Net.Stats.messages stats in
  for i = 1 to 3 do
    match Token.redeem session ~issuer:"elearn" ~bearer:"alice" ~goal token with
    | Ok () -> Format.printf "Access %d: token accepted@." i
    | Error e -> Format.printf "Access %d: %a@." i Token.pp_error e
  done;
  Format.printf "Messages spent on the three repeats: %d@.@."
    (Net.Stats.messages stats - before);

  (* The token is not transferable and dies with revocation. *)
  (match Token.redeem session ~issuer:"elearn" ~bearer:"mallory" ~goal token with
  | Error e -> Format.printf "Mallory presents it: %a@." Token.pp_error e
  | Ok () -> Format.printf "Mallory presents it: accepted?!@.");
  Token.revoke session token;
  (match Token.redeem session ~issuer:"elearn" ~bearer:"alice" ~goal token with
  | Error e -> Format.printf "After revocation: %a@.@." Token.pp_error e
  | Ok () -> Format.printf "After revocation: accepted?!@.@.");

  (* The audit trail shows every decision each peer made. *)
  Format.printf "Audit trail:@.%a@." Audit.pp audit

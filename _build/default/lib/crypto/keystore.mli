(** The simulated PKI: key pairs for peers and authorities, plus a
    certificate-revocation set.

    One keystore value models the world's key infrastructure in a
    simulation run.  Keys are generated deterministically from the store's
    seed, on demand, so scenarios are reproducible. *)

type t

val create : ?bits:int -> seed:int64 -> unit -> t
(** [bits] is the RSA modulus size used for generated keys. *)

val keypair : t -> string -> Rsa.keypair
(** The key pair of the named principal, generated on first use. *)

val public : t -> string -> Rsa.public
(** Public key of the named principal (generates the pair if needed). *)

val known : t -> string -> bool
(** Has a key already been generated for this principal? *)

val revoke : t -> serial:int -> unit
(** Add a certificate serial number to the revocation set. *)

val is_revoked : t -> serial:int -> bool

val fresh_serial : t -> int
(** Monotonically increasing certificate serial numbers. *)

val principals : t -> string list
(** Principals with generated keys, in generation order. *)

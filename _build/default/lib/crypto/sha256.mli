(** SHA-256 (FIPS 180-4), pure OCaml.

    Used as the message digest for signed rules and certificates. *)

val digest : string -> string
(** 32-byte raw digest. *)

val digest_bytes : bytes -> string
val hex : string -> string
(** [hex msg] is the lowercase hex digest of [msg]. *)

(** Certificates: signed PeerTrust rules.

    The envelope around a rule that travels between peers.  It binds the
    rule's canonical serialisation ({!Peertrust_dlp.Rule.canonical}) to one
    signature per signer listed in the rule's [signedBy] annotation.
    Mirrors the paper's contract: "when a peer receives a signed rule from
    another peer, the signature is verified before the rule is passed to
    the DLP evaluation engine". *)

type t = {
  serial : int;
  rule : Peertrust_dlp.Rule.t;  (** the payload; [rule.signer] is non-empty *)
  not_before : int;  (** simulated-clock validity window start *)
  not_after : int;  (** validity window end (inclusive) *)
  signatures : (string * Bignum.t) list;  (** issuer name -> signature *)
}

type error =
  | Unsigned_rule  (** the rule carries no [signedBy] annotation *)
  | Missing_signature of string  (** a listed signer provided no signature *)
  | Bad_signature of string
  | Expired of { now : int }
  | Revoked of int

val issue :
  Keystore.t ->
  ?not_before:int ->
  ?not_after:int ->
  Peertrust_dlp.Rule.t ->
  (t, error) result
(** Sign [rule] with the key of each principal in [rule.signer].  The
    default validity window is [(0, max_int)].  Returns [Error
    Unsigned_rule] when the rule lists no signers. *)

val verify : Keystore.t -> ?now:int -> t -> (unit, error) result
(** Check every signature, the validity window, and the revocation set. *)

val payload : t -> string
(** The signed byte string (canonical rule plus validity and serial). *)

val pp_error : Format.formatter -> error -> unit

type public = { n : Bignum.t; e : Bignum.t }
type keypair = { public : public; d : Bignum.t }

let e_fixed = Bignum.of_int 65537

let generate ?(bits = 384) prng =
  if bits < 288 then invalid_arg "Rsa.generate: need >= 288 bits";
  let half = bits / 2 in
  let rec go () =
    let p = Bignum.generate_prime prng ~bits:half in
    let q = Bignum.generate_prime prng ~bits:(bits - half) in
    if Bignum.equal p q then go ()
    else begin
      let n = Bignum.mul p q in
      let p1 = Bignum.sub p Bignum.one and q1 = Bignum.sub q Bignum.one in
      let phi = Bignum.mul p1 q1 in
      match Bignum.modinv e_fixed phi with
      | None -> go ()
      | Some d -> { public = { n; e = e_fixed }; d }
    end
  in
  go ()

let modulus_bytes pub = (Bignum.bits pub.n + 7) / 8

(* 0x01 || 0xFF.. || 0x00 || digest, one byte shorter than the modulus so
   the padded value is below n. *)
let pad pub msg =
  let size = modulus_bytes pub - 1 in
  let digest = Sha256.digest msg in
  let dlen = String.length digest in
  if size < dlen + 3 then
    invalid_arg "Rsa: modulus too small for padded digest";
  let b = Bytes.make size '\xFF' in
  Bytes.set b 0 '\x01';
  Bytes.set b (size - dlen - 1) '\x00';
  Bytes.blit_string digest 0 b (size - dlen) dlen;
  Bignum.of_bytes_be b

let sign kp msg = Bignum.modpow (pad kp.public msg) kp.d kp.public.n

let verify pub msg signature =
  if Bignum.compare signature pub.n >= 0 then false
  else
    let recovered = Bignum.modpow signature pub.e pub.n in
    Bignum.equal recovered (pad pub msg)

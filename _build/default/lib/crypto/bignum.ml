(* Little-endian limbs in [0, 2^26); no high zero limbs; [||] is zero. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int i =
  if i < 0 then invalid_arg "Bignum.of_int: negative"
  else if i = 0 then zero
  else begin
    let rec limbs acc i = if i = 0 then List.rev acc else limbs ((i land limb_mask) :: acc) (i lsr limb_bits) in
    Array.of_list (limbs [] i)
  end

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0
let is_zero a = Array.length a = 0
let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let bits a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec msb k = if top lsr k = 0 then k else msb (k + 1) in
    ((n - 1) * limb_bits) + msb 0
  end

let to_int_opt a =
  if bits a > 62 then None
  else begin
    let rec go i acc = if i < 0 then acc else go (i - 1) ((acc lsl limb_bits) lor a.(i)) in
    Some (go (Array.length a - 1) 0)
  end

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let t = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      (* Propagate the final carry (it can exceed one limb). *)
      let k = ref (i + lb) in
      while !carry > 0 do
        let t = r.(!k) + !carry in
        r.(!k) <- t land limb_mask;
        carry := t lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let shift_left (a : t) k =
  if k < 0 then invalid_arg "Bignum.shift_left"
  else if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land limb_mask);
      r.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right (a : t) k =
  if k < 0 then invalid_arg "Bignum.shift_right"
  else if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift > 0 && i + limb_shift + 1 < la then
            (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land limb_mask
          else 0
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Division by a single limb. *)
let divmod_small (a : t) d =
  if d = 0 then raise Division_by_zero;
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

(* Knuth TAOCP vol. 2, algorithm 4.3.1 D. *)
let divmod_knuth (u0 : t) (v0 : t) =
  let n = Array.length v0 in
  (* Normalise so the top limb of v has its high bit set. *)
  let s =
    let rec go k = if v0.(n - 1) lsl k >= base / 2 then k else go (k + 1) in
    go 0
  in
  let v = shift_left v0 s in
  let u_shifted = shift_left u0 s in
  let m = Array.length u_shifted - n in
  (* Working copy of u with one extra high limb. *)
  let u = Array.make (Array.length u_shifted + 1) 0 in
  Array.blit u_shifted 0 u 0 (Array.length u_shifted);
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    let top = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
    let qhat = ref (top / v.(n - 1)) in
    let rhat = ref (top mod v.(n - 1)) in
    let continue_correction = ref true in
    while !continue_correction do
      if
        !qhat >= base
        || (n >= 2 && !qhat * v.(n - 2) > (!rhat lsl limb_bits) lor u.(j + n - 2))
      then begin
        decr qhat;
        rhat := !rhat + v.(n - 1);
        if !rhat >= base then continue_correction := false
      end
      else continue_correction := false
    done;
    (* Multiply-subtract qhat * v from u[j .. j+n]. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = u.(i + j) - (p land limb_mask) - !borrow in
      if d < 0 then begin
        u.(i + j) <- d + base;
        borrow := 1
      end
      else begin
        u.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = u.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add v back. *)
      u.(j + n) <- d + base;
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to n - 1 do
        let t = u.(i + j) + v.(i) + !carry2 in
        u.(i + j) <- t land limb_mask;
        carry2 := t lsr limb_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry2) land limb_mask
    end
    else u.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub u 0 n) in
  (normalize q, shift_right r s)

let divmod a b =
  if is_zero b then raise Division_by_zero
  else if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_small a b.(0) in
    (q, of_int r)
  end
  else divmod_knuth a b

let rem a b = snd (divmod a b)

let modpow b e m =
  if is_zero m then raise Division_by_zero
  else if equal m one then zero
  else begin
    let result = ref one in
    let b = ref (rem b m) in
    let nbits = bits e in
    for i = 0 to nbits - 1 do
      let limb = e.(i / limb_bits) in
      if (limb lsr (i mod limb_bits)) land 1 = 1 then
        result := rem (mul !result !b) m;
      if i < nbits - 1 then b := rem (mul !b !b) m
    done;
    !result
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Extended Euclid with a small signed layer (sign * magnitude). *)
let modinv a m =
  if is_zero m then raise Division_by_zero;
  let sadd (sa, va) (sb, vb) =
    if sa = sb then (sa, add va vb)
    else if compare va vb >= 0 then (sa, sub va vb)
    else (sb, sub vb va)
  in
  let smul_nat q (s, v) = (s, mul q v) in
  let sneg (s, v) = ((if is_zero v then 1 else -s), v) in
  let rec go old_r r old_s s =
    if is_zero r then (old_r, old_s)
    else begin
      let q, r' = divmod old_r r in
      let s' = sadd old_s (sneg (smul_nat q s)) in
      go r r' s s'
    end
  in
  let g, (sign, v) = go (rem a m) m (1, one) (1, zero) in
  if not (equal g one) then None
  else begin
    let v = rem v m in
    if sign >= 0 || is_zero v then Some v else Some (sub m v)
  end

let random_bits prng n =
  if n <= 0 then invalid_arg "Bignum.random_bits";
  let nlimbs = (n + limb_bits - 1) / limb_bits in
  let r = Array.make nlimbs 0 in
  for i = 0 to nlimbs - 1 do
    r.(i) <- Int64.to_int (Int64.logand (Prng.next_int64 prng) (Int64.of_int limb_mask))
  done;
  (* Mask above bit n-1, then force the top bit. *)
  let top = n - 1 in
  let top_limb = top / limb_bits and top_bit = top mod limb_bits in
  for i = top_limb + 1 to nlimbs - 1 do
    r.(i) <- 0
  done;
  r.(top_limb) <- (r.(top_limb) land ((1 lsl (top_bit + 1)) - 1)) lor (1 lsl top_bit);
  normalize r

let random_below prng bound =
  if is_zero bound then invalid_arg "Bignum.random_below: zero bound";
  let n = bits bound in
  let rec try_once attempts =
    if attempts > 1000 then rem (random_bits prng n) bound
    else begin
      (* Draw n random bits without forcing the top bit. *)
      let nlimbs = (n + limb_bits - 1) / limb_bits in
      let r = Array.make nlimbs 0 in
      for i = 0 to nlimbs - 1 do
        r.(i) <- Int64.to_int (Int64.logand (Prng.next_int64 prng) (Int64.of_int limb_mask))
      done;
      let top = n - 1 in
      let top_limb = top / limb_bits and top_bit = top mod limb_bits in
      for i = top_limb + 1 to nlimbs - 1 do
        r.(i) <- 0
      done;
      r.(top_limb) <- r.(top_limb) land ((1 lsl (top_bit + 1)) - 1);
      let v = normalize r in
      if compare v bound < 0 then v else try_once (attempts + 1)
    end
  in
  try_once 0

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139;
    149; 151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223;
    227; 229; 233; 239; 241; 251 ]

let is_probable_prime prng ?(rounds = 20) n =
  if compare n two < 0 then false
  else if
    List.exists
      (fun p ->
        let bp = of_int p in
        equal n bp)
      small_primes
  then true
  else if
    List.exists
      (fun p -> snd (divmod_small n p) = 0)
      small_primes
  then false
  else begin
    (* n - 1 = d * 2^r with d odd *)
    let n1 = sub n one in
    let rec split d r = if is_even d then split (shift_right d 1) (r + 1) else (d, r) in
    let d, r = split n1 0 in
    let witness a =
      let x = ref (modpow a d n) in
      if equal !x one || equal !x n1 then false
      else begin
        let composite = ref true in
        (try
           for _ = 1 to r - 1 do
             x := rem (mul !x !x) n;
             if equal !x n1 then begin
               composite := false;
               raise Exit
             end
           done
         with Exit -> ());
        !composite
      end
    in
    let rec rounds_left k =
      if k = 0 then true
      else begin
        let a = add two (random_below prng (sub n (of_int 4))) in
        if witness a then false else rounds_left (k - 1)
      end
    in
    compare n (of_int 4) > 0 && rounds_left rounds
  end

let generate_prime prng ~bits:nbits =
  if nbits < 8 then invalid_arg "Bignum.generate_prime: need >= 8 bits";
  let rec go () =
    let c = random_bits prng nbits in
    let c = if is_even c then add c one else c in
    if is_probable_prime prng c then c else go ()
  in
  go ()

let of_bytes_be b =
  let n = Bytes.length b in
  let v = ref zero in
  for i = 0 to n - 1 do
    v := add (shift_left !v 8) (of_int (Char.code (Bytes.get b i)))
  done;
  !v

let to_bytes_be ?size a =
  let nbytes = max 1 ((bits a + 7) / 8) in
  let total =
    match size with
    | None -> nbytes
    | Some s ->
        if s < nbytes then invalid_arg "Bignum.to_bytes_be: size too small"
        else s
  in
  let b = Bytes.make total '\000' in
  let v = ref a in
  let i = ref (total - 1) in
  while not (is_zero !v) do
    let q, r = divmod_small !v 256 in
    Bytes.set b !i (Char.chr r);
    v := q;
    decr i
  done;
  b

let of_string s =
  if s = "" then invalid_arg "Bignum.of_string: empty";
  let v = ref zero in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Bignum.of_string: not a digit"
      else v := add (mul !v (of_int 10)) (of_int (Char.code c - Char.code '0')))
    s;
  !v

let to_string a =
  if is_zero a then "0"
  else begin
    (* Peel 7 decimal digits at a time (10^7 < 2^26). *)
    let chunk = 10_000_000 in
    let rec go v acc =
      if is_zero v then acc
      else begin
        let q, r = divmod_small v chunk in
        if is_zero q then string_of_int r :: acc
        else go q (Printf.sprintf "%07d" r :: acc)
      end
    in
    String.concat "" (go a [])
  end

let to_hex a =
  if is_zero a then "0"
  else begin
    let b = to_bytes_be a in
    let buf = Buffer.create (2 * Bytes.length b) in
    Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
    let s = Buffer.contents buf in
    (* Strip one possible leading zero nibble for a canonical form. *)
    if String.length s > 1 && s.[0] = '0' then String.sub s 1 (String.length s - 1) else s
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let next_int64 g =
  g.state <- Int64.add g.state golden;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int g bound =
  if bound <= 0 then invalid_arg "Prng.next_int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  r mod bound

let next_bits g n =
  if n <= 0 then invalid_arg "Prng.next_bits: n must be positive";
  let nbytes = (n + 7) / 8 in
  let b = Bytes.create nbytes in
  for i = 0 to nbytes - 1 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.logand (next_int64 g) 0xFFL)))
  done;
  (* Zero the excess bits of the first (most significant) byte. *)
  let excess = (nbytes * 8) - n in
  if excess > 0 then begin
    let mask = 0xFF lsr excess in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land mask))
  end;
  b

let split g = create (next_int64 g)

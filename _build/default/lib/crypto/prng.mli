(** Deterministic pseudo-random generator (splitmix64).

    Used for reproducible key generation and workload synthesis.  Not a
    cryptographically secure generator — the whole crypto layer simulates
    the paper's X.509/JCA stack (see DESIGN.md §3); what matters here is
    that signatures bind issuers to rule payloads and that verification
    rejects tampering, not resistance to a real adversary. *)

type t

val create : int64 -> t
(** Seeded generator; equal seeds yield equal streams. *)

val next_int64 : t -> int64
val next_int : t -> int -> int
(** [next_int g bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val next_bits : t -> int -> bytes
(** [next_bits g n] returns [ceil(n/8)] bytes holding [n] random bits, with
    the top bit of the first byte aligned so the value has exactly [n]
    significant bits when the top bit is forced (see {!Bignum.random_bits}
    for the numeric version). *)

val split : t -> t
(** An independent generator derived from the current state. *)

(** RSA signatures (hash-then-sign with PKCS#1-style padding over
    {!Sha256}).

    This is the simulated stand-in for the paper's X.509 / Java
    Cryptography Architecture layer: key pairs for peers and authorities,
    deterministic signing of canonical rule serialisations, and
    verification before a signed rule enters the DLP engine. *)

type public = { n : Bignum.t; e : Bignum.t }
type keypair = { public : public; d : Bignum.t }

val generate : ?bits:int -> Prng.t -> keypair
(** Generate a key pair; [bits] (default 384) is the modulus size.  Must be at least 288 so the
    padded 32-byte digest fits; 384-bit keys keep tests fast. *)

val sign : keypair -> string -> Bignum.t
(** Sign a message: pad SHA-256(msg) to the modulus size and apply the
    private exponent.  @raise Invalid_argument if the modulus is too small
    to hold the padded digest. *)

val verify : public -> string -> Bignum.t -> bool
(** Check a signature against a message. *)

val modulus_bytes : public -> int

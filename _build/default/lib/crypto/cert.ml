type t = {
  serial : int;
  rule : Peertrust_dlp.Rule.t;
  not_before : int;
  not_after : int;
  signatures : (string * Bignum.t) list;
}

type error =
  | Unsigned_rule
  | Missing_signature of string
  | Bad_signature of string
  | Expired of { now : int }
  | Revoked of int

let payload t =
  Printf.sprintf "%d|%d|%d|%s" t.serial t.not_before t.not_after
    (Peertrust_dlp.Rule.canonical t.rule)

let issue ks ?(not_before = 0) ?(not_after = max_int) rule =
  match rule.Peertrust_dlp.Rule.signer with
  | [] -> Error Unsigned_rule
  | signers ->
      let cert =
        {
          serial = Keystore.fresh_serial ks;
          rule;
          not_before;
          not_after;
          signatures = [];
        }
      in
      let msg = payload cert in
      let signatures =
        List.map (fun s -> (s, Rsa.sign (Keystore.keypair ks s) msg)) signers
      in
      Ok { cert with signatures }

let verify ks ?(now = 0) t =
  if Keystore.is_revoked ks ~serial:t.serial then Error (Revoked t.serial)
  else if now < t.not_before || now > t.not_after then Error (Expired { now })
  else begin
    match t.rule.Peertrust_dlp.Rule.signer with
    | [] -> Error Unsigned_rule
    | signers ->
        let msg = payload t in
        let check acc signer =
          match acc with
          | Error _ as e -> e
          | Ok () -> (
              match List.assoc_opt signer t.signatures with
              | None -> Error (Missing_signature signer)
              | Some s ->
                  if Rsa.verify (Keystore.public ks signer) msg s then Ok ()
                  else Error (Bad_signature signer))
        in
        List.fold_left check (Ok ()) signers
  end

let pp_error fmt = function
  | Unsigned_rule -> Format.pp_print_string fmt "rule carries no signedBy annotation"
  | Missing_signature s -> Format.fprintf fmt "no signature from %s" s
  | Bad_signature s -> Format.fprintf fmt "invalid signature from %s" s
  | Expired { now } -> Format.fprintf fmt "certificate not valid at time %d" now
  | Revoked serial -> Format.fprintf fmt "certificate %d is revoked" serial

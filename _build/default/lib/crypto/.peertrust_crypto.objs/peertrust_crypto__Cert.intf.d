lib/crypto/cert.mli: Bignum Format Keystore Peertrust_dlp

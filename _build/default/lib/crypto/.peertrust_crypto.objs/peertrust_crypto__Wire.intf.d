lib/crypto/wire.mli: Cert Format

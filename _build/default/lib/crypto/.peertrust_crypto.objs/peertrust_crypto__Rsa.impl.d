lib/crypto/rsa.ml: Bignum Bytes Sha256 String

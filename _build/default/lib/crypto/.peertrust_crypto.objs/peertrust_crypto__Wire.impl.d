lib/crypto/wire.ml: Bignum Buffer Bytes Cert Char Format List Peertrust_dlp Printf String

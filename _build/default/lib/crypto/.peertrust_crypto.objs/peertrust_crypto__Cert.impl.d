lib/crypto/cert.ml: Bignum Format Keystore List Peertrust_dlp Printf Rsa

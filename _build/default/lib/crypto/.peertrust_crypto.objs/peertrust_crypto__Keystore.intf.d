lib/crypto/keystore.mli: Rsa

lib/crypto/keystore.ml: Char Hashtbl Int64 List Prng Rsa String

lib/crypto/prng.mli:

(** Arbitrary-precision natural numbers.

    Little-endian arrays of 26-bit limbs; all products of two limbs and the
    intermediate values of Knuth's algorithm D fit comfortably in OCaml's
    63-bit native integers.  Only naturals are exposed — the RSA layer
    never needs negative numbers (the signed arithmetic required by the
    extended Euclid algorithm is internal to {!modinv}). *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int_opt : t -> int option
(** [None] if the value exceeds [max_int]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool

val bits : t -> int
(** Position of the highest set bit plus one; [bits zero = 0]. *)

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r], [0 <= r < b].
    @raise Division_by_zero . *)

val rem : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
val modpow : t -> t -> t -> t
(** [modpow b e m] is [b^e mod m].  @raise Division_by_zero if [m] is 0. *)

val gcd : t -> t -> t

val modinv : t -> t -> t option
(** [modinv a m] is the inverse of [a] modulo [m], if [gcd a m = 1]. *)

val random_bits : Prng.t -> int -> t
(** Uniform with exactly [n] significant bits (top bit forced). *)

val random_below : Prng.t -> t -> t
(** Uniform in [\[0, bound)]. Requires [bound > 0]. *)

val is_probable_prime : Prng.t -> ?rounds:int -> t -> bool
(** Trial division by small primes, then [rounds] (default 20) Miller–Rabin
    rounds with random bases. *)

val generate_prime : Prng.t -> bits:int -> t
(** A random probable prime with exactly [bits] bits ([bits >= 8]). *)

val of_bytes_be : bytes -> t
val to_bytes_be : ?size:int -> t -> bytes
(** Big-endian encoding; [size] left-pads with zeros (and must be large
    enough — @raise Invalid_argument otherwise). *)

val of_string : string -> t
(** Decimal. @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal. *)

val to_hex : t -> string
val pp : Format.formatter -> t -> unit

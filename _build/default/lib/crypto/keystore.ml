type t = {
  bits : int;
  seed : int64;
  keys : (string, Rsa.keypair) Hashtbl.t;
  mutable order : string list;  (* reverse generation order *)
  revoked : (int, unit) Hashtbl.t;
  mutable next_serial : int;
}

let create ?(bits = 384) ~seed () =
  {
    bits;
    seed;
    keys = Hashtbl.create 16;
    order = [];
    revoked = Hashtbl.create 16;
    next_serial = 1;
  }

let keypair t name =
  match Hashtbl.find_opt t.keys name with
  | Some kp -> kp
  | None ->
      (* Derive an independent generator per principal so that a
         principal's key does not depend on generation order. *)
      let name_seed =
        String.fold_left
          (fun acc c -> Int64.add (Int64.mul acc 131L) (Int64.of_int (Char.code c)))
          t.seed name
      in
      let kp = Rsa.generate ~bits:t.bits (Prng.create name_seed) in
      Hashtbl.add t.keys name kp;
      t.order <- name :: t.order;
      kp

let public t name = (keypair t name).Rsa.public
let known t name = Hashtbl.mem t.keys name
let revoke t ~serial = Hashtbl.replace t.revoked serial ()
let is_revoked t ~serial = Hashtbl.mem t.revoked serial

let fresh_serial t =
  let s = t.next_serial in
  t.next_serial <- s + 1;
  s

let principals t = List.rev t.order

(** Distributed certified proofs (§6: "PeerTrust harnesses a network of
    semi-cooperative peers to automatically create, in a distributed
    fashion, a certified proof that a party is entitled to access a
    particular resource").

    A certified proof packages a goal, the proof trace, the certificates
    backing every signed rule the trace uses, and the prover's signature
    over the whole package.  [verify] re-checks, without re-running the
    negotiation: the package signature, each certificate, and the local
    soundness of every inference step. *)

open Peertrust_dlp

type t = {
  prover : string;
  goal : Literal.t;
  trace : Trace.t;
  certs : Peertrust_crypto.Cert.t list;
  signature : Peertrust_crypto.Bignum.t;
}

type error =
  | Bad_package_signature
  | Missing_certificate of Rule.t  (** a signed rule lacks a certificate *)
  | Certificate_invalid of Peertrust_crypto.Cert.error
  | Unsound_step of string  (** an inference step does not follow *)
  | Goal_mismatch

val create :
  Session.t -> prover:string -> goal:Literal.t -> Trace.t -> t
(** Package and sign a proof; the certificates are drawn from the prover's
    store (signed rules without a held certificate are simply not backed —
    [verify] will reject such a package). *)

val verify : Session.t -> t -> (unit, error) result

val redact : releasable:(Rule.t -> bool) -> self:string -> Trace.t -> Trace.t
(** Replace sub-proofs rooted at non-releasable rules with opaque
    [Remote] nodes attributed to [self]; used before shipping a proof to a
    peer that may not see private policy internals. *)

val conclusion : Trace.t -> Literal.t option
(** The literal a trace node establishes. *)

val pp_error : Format.formatter -> error -> unit

(** Negotiation by proxy (§4.2): "handheld devices may not have enough
    power to carry out trust negotiation directly.  In this case, Bob's
    device can forward any queries it receives to another peer that Bob
    trusts, such as his home or office computer."

    The device peer holds no policies or credentials; its handler forwards
    every incoming query to the trusted proxy, which evaluates it against
    the principal's knowledge base and answers on the device's behalf.
    Private keys conceptually stay on the device: the proxy holds the
    principal's certificates (issued once at setup), not its signing
    key. *)

val attach_device :
  Session.t -> device:string -> proxy:string -> Peer.t
(** Create the (empty) device peer and register a forwarding handler for
    it: queries arriving at [device] are re-sent to [proxy] tagged with the
    original requester.  The proxy peer must already exist.  Returns the
    device peer. *)

val forwarded_count : Session.t -> device:string -> int
(** How many queries the device has forwarded so far. *)

(** Delegation of authority (§2, §3.1): signed rules by which an authority
    empowers another principal to make statements on its behalf, e.g.
    UIUC delegating student certification to its registrar:

    {v student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "UIUC Registrar". v} *)

open Peertrust_dlp

val delegation_rule :
  ?release:Rule.ctx -> issuer:string -> delegate:string -> pred:string ->
  arity:int -> unit -> Rule.t
(** The rule [pred(X1..Xn) @ issuer <- signedBy \[issuer\]
    pred(X1..Xn) @ delegate].  [release] (default [\[\]], public) becomes
    the rule's arrow context. *)

val credential_fact :
  ?release:Rule.ctx -> issuer:string -> pred:string -> subject:Term.t list ->
  unit -> Rule.t
(** The fact [pred(subject...) @ issuer signedBy \[issuer\]], with an
    optional [$] release guard (default public). *)

val grant :
  Session.t -> holder:Peer.t -> Rule.t -> Peertrust_crypto.Cert.t
(** Issue a certificate for a signed rule and hand it to [holder].
    @raise Invalid_argument if the rule is unsigned. *)

val chain_of_trace : pred:string -> Trace.t -> Rule.t list
(** The delegation chain supporting a conclusion: the signed rules about
    [pred] used in the proof, outermost authority first. *)

val chain_rooted : root:string -> pred:string -> Trace.t -> bool
(** Does the proof's delegation chain for [pred] start at [root] (i.e. the
    first chain element is signed by [root])? *)

(** Negotiation strategies (after Yu, Winslett & Seamons [21]; §5 of the
    paper notes "similar concepts will be needed in PeerTrust").

    All three strategies are {e complete} for the same safe-disclosure
    relation — if any safe sequence of disclosures unlocks the resource,
    each strategy finds one — but they differ in how much they disclose
    and how many messages they need:

    - {!Relevant} (parsimonious): pure backward chaining; discloses only
      credentials pulled by a counter-query chain.
    - {!Eager}: parties alternate, each sending every credential whose
      release policy is unlocked by what it has received so far; no
      queries other than the initial goal check.  More disclosures, fewer
      rounds.
    - {!Push_relevant}: backward chaining, but the requester first pushes
      the credentials it can already release to the target (useful when
      the requester knows the target's policy shape — the paper's
      "employees know to push the appropriate credentials"). *)

open Peertrust_dlp

type t = Relevant | Eager | Push_relevant

val all : t list
val to_string : t -> string

val negotiate :
  Session.t ->
  strategy:t ->
  requester:string ->
  target:string ->
  Literal.t ->
  Negotiation.report

val negotiate_str :
  Session.t ->
  strategy:t ->
  requester:string ->
  target:string ->
  string ->
  Negotiation.report

val eager_rounds_limit : int
(** Safety bound on eager alternation rounds (default 64). *)

val negotiate_multi :
  Session.t ->
  participants:string list ->
  requester:string ->
  target:string ->
  Literal.t ->
  Negotiation.report
(** The n-party extension of the eager strategy (§6 names this as future
    work: strategies "designed for negotiations that involve exactly two
    peers" extended "to work with the n peers that may take part in a
    negotiation").  All [participants] (which must include [requester] and
    [target]) take turns; in each round every peer pushes its newly
    unlocked credentials to every other participant, then the requester
    re-checks the goal at the target.  Completeness argument as in the
    2-party case: the disclosed set grows monotonically, so the rounds
    reach a fixpoint, and any credential unlockable by a safe sequence is
    eventually unlocked. *)

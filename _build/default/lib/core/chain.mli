(** Distributed credential chain discovery (§2's accreditation example;
    Li, Winsborough & Mitchell [12]).

    When a policy demands [member(S) @ Root] but the supporting
    delegations are scattered across peers — Root delegated to A, A to B,
    B certified S — the requester must collect the whole chain.  Here
    discovery rides on the engine: querying Root for the goal makes each
    peer follow its delegation rule's body authority to the next peer,
    and the certificates flow back with the answers. *)

open Peertrust_dlp

type result = {
  found : bool;
  chain : Peertrust_crypto.Cert.t list;
      (** certificates collected by the requester during discovery, in
          acquisition order *)
  report : Negotiation.report;
}

val discover :
  Session.t -> requester:string -> root:string -> Literal.t -> result
(** Ask [root] for the goal and collect the supporting credential chain. *)

val linear_world :
  ?session:Session.t ->
  depth:int ->
  pred:string ->
  subject:string ->
  unit ->
  Session.t * string * string
(** Build a linear delegation world: [auth0] (the root) delegates [pred]
    to [auth1] at peer [auth0], ... [auth(d-1)] certifies the subject.
    Every peer holds only its own link.  Returns (session, root, last
    authority).  [depth] >= 1 is the number of delegation hops. *)

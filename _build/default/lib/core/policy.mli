(** Release-policy (context) evaluation.

    A context guards the disclosure of a literal or rule: it may be
    disclosed to requester [R] iff the context is derivable with
    [Requester] bound to [R] and [Self] to the local peer.  The paper's
    default context — when no [$] guard is written — is [Requester = Self]:
    private to the local peer.  The explicit context [true] (empty
    conjunction) is public. *)

open Peertrust_dlp

type decision = Granted | Denied of string

type prover = requester:string -> Literal.t list -> Sld.answer option
(** Proves a conjunction with [Requester]/[Self] bound; the negotiation
    engine supplies a prover that can issue counter-queries to other
    peers. *)

val releasable :
  prover:prover -> requester:string -> self:string -> Rule.ctx option ->
  decision
(** Decide a bare context: [None] is the default-private context. *)

val rule_releasable :
  prover:prover -> requester:string -> self:string -> Rule.t -> decision
(** May the rule text itself be sent to [requester]?  Decided by the
    rule's arrow context ([rule_ctx]). *)

val credential_releasable :
  prover:prover -> kb:Kb.t -> requester:string -> self:string -> Rule.t ->
  decision
(** May this signed rule (credential) be sent to [requester]?  Granted when
    (a) the credential's own arrow context grants it, or (b) some release
    rule in [kb] — a rule with a [$] head context — covers the
    credential's head (directly or through the signed-rule axiom
    [h @ signer]) and its head context is provable.  Default: denied. *)

val is_release_rule : Rule.t -> bool
(** Does the rule carry a [$] head context (i.e. can it gate an answer to a
    remote query)? *)

val pp_decision : Format.formatter -> decision -> unit

open Peertrust_dlp
module Net = Peertrust_net

type decision = Grant | Deny of string

type entry = {
  at : int;
  peer : string;
  requester : string;
  goal : Literal.t;
  decision : decision;
  credentials : int list;
}

type t = { mutable log : entry list (* reverse order *) }

let create () = { log = [] }

let record t ~at ~peer ~requester ~goal ~decision ~credentials =
  t.log <- { at; peer; requester; goal; decision; credentials } :: t.log

let wrap t session peer_name (inner : Net.Network.handler) :
    Net.Network.handler =
 fun ~from payload ->
  let response = inner ~from payload in
  (match (payload, response) with
  | Net.Message.Query { goal }, Net.Message.Answer { certs; _ } ->
      record t
        ~at:(Net.Clock.now (Net.Network.clock session.Session.network))
        ~peer:peer_name ~requester:from ~goal ~decision:Grant
        ~credentials:
          (List.map (fun (c : Peertrust_crypto.Cert.t) -> c.Peertrust_crypto.Cert.serial) certs)
  | Net.Message.Query { goal }, Net.Message.Deny { reason; _ } ->
      record t
        ~at:(Net.Clock.now (Net.Network.clock session.Session.network))
        ~peer:peer_name ~requester:from ~goal ~decision:(Deny reason)
        ~credentials:[]
  | _, _ -> ());
  response

let attach t session =
  (* Re-register every peer with an auditing wrapper around the standard
     engine handler. *)
  Hashtbl.iter
    (fun name peer ->
      ignore peer;
      let base = Engine.handler_for session (Session.peer session name) in
      Net.Network.register session.Session.network name (wrap t session name base))
    session.Session.peers

let entries t = List.rev t.log
let for_peer t name = List.filter (fun e -> String.equal e.peer name) (entries t)
let grants t = List.filter (fun e -> e.decision = Grant) (entries t)

let denials t =
  List.filter (fun e -> match e.decision with Deny _ -> true | Grant -> false) (entries t)

let pp_entry fmt e =
  Format.fprintf fmt "[%d] %s: %s asked %a -> %s" e.at e.peer e.requester
    Literal.pp e.goal
    (match e.decision with
    | Grant ->
        Printf.sprintf "granted (%d credential(s))" (List.length e.credentials)
    | Deny reason -> Printf.sprintf "denied (%s)" reason)

let pp fmt t =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
    pp_entry fmt (entries t)

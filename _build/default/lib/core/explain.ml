open Peertrust_dlp
module Net = Peertrust_net

let outcome_sentence = function
  | Negotiation.Granted instances ->
      Printf.sprintf "Access granted: %s."
        (String.concat "; "
           (List.map (fun (l, _) -> Literal.to_string l) instances))
  | Negotiation.Denied reason -> Printf.sprintf "Access denied (%s)." reason

(* Classify a transcript entry into a prose step. *)
let step_sentence (e : Net.Network.entry) =
  let s = e.Net.Network.summary in
  let verb =
    if String.length s >= 5 && String.sub s 0 5 = "query" then
      Printf.sprintf "%s asks %s for%s" e.Net.Network.from e.Net.Network.target
        (String.sub s 5 (String.length s - 5))
    else if String.length s >= 6 && String.sub s 0 6 = "answer" then
      let detail = String.sub s 6 (String.length s - 6) in
      if e.Net.Network.certs_ > 0 then
        Printf.sprintf "%s answers %s, disclosing %d credential(s):%s"
          e.Net.Network.from e.Net.Network.target e.Net.Network.certs_ detail
      else
        Printf.sprintf "%s answers %s:%s" e.Net.Network.from
          e.Net.Network.target detail
    else if String.length s >= 4 && String.sub s 0 4 = "deny" then
      Printf.sprintf "%s refuses %s:%s" e.Net.Network.from e.Net.Network.target
        (String.sub s 4 (String.length s - 4))
    else if String.length s >= 8 && String.sub s 0 8 = "disclose" then
      Printf.sprintf "%s pushes credentials to %s (%s)" e.Net.Network.from
        e.Net.Network.target s
    else Printf.sprintf "%s -> %s: %s" e.Net.Network.from e.Net.Network.target s
  in
  verb

let narrative (r : Negotiation.report) =
  let buf = Buffer.create 512 in
  List.iteri
    (fun i e ->
      Buffer.add_string buf (Printf.sprintf "%2d. %s\n" (i + 1) (step_sentence e)))
    r.Negotiation.transcript;
  Buffer.add_string buf (outcome_sentence r.Negotiation.outcome);
  Buffer.add_string buf
    (Printf.sprintf "\n(%d message(s), %d byte(s), %d credential(s) disclosed)"
       r.Negotiation.messages r.Negotiation.bytes r.Negotiation.disclosures);
  Buffer.contents buf

let mermaid_escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "#quot;"
         | ';' -> "#59;"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let participant_id =
  String.map (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      then c
      else '_')

let sequence_diagram (r : Negotiation.report) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "sequenceDiagram\n";
  let seen = ref [] in
  let declare name =
    if not (List.mem name !seen) then begin
      seen := name :: !seen;
      Buffer.add_string buf
        (Printf.sprintf "  participant %s as %s\n" (participant_id name)
           (mermaid_escape name))
    end
  in
  List.iter
    (fun (e : Net.Network.entry) ->
      declare e.Net.Network.from;
      declare e.Net.Network.target)
    r.Negotiation.transcript;
  List.iter
    (fun (e : Net.Network.entry) ->
      let arrow =
        if
          String.length e.Net.Network.summary >= 4
          && String.sub e.Net.Network.summary 0 4 = "deny"
        then "--x"
        else "->>"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s%s%s: %s\n"
           (participant_id e.Net.Network.from)
           arrow
           (participant_id e.Net.Network.target)
           (mermaid_escape e.Net.Network.summary)))
    r.Negotiation.transcript;
  Buffer.contents buf

let dot_escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let proof_dot trace =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph proof {\n  rankdir=TB;\n  node [fontsize=10];\n";
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "n%d" !counter
  in
  let rec node t =
    let id = fresh () in
    (match t with
    | Trace.Apply (r, children) ->
        let shape, color =
          if Rule.is_signed r then ("box", "lightblue") else ("box", "white")
        in
        let label =
          if Rule.is_signed r then
            Printf.sprintf "%s\\nsigned by %s"
              (dot_escape (Literal.to_string r.Rule.head))
              (dot_escape (String.concat ", " r.Rule.signer))
          else dot_escape (Literal.to_string r.Rule.head)
        in
        Buffer.add_string buf
          (Printf.sprintf
             "  %s [shape=%s, style=filled, fillcolor=%s, label=\"%s\"];\n" id
             shape color label);
        List.iter
          (fun child ->
            let cid = node child in
            Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" id cid))
          children
    | Trace.Builtin l ->
        Buffer.add_string buf
          (Printf.sprintf "  %s [shape=ellipse, style=dashed, label=\"%s\"];\n"
             id
             (dot_escape (Literal.to_string l)))
    | Trace.External l ->
        Buffer.add_string buf
          (Printf.sprintf
             "  %s [shape=ellipse, style=dotted, label=\"%s (external)\"];\n"
             id
             (dot_escape (Literal.to_string l)))
    | Trace.Remote { peer; goal; proof } -> (
        Buffer.add_string buf
          (Printf.sprintf
             "  %s [shape=diamond, label=\"%s\\nfrom %s\"];\n" id
             (dot_escape (Literal.to_string goal))
             (dot_escape peer));
        match proof with
        | Some p ->
            let cid = node p in
            Buffer.add_string buf
              (Printf.sprintf "  %s -> %s [style=dashed];\n" id cid)
        | None -> ()));
    id
  in
  ignore (node trace);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** The queued (asynchronous) negotiation engine — the architecture the
    paper actually describes for PeerTrust 1.0: an outer layer that "keeps
    queues of propositions that are in the process of being proved" around
    the logic engine.

    Where {!Engine} answers a query by synchronous recursion through the
    network, the reactor is message-driven:

    - an incoming query is evaluated against the local KB only; if that
      does not settle it, the goal is {e parked} and one sub-query is
      posted for each blocked remote sub-goal (each distinct
      (peer, goal) is asked at most once per peer);
    - an incoming answer is verified and learned (certificates plus the
      "peer says" facts), then every parked goal waiting on it is
      re-evaluated from scratch over the grown knowledge base — the KB
      only grows, so re-evaluation is monotone;
    - a parked goal whose sub-queries are all resolved and which still has
      no releasable answer is denied upstream.

    Consequences the synchronous engine cannot offer: any number of
    negotiations proceed {e interleaved} over one queue, and policy
    deadlocks manifest as quiescence (an empty queue with unresolved
    goals) rather than needing an in-flight cycle check.

    Messages are accounted on the session network (statistics, transcript,
    latency, budget) exactly like synchronous traffic. *)

open Peertrust_dlp

type t

val create : Session.t -> t
(** The reactor replaces the peers' network handlers; create it after all
    peers are added.  Sessions should not mix reactor and synchronous
    {!Engine} traffic. *)

type request

val submit :
  t -> requester:string -> target:string -> Literal.t -> request
(** Enqueue a top-level negotiation; nothing runs until {!run}/{!step}. *)

val step : t -> bool
(** Deliver one queued message; [false] when the queue is empty. *)

val run : ?max_steps:int -> t -> int
(** Process messages until quiescence (or [max_steps], default 100_000);
    unresolved requests are then denied as quiescent.  Returns the number
    of messages delivered. *)

val result : t -> request -> Negotiation.outcome option
(** [None] while the request is still unresolved. *)

val outcome : t -> request -> Negotiation.outcome
(** Like {!result}, but an unresolved request reports
    [Denied "negotiation quiescent"]. *)

val parked_count : t -> int
(** Goals currently parked across all peers (for tests/monitoring). *)

(** The distributed evaluation engine: answers queries from other peers
    under release policies, issues counter-queries, verifies and learns
    credentials, and dispatches sub-goals along authority chains.

    Answering a remote query [G] from requester [R] (the paper's run-time
    semantics, §3.2, specialised to backward chaining):

    + reject [G] if the same (requester, goal) pair is already in flight at
      this peer (negotiation cycle);
    + consider the rules whose head matches [G] {e and} that carry a [$]
      head context — the release policies.  A rule without a head context
      is private: usable inside local proofs, never to answer an outsider;
    + for each such rule, prove the built-in part of the context, then the
      body (local SLD with remote dispatch along [@] authority chains),
      then the remaining context literals with [Requester = R] — this last
      step is what triggers counter-queries back to [R] and makes the
      negotiation bilateral and iterative;
    + attach the certificates for the signed rules used by the proof,
      filtered by their own release policies;
    + the requester verifies every received certificate before its rule
      enters the knowledge base. *)

open Peertrust_dlp

type instance = Literal.t * Trace.t option

val attach : Session.t -> Peer.t -> unit
(** Register the peer's message handler on the session network. *)

val handler_for : Session.t -> Peer.t -> Peertrust_net.Network.handler
(** The raw handler {!attach} registers — exposed so wrappers (e.g.
    {!Audit.attach}) can decorate it. *)

val attach_all : Session.t -> unit

val query :
  Session.t -> requester:string -> target:string -> Literal.t -> instance list
(** Client side: send one query, verify and learn the returned credentials,
    return the provable instances.  Empty on denial or unreachable
    target. *)

val answer :
  ?allow_remote:bool ->
  ?remote:Sld.remote ->
  Session.t ->
  Peer.t ->
  requester:string ->
  Literal.t ->
  (instance list * Peertrust_crypto.Cert.t list, string) result
(** Server side (also used directly by the eager strategy with
    [~allow_remote:false]): compute the releasable answer to a query.
    [Error reason] when nothing is releasable.  [remote] overrides the
    network-backed remote dispatch — the queued engine ({!Reactor}) passes
    a collector that records blocked sub-goals instead of recursing. *)

val evaluate :
  ?allow_remote:bool ->
  ?remote:Sld.remote ->
  ?solutions:int ->
  ?requester:string ->
  Session.t ->
  Peer.t ->
  Literal.t list ->
  Sld.answer list
(** Local evaluation (release policies {e not} enforced — this is the
    peer reasoning over its own knowledge), with remote dispatch through
    the network unless [allow_remote] is [false]. *)

val prover :
  ?allow_remote:bool -> ?remote:Sld.remote -> Session.t -> Peer.t ->
  Policy.prover
(** The context prover backed by {!evaluate}. *)

val releasable_certs :
  ?allow_remote:bool ->
  Session.t ->
  Peer.t ->
  requester:string ->
  Peertrust_crypto.Cert.t list
(** All held certificates whose release policy grants disclosure to
    [requester] (the eager strategy's per-round disclosure set). *)

val disclose :
  Session.t -> Peer.t -> target:string -> Peertrust_crypto.Cert.t list -> unit
(** Push credentials to another peer (eager / push strategies). *)

val learn :
  ?from_:string -> Session.t -> Peer.t -> Peertrust_crypto.Cert.t list -> unit
(** Verify certificates (when the session demands it) and add the valid
    ones to the peer's KB and certificate store, recording their origin. *)

(** Human-readable renderings of negotiations and proofs.

    Trust negotiation is meant to be "fully automated and transparent to
    users" (§2) — which makes explanation tooling the first thing a
    deployment asks for.  This module renders:

    - a prose narrative of a negotiation from its transcript;
    - a Mermaid sequence diagram of the message exchange;
    - a Graphviz [dot] graph of a proof trace (rule applications,
      built-ins, remote sub-proofs, credentials highlighted). *)

open Peertrust_dlp

val narrative : Negotiation.report -> string
(** Numbered prose steps ("alice asks bob for …", "bob discloses 2
    credential(s) …") ending with the outcome. *)

val sequence_diagram : Negotiation.report -> string
(** Mermaid [sequenceDiagram] source. *)

val proof_dot : Trace.t -> string
(** Graphviz source; credential nodes are drawn as boxes with their
    signers, built-ins as dashed ellipses, remote goals as diamonds. *)

(** Top-level trust negotiations and their measured reports.

    A negotiation is triggered when one peer requests a resource of
    another (§2): the requester sends the goal, the target answers under
    its release policies, counter-querying the requester as needed.  The
    report captures what the paper's evaluation narrates: the outcome, the
    sequence of disclosures, and the message/byte/latency cost. *)

open Peertrust_dlp

type outcome =
  | Granted of Engine.instance list
      (** access granted; the provable instances of the goal *)
  | Denied of string

type report = {
  outcome : outcome;
  messages : int;  (** messages exchanged during this negotiation *)
  bytes : int;
  disclosures : int;  (** certificates transferred *)
  elapsed : int;  (** simulated-clock ticks *)
  transcript : Peertrust_net.Network.entry list;
}

val succeeded : report -> bool

val request :
  Session.t -> requester:string -> target:string -> Literal.t -> report
(** Run one negotiation with the backward-chaining (relevant) strategy. *)

val request_str :
  Session.t -> requester:string -> target:string -> string -> report
(** Convenience: parse the goal from text.  @raise Parser.Error. *)

val measure : Session.t -> (unit -> outcome) -> report
(** Wrap an arbitrary negotiation procedure (used by {!Strategy}): snapshot
    network statistics around the call and collect the transcript delta.
    A message-budget exhaustion or an unreachable top-level target turns
    into a [Denied] outcome rather than an exception. *)

val pp_report : Format.formatter -> report -> unit

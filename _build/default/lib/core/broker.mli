(** Authority databases and brokers (§4.2).

    A policy may leave an [Authority] argument unbound and resolve it at
    run time from a database of authoritative peers:

    {v
      policy49(...) <- ..., authority(purchaseApproved, Authority),
                       purchaseApproved(Company, Price) @ Authority.
    v}

    or delegate the lookup to a broker peer:

    {v
      ..., authority(purchaseApproved, Authority) @ "myBroker", ...
    v}

    This module builds both: local authority databases ([authority/2]
    facts) and broker peers that serve a directory publicly. *)

open Peertrust_dlp

val authority_fact : pred:string -> authority:string -> Rule.t
(** The fact [authority(pred, "authority")]. *)

val install_directory : Peer.t -> (string * string) list -> unit
(** Add [authority/2] facts (predicate name, authority peer) to a peer's
    own KB. *)

val add_broker :
  Session.t -> name:string -> directory:(string * string) list -> Peer.t
(** Create a broker peer whose directory is publicly queryable
    ([authority/2 $ true]) and attach it to the network. *)

val lookup :
  Session.t -> requester:string -> broker:string -> pred:string ->
  string list
(** Ask a broker which authorities serve [pred]. *)

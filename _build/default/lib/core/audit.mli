(** Audit trails — the other §3 run-time measure: "the mechanism can also
    implement other security-related measures, such as creating an audit
    trail for the enrollment".

    An audit log records, per peer, every access decision it made: the
    requester, the goal, grant/denial, the supporting credential serials
    and the simulated time.  Entries are append-only; the log can be
    queried and rendered. *)

open Peertrust_dlp

type decision = Grant | Deny of string

type entry = {
  at : int;  (** simulated-clock time *)
  peer : string;  (** the peer that decided *)
  requester : string;
  goal : Literal.t;
  decision : decision;
  credentials : int list;  (** serials of disclosed certificates *)
}

type t

val create : unit -> t

val attach : t -> Session.t -> unit
(** Wrap every registered peer's network handler so that queries and their
    outcomes are recorded.  Call after {!Engine.attach_all} (and re-call
    after handlers are replaced). *)

val record :
  t -> at:int -> peer:string -> requester:string -> goal:Literal.t ->
  decision:decision -> credentials:int list -> unit
(** Manual entry (used by custom mechanisms). *)

val entries : t -> entry list
(** Chronological. *)

val for_peer : t -> string -> entry list
val grants : t -> entry list
val denials : t -> entry list
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

open Peertrust_dlp

type pred = string * int
type world = (string * Rule.t list) list

let world_of_session (session : Session.t) =
  Hashtbl.fold
    (fun name (peer : Peer.t) acc -> (name, Kb.rules peer.Peer.kb) :: acc)
    session.Session.peers []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let world_of_programs programs =
  List.map (fun (name, src) -> (name, Parser.parse_program src)) programs

type report = {
  released : (string * pred) list;
  locked : (string * pred) list;
  deadlocks : (string * pred) list list;
}

module KeySet = Set.Make (struct
  type t = string * pred

  let compare (p1, (n1, a1)) (p2, (n2, a2)) =
    let c = String.compare p1 p2 in
    if c <> 0 then c
    else
      let c = String.compare n1 n2 in
      if c <> 0 then c else Int.compare a1 a2
end)

let lit_pred (l : Literal.t) = Literal.key l

let is_guard l = Builtin.is_builtin (lit_pred l)

(* The release-guarded resources of a peer: rules carrying a head context,
   keyed by head predicate. *)
let resources rules =
  List.filter_map
    (fun (r : Rule.t) ->
      match r.Rule.head_ctx with
      | Some ctx -> Some (lit_pred r.Rule.head, ctx, r.Rule.body)
      | None -> None)
    rules

let analyze (world : world) =
  let derivable = ref KeySet.empty in
  let released = ref KeySet.empty in
  let mem set peer p = KeySet.mem (peer, p) !set in
  (* A context/body literal is satisfiable at peer P when it is a
     built-in, P can derive it, or any other peer can release it. *)
  let satisfiable peer l =
    is_guard l
    || mem derivable peer (lit_pred l)
    || List.exists
         (fun (other, _) ->
           (not (String.equal other peer)) && mem released other (lit_pred l))
         world
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let add set key =
      if not (KeySet.mem key !set) then begin
        set := KeySet.add key !set;
        changed := true
      end
    in
    List.iter
      (fun (peer, rules) ->
        List.iter
          (fun (r : Rule.t) ->
            (* derivable: every body literal satisfiable.  Signed rules
               also make the head derivable under the signer authority,
               but at the predicate level that is the same key. *)
            if List.for_all (satisfiable peer) r.Rule.body then
              add derivable (peer, lit_pred r.Rule.head))
          rules;
        List.iter
          (fun (head_pred, ctx, body) ->
            if
              List.for_all (satisfiable peer) ctx
              && List.for_all (satisfiable peer) body
            then add released (peer, head_pred))
          (resources rules))
      world
  done;
  let all_guarded =
    List.concat_map
      (fun (peer, rules) ->
        List.map (fun (p, _, _) -> (peer, p)) (resources rules))
      world
    |> List.sort_uniq compare
  in
  let released_list = List.filter (fun k -> KeySet.mem k !released) all_guarded in
  let locked = List.filter (fun k -> not (KeySet.mem k !released)) all_guarded in
  (* Dependency graph among locked resources: a locked resource depends on
     the unsatisfiable literals of its contexts, pointing at every peer
     that guards that predicate. *)
  let locked_set = KeySet.of_list locked in
  let deps (peer, p) =
    List.concat_map
      (fun (owner, rules) ->
        if not (String.equal owner peer) then []
        else
          List.concat_map
            (fun (head_pred, ctx, body) ->
              if head_pred <> p then []
              else
                List.concat_map
                  (fun l ->
                    if satisfiable peer l then []
                    else
                      List.filter_map
                        (fun (other, rules') ->
                          let guarded_there =
                            List.exists
                              (fun (hp, _, _) -> hp = lit_pred l)
                              (resources rules')
                          in
                          if guarded_there && KeySet.mem (other, lit_pred l) locked_set
                          then Some (other, lit_pred l)
                          else None)
                        world)
                  (ctx @ body))
            (resources rules))
      world
    |> List.sort_uniq compare
  in
  (* Enumerate elementary cycles with a bounded DFS from each node. *)
  let deadlocks = ref [] in
  let add_cycle cycle =
    (* Normalise rotation so each cycle is reported once. *)
    let min_elt = List.fold_left min (List.hd cycle) cycle in
    let rec rotate c =
      match c with
      | x :: _ when x = min_elt -> c
      | x :: rest -> rotate (rest @ [ x ])
      | [] -> c
    in
    let normal = rotate cycle in
    if not (List.mem normal !deadlocks) then deadlocks := normal :: !deadlocks
  in
  let rec dfs path node =
    match List.find_index (fun x -> x = node) (List.rev path) with
    | Some i ->
        let cycle =
          List.filteri (fun j _ -> j >= i) (List.rev path)
        in
        add_cycle cycle
    | None ->
        if List.length path < 16 then
          List.iter (fun next -> dfs (node :: path) next) (deps node)
  in
  List.iter (fun node -> dfs [] node) locked;
  { released = released_list; locked; deadlocks = List.rev !deadlocks }

(* A goal can only ever be granted through a release rule, so it must be
   in the released set; unguarded predicates are private. *)
let may_succeed world ~owner ~goal =
  let report = analyze world in
  List.mem (owner, Literal.key goal) report.released

let critical_credentials world ~owner ~goal =
  if not (may_succeed world ~owner ~goal) then []
  else begin
    let credentials =
      List.concat_map
        (fun (peer, rules) ->
          List.filter_map
            (fun r -> if Rule.is_signed r then Some (peer, r) else None)
            rules)
        world
    in
    List.filter
      (fun (peer, cred) ->
        let without =
          List.map
            (fun (p, rules) ->
              if String.equal p peer then
                (p, List.filter (fun r -> not (Rule.equal r cred)) rules)
              else (p, rules))
            world
        in
        not (may_succeed without ~owner ~goal))
      credentials
  end

let refusal_matters world ~owner ~goal ~peer =
  List.exists
    (fun (holder, _) -> String.equal holder peer)
    (critical_credentials world ~owner ~goal)

let pp_pred fmt (name, arity) = Format.fprintf fmt "%s/%d" name arity

let pp_entry fmt (peer, p) = Format.fprintf fmt "%s:%a" peer pp_pred p

let pp_report fmt r =
  let pp_list fmt entries =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      pp_entry fmt entries
  in
  Format.fprintf fmt "released: %a@\nlocked: %a@\n" pp_list r.released pp_list
    r.locked;
  List.iter
    (fun cycle -> Format.fprintf fmt "deadlock cycle: %a@\n" pp_list cycle)
    r.deadlocks

(** Access tokens — the paper's §3 mechanism: "the mechanism may instead
    give Alice a nontransferable token that she can use to access the
    service repeatedly without having to negotiate trust again until the
    token expires".

    A token is a certificate, signed by the granting peer, over the fact

    {v  accessToken("holder", "service-skeleton")  v}

    with a validity window on the simulated clock.  Redeeming presents the
    token back to the issuer, which checks the signature, the window, the
    revocation set, that the bearer is the named holder (non-transferable),
    and that the token's service matches the requested goal. *)

open Peertrust_dlp

type t = Peertrust_crypto.Cert.t

type error =
  | Invalid of Peertrust_crypto.Cert.error
  | Wrong_holder of string  (** presented by someone else *)
  | Wrong_service  (** token does not cover the requested goal *)
  | Not_a_token

val grant :
  Session.t -> issuer:string -> holder:string -> goal:Literal.t ->
  ttl:int -> t
(** Issue a token for the goal's service skeleton, valid from the current
    session instant ([config.now]) for [ttl] ticks.  Typically called by
    the resource owner right after a successful negotiation. *)

val negotiate_with_token :
  Session.t -> requester:string -> target:string -> ttl:int ->
  Literal.t -> (Negotiation.report * t option)
(** Run a normal negotiation; on success the target issues a token for the
    goal to the requester (returned alongside the report). *)

val redeem :
  Session.t -> issuer:string -> bearer:string -> goal:Literal.t -> t ->
  (unit, error) result
(** Validate a presented token at the issuer.  No negotiation, no
    counter-queries: O(1) checks only. *)

val revoke : Session.t -> t -> unit
(** Revoke a token (by certificate serial). *)

val pp_error : Format.formatter -> error -> unit

lib/core/analysis.ml: Builtin Format Hashtbl Int Kb List Literal Parser Peer Peertrust_dlp Rule Session Set String

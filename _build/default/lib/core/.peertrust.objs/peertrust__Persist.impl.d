lib/core/persist.ml: Buffer Char Engine Filename Format Fun Hashtbl List Peer Peertrust_crypto Peertrust_dlp Printf Session String Sys

lib/core/proof.mli: Format Literal Peertrust_crypto Peertrust_dlp Rule Session Trace

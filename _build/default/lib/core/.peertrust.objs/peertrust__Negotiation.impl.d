lib/core/negotiation.ml: Engine Format List Literal Parser Peertrust_dlp Peertrust_net Session

lib/core/token.ml: Format List Literal Negotiation Peertrust_crypto Peertrust_dlp Printf Rule Session String Term

lib/core/proxy.mli: Peer Session

lib/core/externals.ml: Hashtbl List Literal Option Peertrust_dlp Sld String Subst Term Unify

lib/core/scenario.ml: Buffer Engine Hashtbl Kb List Literal Option Parser Peer Peertrust_crypto Peertrust_dlp Peertrust_rdf Printf Session Sld String Subst Term

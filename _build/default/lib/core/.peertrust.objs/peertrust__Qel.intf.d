lib/core/qel.mli: Kb Literal Peertrust_dlp Peertrust_rdf Session Term

lib/core/engine.ml: Builtin Fun Hashtbl Kb List Literal Logs Option Peer Peertrust_crypto Peertrust_dlp Peertrust_net Policy Printf Rule Session Sld String Subst Term Trace

lib/core/proxy.ml: Engine Hashtbl Peertrust_net Session

lib/core/peer.ml: Hashtbl Kb List Option Parser Peertrust_crypto Peertrust_dlp Rule Sld

lib/core/delegation.mli: Peer Peertrust_crypto Peertrust_dlp Rule Session Term Trace

lib/core/session.mli: Hashtbl Peer Peertrust_crypto Peertrust_dlp Peertrust_net Sld

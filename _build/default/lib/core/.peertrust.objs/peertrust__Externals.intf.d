lib/core/externals.mli: Peertrust_dlp Sld

lib/core/analysis.mli: Format Literal Peertrust_dlp Rule Session

lib/core/explain.ml: Buffer List Literal Negotiation Peertrust_dlp Peertrust_net Printf Rule String Trace

lib/core/reactor.mli: Literal Negotiation Peertrust_dlp Session

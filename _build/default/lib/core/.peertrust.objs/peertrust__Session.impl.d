lib/core/session.ml: Hashtbl List Option Peer Peertrust_crypto Peertrust_dlp Peertrust_net String

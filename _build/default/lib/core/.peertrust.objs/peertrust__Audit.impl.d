lib/core/audit.ml: Engine Format Hashtbl List Literal Peertrust_crypto Peertrust_dlp Peertrust_net Printf Session String

lib/core/strategy.ml: Engine Fun Hashtbl List Negotiation Parser Peer Peertrust_crypto Peertrust_dlp Peertrust_net Rule Session String

lib/core/reactor.ml: Engine Hashtbl List Literal Logs Negotiation Peer Peertrust_dlp Peertrust_net Queue Rule Session String Term

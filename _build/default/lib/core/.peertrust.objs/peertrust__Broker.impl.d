lib/core/broker.ml: Engine List Literal Peer Peertrust_dlp Rule Session Term

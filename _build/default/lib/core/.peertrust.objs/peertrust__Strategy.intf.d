lib/core/strategy.mli: Literal Negotiation Peertrust_dlp Session

lib/core/chain.ml: Engine Hashtbl Int List Literal Negotiation Peer Peertrust_crypto Peertrust_dlp Printf Session Term

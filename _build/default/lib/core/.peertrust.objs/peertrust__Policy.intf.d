lib/core/policy.mli: Format Kb Literal Peertrust_dlp Rule Sld

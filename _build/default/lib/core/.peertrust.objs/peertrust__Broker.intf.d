lib/core/broker.mli: Peer Peertrust_dlp Rule Session

lib/core/negotiation.mli: Engine Format Literal Peertrust_dlp Peertrust_net Session

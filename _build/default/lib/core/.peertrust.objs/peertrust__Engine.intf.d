lib/core/engine.mli: Literal Peer Peertrust_crypto Peertrust_dlp Peertrust_net Policy Session Sld Trace

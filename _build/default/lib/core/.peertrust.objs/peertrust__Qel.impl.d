lib/core/qel.ml: Buffer Engine Format Hashtbl Kb List Literal Parser Peertrust_dlp Peertrust_net Peertrust_rdf Printf Rule Session Sld String Subst Term

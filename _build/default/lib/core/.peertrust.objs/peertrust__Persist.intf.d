lib/core/persist.mli: Format Session

lib/core/policy.ml: Format Kb List Literal Option Peertrust_dlp Rule Sld String Subst Term

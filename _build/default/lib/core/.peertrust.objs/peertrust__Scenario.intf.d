lib/core/scenario.mli: Peertrust_dlp Session

lib/core/chain.mli: Literal Negotiation Peertrust_crypto Peertrust_dlp Session

lib/core/proof.ml: Buffer Builtin Format List Literal Option Peer Peertrust_crypto Peertrust_dlp Printf Rule Session Subst Term Trace

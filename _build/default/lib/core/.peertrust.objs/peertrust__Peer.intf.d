lib/core/peer.mli: Hashtbl Kb Literal Peertrust_crypto Peertrust_dlp Rule Sld

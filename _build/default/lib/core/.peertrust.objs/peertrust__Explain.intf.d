lib/core/explain.mli: Negotiation Peertrust_dlp Trace

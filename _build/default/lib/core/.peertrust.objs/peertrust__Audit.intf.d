lib/core/audit.mli: Format Literal Peertrust_dlp Session

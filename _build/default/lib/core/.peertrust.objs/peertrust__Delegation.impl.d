lib/core/delegation.ml: Format List Literal Peer Peertrust_crypto Peertrust_dlp Printf Rule Session String Term Trace

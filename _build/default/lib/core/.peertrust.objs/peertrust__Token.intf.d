lib/core/token.mli: Format Literal Negotiation Peertrust_crypto Peertrust_dlp Session

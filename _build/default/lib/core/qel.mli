(** QEL-style metadata queries — the Edutella substrate of the paper's
    introduction: "each peer manages distributed resources described by
    RDF metadata, and interfaces to the Edutella network using a
    Datalog-based query language".

    A query is a projection over a conjunctive Datalog body:

    {v  C, P <- course(C), price(C, P), P < 1500  v}

    Queries run over a provider's released metadata through the ordinary
    negotiation engine — each body literal is decorated with
    [@ provider] and answered under the provider's release policies, so
    the same machinery serves open metadata search (everything [$ true])
    and guarded catalogues.  This is the "search, then negotiate" pipeline
    of the ELENA scenarios. *)

open Peertrust_dlp

type t = { projection : string list; body : Literal.t list }

val parse : string -> t
(** Parse ["X, Y <- lit, lit, ..."].  Projection variables must occur in
    the body.  @raise Parser.Error on bad syntax, [Invalid_argument] on an
    unbound projection variable. *)

val to_string : t -> string

type row = Term.t list

val eval_store : Peertrust_rdf.Triple.Store.store -> t -> row list
(** Evaluate locally over an RDF store's fact projection (no network). *)

val eval_kb : self:string -> Kb.t -> t -> row list
(** Evaluate locally over a knowledge base. *)

val searchable_program : Peertrust_rdf.Registry.t -> string
(** A policy program exposing a registry's metadata publicly: the
    registry's facts plus a [$ true] release rule for each metadata
    predicate ([course/1], [price/2], [freeCourse/1], [<lang>Course/1],
    [triple/3]). *)

val search :
  Session.t -> requester:string -> provider:string -> t -> row list
(** Run the query against one provider over the network: every body
    literal is shipped to the provider (subject to its release policies)
    and the projections of the combined answers are returned,
    de-duplicated. *)

val search_all :
  Session.t -> requester:string -> providers:string list -> t ->
  (string * row list) list
(** Fan a query out to several providers (the Edutella broadcast),
    skipping unreachable ones. *)

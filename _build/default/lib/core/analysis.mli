(** Static negotiation analysis — the guarantees §6 asks for ("one would
    like to see formal guarantees that trust negotiations will always
    terminate and will succeed when possible").

    The analysis abstracts programs to the predicate level (constants and
    arities of arguments are ignored; a predicate key is name/arity) and
    computes a mutual fixpoint of two judgements over a {e world} — a set
    of named peer programs:

    - [derivable P q]: peer [P] can establish some instance of [q], using
      its own rules, built-ins, and statements other peers could release;
    - [released P q]: peer [P] has a release rule ([$] context) for [q]
      whose context and body are satisfiable, so an instance of [q] can be
      disclosed to outsiders.

    Everything the fixpoint misses is {e definitely} locked; what it
    contains {e may} unlock at run time (the abstraction is complete but
    not sound w.r.t. constants, so [may_succeed = false] implies the real
    negotiation fails, while [true] is only a prediction). *)

open Peertrust_dlp

type pred = string * int

type world = (string * Rule.t list) list
(** Peer name, program. *)

val world_of_session : Session.t -> world
val world_of_programs : (string * string) list -> world
(** Parse program texts.  @raise Parser.Error. *)

type report = {
  released : (string * pred) list;
      (** resources that can eventually be disclosed, with their peer *)
  locked : (string * pred) list;
      (** release-guarded resources that can never unlock *)
  deadlocks : (string * pred) list list;
      (** dependency cycles among locked resources (mutual locks) *)
}

val analyze : world -> report

val may_succeed :
  world -> owner:string -> goal:Literal.t -> bool
(** Would a request for [goal] at [owner] possibly be granted to some
    requester?  [false] is definitive failure. *)

val critical_credentials :
  world -> owner:string -> goal:Literal.t -> (string * Rule.t) list
(** The paper's §6 autonomy question — "If I refuse to answer this query,
    could it cause the negotiation to fail?" — answered credential by
    credential: the signed facts/rules whose removal flips {!may_succeed}
    from [true] to [false], with the peer that holds each.  Empty when the
    goal cannot succeed in the first place.  A peer holding a critical
    credential has no autonomy to withhold it; redundant credentials
    (backed by an alternative path) do not appear. *)

val refusal_matters :
  world -> owner:string -> goal:Literal.t -> peer:string -> bool
(** Does [peer] hold at least one critical credential for this goal (i.e.
    could its refusal alone make the negotiation fail)? *)

val pp_report : Format.formatter -> report -> unit

(** First-order terms of the PeerTrust distributed-logic-program language.

    A term is a logical variable, a constant (string, integer or atom), or a
    compound term [f(t1,...,tn)].  The pseudo-variables [Requester] and
    [Self] of the paper are ordinary variables with distinguished names; the
    negotiation engine binds them before evaluation. *)

type t =
  | Var of string  (** logical variable, e.g. [X], [Requester] *)
  | Str of string  (** quoted string constant, e.g. ["Alice"] *)
  | Int of int  (** integer constant *)
  | Atom of string  (** lower-case symbolic constant, e.g. [cs101] *)
  | Compound of string * t list  (** compound term [f(t1,...,tn)], n >= 1 *)

val compare : t -> t -> int
val compare_lists : t list -> t list -> int
val equal : t -> t -> bool

val requester : t
(** The pseudo-variable [Requester]. *)

val self : t
(** The pseudo-variable [Self]. *)

val is_ground : t -> bool
(** [is_ground t] is [true] iff [t] contains no variable. *)

val vars : t -> string list
(** Variables occurring in [t], each reported once, in first-occurrence
    order. *)

val is_pseudo : string -> bool
(** [true] for the pseudo-variable names [Requester] and [Self]. *)

val rename : suffix:string -> t -> t
(** [rename ~suffix t] appends [suffix] to every variable name in [t]; used
    to rename rules apart before unification.  The pseudo-variables
    [Requester] and [Self] are left untouched: their binding is fixed per
    evaluation, not per rule application. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

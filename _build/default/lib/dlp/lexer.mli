(** Hand-written lexer for the PeerTrust policy language.

    Line comments start with [%] or [#] and run to end of line. *)

type token =
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | ARROW  (** [<-] *)
  | AT  (** [@] *)
  | DOLLAR  (** [$] *)
  | SIGNEDBY  (** the keyword [signedBy] *)
  | IDENT of string  (** lower-case identifier *)
  | VAR of string  (** upper-case or [_]-initial identifier *)
  | STRING of string
  | INT of int
  | OP of string
      (** comparison: [=], [!=], [<], [<=], [>], [>=]; or arithmetic:
          [+], [-], [*], [/] *)
  | EOF

type located = { token : token; line : int; col : int }

exception Error of string * int * int
(** [Error (message, line, col)] *)

val tokenize : string -> located list
(** Tokenize a full program text.  The result always ends with [EOF].
    @raise Error on an illegal character or unterminated string. *)

val pp_token : Format.formatter -> token -> unit

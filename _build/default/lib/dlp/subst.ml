module M = Map.Make (String)

type t = Term.t M.t

let empty = M.empty
let is_empty = M.is_empty

let bind v t s =
  if M.mem v s then invalid_arg ("Subst.bind: already bound: " ^ v)
  else M.add v t s

let find v s = M.find_opt v s

let rec walk s t =
  match t with
  | Term.Var v -> ( match M.find_opt v s with Some t' -> walk s t' | None -> t)
  | _ -> t

let rec apply s t =
  match walk s t with
  | Term.Compound (f, args) -> Term.Compound (f, List.map (apply s) args)
  | t' -> t'

let domain s = M.fold (fun v _ acc -> v :: acc) s [] |> List.rev
let bindings s = M.bindings s

let restrict vs s =
  List.fold_left
    (fun acc v ->
      match M.find_opt v s with
      | None -> acc
      | Some _ -> M.add v (apply s (Term.Var v)) acc)
    M.empty vs

let pp fmt s =
  let pp_binding fmt (v, t) = Format.fprintf fmt "%s = %a" v Term.pp t in
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_binding)
    (M.bindings s)

let to_string s = Format.asprintf "%a" pp s

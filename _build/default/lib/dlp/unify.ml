let rec occurs v s t =
  match Subst.walk s t with
  | Term.Var w -> String.equal v w
  | Term.Str _ | Term.Int _ | Term.Atom _ -> false
  | Term.Compound (_, args) -> List.exists (occurs v s) args

let rec terms a b s =
  let a = Subst.walk s a and b = Subst.walk s b in
  match (a, b) with
  | Term.Var x, Term.Var y when String.equal x y -> Some s
  | Term.Var x, t -> if occurs x s t then None else Some (Subst.bind x t s)
  | t, Term.Var y -> if occurs y s t then None else Some (Subst.bind y t s)
  | Term.Str x, Term.Str y -> if String.equal x y then Some s else None
  | Term.Int x, Term.Int y -> if Int.equal x y then Some s else None
  | Term.Atom x, Term.Atom y -> if String.equal x y then Some s else None
  | Term.Compound (f, xs), Term.Compound (g, ys) ->
      if String.equal f g && List.length xs = List.length ys then
        term_lists xs ys s
      else None
  | (Term.Str _ | Term.Int _ | Term.Atom _ | Term.Compound _), _ -> None

and term_lists xs ys s =
  match (xs, ys) with
  | [], [] -> Some s
  | x :: xs', y :: ys' -> (
      match terms x y s with
      | Some s' -> term_lists xs' ys' s'
      | None -> None)
  | _, _ -> None

let rec one_way pattern t s =
  match (pattern, t) with
  | Term.Var x, _ -> (
      (* Bind the pattern variable; an existing binding must agree. *)
      match Subst.find x s with
      | Some bound -> if Term.equal (Subst.apply s bound) t then Some s else None
      | None -> Some (Subst.bind x t s))
  | Term.Str a, Term.Str b when String.equal a b -> Some s
  | Term.Int a, Term.Int b when Int.equal a b -> Some s
  | Term.Atom a, Term.Atom b when String.equal a b -> Some s
  | Term.Compound (f, xs), Term.Compound (g, ys)
    when String.equal f g && List.length xs = List.length ys ->
      one_way_lists xs ys s
  | (Term.Str _ | Term.Int _ | Term.Atom _ | Term.Compound _), _ -> None

and one_way_lists xs ys s =
  match (xs, ys) with
  | [], [] -> Some s
  | x :: xs', y :: ys' -> (
      match one_way x y s with
      | Some s' -> one_way_lists xs' ys' s'
      | None -> None)
  | _, _ -> None

(* Two terms are variants iff each one-way matches the other; we check with
   a pair of injective variable maps built in lockstep. *)
let variant a b =
  let module M = Map.Make (String) in
  let rec go a b (f, g) =
    match (a, b) with
    | Term.Var x, Term.Var y -> (
        match (M.find_opt x f, M.find_opt y g) with
        | Some y', Some x' ->
            if String.equal y' y && String.equal x' x then Some (f, g)
            else None
        | None, None -> Some (M.add x y f, M.add y x g)
        | _, _ -> None)
    | Term.Str x, Term.Str y when String.equal x y -> Some (f, g)
    | Term.Int x, Term.Int y when Int.equal x y -> Some (f, g)
    | Term.Atom x, Term.Atom y when String.equal x y -> Some (f, g)
    | Term.Compound (h, xs), Term.Compound (k, ys)
      when String.equal h k && List.length xs = List.length ys ->
        go_list xs ys (f, g)
    | _, _ -> None
  and go_list xs ys acc =
    match (xs, ys) with
    | [], [] -> Some acc
    | x :: xs', y :: ys' -> (
        match go x y acc with Some acc' -> go_list xs' ys' acc' | None -> None)
    | _, _ -> None
  in
  match go a b (M.empty, M.empty) with Some _ -> true | None -> false

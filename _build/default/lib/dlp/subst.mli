(** Idempotent substitutions: finite maps from variable names to terms.

    Substitutions are kept in triangular form: bindings may map a variable
    to a term that itself contains bound variables; [apply] walks bindings
    to a fixpoint.  This is the standard representation for unification in
    logic-programming engines. *)

type t

val empty : t
val is_empty : t -> bool

val bind : string -> Term.t -> t -> t
(** [bind v t s] adds the binding [v -> t].  Raises [Invalid_argument] if
    [v] is already bound. *)

val find : string -> t -> Term.t option
(** Raw binding of [v], without walking. *)

val walk : t -> Term.t -> Term.t
(** [walk s t] dereferences [t] while it is a variable bound in [s]; the
    result is either a non-variable term or an unbound variable. *)

val apply : t -> Term.t -> Term.t
(** [apply s t] fully resolves [t] under [s] (deep walk). *)

val domain : t -> string list
val bindings : t -> (string * Term.t) list

val restrict : string list -> t -> t
(** [restrict vs s] keeps only the (fully applied) bindings of variables in
    [vs]; used to project answers onto the variables of a query. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Proof traces produced by the SLD engine.

    A trace records, for one proved goal, which rule was applied (with the
    answer substitution already applied to it), the sub-proofs of its body,
    and where remote sub-proofs came from.  Traces are the raw material for
    the paper's "distributed certified proofs": the signed rules appearing
    in a trace are exactly the credentials that support the conclusion. *)

type t =
  | Apply of Rule.t * t list
      (** rule application; a fact is [Apply (fact, [])] *)
  | Builtin of Literal.t  (** satisfied built-in, instantiated *)
  | External of Literal.t  (** satisfied external predicate, instantiated *)
  | Remote of { peer : string; goal : Literal.t; proof : t option }
      (** sub-goal answered by another peer; [proof] is present when the
          remote peer chose to disclose its proof *)

val credentials : t -> Rule.t list
(** The signed rules used anywhere in the trace, without duplicates, in
    first-use order. *)

val credentials_of_list : t list -> Rule.t list

val rules_used : t -> Rule.t list
(** All rules (signed or not) applied in the trace, deduplicated. *)

val remote_peers : t -> string list
(** Peers that contributed remote sub-proofs, deduplicated. *)

val size : t -> int
(** Number of nodes in the trace. *)

val depth : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Key = struct
  type t = string * int

  let compare (p1, a1) (p2, a2) =
    let c = String.compare p1 p2 in
    if c <> 0 then c else Int.compare a1 a2
end

module M = Map.Make (Key)
module SM = Map.Make (String)

(* Entries carry a sequence number so that [rules]/[matching] can restore
   global insertion order; buckets keep entries in reverse order. *)
type entry = int * Rule.t

type bucket = {
  all : entry list;
  by_first : entry list SM.t;  (* first-argument key -> entries *)
  var_first : entry list;  (* heads whose first argument is a variable *)
}

type t = { buckets : bucket M.t; next : int; indexing : bool }

let empty = { buckets = M.empty; next = 0; indexing = true }
let empty_linear = { buckets = M.empty; next = 0; indexing = false }
let empty_bucket = { all = []; by_first = SM.empty; var_first = [] }

(* Index key of a term in head position: constants and functors are
   discriminating, variables are not ([None]). *)
let arg_key = function
  | Term.Var _ -> None
  | Term.Str s -> Some ("s:" ^ s)
  | Term.Int i -> Some ("i:" ^ string_of_int i)
  | Term.Atom a -> Some ("a:" ^ a)
  | Term.Compound (f, args) ->
      Some (Printf.sprintf "c:%s/%d" f (List.length args))

let first_arg (l : Literal.t) =
  match l.Literal.args with [] -> None | a :: _ -> Some a

let mem r kb =
  match M.find_opt (Literal.key r.Rule.head) kb.buckets with
  | None -> false
  | Some bucket -> List.exists (fun (_, r') -> Rule.equal r r') bucket.all

let add r kb =
  if mem r kb then kb
  else begin
    let key = Literal.key r.Rule.head in
    let bucket = Option.value ~default:empty_bucket (M.find_opt key kb.buckets) in
    let entry = (kb.next, r) in
    let bucket = { bucket with all = entry :: bucket.all } in
    let bucket =
      match Option.map arg_key (first_arg r.Rule.head) with
      | None | Some None ->
          (* no arguments, or a variable first argument *)
          { bucket with var_first = entry :: bucket.var_first }
      | Some (Some k) ->
          let prev = Option.value ~default:[] (SM.find_opt k bucket.by_first) in
          { bucket with by_first = SM.add k (entry :: prev) bucket.by_first }
    in
    { kb with buckets = M.add key bucket kb.buckets; next = kb.next + 1 }
  end

let add_list rs kb = List.fold_left (fun kb r -> add r kb) kb rs

let remove r kb =
  let key = Literal.key r.Rule.head in
  match M.find_opt key kb.buckets with
  | None -> kb
  | Some bucket ->
      let drop = List.filter (fun (_, r') -> not (Rule.equal r r')) in
      let bucket =
        {
          all = drop bucket.all;
          by_first = SM.map drop bucket.by_first;
          var_first = drop bucket.var_first;
        }
      in
      {
        kb with
        buckets =
          (if bucket.all = [] then M.remove key kb.buckets
           else M.add key bucket kb.buckets);
      }

let entries_in_order entries =
  List.sort (fun (i, _) (j, _) -> Int.compare i j) entries |> List.map snd

let find key kb =
  match M.find_opt key kb.buckets with
  | None -> []
  | Some bucket -> entries_in_order bucket.all

let matching lit kb =
  match M.find_opt (Literal.key lit) kb.buckets with
  | None -> []
  | Some bucket ->
      if not kb.indexing then entries_in_order bucket.all
      else begin
        match Option.map arg_key (first_arg lit) with
        | None | Some None -> entries_in_order bucket.all
        | Some (Some k) ->
            let indexed =
              Option.value ~default:[] (SM.find_opt k bucket.by_first)
            in
            entries_in_order (indexed @ bucket.var_first)
      end

let rules kb =
  M.fold (fun _ bucket acc -> List.rev_append bucket.all acc) kb.buckets []
  |> entries_in_order

let size kb = M.fold (fun _ bucket n -> n + List.length bucket.all) kb.buckets 0
let fold f kb init = List.fold_left (fun acc r -> f r acc) init (rules kb)
let signed_rules kb = List.filter Rule.is_signed (rules kb)

let of_string ?(indexing = true) src =
  add_list (Parser.parse_program src) (if indexing then empty else empty_linear)

let union a b = fold add b a

let pp fmt kb =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
    Rule.pp fmt (rules kb)

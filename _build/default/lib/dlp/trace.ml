type t =
  | Apply of Rule.t * t list
  | Builtin of Literal.t
  | External of Literal.t
  | Remote of { peer : string; goal : Literal.t; proof : t option }

let dedup_rules rs =
  let rec go seen = function
    | [] -> []
    | r :: rest ->
        if List.exists (Rule.equal r) seen then go seen rest
        else r :: go (r :: seen) rest
  in
  go [] rs

let rec collect_rules acc = function
  | Apply (r, subs) -> List.fold_left collect_rules (r :: acc) subs
  | Builtin _ | External _ -> acc
  | Remote { proof; _ } -> (
      match proof with Some p -> collect_rules acc p | None -> acc)

let rules_used t = dedup_rules (List.rev (collect_rules [] t))
let credentials t = List.filter Rule.is_signed (rules_used t)

let credentials_of_list ts =
  dedup_rules (List.concat_map credentials ts)

let remote_peers t =
  let rec go acc = function
    | Apply (_, subs) -> List.fold_left go acc subs
    | Builtin _ | External _ -> acc
    | Remote { peer; proof; _ } ->
        let acc = if List.mem peer acc then acc else peer :: acc in
        (match proof with Some p -> go acc p | None -> acc)
  in
  List.rev (go [] t)

let rec size = function
  | Apply (_, subs) -> 1 + List.fold_left (fun n t -> n + size t) 0 subs
  | Builtin _ | External _ -> 1
  | Remote { proof; _ } -> (
      1 + match proof with Some p -> size p | None -> 0)

let rec depth = function
  | Apply (_, subs) -> 1 + List.fold_left (fun d t -> max d (depth t)) 0 subs
  | Builtin _ | External _ -> 1
  | Remote { proof; _ } -> (
      1 + match proof with Some p -> depth p | None -> 0)

let rec pp_indent fmt (indent, t) =
  let pad = String.make (2 * indent) ' ' in
  match t with
  | Apply (r, subs) ->
      Format.fprintf fmt "%s%a" pad Rule.pp r;
      List.iter
        (fun sub -> Format.fprintf fmt "@\n%a" pp_indent (indent + 1, sub))
        subs
  | Builtin l -> Format.fprintf fmt "%s%a  [builtin]" pad Literal.pp l
  | External l -> Format.fprintf fmt "%s%a  [external]" pad Literal.pp l
  | Remote { peer; goal; proof } -> (
      Format.fprintf fmt "%s%a  [from %s]" pad Literal.pp goal peer;
      match proof with
      | Some p -> Format.fprintf fmt "@\n%a" pp_indent (indent + 1, p)
      | None -> ())

let pp fmt t = pp_indent fmt (0, t)
let to_string t = Format.asprintf "%a" pp t

let builtins = [ "="; "!="; "<"; "<="; ">"; ">=" ]
let is_builtin (p, n) = n = 2 && List.mem p builtins

(* Evaluate a ground arithmetic expression; [None] for non-arithmetic or
   non-ground terms (and for division by zero). *)
let rec eval_arith = function
  | Term.Int i -> Some i
  | Term.Compound (op, [ a; b ]) when List.mem op [ "+"; "-"; "*"; "/" ] -> (
      match (eval_arith a, eval_arith b) with
      | Some x, Some y -> (
          match op with
          | "+" -> Some (x + y)
          | "-" -> Some (x - y)
          | "*" -> Some (x * y)
          | "/" -> if y = 0 then None else Some (x / y)
          | _ -> None)
      | _, _ -> None)
  | Term.Var _ | Term.Str _ | Term.Atom _ | Term.Compound _ -> None

let is_arith_expr = function
  | Term.Compound (op, [ _; _ ]) -> List.mem op [ "+"; "-"; "*"; "/" ]
  | _ -> false

(* Normalise a comparison operand: evaluate it if it is arithmetic. *)
let normalise t =
  if is_arith_expr t then
    match eval_arith t with Some i -> Term.Int i | None -> t
  else t

let compare_ground a b =
  match (a, b) with
  | Term.Int x, Term.Int y -> Some (Int.compare x y)
  | Term.Str x, Term.Str y -> Some (String.compare x y)
  | Term.Atom x, Term.Atom y -> Some (String.compare x y)
  (* Mixed ground constants have a fixed but arbitrary order; only equality
     and disequality are meaningful across sorts. *)
  | _, _ ->
      if Term.is_ground a && Term.is_ground b then Some (Term.compare a b)
      else None

let eval (lit : Literal.t) s =
  if not (is_builtin (Literal.key lit)) then None
  else
    match lit.Literal.args with
    | [ a; b ] -> (
        let a = normalise (Subst.apply s a) and b = normalise (Subst.apply s b) in
        match lit.Literal.pred with
        | "=" ->
            (* An arithmetic expression that survived normalisation is
               unevaluable (non-ground operand or division by zero): the
               comparison fails rather than unifying structurally. *)
            if is_arith_expr a || is_arith_expr b then Some []
            else (
              match Unify.terms a b s with
              | Some s' -> Some [ s' ]
              | None -> Some [])
        | "!=" ->
            if Term.is_ground a && Term.is_ground b then
              Some (if Term.equal a b then [] else [ s ])
            else Some []
        | op -> (
            match compare_ground a b with
            | None -> Some []
            | Some c ->
                let holds =
                  match op with
                  | "<" -> c < 0
                  | "<=" -> c <= 0
                  | ">" -> c > 0
                  | ">=" -> c >= 0
                  | _ -> assert false
                in
                Some (if holds then [ s ] else [])))
    | _ -> None

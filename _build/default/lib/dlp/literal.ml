type t = { pred : string; args : Term.t list; auth : Term.t list }

let make ?(auth = []) pred args = { pred; args; auth }
let arity l = List.length l.args
let key l = (l.pred, arity l)

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c
  else
    let c = Term.compare_lists a.args b.args in
    if c <> 0 then c else Term.compare_lists a.auth b.auth

let equal a b = compare a b = 0

let outer_authority l =
  match List.rev l.auth with [] -> None | a :: _ -> Some a

let pop_authority l =
  match List.rev l.auth with
  | [] -> None
  | a :: rest -> Some ({ l with auth = List.rev rest }, a)

let push_authority l a = { l with auth = l.auth @ [ a ] }

let apply s l =
  {
    l with
    args = List.map (Subst.apply s) l.args;
    auth = List.map (Subst.apply s) l.auth;
  }

let rename ~suffix l =
  {
    l with
    args = List.map (Term.rename ~suffix) l.args;
    auth = List.map (Term.rename ~suffix) l.auth;
  }

let vars l =
  let add acc v = if List.mem v acc then acc else v :: acc in
  List.rev
    (List.fold_left
       (fun acc t -> List.fold_left add acc (Term.vars t))
       [] (l.args @ l.auth))

let is_ground l = List.for_all Term.is_ground (l.args @ l.auth)

let to_term l =
  let base =
    match l.args with
    | [] -> Term.Atom l.pred
    | args -> Term.Compound (l.pred, args)
  in
  List.fold_left (fun t a -> Term.Compound ("@", [ t; a ])) base l.auth

let of_term t =
  let rec strip acc = function
    | Term.Compound ("@", [ inner; a ]) -> strip (a :: acc) inner
    | base -> (base, acc)
  in
  match strip [] t with
  | Term.Atom p, auth -> Some { pred = p; args = []; auth }
  | Term.Compound (p, args), auth when p <> "@" -> Some { pred = p; args; auth }
  | (Term.Var _ | Term.Str _ | Term.Int _ | Term.Compound _), _ -> None

let unify a b s =
  if String.equal a.pred b.pred && arity a = arity b then
    match Unify.term_lists a.args b.args s with
    | Some s' -> Unify.term_lists a.auth b.auth s'
    | None -> None
  else None

let negate l = { pred = "not"; args = [ to_term l ]; auth = [] }

let naf_inner l =
  match (l.pred, l.args, l.auth) with
  | "not", [ t ], [] -> of_term t
  | _, _, _ -> None

let infix_ops = [ "="; "!="; "<"; "<="; ">"; ">=" ]

let rec pp fmt l =
  match naf_inner l with
  | Some inner -> Format.fprintf fmt "not %a" pp inner
  | None -> (
      (* Built-in comparisons print infix so they re-parse. *)
      match (l.pred, l.args, l.auth) with
      | op, [ a; b ], [] when List.mem op infix_ops ->
          Format.fprintf fmt "%a %s %a" Term.pp a op Term.pp b
      | _, _, _ -> pp_plain fmt l)

and pp_plain fmt l =
  (match l.args with
  | [] -> Format.pp_print_string fmt l.pred
  | args ->
      Format.fprintf fmt "%s(%a)" l.pred
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           Term.pp)
        args);
  List.iter (fun a -> Format.fprintf fmt " @@ %a" Term.pp a) l.auth

let to_string l = Format.asprintf "%a" pp l

(** Rules (definite Horn clauses) of the PeerTrust language.

    Concrete syntax accepted by {!Parser}:

    {v
      head [$ CTX] [<- [{CTX}] [signedBy ["A",...]] body] [signedBy ["A",...]] .
    v}

    - [head_ctx] is the release policy ([$] guard) of the head literal: the
      derived literal may only be disclosed to a requester satisfying it.
    - [rule_ctx] is the release policy of the rule itself (the subscript on
      the arrow in the paper, written [<-{ctx}] here).
    - A context of [None] means the paper's default, [Requester = Self]:
      private to the local peer.  [Some []] is the explicit context [true]:
      releasable to anyone.
    - [signer] lists the authorities whose signatures the rule carries
      ([signedBy \["UIUC"\]]); credentials are signed rules with empty
      bodies. *)

type ctx = Literal.t list
(** A context: conjunction of context literals.  [Requester]/[Self] appear
    as the distinguished variables of the same names. *)

type t = {
  head : Literal.t;
  head_ctx : ctx option;
  rule_ctx : ctx option;
  body : Literal.t list;
  signer : string list;
}

val make :
  ?head_ctx:ctx ->
  ?rule_ctx:ctx ->
  ?signer:string list ->
  Literal.t ->
  Literal.t list ->
  t

val fact : ?signer:string list -> Literal.t -> t
(** A rule with an empty body. *)

val is_fact : t -> bool
val is_signed : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val apply : Subst.t -> t -> t

val rename : suffix:string -> t -> t
(** Rename every variable in the rule (head, contexts, body) apart. *)

val vars : t -> string list

val strip_contexts : t -> t
(** Remove both contexts; the paper strips contexts from rules and literals
    when they are sent to another peer. *)

val subsumes : general:t -> specific:t -> bool
(** [subsumes ~general ~specific] is [true] when [specific] is an instance
    of [general]: same signers, and some substitution of [general]'s
    variables maps its head and body onto [specific]'s.  Contexts are
    ignored (like {!canonical}).  Used to recognise an instantiated rule in
    a proof trace as a use of a stored credential. *)

val canonical : t -> string
(** A canonical serialisation used as the signing payload for signed rules.
    Two alpha-equivalent rules share a canonical form. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

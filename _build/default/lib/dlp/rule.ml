type ctx = Literal.t list

type t = {
  head : Literal.t;
  head_ctx : ctx option;
  rule_ctx : ctx option;
  body : Literal.t list;
  signer : string list;
}

let make ?head_ctx ?rule_ctx ?(signer = []) head body =
  { head; head_ctx; rule_ctx; body; signer }

let fact ?signer head = make ?signer head []
let is_fact r = r.body = []
let is_signed r = r.signer <> []

let compare_ctx a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some xs, Some ys -> List.compare Literal.compare xs ys

let compare a b =
  let c = Literal.compare a.head b.head in
  if c <> 0 then c
  else
    let c = List.compare Literal.compare a.body b.body in
    if c <> 0 then c
    else
      let c = compare_ctx a.head_ctx b.head_ctx in
      if c <> 0 then c
      else
        let c = compare_ctx a.rule_ctx b.rule_ctx in
        if c <> 0 then c else List.compare String.compare a.signer b.signer

let equal a b = compare a b = 0

let apply s r =
  let app_ctx = Option.map (List.map (Literal.apply s)) in
  {
    r with
    head = Literal.apply s r.head;
    head_ctx = app_ctx r.head_ctx;
    rule_ctx = app_ctx r.rule_ctx;
    body = List.map (Literal.apply s) r.body;
  }

let rename ~suffix r =
  let ren_ctx = Option.map (List.map (Literal.rename ~suffix)) in
  {
    r with
    head = Literal.rename ~suffix r.head;
    head_ctx = ren_ctx r.head_ctx;
    rule_ctx = ren_ctx r.rule_ctx;
    body = List.map (Literal.rename ~suffix) r.body;
  }

let vars r =
  let add acc v = if List.mem v acc then acc else v :: acc in
  let of_lits acc lits =
    List.fold_left (fun acc l -> List.fold_left add acc (Literal.vars l)) acc lits
  in
  let acc = of_lits [] [ r.head ] in
  let acc = of_lits acc (Option.value ~default:[] r.head_ctx) in
  let acc = of_lits acc (Option.value ~default:[] r.rule_ctx) in
  List.rev (of_lits acc r.body)

let strip_contexts r = { r with head_ctx = None; rule_ctx = None }

let subsumes ~general ~specific =
  List.length general.body = List.length specific.body
  && List.equal String.equal general.signer specific.signer
  &&
  let g = rename ~suffix:"~sub" general in
  let terms r = Literal.to_term r.head :: List.map Literal.to_term r.body in
  let rec go pairs s =
    match pairs with
    | [] -> true
    | (p, t) :: rest -> (
        match Unify.one_way p t s with
        | Some s' -> go rest s'
        | None -> false)
  in
  go (List.combine (terms g) (terms specific)) Subst.empty

(* Canonical form: variables numbered by first occurrence, fixed printing.
   Contexts are excluded: signatures cover what is sent over the wire, and
   contexts are stripped before sending (paper, section 3.1). *)
let canonical r =
  let counter = ref 0 in
  let tbl = Hashtbl.create 8 in
  let var v =
    match Hashtbl.find_opt tbl v with
    | Some n -> n
    | None ->
        let n = Printf.sprintf "_V%d" !counter in
        incr counter;
        Hashtbl.add tbl v n;
        n
  in
  let buf = Buffer.create 128 in
  let rec term = function
    | Term.Var v -> Buffer.add_string buf (var v)
    | Term.Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (String.escaped s);
        Buffer.add_char buf '"'
    | Term.Int i -> Buffer.add_string buf (string_of_int i)
    | Term.Atom a -> Buffer.add_string buf a
    | Term.Compound (f, args) ->
        Buffer.add_string buf f;
        Buffer.add_char buf '(';
        List.iteri
          (fun i t ->
            if i > 0 then Buffer.add_char buf ',';
            term t)
          args;
        Buffer.add_char buf ')'
  in
  let literal (l : Literal.t) =
    Buffer.add_string buf l.Literal.pred;
    Buffer.add_char buf '(';
    List.iteri
      (fun i t ->
        if i > 0 then Buffer.add_char buf ',';
        term t)
      l.Literal.args;
    Buffer.add_char buf ')';
    List.iter
      (fun a ->
        Buffer.add_char buf '@';
        term a)
      l.Literal.auth
  in
  literal r.head;
  Buffer.add_string buf ":-";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char buf ',';
      literal l)
    r.body;
  Buffer.contents buf

let pp_ctx fmt = function
  | [] -> Format.pp_print_string fmt "true"
  | lits ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
        Literal.pp fmt lits

let pp fmt r =
  Literal.pp fmt r.head;
  Option.iter (fun c -> Format.fprintf fmt " $ %a" pp_ctx c) r.head_ctx;
  (match (r.rule_ctx, r.body) with
  | None, [] -> ()
  | rc, body ->
      Format.pp_print_string fmt " <-";
      Option.iter (fun c -> Format.fprintf fmt "{%a}" pp_ctx c) rc;
      if body <> [] then
        Format.fprintf fmt " %a"
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
             Literal.pp)
          body);
  if r.signer <> [] then
    Format.fprintf fmt " signedBy [%a]"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (fun fmt s -> Format.fprintf fmt "%S" s))
      r.signer;
  Format.pp_print_string fmt "."

let to_string r = Format.asprintf "%a" pp r

type t =
  | Var of string
  | Str of string
  | Int of int
  | Atom of string
  | Compound of string * t list

let rec compare a b =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Str x, Str y -> String.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Int x, Int y -> Int.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Atom x, Atom y -> String.compare x y
  | Atom _, _ -> -1
  | _, Atom _ -> 1
  | Compound (f, xs), Compound (g, ys) ->
      let c = String.compare f g in
      if c <> 0 then c
      else
        let c = Int.compare (List.length xs) (List.length ys) in
        if c <> 0 then c else compare_lists xs ys

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_lists xs' ys'

let equal a b = compare a b = 0
let requester = Var "Requester"
let self = Var "Self"

let rec is_ground = function
  | Var _ -> false
  | Str _ | Int _ | Atom _ -> true
  | Compound (_, args) -> List.for_all is_ground args

let vars t =
  let rec go acc = function
    | Var v -> if List.mem v acc then acc else v :: acc
    | Str _ | Int _ | Atom _ -> acc
    | Compound (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] t)

let is_pseudo v = String.equal v "Requester" || String.equal v "Self"

let rec rename ~suffix = function
  | Var v -> if is_pseudo v then Var v else Var (v ^ suffix)
  | (Str _ | Int _ | Atom _) as t -> t
  | Compound (f, args) -> Compound (f, List.map (rename ~suffix) args)

let rec pp fmt = function
  | Var v -> Format.pp_print_string fmt v
  | Str s -> Format.fprintf fmt "%S" s
  | Int i -> Format.pp_print_int fmt i
  | Atom a -> Format.pp_print_string fmt a
  | Compound (("+" | "-" | "*" | "/") as op, [ a; b ]) ->
      (* Arithmetic prints infix (parenthesised) so it re-parses. *)
      Format.fprintf fmt "(%a %s %a)" pp a op pp b
  | Compound (f, args) ->
      Format.fprintf fmt "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp)
        args

let to_string t = Format.asprintf "%a" pp t

(** Bottom-up (forward-chaining) fixpoint evaluation — the 'push' paradigm
    of §3.2.

    Saturates a knowledge base: starting from the ground facts (including
    the signed-rule axiom instances [h @ A] for every fact [h signedBy
    \[A\]]), repeatedly fires every rule whose body is satisfied, until no
    new ground facts appear.  Uses delta-driven (semi-naive) rounds: a rule
    firing must match at least one body literal against the facts derived
    in the previous round.

    Contexts are ignored here — release policies only govern disclosure,
    not derivation.  Rules whose firing would produce a non-ground head
    (unsafe rules) do not contribute, and neither do rules with
    negation-as-failure body literals (forward chaining is monotonic; use
    the SLD engine for NAF). *)

type result = {
  facts : Literal.t list;  (** the saturated set, in derivation order *)
  rounds : int;  (** number of delta rounds until fixpoint *)
  derived : int;  (** facts beyond the initial ones *)
}

val saturate :
  ?bindings:(string * Term.t) list ->
  ?max_rounds:int ->
  ?max_facts:int ->
  self:string ->
  Kb.t ->
  result
(** [max_rounds] (default 1000) and [max_facts] (default 100_000) bound the
    computation; hitting a bound stops early with the facts so far. *)

val derives :
  ?bindings:(string * Term.t) list -> self:string -> Kb.t -> Literal.t -> bool
(** [derives ~self kb goal]: does the saturated KB contain an instance of
    [goal]? *)

(** Whole-program convenience layer: parsing, printing and static checks. *)

type warning =
  | Unsafe_head_var of Rule.t * string
      (** a head variable bound neither by the body nor by a comparison —
          legal in SLD evaluation (the caller binds it) but unusable by the
          forward engine *)
  | Unbound_authority of Rule.t * string
      (** a body literal's authority variable that no earlier body literal,
          head argument, or pseudo-variable can bind: evaluation of that
          literal would flounder *)
  | Unbound_naf of Rule.t * string
      (** a variable under [not] that nothing before it can bind: the NAF
          goal would flounder at run time *)

val parse : string -> Rule.t list
(** Alias of {!Parser.parse_program}. *)

val to_string : Rule.t list -> string
(** Printable program text that re-parses to the same rules. *)

val check : Rule.t list -> warning list
(** Static lint over a program. *)

val pp_warning : Format.formatter -> warning -> unit

lib/dlp/term.mli: Format

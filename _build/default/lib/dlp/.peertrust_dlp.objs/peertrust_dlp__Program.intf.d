lib/dlp/program.mli: Format Rule

lib/dlp/parser.ml: Format Lexer List Literal Rule Term

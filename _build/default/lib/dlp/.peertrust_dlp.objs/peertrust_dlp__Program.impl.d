lib/dlp/program.ml: Format List Literal Parser Rule Term

lib/dlp/lexer.ml: Buffer Format List Printf String

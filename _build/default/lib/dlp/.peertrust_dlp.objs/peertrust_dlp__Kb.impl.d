lib/dlp/kb.ml: Format Int List Literal Map Option Parser Printf Rule String Term

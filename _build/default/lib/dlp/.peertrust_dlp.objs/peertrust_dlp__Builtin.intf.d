lib/dlp/builtin.mli: Literal Subst

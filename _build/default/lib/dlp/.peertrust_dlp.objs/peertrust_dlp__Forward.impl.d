lib/dlp/forward.ml: Builtin Hashtbl Kb List Literal Option Printf Rule Set String Subst Term

lib/dlp/tabled.ml: Builtin Hashtbl Kb List Literal Option Printf Rule String Subst Term

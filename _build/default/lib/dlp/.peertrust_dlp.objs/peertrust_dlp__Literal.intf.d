lib/dlp/literal.mli: Format Subst Term

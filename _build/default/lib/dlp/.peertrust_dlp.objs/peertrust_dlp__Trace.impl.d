lib/dlp/trace.ml: Format List Literal Rule String

lib/dlp/rule.mli: Format Literal Subst

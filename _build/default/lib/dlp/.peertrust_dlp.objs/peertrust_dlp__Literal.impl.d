lib/dlp/literal.ml: Format List String Subst Term Unify

lib/dlp/builtin.ml: Int List Literal String Subst Term Unify

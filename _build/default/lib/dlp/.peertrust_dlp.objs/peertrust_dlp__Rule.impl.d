lib/dlp/rule.ml: Buffer Format Hashtbl List Literal Option Printf String Subst Term Unify

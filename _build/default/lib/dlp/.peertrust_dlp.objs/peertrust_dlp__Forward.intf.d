lib/dlp/forward.mli: Kb Literal Term

lib/dlp/unify.ml: Int List Map String Subst Term

lib/dlp/term.ml: Format Int List String

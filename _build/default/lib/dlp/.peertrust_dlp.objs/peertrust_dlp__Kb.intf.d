lib/dlp/kb.mli: Format Literal Rule

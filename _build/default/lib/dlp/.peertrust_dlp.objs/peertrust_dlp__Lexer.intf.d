lib/dlp/lexer.mli: Format

lib/dlp/parser.mli: Literal Rule Term

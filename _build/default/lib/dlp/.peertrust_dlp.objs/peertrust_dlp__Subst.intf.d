lib/dlp/subst.mli: Format Term

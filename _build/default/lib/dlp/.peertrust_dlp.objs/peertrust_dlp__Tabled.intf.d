lib/dlp/tabled.mli: Kb Literal Sld Subst Term

lib/dlp/sld.ml: Builtin Fun Kb List Literal Option Printf Rule String Subst Term Trace Unify

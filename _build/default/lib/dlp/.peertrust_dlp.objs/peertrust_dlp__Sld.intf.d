lib/dlp/sld.mli: Kb Literal Subst Term Trace

lib/dlp/trace.mli: Format Literal Rule

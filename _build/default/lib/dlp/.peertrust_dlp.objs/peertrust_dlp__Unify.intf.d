lib/dlp/unify.mli: Subst Term

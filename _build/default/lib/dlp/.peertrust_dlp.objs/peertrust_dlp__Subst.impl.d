lib/dlp/subst.ml: Format List Map String Term

(** Recursive-descent parser for the PeerTrust policy language.

    Grammar (see {!Rule} for the meaning of the pieces):

    {v
      program  := clause*
      clause   := literal [ '$' ctx ] [ '<-' [ '{' ctx '}' ] [ sig ] body? ]
                  [ sig ] '.'
      sig      := 'signedBy' '[' string (',' string)* ']'
      ctx      := 'true' | ctxlit (',' ctxlit)*
      body     := bodylit (',' bodylit)*
      bodylit  := literal | term op term        (op in =, !=, <, <=, >, >=)
      literal  := name [ '(' term (',' term)* ')' ] ('@' term)*
      term     := VAR | STRING | INT | name [ '(' term (',' term)* ')' ]
    v} *)

exception Error of string * int * int
(** [Error (message, line, col)] *)

val parse_program : string -> Rule.t list
(** Parse a whole program.  @raise Error on syntax errors, and re-raises
    {!Lexer.Error} as [Error]. *)

val parse_rule : string -> Rule.t
(** Parse exactly one clause. *)

val parse_literal : string -> Literal.t
(** Parse a single literal (no trailing dot), e.g. a query goal. *)

val parse_query : string -> Literal.t list
(** Parse a comma-separated conjunction of goals (no trailing dot). *)

val parse_term : string -> Term.t

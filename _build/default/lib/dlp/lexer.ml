type token =
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | ARROW
  | AT
  | DOLLAR
  | SIGNEDBY
  | IDENT of string
  | VAR of string
  | STRING of string
  | INT of int
  | OP of string
  | EOF

type located = { token : token; line : int; col : int }

exception Error of string * int * int

let is_digit c = c >= '0' && c <= '9'
let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '\''

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let pos = ref 0 in
  let emit token l c = tokens := { token; line = l; col = c } :: !tokens in
  let advance () =
    (if !pos < n then
       if src.[!pos] = '\n' then (
         incr line;
         col := 1)
       else incr col);
    incr pos
  in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    let l = !line and co = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '%' || c = '#' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if c = '(' then (emit LPAREN l co; advance ())
    else if c = ')' then (emit RPAREN l co; advance ())
    else if c = '{' then (emit LBRACE l co; advance ())
    else if c = '}' then (emit RBRACE l co; advance ())
    else if c = '[' then (emit LBRACKET l co; advance ())
    else if c = ']' then (emit RBRACKET l co; advance ())
    else if c = ',' then (emit COMMA l co; advance ())
    else if c = '.' then (emit DOT l co; advance ())
    else if c = '@' then (emit AT l co; advance ())
    else if c = '$' then (emit DOLLAR l co; advance ())
    else if c = '<' then (
      match peek 1 with
      | Some '-' -> (emit ARROW l co; advance (); advance ())
      | Some '=' -> (emit (OP "<=") l co; advance (); advance ())
      | _ -> (emit (OP "<") l co; advance ()))
    else if c = '>' then (
      match peek 1 with
      | Some '=' -> (emit (OP ">=") l co; advance (); advance ())
      | _ -> (emit (OP ">") l co; advance ()))
    else if c = '=' then (emit (OP "=") l co; advance ())
    else if c = '+' then (emit (OP "+") l co; advance ())
    else if c = '-' then (emit (OP "-") l co; advance ())
    else if c = '*' then (emit (OP "*") l co; advance ())
    else if c = '/' then (emit (OP "/") l co; advance ())
    else if c = '!' then (
      match peek 1 with
      | Some '=' -> (emit (OP "!=") l co; advance (); advance ())
      | _ -> raise (Error ("unexpected character '!'", l, co)))
    else if c = '"' then (
      let buf = Buffer.create 16 in
      advance ();
      let closed = ref false in
      while (not !closed) && !pos < n do
        let d = src.[!pos] in
        if d = '"' then (
          closed := true;
          advance ())
        else if d = '\\' then (
          advance ();
          match if !pos < n then Some src.[!pos] else None with
          | Some 'n' -> (Buffer.add_char buf '\n'; advance ())
          | Some 't' -> (Buffer.add_char buf '\t'; advance ())
          | Some '"' -> (Buffer.add_char buf '"'; advance ())
          | Some '\\' -> (Buffer.add_char buf '\\'; advance ())
          | Some other ->
              raise
                (Error (Printf.sprintf "bad escape '\\%c'" other, !line, !col))
          | None -> raise (Error ("unterminated string", l, co)))
        else (
          Buffer.add_char buf d;
          advance ())
      done;
      if not !closed then raise (Error ("unterminated string", l, co));
      emit (STRING (Buffer.contents buf)) l co)
    else if is_digit c then (
      let buf = Buffer.create 8 in
      while !pos < n && is_digit src.[!pos] do
        Buffer.add_char buf src.[!pos];
        advance ()
      done;
      emit (INT (int_of_string (Buffer.contents buf))) l co)
    else if is_lower c || is_upper c then (
      let buf = Buffer.create 16 in
      while !pos < n && is_ident_char src.[!pos] do
        Buffer.add_char buf src.[!pos];
        advance ()
      done;
      let word = Buffer.contents buf in
      if String.equal word "signedBy" then emit SIGNEDBY l co
      else if is_upper word.[0] then emit (VAR word) l co
      else emit (IDENT word) l co)
    else raise (Error (Printf.sprintf "unexpected character %C" c, l, co))
  done;
  emit EOF !line !col;
  List.rev !tokens

let pp_token fmt = function
  | LPAREN -> Format.pp_print_string fmt "("
  | RPAREN -> Format.pp_print_string fmt ")"
  | LBRACE -> Format.pp_print_string fmt "{"
  | RBRACE -> Format.pp_print_string fmt "}"
  | LBRACKET -> Format.pp_print_string fmt "["
  | RBRACKET -> Format.pp_print_string fmt "]"
  | COMMA -> Format.pp_print_string fmt ","
  | DOT -> Format.pp_print_string fmt "."
  | ARROW -> Format.pp_print_string fmt "<-"
  | AT -> Format.pp_print_string fmt "@"
  | DOLLAR -> Format.pp_print_string fmt "$"
  | SIGNEDBY -> Format.pp_print_string fmt "signedBy"
  | IDENT s -> Format.fprintf fmt "identifier %s" s
  | VAR s -> Format.fprintf fmt "variable %s" s
  | STRING s -> Format.fprintf fmt "%S" s
  | INT i -> Format.pp_print_int fmt i
  | OP s -> Format.pp_print_string fmt s
  | EOF -> Format.pp_print_string fmt "<eof>"

(** In-process simulated peer-to-peer network.

    Peers register a synchronous handler; {!send} delivers a request to the
    target's handler and returns its response, charging latency on the
    shared clock and recording both directions in the statistics and the
    transcript.  Deterministic by construction — no real I/O, no threads —
    which is what makes the benchmark tables reproducible.

    Failure injection: peers can be marked down ({!set_down}), and a
    message budget can be imposed to abort runaway negotiations. *)

type t

exception Unreachable of string
(** Target peer is down or not registered. *)

exception Budget_exhausted
(** The configured message budget was hit. *)

type handler = from:string -> Message.payload -> Message.payload

type entry = {
  time : int;
  from : string;
  target : string;
  summary : string;
  bytes_ : int;
  certs_ : int;  (** certificates carried by this message *)
}

val create : ?latency:int -> ?max_messages:int -> unit -> t
(** [latency] (default 1) is the tick cost of one message direction. *)

val clock : t -> Clock.t
val stats : t -> Stats.t
val register : t -> string -> handler -> unit
(** Re-registering a name replaces its handler. *)

val unregister : t -> string -> unit
val registered : t -> string list
val set_down : t -> string -> bool -> unit
val is_down : t -> string -> bool

val set_link_latency : t -> from:string -> target:string -> int -> unit
(** Override the tick cost of one directed link (e.g. a slow WAN hop to a
    remote authority).  @raise Invalid_argument on negative values. *)

val link_latency : t -> from:string -> target:string -> int
(** Effective latency of a directed link (override or default). *)

val send : t -> from:string -> target:string -> Message.payload -> Message.payload
(** One request/response round trip.
    @raise Unreachable if the target is down or unknown.
    @raise Budget_exhausted past the message budget. *)

val notify : t -> from:string -> target:string -> Message.payload -> unit
(** One-way message: recorded in statistics and transcript, charged
    latency, but not delivered to any handler.  Used to account for
    forwarding traffic handled out-of-band (e.g. device-to-proxy hops).
    @raise Unreachable / Budget_exhausted as {!send}. *)

val transcript : t -> entry list
(** All messages in delivery order (both directions of each round trip). *)

val clear_transcript : t -> unit
val pp_transcript : Format.formatter -> t -> unit

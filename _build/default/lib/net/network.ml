exception Unreachable of string
exception Budget_exhausted

type handler = from:string -> Message.payload -> Message.payload

type entry = {
  time : int;
  from : string;
  target : string;
  summary : string;
  bytes_ : int;
  certs_ : int;
}

type t = {
  clock : Clock.t;
  stats : Stats.t;
  latency : int;
  link_latency : (string * string, int) Hashtbl.t;  (* directed overrides *)
  max_messages : int option;
  peers : (string, handler) Hashtbl.t;
  down : (string, unit) Hashtbl.t;
  mutable log : entry list;  (* reverse order *)
}

let create ?(latency = 1) ?max_messages () =
  {
    clock = Clock.create ();
    stats = Stats.create ();
    latency;
    link_latency = Hashtbl.create 8;
    max_messages;
    peers = Hashtbl.create 16;
    down = Hashtbl.create 4;
    log = [];
  }

let clock t = t.clock
let stats t = t.stats
let register t name handler = Hashtbl.replace t.peers name handler
let unregister t name = Hashtbl.remove t.peers name

let registered t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.peers []
  |> List.sort String.compare

let set_down t name down =
  if down then Hashtbl.replace t.down name ()
  else Hashtbl.remove t.down name

let is_down t name = Hashtbl.mem t.down name

let set_link_latency t ~from ~target ticks =
  if ticks < 0 then invalid_arg "Network.set_link_latency: negative";
  Hashtbl.replace t.link_latency (from, target) ticks

let link_latency t ~from ~target =
  Option.value ~default:t.latency (Hashtbl.find_opt t.link_latency (from, target))

let deliver t ~from ~target payload =
  (match t.max_messages with
  | Some budget when Stats.messages t.stats >= budget -> raise Budget_exhausted
  | Some _ | None -> ());
  let bytes_ = Message.size payload in
  Clock.advance t.clock (link_latency t ~from ~target);
  Stats.record t.stats (Message.kind payload) ~bytes_ ~from ~target;
  t.log <-
    {
      time = Clock.now t.clock;
      from;
      target;
      summary = Message.summary payload;
      bytes_;
      certs_ = Message.cert_count payload;
    }
    :: t.log

let send t ~from ~target payload =
  if is_down t target then raise (Unreachable target);
  match Hashtbl.find_opt t.peers target with
  | None -> raise (Unreachable target)
  | Some handler ->
      deliver t ~from ~target payload;
      let response = handler ~from payload in
      deliver t ~from:target ~target:from response;
      response

let notify t ~from ~target payload =
  if is_down t target then raise (Unreachable target);
  deliver t ~from ~target payload

let transcript t = List.rev t.log
let clear_transcript t = t.log <- []

let pp_transcript fmt t =
  List.iter
    (fun e ->
      Format.fprintf fmt "[%4d] %s -> %s: %s (%d bytes)@\n" e.time e.from
        e.target e.summary e.bytes_)
    (transcript t)

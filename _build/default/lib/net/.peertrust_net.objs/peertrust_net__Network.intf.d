lib/net/network.mli: Clock Format Message Stats

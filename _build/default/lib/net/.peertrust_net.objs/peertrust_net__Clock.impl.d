lib/net/clock.ml:

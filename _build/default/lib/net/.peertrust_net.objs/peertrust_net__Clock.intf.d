lib/net/clock.mli:

lib/net/message.ml: List Literal Peertrust_crypto Peertrust_dlp Printf Rule Stats String Trace

lib/net/network.ml: Clock Format Hashtbl List Message Option Stats String

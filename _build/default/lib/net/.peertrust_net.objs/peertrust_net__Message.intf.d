lib/net/message.mli: Literal Peertrust_crypto Peertrust_dlp Rule Stats Trace

type t = { mutable ticks : int }

let create () = { ticks = 0 }
let now t = t.ticks

let advance t d =
  if d < 0 then invalid_arg "Clock.advance: negative increment"
  else t.ticks <- t.ticks + d

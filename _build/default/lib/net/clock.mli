(** Simulated discrete clock.  One tick is an abstract time unit; the
    network charges ticks per message according to its latency model. *)

type t

val create : unit -> t
val now : t -> int
val advance : t -> int -> unit
(** @raise Invalid_argument on negative increments. *)

(** Parser for a pragmatic subset of Turtle.

    Supported:
    - [@prefix name: <iri> .] declarations;
    - statements [subject predicate object .] with [;] (same subject) and
      [,] (same subject and predicate) continuations;
    - subjects/predicates as qnames ([elena:cs101]) or full IRIs
      ([<http://...>]); the keyword [a] for rdf:type (kept as predicate
      ["a"]);
    - objects additionally as quoted strings and integers;
    - [#] line comments.

    Prefixes are expanded; rdf:type is normalised to the predicate ["a"]. *)

exception Error of string * int
(** [(message, line)] *)

val parse : string -> Triple.t list
val load : string -> Triple.Store.store
(** Parse into a fresh store. *)

(** RDFS-lite inference over a triple store.

    Edutella metadata commonly relies on RDF Schema vocabulary; policies
    should be able to match a course typed [elena:LanguageCourse] against
    a rule about [elena:Course].  This module computes the RDFS closure
    for the fragment that matters in practice:

    - [rdfs:subClassOf] transitivity and [rdf:type] propagation
      (rules rdfs9/rdfs11);
    - [rdfs:subPropertyOf] transitivity and property propagation
      (rules rdfs5/rdfs7);
    - [rdfs:domain] / [rdfs:range] typing of subjects/objects
      (rules rdfs2/rdfs3).

    Vocabulary IRIs are recognised by local name ([subClassOf],
    [subPropertyOf], [domain], [range]) so any prefix binding works. *)

val close : Triple.Store.store -> Triple.Store.store
(** A new store containing the input triples plus the RDFS closure.
    Terminates on cyclic hierarchies (fixpoint on a finite universe). *)

val inferred : Triple.Store.store -> Triple.t list
(** Only the derived triples. *)

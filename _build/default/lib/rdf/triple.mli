(** RDF triples and an indexed triple store.

    The Edutella substrate: each peer's resources (courses, services,
    documents) are described by RDF metadata; policies range over facts
    derived from these descriptions (see {!Mapping}). *)

type obj = Iri of string | Str of string | Int of int

type t = { subject : string; predicate : string; obj : obj }

val obj_equal : obj -> obj -> bool
val equal : t -> t -> bool
val pp_obj : Format.formatter -> obj -> unit
val pp : Format.formatter -> t -> unit

(** Mutable store with a predicate index. *)
module Store : sig
  type store

  val create : unit -> store
  val add : store -> t -> unit
  (** Duplicate triples are ignored. *)

  val size : store -> int
  val all : store -> t list
  (** Insertion order. *)

  val find :
    ?subject:string -> ?predicate:string -> ?obj:obj -> store -> t list
  (** Triples matching every supplied component. *)

  val subjects_of_type : store -> string -> string list
  (** Subjects with an [rdf:type] (predicate ["a"]) triple to the given
      class IRI. *)
end

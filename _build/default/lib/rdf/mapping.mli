(** RDF metadata → DLP facts: the bridge the paper describes as "PeerTrust
    1.0 imports RDF metadata to represent policies for access to
    resources".

    Each triple [s p o] becomes two facts:
    - a generic [triple("s", "p", o')] fact, and
    - a predicate-style fact [local("s", o')] where [local] is the local
      part of [p]'s IRI (after the last [/] or [#]) — this is what policy
      rules typically match on, e.g. [price(Course, P)].

    IRIs map to atoms when they are valid lower-case identifiers and to
    strings otherwise; for predicate-style facts the subject is shortened
    the same way. *)

open Peertrust_dlp

val local_name : string -> string
(** The fragment after the last [#] or [/] (the whole string if none). *)

val term_of_obj : Triple.obj -> Term.t
val term_of_iri : string -> Term.t

val facts_of_triple : Triple.t -> Rule.t list
val facts_of_store : Triple.Store.store -> Rule.t list
val kb_of_store : Triple.Store.store -> Kb.t
val extend_kb : Kb.t -> Triple.Store.store -> Kb.t

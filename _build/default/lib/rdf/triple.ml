type obj = Iri of string | Str of string | Int of int

type t = { subject : string; predicate : string; obj : obj }

let obj_equal a b =
  match (a, b) with
  | Iri x, Iri y -> String.equal x y
  | Str x, Str y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | (Iri _ | Str _ | Int _), _ -> false

let equal a b =
  String.equal a.subject b.subject
  && String.equal a.predicate b.predicate
  && obj_equal a.obj b.obj

let pp_obj fmt = function
  | Iri i -> Format.fprintf fmt "<%s>" i
  | Str s -> Format.fprintf fmt "%S" s
  | Int i -> Format.pp_print_int fmt i

let pp fmt t =
  Format.fprintf fmt "<%s> <%s> %a ." t.subject t.predicate pp_obj t.obj

module Store = struct
  type store = {
    mutable triples : t list;  (* reverse insertion order *)
    by_predicate : (string, t list) Hashtbl.t;
    mutable count : int;
  }

  let create () = { triples = []; by_predicate = Hashtbl.create 32; count = 0 }

  let mem store triple =
    match Hashtbl.find_opt store.by_predicate triple.predicate with
    | None -> false
    | Some ts -> List.exists (equal triple) ts

  let add store triple =
    if not (mem store triple) then begin
      store.triples <- triple :: store.triples;
      store.count <- store.count + 1;
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt store.by_predicate triple.predicate)
      in
      Hashtbl.replace store.by_predicate triple.predicate (triple :: prev)
    end

  let size store = store.count
  let all store = List.rev store.triples

  let find ?subject ?predicate ?obj store =
    let pool =
      match predicate with
      | Some p -> List.rev (Option.value ~default:[] (Hashtbl.find_opt store.by_predicate p))
      | None -> all store
    in
    List.filter
      (fun t ->
        (match subject with Some s -> String.equal s t.subject | None -> true)
        && (match obj with Some o -> obj_equal o t.obj | None -> true))
      pool

  let subjects_of_type store class_iri =
    find ~predicate:"a" ~obj:(Iri class_iri) store
    |> List.map (fun t -> t.subject)
end

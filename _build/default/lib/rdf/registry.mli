(** Learning-resource registry: the Edutella/ELENA-flavoured view of a
    peer's resources.

    Resources (courses) are recorded as RDF triples in an underlying store
    and projected to the DLP facts the paper's policies match on:
    [course(Id)], [price(Id, P)], [freeCourse(Id)] (when the price is 0),
    and [<language>Course(Id)] (e.g. [spanishCourse(cs150)]). *)

type t

val namespace : string
(** IRI prefix used for registry-minted subjects. *)

val create : unit -> t
val store : t -> Triple.Store.store

val add_course :
  t -> id:string -> ?price:int -> ?language:string -> ?provider:string ->
  unit -> unit
(** Register a course.  [id] must be a lower-case identifier (it becomes a
    DLP atom).  Missing [price] means "not purchasable" (no price fact; not
    free either).  @raise Invalid_argument on a malformed id. *)

val courses : t -> string list
(** Course ids in registration order. *)

val to_kb : t -> Peertrust_dlp.Kb.t
(** Project the registry to DLP facts (including the raw
    [triple/3] view from {!Mapping}). *)

exception Error of string * int

type token =
  | Iri of string
  | Qname of string * string  (* prefix, local *)
  | A
  | Str of string
  | Int of int
  | Prefix  (* @prefix *)
  | Dot
  | Semi
  | Comma
  | Colon_name of string  (* name: in a prefix declaration *)
  | Eof

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let pos = ref 0 in
  let toks = ref [] in
  let emit t = toks := (t, !line) :: !toks in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let is_name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.'
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '#' then
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    else if c = '.' then (emit Dot; incr pos)
    else if c = ';' then (emit Semi; incr pos)
    else if c = ',' then (emit Comma; incr pos)
    else if c = '<' then begin
      let close = try String.index_from src !pos '>' with Not_found -> -1 in
      if close < 0 then raise (Error ("unterminated IRI", !line));
      emit (Iri (String.sub src (!pos + 1) (close - !pos - 1)));
      pos := close + 1
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr pos;
      let closed = ref false in
      while (not !closed) && !pos < n do
        let d = src.[!pos] in
        if d = '"' then begin
          closed := true;
          incr pos
        end
        else if d = '\\' && !pos + 1 < n then begin
          Buffer.add_char buf src.[!pos + 1];
          pos := !pos + 2
        end
        else begin
          if d = '\n' then incr line;
          Buffer.add_char buf d;
          incr pos
        end
      done;
      if not !closed then raise (Error ("unterminated string", !line));
      emit (Str (Buffer.contents buf))
    end
    else if c = '@' then begin
      (* only @prefix is supported *)
      if !pos + 7 <= n && String.sub src !pos 7 = "@prefix" then begin
        emit Prefix;
        pos := !pos + 7
      end
      else raise (Error ("unsupported @-directive", !line))
    end
    else if (c >= '0' && c <= '9') || (c = '-' && (match peek 1 with Some d -> d >= '0' && d <= '9' | None -> false)) then begin
      let start = !pos in
      if c = '-' then incr pos;
      while !pos < n && src.[!pos] >= '0' && src.[!pos] <= '9' do
        incr pos
      done;
      emit (Int (int_of_string (String.sub src start (!pos - start))))
    end
    else if is_name_char c then begin
      let start = !pos in
      while !pos < n && is_name_char src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      (* Names ending in '.' are a name followed by the end-of-statement
         dot. *)
      let word, had_dot =
        if String.length word > 0 && word.[String.length word - 1] = '.' then
          (String.sub word 0 (String.length word - 1), true)
        else (word, false)
      in
      (if !pos < n && src.[!pos] = ':' then begin
         incr pos;
         if !pos < n && is_name_char src.[!pos] then begin
           let s2 = !pos in
           while !pos < n && is_name_char src.[!pos] do
             incr pos
           done;
           let local = String.sub src s2 (!pos - s2) in
           let local, had_dot2 =
             if String.length local > 0 && local.[String.length local - 1] = '.'
             then (String.sub local 0 (String.length local - 1), true)
             else (local, false)
           in
           emit (Qname (word, local));
           if had_dot2 then emit Dot
         end
         else emit (Colon_name word)
       end
       else if String.equal word "a" then emit A
       else raise (Error (Printf.sprintf "bare name %S (expected qname or IRI)" word, !line)));
      if had_dot then emit Dot
    end
    else raise (Error (Printf.sprintf "unexpected character %C" c, !line))
  done;
  emit Eof;
  List.rev !toks

let parse src =
  let toks = ref (tokenize src) in
  let peek () = match !toks with [] -> (Eof, 0) | t :: _ -> t in
  let next () =
    match !toks with
    | [] -> (Eof, 0)
    | t :: rest ->
        toks := rest;
        t
  in
  let prefixes = Hashtbl.create 8 in
  let expand prefix local line =
    match Hashtbl.find_opt prefixes prefix with
    | Some iri -> iri ^ local
    | None -> raise (Error (Printf.sprintf "unknown prefix %S" prefix, line))
  in
  let triples = ref [] in
  let parse_node_iri () =
    match next () with
    | Iri i, _ -> i
    | Qname (p, l), line -> expand p l line
    | _, line -> raise (Error ("expected IRI or qname", line))
  in
  let parse_predicate () =
    match peek () with
    | A, _ ->
        ignore (next ());
        "a"
    | _ -> parse_node_iri ()
  in
  let parse_object () =
    match peek () with
    | Str s, _ ->
        ignore (next ());
        Triple.Str s
    | Int i, _ ->
        ignore (next ());
        Triple.Int i
    | _ -> Triple.Iri (parse_node_iri ())
  in
  let rec statements () =
    match peek () with
    | Eof, _ -> ()
    | Prefix, line ->
        ignore (next ());
        let name =
          match next () with
          | Colon_name n, _ -> n
          | Qname (p, ""), _ -> p
          | _, l -> raise (Error ("expected prefix name", l))
        in
        let iri =
          match next () with
          | Iri i, _ -> i
          | _, l -> raise (Error ("expected IRI in @prefix", l))
        in
        (match next () with
        | Dot, _ -> ()
        | _, l -> raise (Error ("expected '.' after @prefix", l)));
        Hashtbl.replace prefixes name iri;
        ignore line;
        statements ()
    | _ ->
        let subject = parse_node_iri () in
        let rec predicate_list () =
          let predicate = parse_predicate () in
          let rec object_list () =
            let obj = parse_object () in
            triples := { Triple.subject; predicate; obj } :: !triples;
            match peek () with
            | Comma, _ ->
                ignore (next ());
                object_list ()
            | _ -> ()
          in
          object_list ();
          match peek () with
          | Semi, _ ->
              ignore (next ());
              (* allow trailing ';' before '.' *)
              (match peek () with Dot, _ -> () | _ -> predicate_list ())
          | _ -> ()
        in
        predicate_list ();
        (match next () with
        | Dot, _ -> ()
        | _, l -> raise (Error ("expected '.' at end of statement", l)));
        statements ()
  in
  statements ();
  List.rev !triples

let load src =
  let store = Triple.Store.create () in
  List.iter (Triple.Store.add store) (parse src);
  store

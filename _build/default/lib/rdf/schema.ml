let is_vocab name iri = String.equal (Mapping.local_name iri) name

let close store =
  let out = Triple.Store.create () in
  List.iter (Triple.Store.add out) (Triple.Store.all store);
  let changed = ref true in
  let add t =
    let before = Triple.Store.size out in
    Triple.Store.add out t;
    if Triple.Store.size out > before then changed := true
  in
  while !changed do
    changed := false;
    let triples = Triple.Store.all out in
    let subclass =
      List.filter (fun (t : Triple.t) -> is_vocab "subClassOf" t.Triple.predicate) triples
    in
    let subprop =
      List.filter (fun (t : Triple.t) -> is_vocab "subPropertyOf" t.Triple.predicate) triples
    in
    (* rdfs11: subClassOf transitivity *)
    List.iter
      (fun (a : Triple.t) ->
        List.iter
          (fun (b : Triple.t) ->
            match a.Triple.obj with
            | Triple.Iri mid when String.equal mid b.Triple.subject ->
                add
                  {
                    Triple.subject = a.Triple.subject;
                    predicate = a.Triple.predicate;
                    obj = b.Triple.obj;
                  }
            | _ -> ())
          subclass)
      subclass;
    (* rdfs9: type propagation along subClassOf *)
    List.iter
      (fun (t : Triple.t) ->
        if String.equal t.Triple.predicate "a" then
          match t.Triple.obj with
          | Triple.Iri cls ->
              List.iter
                (fun (sc : Triple.t) ->
                  if String.equal sc.Triple.subject cls then
                    add
                      {
                        Triple.subject = t.Triple.subject;
                        predicate = "a";
                        obj = sc.Triple.obj;
                      })
                subclass
          | _ -> ())
      triples;
    (* rdfs5: subPropertyOf transitivity *)
    List.iter
      (fun (a : Triple.t) ->
        List.iter
          (fun (b : Triple.t) ->
            match a.Triple.obj with
            | Triple.Iri mid when String.equal mid b.Triple.subject ->
                add
                  {
                    Triple.subject = a.Triple.subject;
                    predicate = a.Triple.predicate;
                    obj = b.Triple.obj;
                  }
            | _ -> ())
          subprop)
      subprop;
    (* rdfs7: property propagation along subPropertyOf *)
    List.iter
      (fun (t : Triple.t) ->
        List.iter
          (fun (sp : Triple.t) ->
            if String.equal sp.Triple.subject t.Triple.predicate then
              match sp.Triple.obj with
              | Triple.Iri super ->
                  add
                    {
                      Triple.subject = t.Triple.subject;
                      predicate = super;
                      obj = t.Triple.obj;
                    }
              | _ -> ())
          subprop)
      triples;
    (* rdfs2/rdfs3: domain and range typing *)
    List.iter
      (fun (decl : Triple.t) ->
        let apply_domain = is_vocab "domain" decl.Triple.predicate in
        let apply_range = is_vocab "range" decl.Triple.predicate in
        if apply_domain || apply_range then
          List.iter
            (fun (t : Triple.t) ->
              if String.equal t.Triple.predicate decl.Triple.subject then begin
                if apply_domain then
                  add { Triple.subject = t.Triple.subject; predicate = "a"; obj = decl.Triple.obj };
                if apply_range then
                  match t.Triple.obj with
                  | Triple.Iri o ->
                      add { Triple.subject = o; predicate = "a"; obj = decl.Triple.obj }
                  | _ -> ()
              end)
            triples)
      triples
  done;
  out

let inferred store =
  let closed = close store in
  let original = Triple.Store.all store in
  List.filter
    (fun t -> not (List.exists (Triple.equal t) original))
    (Triple.Store.all closed)

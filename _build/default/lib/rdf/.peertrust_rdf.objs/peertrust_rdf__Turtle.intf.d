lib/rdf/turtle.mli: Triple

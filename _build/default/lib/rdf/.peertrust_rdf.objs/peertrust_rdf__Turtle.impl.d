lib/rdf/turtle.ml: Buffer Hashtbl List Printf String Triple

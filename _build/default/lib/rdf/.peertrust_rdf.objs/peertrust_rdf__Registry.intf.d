lib/rdf/registry.mli: Peertrust_dlp Triple

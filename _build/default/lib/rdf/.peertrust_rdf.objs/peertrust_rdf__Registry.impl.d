lib/rdf/registry.ml: Kb List Literal Mapping Option Peertrust_dlp Printf Rule String Term Triple

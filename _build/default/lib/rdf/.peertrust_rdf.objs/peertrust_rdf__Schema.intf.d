lib/rdf/schema.mli: Triple

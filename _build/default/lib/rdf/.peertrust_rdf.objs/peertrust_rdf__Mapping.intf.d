lib/rdf/mapping.mli: Kb Peertrust_dlp Rule Term Triple

lib/rdf/schema.ml: List Mapping String Triple

lib/rdf/triple.ml: Format Hashtbl Int List Option String

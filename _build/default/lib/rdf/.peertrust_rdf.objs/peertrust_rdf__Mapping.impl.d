lib/rdf/mapping.ml: Kb List Literal Peertrust_dlp Rule String Term Triple

lib/rdf/triple.mli: Format

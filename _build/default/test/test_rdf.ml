(* Tests for the RDF substrate: triples, the Turtle-subset parser, the
   RDF-to-DLP mapping and the resource registry. *)

open Peertrust_rdf
module Dlp = Peertrust_dlp

let sample_turtle =
  {|
    @prefix elena: <http://elena-project.org/resources#> .
    @prefix dc: <http://purl.org/dc/elements/1.1/> .

    # a Spanish course
    elena:spanish101 a elena:Course ;
        dc:title "Spanish for beginners" ;
        elena:price 0 ;
        elena:language "spanish" .

    elena:cs411 a elena:Course ;
        elena:price 1000 .

    elena:cs411 elena:provider "E-Learn" .
  |}

let test_store_basics () =
  let store = Triple.Store.create () in
  let t =
    { Triple.subject = "s"; predicate = "p"; obj = Triple.Str "o" }
  in
  Triple.Store.add store t;
  Triple.Store.add store t;
  Alcotest.(check int) "dedup" 1 (Triple.Store.size store);
  Triple.Store.add store { t with Triple.obj = Triple.Int 4 };
  Alcotest.(check int) "two now" 2 (Triple.Store.size store);
  Alcotest.(check int) "find by predicate" 2
    (List.length (Triple.Store.find ~predicate:"p" store));
  Alcotest.(check int) "find by object" 1
    (List.length (Triple.Store.find ~obj:(Triple.Int 4) store))

let test_turtle_parse () =
  let triples = Turtle.parse sample_turtle in
  Alcotest.(check int) "seven triples" 7 (List.length triples);
  let store = Turtle.load sample_turtle in
  Alcotest.(check (list string)) "typed subjects"
    [
      "http://elena-project.org/resources#spanish101";
      "http://elena-project.org/resources#cs411";
    ]
    (Triple.Store.subjects_of_type store
       "http://elena-project.org/resources#Course")

let test_turtle_object_forms () =
  let triples =
    Turtle.parse
      {|@prefix x: <http://x#> .
        x:a x:knows x:b , x:c ; x:age 41 ; x:name "Ann" .|}
  in
  Alcotest.(check int) "comma and semicolon expand" 4 (List.length triples)

let test_turtle_full_iris () =
  match Turtle.parse {|<http://a> <http://b> <http://c> .|} with
  | [ { Triple.subject = "http://a"; predicate = "http://b"; obj = Triple.Iri "http://c" } ] ->
      ()
  | _ -> Alcotest.fail "full IRI statement"

let test_turtle_errors () =
  let expect src =
    try
      ignore (Turtle.parse src);
      Alcotest.failf "expected parse error for %s" src
    with Turtle.Error _ -> ()
  in
  expect {|x:a x:b x:c .|};  (* unknown prefix *)
  expect {|@prefix x: <http://x#> . x:a x:b |};  (* missing dot *)
  expect {|@base <http://x> .|}  (* unsupported directive *)

let test_mapping_local_names () =
  Alcotest.(check string) "hash wins" "price"
    (Mapping.local_name "http://elena#price");
  Alcotest.(check string) "slash" "title"
    (Mapping.local_name "http://purl.org/dc/title");
  Alcotest.(check string) "no separator" "plain" (Mapping.local_name "plain")

let test_mapping_facts () =
  let store = Turtle.load sample_turtle in
  let kb = Mapping.kb_of_store store in
  let provable q =
    Dlp.Sld.provable ~self:"peer" kb (Dlp.Parser.parse_query q)
  in
  Alcotest.(check bool) "price fact" true (provable "price(cs411, 1000)");
  Alcotest.(check bool) "title fact" true
    (provable {|title(spanish101, "Spanish for beginners")|});
  Alcotest.(check bool) "generic triple fact" true
    (provable
       {|triple(cs411, "http://elena-project.org/resources#price", 1000)|});
  Alcotest.(check bool) "type fact" true (provable "a(cs411, X)")

let test_registry () =
  let reg = Registry.create () in
  Registry.add_course reg ~id:"spanish101" ~price:0 ~language:"spanish" ();
  Registry.add_course reg ~id:"cs411" ~price:1000 ~provider:"E-Learn" ();
  Registry.add_course reg ~id:"seminar1" ();
  Alcotest.(check (list string)) "courses in order"
    [ "spanish101"; "cs411"; "seminar1" ]
    (Registry.courses reg);
  let kb = Registry.to_kb reg in
  let provable q =
    Dlp.Sld.provable ~self:"peer" kb (Dlp.Parser.parse_query q)
  in
  Alcotest.(check bool) "free course" true (provable "freeCourse(spanish101)");
  Alcotest.(check bool) "language projection" true
    (provable "spanishCourse(spanish101)");
  Alcotest.(check bool) "price" true (provable "price(cs411, 1000)");
  (* The raw RDF view still exposes the zero price; only the projected
     price fact is suppressed in favour of freeCourse. *)
  Alcotest.(check bool) "raw zero price visible" true
    (provable "price(spanish101, 0)");
  Alcotest.(check bool) "unpriced course not free" false
    (provable "freeCourse(seminar1)");
  Alcotest.(check bool) "course facts" true (provable "course(seminar1)")

let test_registry_bad_id () =
  let reg = Registry.create () in
  Alcotest.check_raises "uppercase rejected"
    (Invalid_argument "Registry.add_course: bad id \"CS411\"") (fun () ->
      Registry.add_course reg ~id:"CS411" ())

let test_registry_policy_integration () =
  (* A policy over registry-derived facts: discounted Spanish courses. *)
  let reg = Registry.create () in
  Registry.add_course reg ~id:"spanish101" ~price:500 ~language:"spanish" ();
  Registry.add_course reg ~id:"french201" ~price:500 ~language:"french" ();
  let kb =
    Dlp.Kb.union (Registry.to_kb reg)
      (Dlp.Kb.of_string
         "discounted(C) <- spanishCourse(C), price(C, P), P < 1000.")
  in
  let answers =
    Dlp.Sld.answers ~self:"peer" kb (Dlp.Parser.parse_query "discounted(C)")
  in
  Alcotest.(check int) "only the Spanish course" 1 (List.length answers)

(* ------------------------------------------------------------------ *)
(* RDFS-lite inference *)

let schema_turtle =
  {|
    @prefix e: <http://elena#> .
    @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
    e:LanguageCourse rdfs:subClassOf e:Course .
    e:SpanishCourse rdfs:subClassOf e:LanguageCourse .
    e:spanish101 a e:SpanishCourse .
    e:tutors rdfs:subPropertyOf e:teaches .
    e:ann e:tutors e:spanish101 .
    e:teaches rdfs:domain e:Teacher .
    e:teaches rdfs:range e:Course .
  |}

let test_schema_subclass_closure () =
  let closed = Schema.close (Turtle.load schema_turtle) in
  let typed cls =
    List.mem "http://elena#spanish101"
      (Triple.Store.subjects_of_type closed ("http://elena#" ^ cls))
  in
  Alcotest.(check bool) "direct type" true (typed "SpanishCourse");
  Alcotest.(check bool) "one level up" true (typed "LanguageCourse");
  Alcotest.(check bool) "two levels up (transitive)" true (typed "Course")

let test_schema_subproperty () =
  let closed = Schema.close (Turtle.load schema_turtle) in
  Alcotest.(check int) "tutors implies teaches" 1
    (List.length
       (Triple.Store.find ~subject:"http://elena#ann"
          ~predicate:"http://elena#teaches" closed))

let test_schema_domain_range () =
  let closed = Schema.close (Turtle.load schema_turtle) in
  Alcotest.(check bool) "domain types the subject" true
    (List.mem "http://elena#ann"
       (Triple.Store.subjects_of_type closed "http://elena#Teacher"));
  Alcotest.(check bool) "range types the object" true
    (List.mem "http://elena#spanish101"
       (Triple.Store.subjects_of_type closed "http://elena#Course"))

let test_schema_cycle_terminates () =
  let cyclic =
    {|@prefix e: <http://e#> .
      @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
      e:A rdfs:subClassOf e:B .
      e:B rdfs:subClassOf e:A .
      e:x a e:A .|}
  in
  let closed = Schema.close (Turtle.load cyclic) in
  Alcotest.(check bool) "x typed both ways" true
    (List.mem "http://e#x" (Triple.Store.subjects_of_type closed "http://e#B"))

let test_schema_inferred_only () =
  let store = Turtle.load schema_turtle in
  let inferred = Schema.inferred store in
  Alcotest.(check bool) "some inferences" true (List.length inferred > 0);
  List.iter
    (fun t ->
      Alcotest.(check bool) "not in original" false
        (List.exists (Triple.equal t) (Triple.Store.all store)))
    inferred

let test_schema_policy_over_superclass () =
  (* A policy about courses matches a resource only typed as a Spanish
     course, via the closure. *)
  let kb = Mapping.kb_of_store (Schema.close (Turtle.load schema_turtle)) in
  Alcotest.(check bool) "policy sees the superclass type" true
    (Dlp.Sld.provable ~self:"p" kb
       (Dlp.Parser.parse_query {|a(spanish101, "Course")|}))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "rdf"
    [
      ("store", [ tc "basics" test_store_basics ]);
      ( "turtle",
        [
          tc "parse sample" test_turtle_parse;
          tc "object forms" test_turtle_object_forms;
          tc "full IRIs" test_turtle_full_iris;
          tc "errors" test_turtle_errors;
        ] );
      ( "mapping",
        [
          tc "local names" test_mapping_local_names;
          tc "facts" test_mapping_facts;
        ] );
      ( "registry",
        [
          tc "projection" test_registry;
          tc "bad id" test_registry_bad_id;
          tc "policy integration" test_registry_policy_integration;
        ] );
      ( "schema",
        [
          tc "subclass closure" test_schema_subclass_closure;
          tc "subproperty" test_schema_subproperty;
          tc "domain and range" test_schema_domain_range;
          tc "cyclic hierarchy terminates" test_schema_cycle_terminates;
          tc "inferred set" test_schema_inferred_only;
          tc "policy over superclass" test_schema_policy_over_superclass;
        ] );
    ]

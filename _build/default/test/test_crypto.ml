(* Tests for the crypto substrate: PRNG, bignum arithmetic, SHA-256 test
   vectors, RSA signatures, keystore and certificates. *)

open Peertrust_crypto

let bn = Alcotest.testable Bignum.pp Bignum.equal

(* ------------------------------------------------------------------ *)
(* PRNG *)

let test_prng_deterministic () =
  let a = Prng.create 7L and b = Prng.create 7L in
  for _ = 1 to 10 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_bound () =
  let g = Prng.create 1L in
  for _ = 1 to 1000 do
    let v = Prng.next_int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_split_independent () =
  let g = Prng.create 3L in
  let h = Prng.split g in
  Alcotest.(check bool) "streams differ" true
    (Prng.next_int64 g <> Prng.next_int64 h)

(* ------------------------------------------------------------------ *)
(* Bignum basics *)

let test_bignum_of_to_int () =
  List.iter
    (fun i ->
      match Bignum.to_int_opt (Bignum.of_int i) with
      | Some j -> Alcotest.(check int) "roundtrip" i j
      | None -> Alcotest.fail "fits in int")
    [ 0; 1; 2; 255; 256; 65535; 1 lsl 26; (1 lsl 26) - 1; 123456789; max_int ]

let test_bignum_compare () =
  let a = Bignum.of_int 100 and b = Bignum.of_int 200 in
  Alcotest.(check bool) "lt" true (Bignum.compare a b < 0);
  Alcotest.(check bool) "gt" true (Bignum.compare b a > 0);
  Alcotest.(check bool) "eq" true (Bignum.compare a a = 0);
  Alcotest.(check bool) "zero smallest" true
    (Bignum.compare Bignum.zero (Bignum.of_int 1) < 0)

let test_bignum_bits () =
  Alcotest.(check int) "bits 0" 0 (Bignum.bits Bignum.zero);
  Alcotest.(check int) "bits 1" 1 (Bignum.bits Bignum.one);
  Alcotest.(check int) "bits 255" 8 (Bignum.bits (Bignum.of_int 255));
  Alcotest.(check int) "bits 256" 9 (Bignum.bits (Bignum.of_int 256));
  Alcotest.(check int) "bits 2^40" 41 (Bignum.bits (Bignum.of_int (1 lsl 40)))

let test_bignum_add_sub_small () =
  let a = Bignum.of_int 123456789 and b = Bignum.of_int 987654321 in
  Alcotest.(check bn) "add" (Bignum.of_int 1111111110) (Bignum.add a b);
  Alcotest.(check bn) "sub" (Bignum.of_int 864197532) (Bignum.sub b a);
  Alcotest.check_raises "negative sub rejected"
    (Invalid_argument "Bignum.sub: negative result") (fun () ->
      ignore (Bignum.sub a b))

let test_bignum_mul_small () =
  let a = Bignum.of_int 123456 and b = Bignum.of_int 654321 in
  Alcotest.(check bn) "mul" (Bignum.of_int (123456 * 654321)) (Bignum.mul a b);
  Alcotest.(check bn) "mul by zero" Bignum.zero (Bignum.mul a Bignum.zero)

let test_bignum_large_decimal () =
  (* 2^128 computed by repeated doubling; known decimal value. *)
  let v = ref Bignum.one in
  for _ = 1 to 128 do
    v := Bignum.add !v !v
  done;
  Alcotest.(check string) "2^128"
    "340282366920938463463374607431768211456"
    (Bignum.to_string !v);
  Alcotest.(check bn) "decimal parse roundtrip" !v
    (Bignum.of_string "340282366920938463463374607431768211456")

let test_bignum_shift () =
  let a = Bignum.of_int 0b1011 in
  Alcotest.(check bn) "shl 3" (Bignum.of_int 0b1011000) (Bignum.shift_left a 3);
  Alcotest.(check bn) "shr 2" (Bignum.of_int 0b10) (Bignum.shift_right a 2);
  Alcotest.(check bn) "shr everything" Bignum.zero (Bignum.shift_right a 10);
  let big = Bignum.shift_left Bignum.one 100 in
  Alcotest.(check bn) "shl/shr inverse" Bignum.one (Bignum.shift_right big 100)

let test_bignum_divmod_small_values () =
  List.iter
    (fun (a, b) ->
      let q, r = Bignum.divmod (Bignum.of_int a) (Bignum.of_int b) in
      Alcotest.(check bn) (Printf.sprintf "%d/%d q" a b) (Bignum.of_int (a / b)) q;
      Alcotest.(check bn) (Printf.sprintf "%d/%d r" a b) (Bignum.of_int (a mod b)) r)
    [ (0, 3); (7, 3); (100, 10); (1 lsl 40, 7); (999999937, 997); (17, 100) ]

let test_bignum_divmod_multi_limb () =
  (* (2^200 + 12345) / (2^100 + 678) — check q*b + r = a and r < b. *)
  let a = Bignum.add (Bignum.shift_left Bignum.one 200) (Bignum.of_int 12345) in
  let b = Bignum.add (Bignum.shift_left Bignum.one 100) (Bignum.of_int 678) in
  let q, r = Bignum.divmod a b in
  Alcotest.(check bn) "q*b + r = a" a (Bignum.add (Bignum.mul q b) r);
  Alcotest.(check bool) "r < b" true (Bignum.compare r b < 0)

let test_bignum_div_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bignum.divmod Bignum.one Bignum.zero))

let test_bignum_modpow_small () =
  let m = Bignum.of_int 1000000007 in
  Alcotest.(check bn) "3^0" Bignum.one (Bignum.modpow (Bignum.of_int 3) Bignum.zero m);
  Alcotest.(check bn) "3^4 mod p" (Bignum.of_int 81)
    (Bignum.modpow (Bignum.of_int 3) (Bignum.of_int 4) m);
  (* Fermat: a^(p-1) = 1 mod p for prime p. *)
  Alcotest.(check bn) "fermat" Bignum.one
    (Bignum.modpow (Bignum.of_int 12345) (Bignum.of_int 1000000006) m)

let test_bignum_gcd () =
  Alcotest.(check bn) "gcd" (Bignum.of_int 6)
    (Bignum.gcd (Bignum.of_int 48) (Bignum.of_int 18));
  Alcotest.(check bn) "gcd with zero" (Bignum.of_int 5)
    (Bignum.gcd (Bignum.of_int 5) Bignum.zero)

let test_bignum_modinv () =
  (match Bignum.modinv (Bignum.of_int 3) (Bignum.of_int 11) with
  | Some v -> Alcotest.(check bn) "3^-1 mod 11 = 4" (Bignum.of_int 4) v
  | None -> Alcotest.fail "inverse exists");
  Alcotest.(check bool) "no inverse when not coprime" true
    (Bignum.modinv (Bignum.of_int 6) (Bignum.of_int 9) = None)

let test_bignum_bytes_roundtrip () =
  let v = Bignum.of_string "123456789012345678901234567890" in
  Alcotest.(check bn) "bytes roundtrip" v (Bignum.of_bytes_be (Bignum.to_bytes_be v));
  let padded = Bignum.to_bytes_be ~size:32 v in
  Alcotest.(check int) "padded size" 32 (Bytes.length padded);
  Alcotest.(check bn) "padded roundtrip" v (Bignum.of_bytes_be padded)

let test_bignum_primality_known () =
  let g = Prng.create 5L in
  List.iter
    (fun p ->
      Alcotest.(check bool) (Printf.sprintf "%d prime" p) true
        (Bignum.is_probable_prime g (Bignum.of_int p)))
    [ 2; 3; 5; 7; 97; 251; 257; 65537; 1000000007 ];
  List.iter
    (fun c ->
      Alcotest.(check bool) (Printf.sprintf "%d composite" c) false
        (Bignum.is_probable_prime g (Bignum.of_int c)))
    [ 0; 1; 4; 9; 91; 221; 65536; 1000000008; 561; 41041 ]
(* 561 and 41041 are Carmichael numbers. *)

let test_bignum_generate_prime () =
  let g = Prng.create 11L in
  let p = Bignum.generate_prime g ~bits:64 in
  Alcotest.(check int) "exact bit size" 64 (Bignum.bits p);
  Alcotest.(check bool) "probably prime" true (Bignum.is_probable_prime g p)

let test_bignum_random_below () =
  let g = Prng.create 13L in
  let bound = Bignum.of_int 1000 in
  for _ = 1 to 200 do
    let v = Bignum.random_below g bound in
    Alcotest.(check bool) "below bound" true (Bignum.compare v bound < 0)
  done

(* ------------------------------------------------------------------ *)
(* Bignum properties *)

let arb_big =
  (* Random multi-limb naturals built from three 60-bit chunks. *)
  let build (a, b, c) =
    let x = Bignum.of_int a in
    let x = Bignum.add (Bignum.shift_left x 60) (Bignum.of_int b) in
    Bignum.add (Bignum.shift_left x 60) (Bignum.of_int c)
  in
  QCheck.map build
    (QCheck.triple
       (QCheck.int_range 0 (1 lsl 60))
       (QCheck.int_range 0 (1 lsl 60))
       (QCheck.int_range 0 (1 lsl 60)))

let prop_add_commutes =
  QCheck.Test.make ~name:"bignum: add commutes" ~count:200
    (QCheck.pair arb_big arb_big) (fun (a, b) ->
      Bignum.equal (Bignum.add a b) (Bignum.add b a))

let prop_add_sub_roundtrip =
  QCheck.Test.make ~name:"bignum: (a+b)-b = a" ~count:200
    (QCheck.pair arb_big arb_big) (fun (a, b) ->
      Bignum.equal a (Bignum.sub (Bignum.add a b) b))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bignum: mul matches int on small values" ~count:200
    (QCheck.pair (QCheck.int_range 0 (1 lsl 30)) (QCheck.int_range 0 (1 lsl 30)))
    (fun (a, b) ->
      Bignum.equal (Bignum.of_int (a * b)) (Bignum.mul (Bignum.of_int a) (Bignum.of_int b)))

let prop_divmod_invariant =
  QCheck.Test.make ~name:"bignum: a = q*b + r, r < b" ~count:200
    (QCheck.pair arb_big arb_big) (fun (a, b) ->
      QCheck.assume (not (Bignum.is_zero b));
      let q, r = Bignum.divmod a b in
      Bignum.equal a (Bignum.add (Bignum.mul q b) r) && Bignum.compare r b < 0)

let prop_divmod_matches_int =
  QCheck.Test.make ~name:"bignum: divmod matches int" ~count:500
    (QCheck.pair (QCheck.int_range 0 (1 lsl 60)) (QCheck.int_range 1 (1 lsl 60)))
    (fun (a, b) ->
      let q, r = Bignum.divmod (Bignum.of_int a) (Bignum.of_int b) in
      Bignum.equal q (Bignum.of_int (a / b)) && Bignum.equal r (Bignum.of_int (a mod b)))

let prop_shift_is_mul_pow2 =
  QCheck.Test.make ~name:"bignum: shl k = mul 2^k" ~count:100
    (QCheck.pair arb_big (QCheck.int_range 0 80)) (fun (a, k) ->
      let pow2 = Bignum.shift_left Bignum.one k in
      Bignum.equal (Bignum.shift_left a k) (Bignum.mul a pow2))

let prop_decimal_roundtrip =
  QCheck.Test.make ~name:"bignum: decimal roundtrip" ~count:200 arb_big
    (fun a -> Bignum.equal a (Bignum.of_string (Bignum.to_string a)))

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bignum: bytes roundtrip" ~count:200 arb_big
    (fun a -> Bignum.equal a (Bignum.of_bytes_be (Bignum.to_bytes_be a)))

let prop_modpow_matches_naive =
  QCheck.Test.make ~name:"bignum: modpow matches naive" ~count:100
    (QCheck.triple (QCheck.int_range 0 1000) (QCheck.int_range 0 40)
       (QCheck.int_range 2 10000)) (fun (b, e, m) ->
      let rec naive acc k = if k = 0 then acc else naive (acc * b mod m) (k - 1) in
      Bignum.equal
        (Bignum.of_int (naive 1 e))
        (Bignum.modpow (Bignum.of_int b) (Bignum.of_int e) (Bignum.of_int m)))

let bignum_properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_add_commutes;
      prop_add_sub_roundtrip;
      prop_mul_matches_int;
      prop_divmod_invariant;
      prop_divmod_matches_int;
      prop_shift_is_mul_pow2;
      prop_decimal_roundtrip;
      prop_bytes_roundtrip;
      prop_modpow_matches_naive;
    ]

(* ------------------------------------------------------------------ *)
(* SHA-256 — FIPS 180-4 test vectors *)

let test_sha256_vectors () =
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "");
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc");
  Alcotest.(check string) "448-bit message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (String.make 1_000_000 'a'))

let test_sha256_block_boundaries () =
  (* Lengths around the 55/56/64-byte padding boundaries must differ. *)
  let digests =
    List.map (fun n -> Sha256.hex (String.make n 'x')) [ 54; 55; 56; 57; 63; 64; 65 ]
  in
  let uniq = List.sort_uniq String.compare digests in
  Alcotest.(check int) "all distinct" (List.length digests) (List.length uniq)

let prop_sha256_deterministic =
  QCheck.Test.make ~name:"sha256: deterministic" ~count:100
    QCheck.printable_string (fun s -> String.equal (Sha256.hex s) (Sha256.hex s))

let prop_sha256_injective_in_practice =
  QCheck.Test.make ~name:"sha256: distinct strings hash apart" ~count:100
    (QCheck.pair QCheck.printable_string QCheck.printable_string)
    (fun (a, b) ->
      QCheck.assume (not (String.equal a b));
      not (String.equal (Sha256.hex a) (Sha256.hex b)))

(* ------------------------------------------------------------------ *)
(* RSA *)

let shared_keypair =
  lazy (Rsa.generate ~bits:320 (Prng.create 99L))

let test_rsa_sign_verify () =
  let kp = Lazy.force shared_keypair in
  let msg = "student(\"Alice\") @ \"UIUC\"" in
  let s = Rsa.sign kp msg in
  Alcotest.(check bool) "verifies" true (Rsa.verify kp.Rsa.public msg s)

let test_rsa_reject_tampered_message () =
  let kp = Lazy.force shared_keypair in
  let s = Rsa.sign kp "genuine" in
  Alcotest.(check bool) "tampered msg rejected" false
    (Rsa.verify kp.Rsa.public "forged" s)

let test_rsa_reject_tampered_signature () =
  let kp = Lazy.force shared_keypair in
  let s = Rsa.sign kp "msg" in
  let s' = Bignum.add s Bignum.one in
  Alcotest.(check bool) "tampered sig rejected" false
    (Rsa.verify kp.Rsa.public "msg" s')

let test_rsa_reject_wrong_key () =
  let kp1 = Lazy.force shared_keypair in
  let kp2 = Rsa.generate ~bits:320 (Prng.create 100L) in
  let s = Rsa.sign kp1 "msg" in
  Alcotest.(check bool) "wrong key rejected" false (Rsa.verify kp2.Rsa.public "msg" s)

let test_rsa_oversize_signature_rejected () =
  let kp = Lazy.force shared_keypair in
  Alcotest.(check bool) "sig >= n rejected" false
    (Rsa.verify kp.Rsa.public "msg" kp.Rsa.public.Rsa.n)

let test_rsa_deterministic_keygen () =
  let a = Rsa.generate ~bits:320 (Prng.create 7L) in
  let b = Rsa.generate ~bits:320 (Prng.create 7L) in
  Alcotest.(check bn) "same modulus from same seed" a.Rsa.public.Rsa.n
    b.Rsa.public.Rsa.n

let test_rsa_min_bits_enforced () =
  Alcotest.check_raises "too small" (Invalid_argument "Rsa.generate: need >= 288 bits")
    (fun () -> ignore (Rsa.generate ~bits:128 (Prng.create 1L)))

(* ------------------------------------------------------------------ *)
(* Keystore and certificates *)

let test_keystore_stable_keys () =
  let ks = Keystore.create ~bits:320 ~seed:42L () in
  let k1 = Keystore.public ks "UIUC" in
  let k2 = Keystore.public ks "UIUC" in
  Alcotest.(check bn) "same key on re-request" k1.Rsa.n k2.Rsa.n;
  (* Order independence: a fresh store queried in a different order yields
     the same keys. *)
  let ks2 = Keystore.create ~bits:320 ~seed:42L () in
  let _ = Keystore.public ks2 "VISA" in
  let k1' = Keystore.public ks2 "UIUC" in
  Alcotest.(check bn) "order independent" k1.Rsa.n k1'.Rsa.n

let test_keystore_serials_and_revocation () =
  let ks = Keystore.create ~bits:320 ~seed:1L () in
  let s1 = Keystore.fresh_serial ks and s2 = Keystore.fresh_serial ks in
  Alcotest.(check bool) "serials increase" true (s2 > s1);
  Keystore.revoke ks ~serial:s1;
  Alcotest.(check bool) "revoked" true (Keystore.is_revoked ks ~serial:s1);
  Alcotest.(check bool) "other untouched" false (Keystore.is_revoked ks ~serial:s2)

let parse_rule = Peertrust_dlp.Parser.parse_rule

let test_cert_issue_verify () =
  let ks = Keystore.create ~bits:320 ~seed:5L () in
  let rule = parse_rule {|student("Alice") @ "UIUC" signedBy ["UIUC"].|} in
  match Cert.issue ks rule with
  | Error e -> Alcotest.failf "issue failed: %a" Cert.pp_error e
  | Ok cert -> (
      match Cert.verify ks cert with
      | Ok () -> ()
      | Error e -> Alcotest.failf "verify failed: %a" Cert.pp_error e)

let test_cert_unsigned_rule_rejected () =
  let ks = Keystore.create ~bits:320 ~seed:5L () in
  let rule = parse_rule {|freeCourse(cs101).|} in
  match Cert.issue ks rule with
  | Error Cert.Unsigned_rule -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Unsigned_rule"

let test_cert_tamper_detected () =
  let ks = Keystore.create ~bits:320 ~seed:5L () in
  let rule = parse_rule {|student("Alice") @ "UIUC" signedBy ["UIUC"].|} in
  let forged = parse_rule {|student("Mallory") @ "UIUC" signedBy ["UIUC"].|} in
  match Cert.issue ks rule with
  | Error e -> Alcotest.failf "issue failed: %a" Cert.pp_error e
  | Ok cert -> (
      let tampered = { cert with Cert.rule = forged } in
      match Cert.verify ks tampered with
      | Error (Cert.Bad_signature "UIUC") -> ()
      | Ok () -> Alcotest.fail "tampered cert accepted"
      | Error e -> Alcotest.failf "unexpected error: %a" Cert.pp_error e)

let test_cert_multi_signer () =
  let ks = Keystore.create ~bits:320 ~seed:5L () in
  let rule = parse_rule {|joint("X") signedBy ["A", "B"].|} in
  match Cert.issue ks rule with
  | Error e -> Alcotest.failf "issue failed: %a" Cert.pp_error e
  | Ok cert ->
      Alcotest.(check int) "two signatures" 2 (List.length cert.Cert.signatures);
      (match Cert.verify ks cert with
      | Ok () -> ()
      | Error e -> Alcotest.failf "verify failed: %a" Cert.pp_error e);
      (* Dropping one signature must be detected. *)
      let partial =
        { cert with Cert.signatures = [ List.hd cert.Cert.signatures ] }
      in
      (match Cert.verify ks partial with
      | Error (Cert.Missing_signature "B") -> ()
      | Ok () -> Alcotest.fail "partial signatures accepted"
      | Error e -> Alcotest.failf "unexpected: %a" Cert.pp_error e)

let test_cert_validity_window () =
  let ks = Keystore.create ~bits:320 ~seed:5L () in
  let rule = parse_rule {|badge("Alice") signedBy ["CSP"].|} in
  match Cert.issue ks ~not_before:10 ~not_after:20 rule with
  | Error e -> Alcotest.failf "issue failed: %a" Cert.pp_error e
  | Ok cert ->
      (match Cert.verify ks ~now:15 cert with
      | Ok () -> ()
      | Error e -> Alcotest.failf "in-window failed: %a" Cert.pp_error e);
      (match Cert.verify ks ~now:5 cert with
      | Error (Cert.Expired _) -> ()
      | _ -> Alcotest.fail "before window accepted");
      (match Cert.verify ks ~now:25 cert with
      | Error (Cert.Expired _) -> ()
      | _ -> Alcotest.fail "after window accepted")

let test_cert_revocation () =
  let ks = Keystore.create ~bits:320 ~seed:5L () in
  let rule = parse_rule {|visaCard("IBM") signedBy ["VISA"].|} in
  match Cert.issue ks rule with
  | Error e -> Alcotest.failf "issue failed: %a" Cert.pp_error e
  | Ok cert -> (
      Keystore.revoke ks ~serial:cert.Cert.serial;
      match Cert.verify ks cert with
      | Error (Cert.Revoked _) -> ()
      | _ -> Alcotest.fail "revoked cert accepted")

let test_cert_payload_covers_validity () =
  let ks = Keystore.create ~bits:320 ~seed:5L () in
  let rule = parse_rule {|badge("Alice") signedBy ["CSP"].|} in
  match Cert.issue ks ~not_after:20 rule with
  | Error e -> Alcotest.failf "issue failed: %a" Cert.pp_error e
  | Ok cert -> (
      (* Extending the validity window must invalidate the signature. *)
      let extended = { cert with Cert.not_after = 1000 } in
      match Cert.verify ks ~now:0 extended with
      | Error (Cert.Bad_signature _) -> ()
      | Ok () -> Alcotest.fail "window extension accepted"
      | Error e -> Alcotest.failf "unexpected: %a" Cert.pp_error e)

let test_bignum_misc_edges () =
  Alcotest.check_raises "to_bytes_be size too small"
    (Invalid_argument "Bignum.to_bytes_be: size too small") (fun () ->
      ignore (Bignum.to_bytes_be ~size:1 (Bignum.of_int 100000)));
  Alcotest.check_raises "of_string rejects junk"
    (Invalid_argument "Bignum.of_string: not a digit") (fun () ->
      ignore (Bignum.of_string "12a3"));
  Alcotest.check_raises "of_int rejects negatives"
    (Invalid_argument "Bignum.of_int: negative") (fun () ->
      ignore (Bignum.of_int (-1)));
  Alcotest.(check bn) "modpow with modulus one" Bignum.zero
    (Bignum.modpow (Bignum.of_int 5) (Bignum.of_int 3) Bignum.one);
  Alcotest.(check (option int)) "to_int_opt overflow" None
    (Bignum.to_int_opt (Bignum.shift_left Bignum.one 80));
  Alcotest.(check string) "hex of zero" "0" (Bignum.to_hex Bignum.zero)

(* ------------------------------------------------------------------ *)
(* Wire format *)

let wire_fixture () =
  let ks = Keystore.create ~bits:320 ~seed:21L () in
  let rule =
    parse_rule {|student("Alice") @ "UIUC Registrar" signedBy ["UIUC Registrar"].|}
  in
  match Cert.issue ks ~not_before:5 ~not_after:500 rule with
  | Ok cert -> (ks, cert)
  | Error e -> Alcotest.failf "issue failed: %a" Cert.pp_error e

let test_wire_roundtrip () =
  let ks, cert = wire_fixture () in
  let text = Wire.encode cert in
  match Wire.decode text with
  | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e
  | Ok cert' ->
      Alcotest.(check int) "serial" cert.Cert.serial cert'.Cert.serial;
      Alcotest.(check int) "not_before" 5 cert'.Cert.not_before;
      Alcotest.(check int) "not_after" 500 cert'.Cert.not_after;
      Alcotest.(check bool) "rule preserved" true
        (Peertrust_dlp.Rule.equal cert.Cert.rule cert'.Cert.rule);
      (match Cert.verify ks ~now:10 cert' with
      | Ok () -> ()
      | Error e -> Alcotest.failf "imported cert does not verify: %a" Cert.pp_error e)

let test_wire_multi_signer_names () =
  (* Names with spaces and colons survive the hex encoding. *)
  let ks = Keystore.create ~bits:320 ~seed:22L () in
  let rule = parse_rule {|joint("x") signedBy ["Weird: Name", "An other"].|} in
  match Cert.issue ks rule with
  | Error e -> Alcotest.failf "issue failed: %a" Cert.pp_error e
  | Ok cert -> (
      match Wire.decode (Wire.encode cert) with
      | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e
      | Ok cert' ->
          Alcotest.(check (list string)) "issuer names"
            [ "Weird: Name"; "An other" ]
            (List.map fst cert'.Cert.signatures))

let test_wire_wallet () =
  let ks, cert1 = wire_fixture () in
  let rule2 = parse_rule {|member("Bob") @ "ELENA" signedBy ["ELENA"].|} in
  let cert2 =
    match Cert.issue ks rule2 with Ok c -> c | Error _ -> Alcotest.fail "issue"
  in
  let wallet = Wire.encode_many [ cert1; cert2 ] in
  match Wire.decode_many wallet with
  | Ok [ a; b ] ->
      Alcotest.(check int) "first serial" cert1.Cert.serial a.Cert.serial;
      Alcotest.(check int) "second serial" cert2.Cert.serial b.Cert.serial
  | Ok _ -> Alcotest.fail "expected two certificates"
  | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e

let test_wire_tamper_detected_after_import () =
  let ks, cert = wire_fixture () in
  let text = Wire.encode cert in
  (* Swap the subject inside the encoded rule line: Alice -> Mallory. *)
  let replace ~sub ~by s =
    let n = String.length s and m = String.length sub in
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      if !i + m <= n && String.sub s !i m = sub then begin
        Buffer.add_string buf by;
        i := !i + m
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let tampered = replace ~sub:{|"Alice"|} ~by:{|"Mallory"|} text in
  match Wire.decode tampered with
  | Error e -> Alcotest.failf "should still parse: %a" Wire.pp_error e
  | Ok cert' -> (
      Alcotest.(check bool) "rule changed" false
        (Peertrust_dlp.Rule.equal cert.Cert.rule cert'.Cert.rule);
      match Cert.verify ks ~now:10 cert' with
      | Error (Cert.Bad_signature _) -> ()
      | Ok () -> Alcotest.fail "tampered import verified"
      | Error e -> Alcotest.failf "unexpected error: %a" Cert.pp_error e)

let test_wire_malformed () =
  let expect src =
    match Wire.decode src with
    | Error (Wire.Malformed _) -> ()
    | Ok _ -> Alcotest.failf "accepted malformed input: %s" src
  in
  expect "";
  expect "-----BEGIN PEERTRUST CERTIFICATE-----\nserial: 1\n";
  expect "junk\n-----BEGIN PEERTRUST CERTIFICATE-----\n-----END PEERTRUST CERTIFICATE-----\n";
  expect
    "-----BEGIN PEERTRUST CERTIFICATE-----\nserial: x\n-----END PEERTRUST CERTIFICATE-----\n"

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "crypto"
    [
      ( "prng",
        [
          tc "deterministic" test_prng_deterministic;
          tc "bounded" test_prng_bound;
          tc "split" test_prng_split_independent;
        ] );
      ( "bignum",
        [
          tc "int roundtrip" test_bignum_of_to_int;
          tc "compare" test_bignum_compare;
          tc "bit length" test_bignum_bits;
          tc "add/sub" test_bignum_add_sub_small;
          tc "mul" test_bignum_mul_small;
          tc "2^128 decimal" test_bignum_large_decimal;
          tc "shifts" test_bignum_shift;
          tc "divmod small" test_bignum_divmod_small_values;
          tc "divmod multi-limb" test_bignum_divmod_multi_limb;
          tc "division by zero" test_bignum_div_by_zero;
          tc "modpow" test_bignum_modpow_small;
          tc "gcd" test_bignum_gcd;
          tc "modinv" test_bignum_modinv;
          tc "bytes roundtrip" test_bignum_bytes_roundtrip;
          tc "known primes/composites" test_bignum_primality_known;
          tc "prime generation" test_bignum_generate_prime;
          tc "random below" test_bignum_random_below;
          tc "miscellaneous edges" test_bignum_misc_edges;
        ] );
      ("bignum properties", bignum_properties);
      ( "sha256",
        [
          tc "FIPS vectors" test_sha256_vectors;
          tc "padding boundaries" test_sha256_block_boundaries;
          QCheck_alcotest.to_alcotest prop_sha256_deterministic;
          QCheck_alcotest.to_alcotest prop_sha256_injective_in_practice;
        ] );
      ( "rsa",
        [
          tc "sign/verify" test_rsa_sign_verify;
          tc "tampered message" test_rsa_reject_tampered_message;
          tc "tampered signature" test_rsa_reject_tampered_signature;
          tc "wrong key" test_rsa_reject_wrong_key;
          tc "oversize signature" test_rsa_oversize_signature_rejected;
          tc "deterministic keygen" test_rsa_deterministic_keygen;
          tc "minimum key size" test_rsa_min_bits_enforced;
        ] );
      ( "keystore",
        [
          tc "stable keys" test_keystore_stable_keys;
          tc "serials and revocation" test_keystore_serials_and_revocation;
        ] );
      ( "wire",
        [
          tc "roundtrip" test_wire_roundtrip;
          tc "odd issuer names" test_wire_multi_signer_names;
          tc "wallet" test_wire_wallet;
          tc "tamper detected after import" test_wire_tamper_detected_after_import;
          tc "malformed inputs" test_wire_malformed;
        ] );
      ( "cert",
        [
          tc "issue/verify" test_cert_issue_verify;
          tc "unsigned rejected" test_cert_unsigned_rule_rejected;
          tc "tamper detected" test_cert_tamper_detected;
          tc "multi-signer" test_cert_multi_signer;
          tc "validity window" test_cert_validity_window;
          tc "revocation" test_cert_revocation;
          tc "payload covers validity" test_cert_payload_covers_validity;
        ] );
    ]

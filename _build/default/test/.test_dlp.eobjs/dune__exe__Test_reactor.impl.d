test/test_reactor.ml: Alcotest Chain Hashtbl List Literal Negotiation Parser Peer Peertrust Peertrust_dlp Peertrust_net Printf Reactor Scenario Session

test/test_dlp.ml: Alcotest Builtin Forward Kb Lexer List Literal Option Parser Peertrust_dlp Printf Program QCheck QCheck_alcotest Rule Sld String Subst Tabled Term Trace Unify

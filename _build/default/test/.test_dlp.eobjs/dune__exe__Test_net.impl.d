test/test_net.ml: Alcotest Clock List Message Network Peertrust_dlp Peertrust_net Stats

test/test_rdf.ml: Alcotest List Mapping Peertrust_dlp Peertrust_rdf Registry Schema Triple Turtle

test/test_runtime.ml: Alcotest Array Audit Engine Filename Fun List Negotiation Option Parser Peertrust Peertrust_crypto Peertrust_dlp Peertrust_net Persist Scenario Session Sys Token

test/test_crypto.ml: Alcotest Bignum Buffer Bytes Cert Keystore Lazy List Peertrust_crypto Peertrust_dlp Printf Prng QCheck QCheck_alcotest Rsa Sha256 String Wire

test/test_reactor.mli:

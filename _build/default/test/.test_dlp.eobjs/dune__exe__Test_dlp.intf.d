test/test_dlp.mli:

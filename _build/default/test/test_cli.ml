(* End-to-end tests of the peertrust command-line tool: the built binary
   is invoked as a subprocess (dune places it at ../bin/main.exe relative
   to the test working directory). *)

let binary =
  let candidates =
    [ Filename.concat ".." (Filename.concat "bin" "main.exe"); "bin/main.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/main.exe"

let write_temp suffix contents =
  let path = Filename.temp_file "ptcli" suffix in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

(* Run the CLI; return (exit code, stdout). *)
let run args =
  let out = Filename.temp_file "ptcli" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote binary)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, contents)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let owner_program =
  {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
    haveIt("r").
    cred(X) @ "CA" <- cred(X) @ "CA" @ X.|}

let client_program = {|cred("client") @ "CA" $ true signedBy ["CA"].|}

let test_cli_parse () =
  let f = write_temp ".pt" "p(1). q(X) <- p(X)." in
  let code, out = run [ "parse"; f ] in
  Sys.remove f;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "rule count" true (contains ~sub:"2 rule(s)" out)

let test_cli_parse_error () =
  let f = write_temp ".pt" "p(1" in
  let code, out = run [ "parse"; f ] in
  Sys.remove f;
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "syntax error reported" true
    (contains ~sub:"syntax error" out)

let test_cli_eval () =
  let f = write_temp ".pt" "p(1). p(2)." in
  let code, out = run [ "eval"; f; "p(X)" ] in
  Sys.remove f;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "answers" true
    (contains ~sub:"{X = 1}" out && contains ~sub:"{X = 2}" out)

let test_cli_eval_tabled () =
  let f =
    write_temp ".pt"
      "path(X, Z) <- path(X, Y), edge(Y, Z). path(X, Y) <- edge(X, Y).\n\
       edge(1, 2). edge(2, 3)."
  in
  let code, out = run [ "eval"; f; "--engine"; "tabled"; "path(1, X)" ] in
  Sys.remove f;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "left recursion complete" true
    (contains ~sub:"{X = 2}" out && contains ~sub:"{X = 3}" out)

let test_cli_forward () =
  let f = write_temp ".pt" "q(X) <- p(X). p(1)." in
  let code, out = run [ "forward"; f ] in
  Sys.remove f;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "derived fact" true (contains ~sub:"q(1)" out)

let test_cli_negotiate_grant_and_deny () =
  let owner = write_temp ".pt" owner_program in
  let client = write_temp ".pt" client_program in
  let code, out =
    run
      [ "negotiate"; "-p"; "owner=" ^ owner; "-p"; "client=" ^ client;
        "--requester"; "client"; "--target"; "owner"; "--narrative";
        {|resource("r")|} ]
  in
  Alcotest.(check int) "granted exits 0" 0 code;
  Alcotest.(check bool) "narrative printed" true
    (contains ~sub:"client asks owner" out);
  (* Without the credential the same request is denied, exit 2. *)
  let empty = write_temp ".pt" "" in
  let code2, _ =
    run
      [ "negotiate"; "-p"; "owner=" ^ owner; "-p"; "client=" ^ empty;
        "--requester"; "client"; "--target"; "owner"; {|resource("r")|} ]
  in
  Sys.remove owner;
  Sys.remove client;
  Sys.remove empty;
  Alcotest.(check int) "denied exits 2" 2 code2

let test_cli_analyze () =
  let owner =
    write_temp ".pt"
      {|a("o") $ b(Requester) @ "CA" <-{true} a("o").
        a("o") @ "CA" signedBy ["CA"].
        b(X) @ "CA" <- b(X) @ "CA" @ X.|}
  in
  let req =
    write_temp ".pt"
      {|b("r") $ a(Requester) @ "CA" <-{true} b("r").
        b("r") @ "CA" signedBy ["CA"].
        a(X) @ "CA" <- a(X) @ "CA" @ X.|}
  in
  let code, out =
    run
      [ "analyze"; "-p"; "owner=" ^ owner; "-p"; "req=" ^ req; "--goal";
        {|owner:a("o")|} ]
  in
  Sys.remove owner;
  Sys.remove req;
  Alcotest.(check int) "unreachable goal exits 2" 2 code;
  Alcotest.(check bool) "deadlock reported" true
    (contains ~sub:"deadlock cycle" out)

let test_cli_scenario () =
  let code, out = run [ "scenario"; "elearn" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "granted" true (contains ~sub:"granted" out)

let test_cli_wallet_roundtrip () =
  let owner = write_temp ".pt" owner_program in
  let client = write_temp ".pt" client_program in
  let wallet = Filename.temp_file "ptcli" ".wallet" in
  let code, _ =
    run
      [ "negotiate"; "-p"; "owner=" ^ owner; "-p"; "client=" ^ client;
        "--requester"; "client"; "--target"; "owner"; "--save-wallet"; wallet;
        {|resource("r")|} ]
  in
  Alcotest.(check int) "first run ok" 0 code;
  (* A fresh client without its program but with the wallet still wins:
     the credential comes from the imported wallet. *)
  let empty = write_temp ".pt" "" in
  let code2, _ =
    run
      [ "negotiate"; "-p"; "owner=" ^ owner; "-p"; "client=" ^ empty;
        "--requester"; "client"; "--target"; "owner"; "--wallet"; wallet;
        {|resource("r")|} ]
  in
  Sys.remove owner;
  Sys.remove client;
  Sys.remove empty;
  Sys.remove wallet;
  Alcotest.(check int) "wallet restores the credential" 0 code2

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cli"
    [
      ( "cli",
        [
          tc "parse" test_cli_parse;
          tc "parse error" test_cli_parse_error;
          tc "eval" test_cli_eval;
          tc "eval tabled" test_cli_eval_tabled;
          tc "forward" test_cli_forward;
          tc "negotiate grant/deny" test_cli_negotiate_grant_and_deny;
          tc "analyze deadlock" test_cli_analyze;
          tc "scenario" test_cli_scenario;
          tc "wallet roundtrip" test_cli_wallet_roundtrip;
        ] );
    ]

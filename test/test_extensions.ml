(* Tests for the extension features: authority brokers, negotiation by
   proxy, static analysis, the n-party eager strategy, sticky policies and
   content-triggered policies. *)

open Peertrust
open Peertrust_dlp
module Net = Peertrust_net
module Rdf = Peertrust_rdf

let lit = Parser.parse_literal
let granted = Negotiation.succeeded

(* ------------------------------------------------------------------ *)
(* Broker / authority databases (§4.2) *)

let test_broker_lookup () =
  let session = Session.create () in
  ignore (Session.add_peer session "client");
  let _broker =
    Broker.add_broker session ~name:"broker"
      ~directory:[ ("purchaseApproved", "VISA"); ("approve", "approver") ]
  in
  Engine.attach_all session;
  Alcotest.(check (list string)) "lookup" [ "VISA" ]
    (Broker.lookup session ~requester:"client" ~broker:"broker"
       ~pred:"purchaseApproved");
  Alcotest.(check (list string)) "unknown predicate" []
    (Broker.lookup session ~requester:"client" ~broker:"broker" ~pred:"nope")

let test_broker_resolved_authority_in_policy () =
  (* The owner's policy resolves the approving authority through the
     broker at run time (the paper's last policy49 variant). *)
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|service(X) $ true <-{true}
             authority(approve, A) @ "broker", approve(X) @ A.|}
       "owner");
  ignore (Session.add_peer session ~program:{|approve("client") $ true.|} "approver");
  ignore (Session.add_peer session "client");
  ignore
    (Broker.add_broker session ~name:"broker"
       ~directory:[ ("approve", "approver") ]);
  Engine.attach_all session;
  let r =
    Negotiation.request_str session ~requester:"client" ~target:"owner"
      {|service("client")|}
  in
  Alcotest.(check bool) "granted through broker" true (granted r);
  (* Broker and approver were both consulted. *)
  let stats = Net.Network.stats session.Session.network in
  Alcotest.(check bool) "broker consulted" true
    (Net.Stats.between stats "owner" "broker" >= 1);
  Alcotest.(check bool) "approver consulted" true
    (Net.Stats.between stats "owner" "approver" >= 1)

let test_local_authority_database () =
  (* Same policy, but with a local authority database instead of a
     broker. *)
  let session = Session.create () in
  let owner =
    Session.add_peer session
      ~program:
        {|service(X) $ true <-{true} authority(approve, A), approve(X) @ A.|}
      "owner"
  in
  Broker.install_directory owner [ ("approve", "approver") ];
  ignore (Session.add_peer session ~program:{|approve("client") $ true.|} "approver");
  ignore (Session.add_peer session "client");
  Engine.attach_all session;
  let r =
    Negotiation.request_str session ~requester:"client" ~target:"owner"
      {|service("client")|}
  in
  Alcotest.(check bool) "granted via local directory" true (granted r)

(* ------------------------------------------------------------------ *)
(* Proxy negotiation (§4.2) *)

let proxy_world () =
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
           haveIt("r").
           cred(X) @ "CA" <- cred(X) @ "CA" @ X.|}
       "owner");
  (* Bob's trusted home machine holds his policies and credentials. *)
  ignore
    (Session.add_peer session
       ~program:{|cred("device") @ "CA" $ true signedBy ["CA"].|}
       "home");
  Engine.attach_all session;
  ignore (Proxy.attach_device session ~device:"device" ~proxy:"home");
  session

let test_proxy_negotiation_succeeds () =
  let session = proxy_world () in
  (* The owner counter-queries the device; the device forwards to home,
     which releases Bob's credential. *)
  let r =
    Negotiation.request_str session ~requester:"device" ~target:"owner"
      {|resource("r")|}
  in
  Alcotest.(check bool) "granted through the proxy" true (granted r);
  Alcotest.(check bool) "device forwarded at least one query" true
    (Proxy.forwarded_count session ~device:"device" >= 1);
  (* The forwarding hops show up in the transcript. *)
  let stats = Net.Network.stats session.Session.network in
  Alcotest.(check bool) "device->home traffic accounted" true
    (Net.Stats.between stats "device" "home" >= 1)

let test_proxy_unreachable () =
  let session = proxy_world () in
  Net.Network.set_down session.Session.network "home" true;
  let r =
    Negotiation.request_str session ~requester:"device" ~target:"owner"
      {|resource("r")|}
  in
  Alcotest.(check bool) "denied when the proxy is down" false (granted r)

let test_proxy_device_holds_nothing () =
  let session = proxy_world () in
  let device = Session.peer session "device" in
  Alcotest.(check int) "empty device KB" 0 (Kb.size device.Peer.kb)

(* ------------------------------------------------------------------ *)
(* Static analysis (§6) *)

let test_analysis_policy_chain_all_released () =
  let w = Scenario.policy_chain ~depth:3 () in
  let world = Analysis.world_of_session w.Scenario.cw_session in
  let report = Analysis.analyze world in
  Alcotest.(check int) "nothing locked" 0 (List.length report.Analysis.locked);
  Alcotest.(check bool) "resource released" true
    (List.mem ("bob", ("resource", 1)) report.Analysis.released);
  Alcotest.(check bool) "success predicted" true
    (Analysis.may_succeed world ~owner:"bob" ~goal:(lit {|resource("r1")|}))

let test_analysis_detects_deadlock () =
  let world =
    Analysis.world_of_programs
      [
        ( "owner",
          {|a("o") $ b(Requester) @ "CA" <-{true} a("o").
            a("o") @ "CA" signedBy ["CA"].
            b(X) @ "CA" <- b(X) @ "CA" @ X.|} );
        ( "req",
          {|b("req") $ a(Requester) @ "CA" <-{true} b("req").
            b("req") @ "CA" signedBy ["CA"].
            a(X) @ "CA" <- a(X) @ "CA" @ X.|} );
      ]
  in
  let report = Analysis.analyze world in
  Alcotest.(check int) "both locked" 2 (List.length report.Analysis.locked);
  Alcotest.(check bool) "cycle reported" true (report.Analysis.deadlocks <> []);
  Alcotest.(check bool) "failure is definitive" false
    (Analysis.may_succeed world ~owner:"owner" ~goal:(lit {|a("o")|}))

let test_analysis_private_goal_never_succeeds () =
  let world = Analysis.world_of_programs [ ("owner", {|secret(42).|}) ] in
  Alcotest.(check bool) "private fact unreachable" false
    (Analysis.may_succeed world ~owner:"owner" ~goal:(lit "secret(X)"))

let test_analysis_agrees_with_runtime () =
  (* On the deadlock world the analysis predicts failure and the engine
     indeed denies; on the chain world both succeed. *)
  let w = Scenario.policy_chain ~depth:2 () in
  let world = Analysis.world_of_session w.Scenario.cw_session in
  let predicted = Analysis.may_succeed world ~owner:"bob" ~goal:w.Scenario.cw_goal in
  let actual =
    granted
      (Negotiation.request w.Scenario.cw_session ~requester:"alice"
         ~target:"bob" w.Scenario.cw_goal)
  in
  Alcotest.(check bool) "prediction matches runtime" actual predicted

let test_analysis_scenario1 () =
  let s = Scenario.scenario1 () in
  let world = Analysis.world_of_session s.Scenario.s1_session in
  Alcotest.(check bool) "discount predicted reachable" true
    (Analysis.may_succeed world ~owner:"E-Learn" ~goal:
       (lit {|discountEnroll(spanish101, "Alice")|}))

let test_analysis_critical_credentials () =
  (* Every chain credential is critical on a pure chain... *)
  let w = Scenario.policy_chain ~depth:3 () in
  let world = Analysis.world_of_session w.Scenario.cw_session in
  let critical =
    Analysis.critical_credentials world ~owner:"bob" ~goal:w.Scenario.cw_goal
  in
  Alcotest.(check int) "three critical credentials" 3 (List.length critical);
  Alcotest.(check bool) "alice's refusal matters" true
    (Analysis.refusal_matters world ~owner:"bob" ~goal:w.Scenario.cw_goal
       ~peer:"alice");
  (* ...but irrelevant extras are not critical. *)
  let w2 = Scenario.policy_chain ~depth:2 ~extra_creds:3 () in
  let world2 = Analysis.world_of_session w2.Scenario.cw_session in
  let critical2 =
    Analysis.critical_credentials world2 ~owner:"bob" ~goal:w2.Scenario.cw_goal
  in
  Alcotest.(check int) "extras excluded" 2 (List.length critical2)

let test_analysis_redundant_credential_not_critical () =
  (* Two independent credentials can each satisfy the guard: neither is
     critical alone. *)
  let world =
    Analysis.world_of_programs
      [
        ( "owner",
          {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
            haveIt("r").
            cred(X) @ "CA" <- cred(X) @ "CA" @ X.|} );
        ( "alice",
          {|cred("alice") @ "CA" $ true signedBy ["CA"].
            cred("alice") @ "CA" $ true signedBy ["CA2"].|} );
      ]
  in
  let goal = lit {|resource("r")|} in
  Alcotest.(check bool) "succeeds" true
    (Analysis.may_succeed world ~owner:"owner" ~goal);
  Alcotest.(check int) "no single credential is critical" 0
    (List.length (Analysis.critical_credentials world ~owner:"owner" ~goal))

let test_analysis_critical_empty_on_failure () =
  let w = Scenario.policy_chain ~depth:2 ~missing:1 () in
  let world = Analysis.world_of_session w.Scenario.cw_session in
  Alcotest.(check int) "no critical set for a doomed goal" 0
    (List.length
       (Analysis.critical_credentials world ~owner:"bob"
          ~goal:w.Scenario.cw_goal))

(* ------------------------------------------------------------------ *)
(* n-party eager strategy (§6) *)

let three_party_world () =
  (* The resource owner needs a voucher about the requester that only the
     third peer can provide: a 2-party negotiation cannot succeed, the
     3-party eager one can. *)
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|resource("r") $ voucher(Requester) @ "CA" <-{true} haveIt("r").
           haveIt("r").|}
       "owner");
  ignore (Session.add_peer session "alice");
  ignore
    (Session.add_peer session
       ~program:{|voucher("alice") @ "CA" $ true signedBy ["CA"].|}
       "carol");
  Engine.attach_all session;
  session

let test_multi_eager_succeeds_where_two_party_fails () =
  let session = three_party_world () in
  let two_party =
    Strategy.negotiate session ~strategy:Strategy.Eager ~requester:"alice"
      ~target:"owner" (lit {|resource("r")|})
  in
  Alcotest.(check bool) "two-party eager fails" false (granted two_party);
  let session = three_party_world () in
  let three_party =
    Strategy.negotiate_multi session
      ~participants:[ "alice"; "owner"; "carol" ]
      ~requester:"alice" ~target:"owner" (lit {|resource("r")|})
  in
  Alcotest.(check bool) "three-party eager succeeds" true (granted three_party)

let test_multi_eager_requires_listed_parties () =
  let session = three_party_world () in
  Alcotest.check_raises "requester must participate"
    (Invalid_argument "Strategy.negotiate_multi: requester/target not listed")
    (fun () ->
      ignore
        (Strategy.negotiate_multi session ~participants:[ "owner"; "carol" ]
           ~requester:"alice" ~target:"owner" (lit {|resource("r")|})))

let test_multi_eager_terminates_on_failure () =
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|resource("r") $ voucher(Requester) @ "CA" <-{true} haveIt("r").
           haveIt("r").|}
       "owner");
  ignore (Session.add_peer session "alice");
  ignore (Session.add_peer session "carol");
  Engine.attach_all session;
  let r =
    Strategy.negotiate_multi session
      ~participants:[ "alice"; "owner"; "carol" ]
      ~requester:"alice" ~target:"owner" (lit {|resource("r")|})
  in
  Alcotest.(check bool) "fails finitely" false (granted r)

(* ------------------------------------------------------------------ *)
(* Sticky policies (§3.1) *)

let test_learned_credential_private_by_default () =
  (* B obtains A's credential, but cannot re-disclose it: B has no release
     rule for it, and the default context is private. *)
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|secret("A") @ "CA" $ friend(Requester) <-{true} secret("A") @ "CA".
           secret("A") @ "CA" signedBy ["CA"].
           friend("B").|}
       "A");
  ignore (Session.add_peer session "B");
  ignore (Session.add_peer session "C");
  Engine.attach_all session;
  let r_b =
    Negotiation.request_str session ~requester:"B" ~target:"A"
      {|secret(X) @ "CA"|}
  in
  Alcotest.(check bool) "friend B gets the secret" true (granted r_b);
  Alcotest.(check bool) "B holds the certificate" true
    (Hashtbl.length (Session.peer session "B").Peer.certs > 0);
  let r_c =
    Negotiation.request_str session ~requester:"C" ~target:"B"
      {|secret(X) @ "CA"|}
  in
  Alcotest.(check bool) "C cannot pull it out of B" false (granted r_c)

let test_sticky_context_travels_with_credential () =
  (* When the release guard is written on the signed fact itself, the
     learned certificate carries it: the receiving peer enforces the same
     policy before further dissemination (sticky policy, non-adversarial
     setting). *)
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|secret("A") @ "CA" $ friend(Requester) signedBy ["CA"].
           friend("B").|}
       "A");
  ignore (Session.add_peer session ~program:{|friend("C").|} "B");
  ignore (Session.add_peer session "C");
  ignore (Session.add_peer session "D");
  Engine.attach_all session;
  let r_b =
    Negotiation.request_str session ~requester:"B" ~target:"A"
      {|secret(X) @ "CA"|}
  in
  Alcotest.(check bool) "B obtains it (A's friend)" true (granted r_b);
  (* B considers C a friend, so the sticky context admits C... *)
  let r_c =
    Negotiation.request_str session ~requester:"C" ~target:"B"
      {|secret(X) @ "CA"|}
  in
  Alcotest.(check bool) "C admitted under the travelling policy" true
    (granted r_c);
  (* ...but D is nobody's friend. *)
  let r_d =
    Negotiation.request_str session ~requester:"D" ~target:"B"
      {|secret(X) @ "CA"|}
  in
  Alcotest.(check bool) "D still locked out" false (granted r_d)

(* ------------------------------------------------------------------ *)
(* Content-triggered policies (§6) over RDF-described resources *)

let test_content_triggered_policy () =
  (* "the ability to print color documents on all printers on the third
     floor" — one intensional policy covering a set of resources defined
     by a query over their attributes. *)
  let turtle =
    {|
      @prefix o: <http://office#> .
      o:pr1 a o:Printer ; o:floor 3 ; o:color 1 .
      o:pr2 a o:Printer ; o:floor 3 ; o:color 0 .
      o:pr3 a o:Printer ; o:floor 2 ; o:color 1 .
    |}
  in
  let session = Session.create () in
  let owner =
    Session.add_peer session
      ~program:
        {|print(P, Requester) $ staff(Requester) @ "HR" <-{true}
            a(P, Class), floor(P, 3), color(P, 1).
          staff(X) @ "HR" <- staff(X) @ "HR" @ X.|}
      "owner"
  in
  owner.Peer.kb <-
    Kb.union owner.Peer.kb (Rdf.Mapping.kb_of_store (Rdf.Turtle.load turtle));
  ignore
    (Session.add_peer session
       ~program:{|staff("emp") @ "HR" $ true signedBy ["HR"].|}
       "emp");
  Engine.attach_all session;
  let try_printer p =
    granted
      (Negotiation.request_str session ~requester:"emp" ~target:"owner"
         (Printf.sprintf {|print(%s, "emp")|} p))
  in
  Alcotest.(check bool) "3rd-floor color printer covered" true (try_printer "pr1");
  Alcotest.(check bool) "monochrome excluded" false (try_printer "pr2");
  Alcotest.(check bool) "2nd floor excluded" false (try_printer "pr3")

(* ------------------------------------------------------------------ *)
(* Explanation rendering *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let test_explain_narrative () =
  let s = Scenario.scenario1 () in
  let r =
    Negotiation.request_str s.Scenario.s1_session ~requester:"Alice"
      ~target:"E-Learn" {|discountEnroll(spanish101, "Alice")|}
  in
  let text = Explain.narrative r in
  Alcotest.(check bool) "asks step" true (contains ~sub:"Alice asks E-Learn" text);
  Alcotest.(check bool) "counter-query" true
    (contains ~sub:"E-Learn asks Alice" text);
  Alcotest.(check bool) "disclosure mentioned" true
    (contains ~sub:"disclosing" text);
  Alcotest.(check bool) "outcome" true (contains ~sub:"Access granted" text)

let test_explain_narrative_denial () =
  let s = Scenario.scenario1 () in
  let r =
    Negotiation.request_str s.Scenario.s1_session ~requester:"E-Learn"
      ~target:"UIUC" {|student("Alice")|}
  in
  let text = Explain.narrative r in
  Alcotest.(check bool) "refusal step" true (contains ~sub:"UIUC refuses" text);
  Alcotest.(check bool) "outcome" true (contains ~sub:"Access denied" text)

let test_explain_sequence_diagram () =
  let s = Scenario.scenario1 () in
  let r =
    Negotiation.request_str s.Scenario.s1_session ~requester:"Alice"
      ~target:"E-Learn" {|discountEnroll(spanish101, "Alice")|}
  in
  let mmd = Explain.sequence_diagram r in
  Alcotest.(check bool) "header" true (contains ~sub:"sequenceDiagram" mmd);
  Alcotest.(check bool) "participants declared" true
    (contains ~sub:"participant Alice" mmd);
  Alcotest.(check bool) "E-Learn id sanitised" true
    (contains ~sub:"participant E_Learn" mmd);
  Alcotest.(check bool) "arrows" true (contains ~sub:"->>" mmd)

let test_explain_proof_dot () =
  let session = Session.create () in
  let p =
    Session.add_peer session
      ~program:
        {|eligible(X) <- student(X) @ "UIUC", 1 < 2.
          student("p") @ "UIUC" signedBy ["UIUC"].|}
      "p"
  in
  match Engine.evaluate session p [ Parser.parse_literal {|eligible("p")|} ] with
  | { Sld.proofs = [ trace ]; _ } :: _ ->
      let dot = Explain.proof_dot trace in
      Alcotest.(check bool) "digraph" true (contains ~sub:"digraph proof" dot);
      Alcotest.(check bool) "credential highlighted" true
        (contains ~sub:"signed by UIUC" dot);
      Alcotest.(check bool) "builtin dashed" true (contains ~sub:"style=dashed" dot);
      Alcotest.(check bool) "edges" true (contains ~sub:"->" dot)
  | _ -> Alcotest.fail "proof expected"

(* ------------------------------------------------------------------ *)
(* Standard externals: authenticatesTo, reputation, accounts *)

let test_authenticates_to () =
  (* Footnote 3 of the paper: preferred(X) <- student(Y) @ "UIUC",
     authenticatesTo(X, Y) — Alice proves she owns the student number
     under which UIUC knows her. *)
  let ids = Externals.Identity.create () in
  Externals.Identity.enroll ids ~principal:"Alice" ~identity:"uiuc-4711";
  let session = Session.create () in
  let owner =
    Session.add_peer session
      ~externals:(Externals.Identity.externals ids)
      ~program:
        {|preferred(X) $ true <-{true}
            student(Y) @ "UIUC", authenticatesTo(X, Y).
          student("uiuc-4711") @ "UIUC" signedBy ["UIUC"].|}
      "owner"
  in
  ignore owner;
  ignore (Session.add_peer session "Alice");
  Engine.attach_all session;
  let ok =
    Negotiation.request_str session ~requester:"Alice" ~target:"owner"
      {|preferred("Alice")|}
  in
  Alcotest.(check bool) "Alice authenticates" true (granted ok);
  let no =
    Negotiation.request_str session ~requester:"Alice" ~target:"owner"
      {|preferred("Mallory")|}
  in
  Alcotest.(check bool) "Mallory does not" false (granted no)

let test_identity_enumeration () =
  let ids = Externals.Identity.create () in
  Externals.Identity.enroll ids ~principal:"Alice" ~identity:"id1";
  Externals.Identity.enroll ids ~principal:"Alice" ~identity:"id2";
  let kb = Kb.empty in
  let answers =
    Sld.answers
      ~externals:(Externals.Identity.externals ids)
      ~self:"p" kb
      (Parser.parse_query {|authenticatesTo("Alice", Y)|})
  in
  Alcotest.(check int) "both identities" 2 (List.length answers)

let test_reputation () =
  let rep = Externals.Reputation.create () in
  Externals.Reputation.rate rep ~subject:"shop" 4;
  Externals.Reputation.rate rep ~subject:"shop" 5;
  Externals.Reputation.rate rep ~subject:"scam" 1;
  Alcotest.(check (option int)) "average rounds" (Some 5)
    (Externals.Reputation.average rep ~subject:"shop");
  (* Paper §2: subjective criteria in a policy. *)
  let kb =
    Kb.of_string
      {|trustworthy(X) <- rating(X, R), R >= 3.|}
  in
  let ext = Externals.Reputation.externals rep in
  let provable q =
    Sld.provable ~externals:ext ~self:"p" kb (Parser.parse_query q)
  in
  Alcotest.(check bool) "good shop trusted" true (provable {|trustworthy("shop")|});
  Alcotest.(check bool) "scam not trusted" false (provable {|trustworthy("scam")|});
  Alcotest.(check bool) "unknown not trusted" false (provable {|trustworthy("x")|})

let test_accounts_limits_and_revocation () =
  let accounts = Externals.Accounts.create () in
  Externals.Accounts.set_limit accounts ~account:"IBM" 5000;
  let ext = Externals.Accounts.externals accounts in
  let provable q =
    Sld.provable ~externals:ext ~self:"visa" Kb.empty (Parser.parse_query q)
  in
  Alcotest.(check bool) "within limit" true (provable {|purchaseApproved("IBM", 1000)|});
  Alcotest.(check bool) "over limit" false (provable {|purchaseApproved("IBM", 9000)|});
  Externals.Accounts.revoke accounts ~account:"IBM";
  Alcotest.(check bool) "revoked account refused" false
    (provable {|purchaseApproved("IBM", 1000)|})

let test_externals_combine () =
  let ids = Externals.Identity.create () in
  Externals.Identity.enroll ids ~principal:"a" ~identity:"i";
  let rep = Externals.Reputation.create () in
  Externals.Reputation.rate rep ~subject:"a" 4;
  let ext =
    Externals.combine
      [ Externals.Identity.externals ids; Externals.Reputation.externals rep ]
  in
  let provable q =
    Sld.provable ~externals:ext ~self:"p" Kb.empty (Parser.parse_query q)
  in
  Alcotest.(check bool) "identity via combined" true (provable {|authenticatesTo("a", "i")|});
  Alcotest.(check bool) "rating via combined" true (provable {|rating("a", 4)|})

(* ------------------------------------------------------------------ *)
(* QEL metadata queries (Edutella substrate) *)

let demo_registry () =
  let reg = Rdf.Registry.create () in
  Rdf.Registry.add_course reg ~id:"spanish101" ~price:0 ~language:"spanish" ();
  Rdf.Registry.add_course reg ~id:"cs411" ~price:1000 ();
  Rdf.Registry.add_course reg ~id:"cs500" ~price:3000 ();
  reg

let test_qel_parse () =
  let q = Qel.parse "C, P <- course(C), price(C, P), P < 1500" in
  Alcotest.(check (list string)) "projection" [ "C"; "P" ] q.Qel.projection;
  Alcotest.(check int) "three conjuncts" 3 (List.length q.Qel.body);
  Alcotest.(check bool) "roundtrip" true
    (Qel.to_string q = Qel.to_string (Qel.parse (Qel.to_string q)))

let test_qel_parse_errors () =
  (try
     ignore (Qel.parse "Z <- course(C)");
     Alcotest.fail "unbound projection accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Qel.parse "course(C)");
    Alcotest.fail "missing arrow accepted"
  with Invalid_argument _ -> ()

let test_qel_eval_registry () =
  let reg = demo_registry () in
  let kb = Rdf.Registry.to_kb reg in
  let q = Qel.parse "C <- course(C), price(C, P), P < 1500" in
  let rows = Qel.eval_kb ~self:"x" kb q in
  (* Only cs411 has a price below 1500 (the free course has no price/2
     projection fact besides the raw triple view). *)
  Alcotest.(check bool) "cs411 found" true
    (List.mem [ Term.atom "cs411" ] rows);
  Alcotest.(check bool) "cs500 excluded" false
    (List.mem [ Term.atom "cs500" ] rows)

let test_qel_network_search () =
  let session = Session.create () in
  let program = Qel.searchable_program (demo_registry ()) in
  ignore (Session.add_peer session ~program "provider");
  ignore (Session.add_peer session "seeker");
  Engine.attach_all session;
  let q = Qel.parse "C, P <- price(C, P), P < 1500" in
  let rows = Qel.search session ~requester:"seeker" ~provider:"provider" q in
  (* cs411 ($1000) and the raw zero-price fact of the free course. *)
  Alcotest.(check int) "two affordable rows" 2 (List.length rows);
  Alcotest.(check bool) "cs411 found" true
    (List.mem [ Term.atom "cs411"; Term.Int 1000 ] rows);
  Alcotest.(check bool) "cs500 excluded" false
    (List.exists
       (function
         | [ c; _ ] -> Term.equal c (Term.atom "cs500")
         | _ -> false)
       rows)

let test_qel_search_all () =
  let session = Session.create () in
  let reg_a = Rdf.Registry.create () in
  Rdf.Registry.add_course reg_a ~id:"alpha" ~price:100 ();
  let reg_b = Rdf.Registry.create () in
  Rdf.Registry.add_course reg_b ~id:"beta" ~price:200 ();
  ignore
    (Session.add_peer session ~program:(Qel.searchable_program reg_a) "prov_a");
  ignore
    (Session.add_peer session ~program:(Qel.searchable_program reg_b) "prov_b");
  ignore (Session.add_peer session "seeker");
  Engine.attach_all session;
  let q = Qel.parse "C <- price(C, P)" in
  let results =
    Qel.search_all session ~requester:"seeker"
      ~providers:[ "prov_a"; "prov_b" ] q
  in
  Alcotest.(check int) "both providers answered" 2 (List.length results);
  Alcotest.(check bool) "alpha at a" true
    (List.assoc "prov_a" results = [ [ Term.atom "alpha" ] ]);
  Alcotest.(check bool) "beta at b" true
    (List.assoc "prov_b" results = [ [ Term.atom "beta" ] ])

let test_qel_respects_release_policies () =
  (* A provider whose catalogue is guarded releases nothing to strangers. *)
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|price(cs1, 700).
           price(C, P) $ partner(Requester) <-{true} price(C, P).|}
       "provider");
  ignore (Session.add_peer session "seeker");
  Engine.attach_all session;
  let q = Qel.parse "C <- price(C, P)" in
  Alcotest.(check int) "guarded catalogue hidden" 0
    (List.length (Qel.search session ~requester:"seeker" ~provider:"provider" q))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "extensions"
    [
      ( "broker",
        [
          tc "directory lookup" test_broker_lookup;
          tc "broker-resolved authority" test_broker_resolved_authority_in_policy;
          tc "local authority database" test_local_authority_database;
        ] );
      ( "proxy",
        [
          tc "negotiation through proxy" test_proxy_negotiation_succeeds;
          tc "proxy unreachable" test_proxy_unreachable;
          tc "device holds nothing" test_proxy_device_holds_nothing;
        ] );
      ( "analysis",
        [
          tc "chain fully released" test_analysis_policy_chain_all_released;
          tc "deadlock detected" test_analysis_detects_deadlock;
          tc "private goal" test_analysis_private_goal_never_succeeds;
          tc "agrees with runtime" test_analysis_agrees_with_runtime;
          tc "scenario 1 reachable" test_analysis_scenario1;
          tc "critical credentials" test_analysis_critical_credentials;
          tc "redundant credential not critical"
            test_analysis_redundant_credential_not_critical;
          tc "critical set empty on failure" test_analysis_critical_empty_on_failure;
        ] );
      ( "multi-party",
        [
          tc "3-party succeeds where 2-party fails"
            test_multi_eager_succeeds_where_two_party_fails;
          tc "participants checked" test_multi_eager_requires_listed_parties;
          tc "terminates on failure" test_multi_eager_terminates_on_failure;
        ] );
      ( "sticky",
        [
          tc "learned credential private by default"
            test_learned_credential_private_by_default;
          tc "context travels with credential"
            test_sticky_context_travels_with_credential;
        ] );
      ( "content-triggered",
        [ tc "intensional printer policy" test_content_triggered_policy ] );
      ( "explain",
        [
          tc "narrative" test_explain_narrative;
          tc "narrative of denial" test_explain_narrative_denial;
          tc "sequence diagram" test_explain_sequence_diagram;
          tc "proof dot" test_explain_proof_dot;
        ] );
      ( "externals",
        [
          tc "authenticatesTo" test_authenticates_to;
          tc "identity enumeration" test_identity_enumeration;
          tc "reputation" test_reputation;
          tc "accounts" test_accounts_limits_and_revocation;
          tc "combine" test_externals_combine;
        ] );
      ( "qel",
        [
          tc "parse" test_qel_parse;
          tc "parse errors" test_qel_parse_errors;
          tc "registry evaluation" test_qel_eval_registry;
          tc "network search" test_qel_network_search;
          tc "multi-provider search" test_qel_search_all;
          tc "release policies respected" test_qel_respects_release_policies;
        ] );
    ]

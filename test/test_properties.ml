(* Property-based tests over the negotiation engine and the whole stack:
   random worlds, random programs, random rules.  These check the
   system-level invariants the paper's design promises:

   - safety: every credential a peer receives was releasable to it under
     the origin's release policies;
   - strategy completeness and interoperability: on solvable worlds every
     strategy succeeds, on unsolvable worlds every strategy fails;
   - the static analysis is definitive on failure and agrees with the
     engine on the generated world family;
   - the forward and backward engines derive the same ground facts;
   - printing is the left inverse of parsing for generated rules. *)

open Peertrust
open Peertrust_dlp
module Crypto = Peertrust_crypto

let granted = Negotiation.succeeded

(* CHECK_SLOW=1 (see check.sh) multiplies every iteration count. *)
let slow =
  match Sys.getenv_opt "CHECK_SLOW" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let scale n = if slow then n * 5 else n

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_world_params =
  QCheck.make
    ~print:(fun (d, e, m) ->
      Printf.sprintf "depth=%d extras=%d missing=%s" d e
        (match m with Some k -> string_of_int k | None -> "-"))
    QCheck.Gen.(
      let* depth = int_range 1 6 in
      let* extras = int_range 0 3 in
      let* missing =
        frequency [ (2, return None); (1, map Option.some (int_range 1 depth)) ]
      in
      return (depth, extras, missing))

let build_world (depth, extras, missing) =
  Scenario.policy_chain ~extra_creds:extras ?missing ~depth ()

let run_world strategy (w : Scenario.chain_world) =
  Strategy.negotiate w.Scenario.cw_session ~strategy
    ~requester:w.Scenario.cw_requester ~target:w.Scenario.cw_owner
    w.Scenario.cw_goal

(* ------------------------------------------------------------------ *)
(* Safety: no credential reaches a peer its origin would not release it
   to. *)

let prop_no_unsafe_disclosure =
  QCheck.Test.make ~name:"engine: every received credential was releasable"
    ~count:(scale 40) gen_world_params (fun params ->
      let w = build_world params in
      let session = w.Scenario.cw_session in
      ignore (run_world Strategy.Relevant w);
      let ok = ref true in
      Hashtbl.iter
        (fun _ (holder : Peer.t) ->
          Hashtbl.iter
            (fun _ (cert : Crypto.Cert.t) ->
              match Peer.cert_origin holder cert with
              | None -> ()  (* the peer's own credential *)
              | Some origin ->
                  let origin_peer = Session.peer session origin in
                  let prover = Engine.prover session origin_peer in
                  let decision =
                    Policy.credential_releasable ~prover
                      ~kb:origin_peer.Peer.kb ~requester:holder.Peer.name
                      ~self:origin cert.Crypto.Cert.rule
                  in
                  if decision <> Policy.Granted then ok := false)
            holder.Peer.certs)
        session.Session.peers;
      !ok)

(* ------------------------------------------------------------------ *)
(* Strategy completeness and interoperability *)

let prop_strategies_agree =
  QCheck.Test.make
    ~name:"strategies: all succeed on solvable worlds, all fail otherwise"
    ~count:(scale 30) gen_world_params (fun ((_, _, missing) as params) ->
      let solvable = missing = None in
      List.for_all
        (fun strategy ->
          let w = build_world params in
          granted (run_world strategy w) = solvable)
        Strategy.all)

let prop_multi_eager_matches_two_party =
  QCheck.Test.make
    ~name:"strategies: n-party eager with both parties behaves like 2-party"
    ~count:(scale 20) gen_world_params (fun params ->
      let w = build_world params in
      let multi =
        Strategy.negotiate_multi w.Scenario.cw_session
          ~participants:[ w.Scenario.cw_requester; w.Scenario.cw_owner ]
          ~requester:w.Scenario.cw_requester ~target:w.Scenario.cw_owner
          w.Scenario.cw_goal
      in
      let w2 = build_world params in
      let two = run_world Strategy.Eager w2 in
      granted multi = granted two)

(* ------------------------------------------------------------------ *)
(* Static analysis vs runtime *)

let prop_analysis_agrees =
  QCheck.Test.make ~name:"analysis: prediction matches engine on chain worlds"
    ~count:(scale 30) gen_world_params (fun params ->
      let w = build_world params in
      let world = Analysis.world_of_session w.Scenario.cw_session in
      let predicted =
        Analysis.may_succeed world ~owner:w.Scenario.cw_owner
          ~goal:w.Scenario.cw_goal
      in
      let actual = granted (run_world Strategy.Relevant (build_world params)) in
      predicted = actual)

(* ------------------------------------------------------------------ *)
(* Forward / backward agreement on random Datalog *)

let gen_graph =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "nodes=%d edges=[%s]" n
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) edges)))
    QCheck.Gen.(
      let* n = int_range 2 8 in
      let* m = int_range 1 14 in
      let* edges =
        list_size (return m)
          (pair (int_range 1 n) (int_range 1 n))
      in
      return (n, edges))

let prop_tabled_forward_agree =
  QCheck.Test.make ~name:"engines: tabled and forward agree on reachability"
    ~count:(scale 40) gen_graph (fun (n, edges) ->
      let buf = Buffer.create 128 in
      (* Left-recursive formulation: the regime where SLD is incomplete
         and tabling must still match the forward fixpoint. *)
      Buffer.add_string buf
        "path(X, Z) <- path(X, Y), edge(Y, Z). path(X, Y) <- edge(X, Y).\n";
      List.iter
        (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "edge(%d, %d).\n" a b))
        edges;
      let kb = Kb.of_string (Buffer.contents buf) in
      let fwd = Forward.saturate ~self:"p" kb in
      let fwd_paths =
        List.filter
          (fun (l : Literal.t) -> String.equal l.Literal.pred "path")
          fwd.Forward.facts
      in
      let _ = n in
      let tabled = Tabled.solve ~self:"p" kb (Parser.parse_query "path(A, B)") in
      List.length tabled = List.length fwd_paths)

let prop_forward_backward_agree =
  QCheck.Test.make ~name:"engines: forward and SLD agree on reachability"
    ~count:(scale 60) gen_graph (fun (n, edges) ->
      let buf = Buffer.create 128 in
      Buffer.add_string buf
        "path(X, Y) <- edge(X, Y). path(X, Z) <- edge(X, Y), path(Y, Z).\n";
      List.iter
        (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "edge(%d, %d).\n" a b))
        edges;
      let kb = Kb.of_string (Buffer.contents buf) in
      let fwd = Forward.saturate ~self:"p" kb in
      let agree a b =
        let goal = Printf.sprintf "path(%d, %d)" a b in
        let f =
          List.exists
            (Literal.equal (Parser.parse_literal goal))
            fwd.Forward.facts
        in
        let bwd =
          Sld.provable
            ~options:
              {
                Sld.default_options with
                max_depth = (2 * (n + List.length edges)) + 8;
                max_solutions = 1;
              }
            ~self:"p" kb
            (Parser.parse_query goal)
        in
        f = bwd
      in
      List.for_all
        (fun a -> List.for_all (fun b -> agree a b) (List.init n succ))
        (List.init n succ))

(* ------------------------------------------------------------------ *)
(* Differential testing: the three evaluation paradigms on random
   stratified, non-recursive, ground-able Datalog programs.  This is the
   regime where SLD, tabling and forward chaining are all defined, so
   their answer sets must coincide exactly.  Programs that draw a NAF
   rule exercise the documented divergence instead: the tabled engine
   must reject the whole program ([Tabled.Unsupported] — a NAF check
   against an unfinished table would be unsound), forward chaining skips
   the NAF rule, and SLD on the program without that rule must agree
   with forward chaining on the full program.  Tabled skips are counted
   and reported by the last test of the [paradigms] section. *)

type stratified = {
  sp_base : string;  (* NAF-free program text *)
  sp_naf : string option;  (* one stratified NAF rule for the top pred *)
  sp_top : string;  (* top predicate name *)
  sp_nconst : int;  (* constants c1..c<n> *)
}

let gen_stratified =
  QCheck.Gen.(
    let pred_of k = if k = 0 then "e0" else Printf.sprintf "p%d" k in
    let* nconst = int_range 2 3 in
    let* facts =
      list_size (int_range 2 6) (pair (int_range 1 nconst) (int_range 1 nconst))
    in
    let* depth = int_range 1 3 in
    let gen_rule_at i =
      let* q = int_range 0 (i - 1) in
      let* r = int_range 0 (i - 1) in
      let* shape = int_range 0 2 in
      return
        (match shape with
        | 0 -> Printf.sprintf "%s(X, Y) <- %s(X, Y).\n" (pred_of i) (pred_of q)
        | 1 ->
            Printf.sprintf "%s(X, Z) <- %s(X, Y), %s(Y, Z).\n" (pred_of i)
              (pred_of q) (pred_of r)
        | _ ->
            Printf.sprintf "%s(X, Y) <- %s(X, Y), %s(Y, W).\n" (pred_of i)
              (pred_of q) (pred_of r))
    in
    let rec strata i acc =
      if i > depth then return acc
      else
        let* rules = list_size (int_range 1 2) (gen_rule_at i) in
        strata (i + 1) (acc ^ String.concat "" rules)
    in
    let base_facts =
      String.concat ""
        (List.map
           (fun (a, b) -> Printf.sprintf "e0(c%d, c%d).\n" a b)
           facts)
    in
    let* base = strata 1 base_facts in
    let* naf =
      frequency
        [
          (3, return None);
          ( 1,
            let* q = int_range 0 (depth - 1) in
            return
              (Some
                 (Printf.sprintf "%s(X, Y) <- e0(X, Y), not %s(X, Y).\n"
                    (pred_of depth) (pred_of q))) );
        ]
    in
    return
      { sp_base = base; sp_naf = naf; sp_top = pred_of depth;
        sp_nconst = nconst })

let arb_stratified =
  QCheck.make
    ~print:(fun sp -> sp.sp_base ^ Option.value ~default:"" sp.sp_naf)
    gen_stratified

let naf_skips = ref 0

let prop_three_paradigms_agree =
  QCheck.Test.make
    ~name:"engines: SLD, tabled and forward agree on stratified programs"
    ~count:(scale 60) arb_stratified (fun sp ->
      let kb_base = Kb.of_string sp.sp_base in
      let kb_full =
        match sp.sp_naf with
        | None -> kb_base
        | Some r -> Kb.of_string (sp.sp_base ^ r)
      in
      (* Forward chaining is the reference answer set. *)
      let fwd = Forward.saturate ~self:"p" kb_full in
      let fwd_set =
        List.filter
          (fun (l : Literal.t) -> String.equal l.Literal.pred sp.sp_top)
          fwd.Forward.facts
        |> List.map Literal.to_string
        |> List.sort_uniq String.compare
      in
      (* SLD: point queries over the whole ground space (complete here:
         the programs are non-recursive).  In the NAF case the engine
         runs on the base program, mirroring forward chaining's
         skip-NAF-rules semantics. *)
      let consts = List.init sp.sp_nconst succ in
      let sld_agrees =
        List.for_all
          (fun a ->
            List.for_all
              (fun b ->
                let text = Printf.sprintf "%s(c%d, c%d)" sp.sp_top a b in
                let in_fwd =
                  List.mem
                    (Literal.to_string (Parser.parse_literal text))
                    fwd_set
                in
                Sld.provable
                  ~options:{ Sld.default_options with max_depth = 64; max_solutions = 1 }
                  ~self:"p" kb_base (Parser.parse_query text)
                = in_fwd)
              consts)
          consts
      in
      let goal = Parser.parse_query (sp.sp_top ^ "(A, B)") in
      match sp.sp_naf with
      | Some _ ->
          incr naf_skips;
          let rejected =
            match Tabled.solve ~self:"p" kb_full goal with
            | _ -> false
            | exception Tabled.Unsupported _ -> true
          in
          rejected && sld_agrees
      | None ->
          let goal_lit = List.hd goal in
          let tabled_set =
            Tabled.solve ~self:"p" kb_full goal
            |> List.map (fun s -> Literal.to_string (Literal.apply s goal_lit))
            |> List.sort_uniq String.compare
          in
          tabled_set = fwd_set && sld_agrees)

let report_naf_skips () =
  Printf.printf
    "  tabled: %d generated NAF program(s) skipped via Unsupported (as \
     documented — tabling rejects negation as failure)\n"
    !naf_skips

(* ------------------------------------------------------------------ *)
(* Printer/parser roundtrip on generated rules *)

let gen_const =
  let open QCheck.Gen in
  oneof
    [
      map (fun i -> Term.Int i) (int_bound 99);
      map (fun i -> Term.str (Printf.sprintf "s%d" i)) (int_bound 4);
      map (fun i -> Term.atom (Printf.sprintf "a%d" i)) (int_bound 4);
    ]

let gen_term =
  let open QCheck.Gen in
  frequency
    [
      (2, map (fun i -> Term.var (Printf.sprintf "V%d" i)) (int_bound 3));
      (3, gen_const);
      ( 1,
        map2
          (fun f args -> Term.compound (Printf.sprintf "f%d" f) args)
          (int_bound 2)
          (list_size (int_range 1 2) gen_const) );
    ]

let gen_literal =
  let open QCheck.Gen in
  let* p = int_bound 4 in
  let* args = list_size (int_range 0 3) gen_term in
  let* auth = list_size (int_range 0 2) gen_term in
  return (Literal.make ~auth (Printf.sprintf "p%d" p) args)

let gen_rule =
  let open QCheck.Gen in
  let* head = gen_literal in
  let* body = list_size (int_range 0 3) gen_literal in
  let* head_ctx =
    frequency
      [
        (2, return None);
        (1, return (Some []));
        (1, map (fun l -> Some [ l ]) gen_literal);
      ]
  in
  let* rule_ctx = frequency [ (3, return None); (1, return (Some [])) ] in
  let* signer =
    frequency
      [
        (3, return []);
        (1, map (fun i -> [ Printf.sprintf "CA%d" i ]) (int_bound 2));
      ]
  in
  return (Rule.make ?head_ctx ?rule_ctx ~signer head body)

let arb_rule =
  QCheck.make ~print:Rule.to_string gen_rule

let prop_rule_roundtrip =
  QCheck.Test.make ~name:"parser: print/parse roundtrip on generated rules"
    ~count:(scale 300) arb_rule (fun r ->
      Rule.equal r (Parser.parse_rule (Rule.to_string r)))

let prop_canonical_alpha_invariant =
  QCheck.Test.make ~name:"rule: canonical form is alpha-invariant" ~count:(scale 200)
    arb_rule (fun r ->
      String.equal (Rule.canonical r)
        (Rule.canonical (Rule.rename_apart r)))

let prop_subsumes_reflexive_on_instances =
  QCheck.Test.make ~name:"rule: instances are subsumed by their rule"
    ~count:(scale 200) arb_rule (fun r ->
      (* Ground every variable and check subsumption. *)
      let s =
        List.fold_left
          (fun s v -> Subst.bind_id v (Term.atom "c") s)
          Subst.empty (Rule.vars r)
      in
      Rule.subsumes ~general:r ~specific:(Rule.apply s r))

(* ------------------------------------------------------------------ *)
(* Differential: trailed-store unification vs the map-based oracle.
   [Unify.terms] over persistent substitutions is the boundary-path
   implementation and serves as the oracle; [Unify.store_terms] is the
   destructive hot path.  They must agree on unifiability, and on success
   both unifiers must make the pair syntactically equal.  The generator
   draws from a small shared variable pool so aliasing chains and occurs
   check failures (X =? f(X)) are common. *)

let rec gen_unify_term depth =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        (3, map (fun i -> Term.var (Printf.sprintf "U%d" i)) (int_bound 4));
        (2, gen_const);
      ]
  in
  if depth = 0 then leaf
  else
    frequency
      [
        (2, leaf);
        ( 3,
          map2
            (fun f args -> Term.compound (Printf.sprintf "g%d" f) args)
            (int_bound 2)
            (list_size (int_range 1 3) (gen_unify_term (depth - 1))) );
      ]

let arb_term_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Format.asprintf "%a =? %a" Term.pp a Term.pp b)
    QCheck.Gen.(
      let* a = gen_unify_term 3 in
      let* b = gen_unify_term 3 in
      return (a, b))

let prop_unify_differential =
  QCheck.Test.make
    ~name:"unify: trailed store agrees with the map-based oracle"
    ~count:(scale 1000) arb_term_pair (fun (a, b) ->
      let oracle = Unify.terms a b Subst.empty in
      let st = Store.create () in
      let m = Store.mark st in
      let ok = Unify.store_terms st a b in
      let agree =
        match (oracle, ok) with
        | None, false -> true
        | Some s, true ->
            Term.equal (Store.resolve st a) (Store.resolve st b)
            && Term.equal (Subst.apply s a) (Subst.apply s b)
        | Some _, false | None, true -> false
      in
      Store.undo st m;
      agree)

(* ------------------------------------------------------------------ *)
(* First-argument indexing is invisible to [Kb.matching] up to the
   unifiability filter (correctness side of the E12 ablation): the
   indexed KB may return fewer candidates than the linear scan, but it
   must never drop a clause whose head unifies with the goal, and every
   candidate it returns must also be in the linear scan. *)

let head_unifiable goal r =
  (* Rename apart so shared variable names don't block unification. *)
  let fresh = Rule.rename_apart r in
  Option.is_some (Literal.unify goal fresh.Rule.head Subst.empty)

let arb_kb_and_goal =
  QCheck.make
    ~print:(fun (rules, goal) ->
      Printf.sprintf "goal=%s kb=[%s]" (Literal.to_string goal)
        (String.concat " " (List.map Rule.to_string rules)))
    QCheck.Gen.(
      let* rules = list_size (int_range 0 30) gen_rule in
      let* goal = gen_literal in
      return (rules, goal))

let prop_indexing_transparent =
  QCheck.Test.make
    ~name:"kb: first-argument indexing never changes the unifiable match set"
    ~count:(scale 300) arb_kb_and_goal (fun (rules, goal) ->
      let indexed = Kb.add_list rules Kb.empty in
      let linear = Kb.add_list rules Kb.empty_linear in
      let mi = Kb.matching goal indexed in
      let ml = Kb.matching goal linear in
      let subset = List.for_all (fun r -> List.exists (Rule.equal r) ml) mi in
      let complete =
        List.for_all
          (fun r -> List.exists (Rule.equal r) mi || not (head_unifiable goal r))
          ml
      in
      let key_set l =
        List.filter (head_unifiable goal) l
        |> List.map Rule.canonical
        |> List.sort_uniq String.compare
      in
      subset && complete && key_set mi = key_set ml)

(* ------------------------------------------------------------------ *)
(* Differential: the flat resolution path (int-array clauses, hash-consed
   ground ids, first-argument index, canonical-encoding ancestor check)
   against a boxed map-substitution oracle that mirrors the solver's
   search order — facts before proper rules in insertion order,
   variant-ancestor pruning, per-application depth budget.  The answer
   LISTS must be equal: same solutions in the same order, not just the
   same sets (solution order is what negotiation transcripts pin).
   Programs are stratified joins whose facts carry nested compounds,
   strings and ints, so goals route through every flat-argument class:
   ground id, compound escape, and variable slot. *)

let boxed_oracle_answers ~max_depth ~self kb goals =
  let initial = Subst.bind "Self" (Term.str self) Subst.empty in
  let results = ref [] in
  let rec prove goal subst depth ancestors k =
    if depth <= 0 then ()
    else
      let goal = Literal.apply subst goal in
      let gt = Literal.to_term goal in
      if
        List.exists
          (fun anc ->
            Unify.variant (Literal.to_term (Literal.apply subst anc)) gt)
          ancestors
      then ()
      else begin
        let ancestors' = goal :: ancestors in
        let use rule =
          let r = Rule.rename_apart rule in
          match Literal.unify goal r.Rule.head subst with
          | None -> ()
          | Some s' -> prove_all r.Rule.body s' (depth - 1) ancestors' k
        in
        let facts, proper = List.partition Rule.is_fact (Kb.matching goal kb) in
        List.iter use facts;
        List.iter use proper
      end
  and prove_all goals subst depth ancestors k =
    match goals with
    | [] -> k subst
    | g :: rest ->
        prove g subst depth ancestors (fun s' ->
            prove_all rest s' depth ancestors k)
  in
  let qvars =
    List.concat_map Literal.vars goals
    |> List.filter (fun v -> not (Term.is_pseudo v))
  in
  prove_all goals initial max_depth [] (fun s ->
      results := Subst.restrict qvars s :: !results);
  let seen = Hashtbl.create 64 in
  List.rev !results
  |> List.filter (fun s ->
         let key = Subst.to_string s in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.add seen key ();
           true
         end)

let gen_flat_program =
  QCheck.Gen.(
    let pred_of k = if k = 0 then "e0" else Printf.sprintf "q%d" k in
    let* nconst = int_range 2 3 in
    (* One base-fact argument: constant, nested compound, string or int —
       all the argument classes the flat encoding distinguishes. *)
    let arg =
      let* k = int_range 1 nconst in
      oneofl
        [
          Printf.sprintf "c%d" k;
          Printf.sprintf "f(c%d)" k;
          Printf.sprintf "g(c%d, h(%d))" k (k + 10);
          Printf.sprintf "\"s%d\"" k;
          string_of_int k;
        ]
    in
    let* facts =
      list_size (int_range 2 7)
        (let* a = arg in
         let* b = arg in
         return (Printf.sprintf "e0(%s, %s).\n" a b))
    in
    let* depth = int_range 1 3 in
    let gen_rule_at i =
      let* q = int_range 0 (i - 1) in
      let* r = int_range 0 (i - 1) in
      let* shape = int_range 0 2 in
      return
        (match shape with
        | 0 -> Printf.sprintf "%s(X, Y) <- %s(X, Y).\n" (pred_of i) (pred_of q)
        | 1 ->
            Printf.sprintf "%s(X, Z) <- %s(X, Y), %s(Y, Z).\n" (pred_of i)
              (pred_of q) (pred_of r)
        | _ ->
            Printf.sprintf "%s(X, Y) <- %s(X, Y), %s(Y, W).\n" (pred_of i)
              (pred_of q) (pred_of r))
    in
    let rec strata i acc =
      if i > depth then return acc
      else
        let* rules = list_size (int_range 1 2) (gen_rule_at i) in
        strata (i + 1) (acc ^ String.concat "" rules)
    in
    let* src = strata 1 (String.concat "" facts) in
    return (src, pred_of depth))

let arb_flat_program =
  QCheck.make ~print:(fun (src, top) -> src ^ "?- " ^ top ^ "(A, B).")
    gen_flat_program

let prop_flat_boxed_differential =
  QCheck.Test.make
    ~name:"sld: flat resolution matches the boxed oracle, answers and order"
    ~count:(scale 150) arb_flat_program (fun (src, top) ->
      let kb = Kb.of_string src in
      let goals = Parser.parse_query (top ^ "(A, B)") in
      let engine =
        Sld.answers
          ~options:
            { Sld.default_options with max_depth = 48; max_solutions = 10_000 }
          ~self:"p" kb goals
        |> List.map Subst.to_string
      in
      let oracle =
        boxed_oracle_answers ~max_depth:48 ~self:"p" kb goals
        |> List.map Subst.to_string
      in
      engine = oracle)

(* ------------------------------------------------------------------ *)
(* Certificates for random rules *)

let prop_cert_roundtrip =
  QCheck.Test.make ~name:"cert: issue/verify for generated signed rules"
    ~count:(scale 25) arb_rule (fun r ->
      QCheck.assume (Rule.is_signed r);
      let ks = Crypto.Keystore.create ~bits:320 ~seed:9L () in
      match Crypto.Cert.issue ks r with
      | Ok cert -> Crypto.Cert.verify ks cert = Ok ()
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Robustness: parsers fail only with their documented exceptions *)

let arb_junk =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(
      let any_char = map Char.chr (int_range 1 255) in
      let mixed =
        oneof
          [
            map (String.concat "")
              (list_size (int_range 0 8)
                 (oneofl
                    [ "p("; ")"; "\"str\""; "<-"; "@"; "$"; "signedBy";
                      "["; "]"; "X"; "42"; ","; "."; "not "; "+"; "{"; "}";
                      "true"; "%c\n"; "<"; "=" ]));
            string_size ~gen:any_char (int_range 0 40);
            string_size ~gen:printable (int_range 0 60);
          ]
      in
      mixed)

let total_with ~name f exns =
  QCheck.Test.make ~name ~count:(scale 500) arb_junk (fun s ->
      match f s with
      | _ -> true
      | exception e -> List.exists (fun p -> p e) exns)

let prop_parser_total =
  total_with ~name:"fuzz: program parser is total"
    Parser.parse_program
    [ (function Parser.Error _ -> true | _ -> false) ]

let prop_query_parser_total =
  total_with ~name:"fuzz: query parser is total" Parser.parse_query
    [ (function Parser.Error _ -> true | _ -> false) ]

let prop_turtle_total =
  total_with ~name:"fuzz: turtle parser is total" Peertrust_rdf.Turtle.parse
    [ (function Peertrust_rdf.Turtle.Error _ -> true | _ -> false) ]

let prop_wire_total =
  total_with ~name:"fuzz: wire decoder is total (never raises)"
    Crypto.Wire.decode_many []

let prop_qel_total =
  total_with ~name:"fuzz: QEL parser is total" Qel.parse
    [
      (function Parser.Error _ -> true | _ -> false);
      (function Invalid_argument _ -> true | _ -> false);
    ]

(* The wire codec under hostile input: decoding inverts encoding for
   generated certificates, and no amount of byte-level damage to a valid
   wallet makes the decoder raise — it is what the inbound guard runs on
   every raw blob an adversary sends. *)

let cert_of_rule ?(serial = 7) rule =
  {
    Crypto.Cert.serial;
    rule;
    not_before = 0;
    not_after = 1000 + serial;
    signatures =
      [ ("Issuer: odd/name", Crypto.Bignum.of_int (424242 + serial)) ];
  }

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire: decode inverts encode" ~count:(scale 60)
    arb_rule (fun r ->
      let cert = cert_of_rule r in
      match Crypto.Wire.decode (Crypto.Wire.encode cert) with
      | Ok c -> Crypto.Wire.encode c = Crypto.Wire.encode cert
      | Error _ -> false)

let arb_wallet_damage =
  QCheck.make
    ~print:(fun (muts, trunc) ->
      Printf.sprintf "muts=[%s] trunc=%s"
        (String.concat ";"
           (List.map (fun (p, c) -> Printf.sprintf "%d:%d" p c) muts))
        (match trunc with Some n -> string_of_int n | None -> "-"))
    QCheck.Gen.(
      pair
        (list_size (int_range 0 12) (pair small_nat (int_range 0 255)))
        (option small_nat))

let prop_wire_mutated_total =
  QCheck.Test.make
    ~name:"fuzz: wire decoder is total on mutated wallets"
    ~count:(scale 300) arb_wallet_damage (fun (muts, trunc) ->
      let wallet =
        Crypto.Wire.encode_many
          [
            cert_of_rule ~serial:1
              (Parser.parse_rule {|cred("alice") @ "CA" signedBy ["CA"].|});
            cert_of_rule ~serial:2
              (Parser.parse_rule {|member("bob") signedBy ["Org"].|});
          ]
      in
      let b = Bytes.of_string wallet in
      List.iter
        (fun (pos, c) -> Bytes.set b (pos mod Bytes.length b) (Char.chr c))
        muts;
      let s = Bytes.to_string b in
      let s =
        match trunc with
        | Some n -> String.sub s 0 (min n (String.length s))
        | None -> s
      in
      match Crypto.Wire.decode_many s with
      | Ok _ | Error (Crypto.Wire.Malformed _) -> true
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* Observability: percentile monotonicity, and the trace/envelope wire
   headers under the same hostile-input discipline as the cert wallet. *)

module Pobs = Peertrust_obs
module Pnet = Peertrust_net

let prop_percentile_monotone =
  (* percentile hs is monotone in q — including samples that land in the
     unbounded overflow bucket, where the observed max is reported. *)
  let arb =
    QCheck.make
      ~print:
        QCheck.Print.(pair (list int) (pair float float))
      QCheck.Gen.(
        triple
          (list_size (int_range 0 60) (int_range 0 200_000))
          (float_bound_inclusive 1.)
          (float_bound_inclusive 1.)
        |> map (fun (samples, q1, q2) -> (samples, (q1, q2))))
  in
  QCheck.Test.make ~name:"metric: percentile is monotone in q"
    ~count:(scale 300) arb (fun (samples, (q1, q2)) ->
      let h = Pobs.Metric.histogram ~buckets:[| 4.; 64.; 1024. |] "q" in
      List.iter (Pobs.Metric.observe_int h) samples;
      let hs = Pobs.Metric.snapshot_histogram h in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Pobs.Metric.percentile hs lo <= Pobs.Metric.percentile hs hi)

let prop_trace_header_roundtrip =
  let arb =
    QCheck.make
      ~print:(fun c -> Pobs.Trace_context.to_header c)
      QCheck.Gen.(
        map3
          (fun trace_id parent_span sampled ->
            Pobs.Trace_context.make ~sampled ~trace_id:(trace_id + 1)
              ~parent_span ())
          (int_bound 1_000_000_000) (int_bound 1_000_000_000) bool)
  in
  QCheck.Test.make ~name:"trace: header decode inverts encode"
    ~count:(scale 300) arb (fun c ->
      Pobs.Trace_context.of_header (Pobs.Trace_context.to_header c) = Some c)

let prop_trace_header_mutated_total =
  (* No byte-level damage to a valid header makes [of_header] raise, and
     anything it does accept is a well-formed context. *)
  QCheck.Test.make ~name:"fuzz: trace header decoder is total"
    ~count:(scale 300) arb_wallet_damage (fun (muts, trunc) ->
      let h =
        Pobs.Trace_context.to_header
          (Pobs.Trace_context.make ~trace_id:194 ~parent_span:31 ())
      in
      let b = Bytes.of_string h in
      List.iter
        (fun (pos, c) -> Bytes.set b (pos mod Bytes.length b) (Char.chr c))
        muts;
      let s = Bytes.to_string b in
      let s =
        match trunc with
        | Some n -> String.sub s 0 (min n (String.length s))
        | None -> s
      in
      match Pobs.Trace_context.of_header s with
      | Some c -> c.Pobs.Trace_context.trace_id >= 1
      | None -> true
      | exception _ -> false)

let arb_wire_header =
  let open QCheck.Gen in
  let name =
    oneof
      [
        oneofl [ "Alice"; "E-Learn"; "odd name"; "nl\nin-name"; "q\"uote" ];
        string_size ~gen:printable (int_range 0 12);
      ]
  in
  QCheck.make
    ~print:(fun h -> String.escaped (Pnet.Wire.encode h))
    (map
       (fun ((id, seq, attempt), (from_, target), (sent, dl, bytes), trace) ->
         {
           Pnet.Wire.h_id = id;
           h_seq = seq;
           h_attempt = attempt;
           h_from = from_;
           h_target = target;
           h_sent_at = sent;
           h_deliver_at = dl;
           h_kind = "query";
           h_bytes = bytes;
           h_incarnation = bytes mod 3;
           h_tabling = None;
           h_trace =
             Option.map
               (fun (t, p, s) ->
                 Pobs.Trace_context.make ~sampled:s ~trace_id:(t + 1)
                   ~parent_span:p ())
               trace;
         })
       (quad
          (triple small_nat small_nat small_nat)
          (pair name name)
          (triple small_nat small_nat small_nat)
          (option (triple (int_bound 100_000) (int_bound 100_000) bool))))

let prop_envelope_wire_roundtrip =
  QCheck.Test.make ~name:"wire: envelope header decode inverts encode"
    ~count:(scale 200) arb_wire_header (fun h ->
      Pnet.Wire.decode (Pnet.Wire.encode h) = Ok h)

let prop_envelope_wire_mutated_total =
  QCheck.Test.make
    ~name:"fuzz: envelope header decoder is total on mutated frames"
    ~count:(scale 300)
    (QCheck.pair arb_wire_header arb_wallet_damage)
    (fun (h, (muts, trunc)) ->
      let frame = Pnet.Wire.encode h in
      let b = Bytes.of_string frame in
      List.iter
        (fun (pos, c) -> Bytes.set b (pos mod Bytes.length b) (Char.chr c))
        muts;
      let s = Bytes.to_string b in
      let s =
        match trunc with
        | Some n -> String.sub s 0 (min n (String.length s))
        | None -> s
      in
      match Pnet.Wire.decode s with
      | Ok _ | Error (Pnet.Wire.Malformed _) -> true
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* Distributed tabling: random programs partitioned across 2-5 peers,
   one owning peer per predicate, with the reactor's distributed-tabled
   answer set diffed against one [Tabled.solve] run on the merged KB
   (the same rules with the authority annotations dropped).  Cyclic
   worlds overlay a predicate ring spanning the peers — an inter-peer
   SCC the completion protocol must detect, quiesce and freeze — while
   acyclic worlds only chain downward.  NAF worlds pin the documented
   divergence instead: the merged engine raises [Tabled.Unsupported]
   and the distributed run must deny the root goal with a reason
   {!Negotiation.classify_denial} maps to [Unsupported].  Skips and
   cyclic coverage are counted and reported like the single-engine
   paradigms section. *)

type dworld = {
  dw_programs : (string * string) list;  (* peer name -> its KB slice *)
  dw_merged : string;  (* same rules, authorities dropped *)
  dw_top : string;  (* top predicate, the root goal's *)
  dw_target : string;  (* owner of the top predicate *)
  dw_naf : bool;
  dw_cyclic : bool;
}

let gen_dworld =
  QCheck.Gen.(
    let* npeers = int_range 2 5 in
    let* extra = int_range 1 2 in
    (* npreds > npeers keeps the cyclic ring spanning >= 2 peers *)
    let npreds = npeers + extra in
    let* nconst = int_range 2 3 in
    let* cyclic = bool in
    let* naf = frequency [ (3, return false); (1, return true) ] in
    let pred i = Printf.sprintf "q%d" i in
    let owner i = Printf.sprintf "n%d" (i mod npeers) in
    let lit ~dist i args =
      (* Distributed rules qualify every body literal with its owning
         peer; the merged reference drops the qualification. *)
      if dist then Printf.sprintf {|%s(%s) @ "%s"|} (pred i) args (owner i)
      else Printf.sprintf "%s(%s)" (pred i) args
    in
    let* facts =
      list_size (int_range 2 5)
        (pair (int_range 1 nconst) (int_range 1 nconst))
    in
    let gen_feed i =
      let* j = int_range 0 (i - 1) in
      let* k = int_range 0 (i - 1) in
      let* shape = int_range 0 1 in
      return
        ( i,
          fun ~dist ->
            if shape = 0 then
              Printf.sprintf "%s(X, Y) <- %s.\n" (pred i) (lit ~dist j "X, Y")
            else
              Printf.sprintf "%s(X, Z) <- %s, %s.\n" (pred i)
                (lit ~dist j "X, Y") (lit ~dist k "Y, Z") )
    in
    let rec feeds i acc =
      if i >= npreds then return (List.rev acc)
      else
        let* f = gen_feed i in
        feeds (i + 1) (f :: acc)
    in
    let* feed_rules = feeds 1 [] in
    (* The ring makes q1..q<top> mutually recursive; owners alternate
       round-robin, so the SCC always crosses peer boundaries. *)
    let ring_rules =
      if not cyclic then []
      else
        List.init (npreds - 1) (fun x ->
            let i = x + 1 in
            let next = 1 + (i mod (npreds - 1)) in
            ( i,
              fun ~dist ->
                Printf.sprintf "%s(X, Y) <- %s.\n" (pred i)
                  (lit ~dist next "X, Y") ))
    in
    let top = npreds - 1 in
    let naf_rules =
      if not naf then []
      else
        (* NAF at the top predicate only: the target evaluates it, so the
           distributed denial mirrors the merged engine's up-front
           whole-KB rejection. *)
        [
          ( top,
            fun ~dist ->
              Printf.sprintf "%s(X, Y) <- %s, not %s(X, Y).\n" (pred top)
                (lit ~dist 0 "X, Y") (pred 1) );
        ]
    in
    let fact_rules =
      List.map
        (fun (a, b) ->
          (0, fun ~dist:_ -> Printf.sprintf "%s(c%d, c%d).\n" (pred 0) a b))
        facts
    in
    let rules = fact_rules @ feed_rules @ ring_rules @ naf_rules in
    let program_of name =
      List.filter_map
        (fun (i, render) ->
          if String.equal (owner i) name then Some (render ~dist:true)
          else None)
        rules
      |> String.concat ""
    in
    let peers = List.init npeers (fun p -> Printf.sprintf "n%d" p) in
    return
      {
        dw_programs = List.map (fun p -> (p, program_of p)) peers;
        dw_merged =
          String.concat "" (List.map (fun (_, r) -> r ~dist:false) rules);
        dw_top = pred top;
        dw_target = owner top;
        dw_naf = naf;
        dw_cyclic = cyclic;
      })

let arb_dworld =
  QCheck.make
    ~print:(fun dw ->
      Printf.sprintf "cyclic=%b naf=%b top=%s@%s\n%s" dw.dw_cyclic dw.dw_naf
        dw.dw_top dw.dw_target
        (String.concat ""
           (List.map
              (fun (p, prog) -> Printf.sprintf "-- %s --\n%s" p prog)
              dw.dw_programs)))
    gen_dworld

let tabling_naf_skips = ref 0
let tabling_cyclic_runs = ref 0

let prop_distributed_tabling_agrees =
  QCheck.Test.make
    ~name:"tabling: distributed answer sets equal the merged single engine"
    ~count:(scale 30) arb_dworld (fun dw ->
      let session = Session.create () in
      List.iter
        (fun (name, program) ->
          ignore (Session.add_peer session ~program name))
        dw.dw_programs;
      ignore (Session.add_peer session "client");
      Engine.attach_all session;
      let goal = Parser.parse_literal (dw.dw_top ^ "(A, B)") in
      let reactor =
        Reactor.create
          ~config:{ Reactor.default_config with Reactor.tabling = true }
          session
      in
      let id =
        Reactor.submit reactor ~requester:"client" ~target:dw.dw_target goal
      in
      ignore (Reactor.run reactor);
      if dw.dw_cyclic then incr tabling_cyclic_runs;
      let kb = Kb.of_string dw.dw_merged in
      match Reactor.outcome reactor id with
      | Negotiation.Denied reason when dw.dw_naf ->
          incr tabling_naf_skips;
          let merged_rejects =
            match Tabled.solve ~self:dw.dw_target kb [ goal ] with
            | _ -> false
            | exception Tabled.Unsupported _ -> true
          in
          merged_rejects
          && Negotiation.classify_denial reason = Negotiation.Unsupported
      | Negotiation.Denied _ | Negotiation.Granted _ when dw.dw_naf -> false
      | Negotiation.Denied _ -> false
      | Negotiation.Granted instances ->
          let dist =
            List.map (fun (l, _) -> Literal.to_string l) instances
            |> List.sort_uniq String.compare
          in
          let merged =
            Tabled.solve ~self:dw.dw_target kb [ goal ]
            |> List.map (fun s -> Literal.to_string (Literal.apply s goal))
            |> List.sort_uniq String.compare
          in
          dist = merged)

let report_tabling_coverage () =
  Printf.printf
    "  tabling: %d cyclic world(s) exercised the completion protocol; %d NAF \
     world(s) denied as unsupported (parity with the merged engine's \
     rejection)\n"
    !tabling_cyclic_runs !tabling_naf_skips

(* The new tabling control headers under the same wire discipline as the
   rest of the envelope header: decode inverts encode across all five
   variants (peer names and goal keys are hex-armoured, so arbitrary
   bytes must survive), no byte-level damage makes the decoder raise,
   and the stream decoder is total on mutated multi-frame input. *)

let gen_goal_key =
  QCheck.Gen.oneofl
    [ "accredited(A) ."; "p(X, Y)."; ""; "k\x00\xffey"; "sp ace~colon:semi;" ]

let gen_table_ref =
  QCheck.Gen.(
    pair
      (oneofl [ "peer0"; "c1p0"; "odd name"; "nl\nin-name"; "q\"uote"; "" ])
      gen_goal_key)

let gen_tabling_field =
  let open QCheck.Gen in
  let refs n = list_size (int_range 0 n) gen_table_ref in
  oneof
    [
      map (fun path -> Pnet.Wire.Hquery { path }) (refs 4);
      map2
        (fun final count -> Pnet.Wire.Hanswer { final; count })
        bool small_nat;
      map3
        (fun leader epoch members ->
          Pnet.Wire.Hprobe { leader; epoch; members })
        gen_table_ref small_nat (refs 3);
      map3
        (fun leader epoch entries ->
          Pnet.Wire.Hstat { leader; epoch; entries })
        gen_table_ref small_nat
        (list_size (int_range 0 3)
           (triple gen_goal_key
              (int_range (-1) 50)  (* negative size = inactive member *)
              (list_size (int_range 0 3)
                 (map2
                    (fun (o, k) (seen, f) -> (o, k, seen, f))
                    gen_table_ref (pair small_nat bool)))));
      map3
        (fun leader epoch members ->
          Pnet.Wire.Hcomplete { leader; epoch; members })
        gen_table_ref small_nat (refs 3);
    ]

let arb_tabling_header =
  QCheck.make
    ~print:(fun h -> String.escaped (Pnet.Wire.encode h))
    QCheck.Gen.(
      map2
        (fun h tb ->
          { h with Pnet.Wire.h_tabling = Some tb; h_kind = "tabling" })
        (QCheck.gen arb_wire_header) gen_tabling_field)

let prop_tabling_wire_roundtrip =
  QCheck.Test.make ~name:"wire: tabling header decode inverts encode"
    ~count:(scale 300) arb_tabling_header (fun h ->
      Pnet.Wire.decode (Pnet.Wire.encode h) = Ok h)

let prop_tabling_wire_mutated_total =
  QCheck.Test.make
    ~name:"fuzz: tabling header decoder is total on mutated frames"
    ~count:(scale 300)
    (QCheck.pair arb_tabling_header arb_wallet_damage)
    (fun (h, (muts, trunc)) ->
      let frame = Pnet.Wire.encode h in
      let b = Bytes.of_string frame in
      List.iter
        (fun (pos, c) -> Bytes.set b (pos mod Bytes.length b) (Char.chr c))
        muts;
      let s = Bytes.to_string b in
      let s =
        match trunc with
        | Some n -> String.sub s 0 (min n (String.length s))
        | None -> s
      in
      match Pnet.Wire.decode s with
      | Ok _ | Error (Pnet.Wire.Malformed _) -> true
      | exception _ -> false)

let prop_tabling_wire_stream_total =
  QCheck.Test.make
    ~name:"fuzz: wire stream decoder is total on mutated tabling frames"
    ~count:(scale 200)
    (QCheck.pair
       (QCheck.pair arb_tabling_header arb_wire_header)
       arb_wallet_damage)
    (fun ((h1, h2), (muts, trunc)) ->
      let stream = Pnet.Wire.encode h1 ^ "\n" ^ Pnet.Wire.encode h2 in
      (* The clean stream must roundtrip before any damage is applied. *)
      Pnet.Wire.decode_many stream = Ok [ h1; h2 ]
      &&
      let b = Bytes.of_string stream in
      List.iter
        (fun (pos, c) -> Bytes.set b (pos mod Bytes.length b) (Char.chr c))
        muts;
      let s = Bytes.to_string b in
      let s =
        match trunc with
        | Some n -> String.sub s 0 (min n (String.length s))
        | None -> s
      in
      match Pnet.Wire.decode_many s with
      | Ok _ | Error (Pnet.Wire.Malformed _) -> true
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* Journal durability: the write-ahead journal behind crash-stop
   recovery.  A crash tears at most the line being appended, so parsing
   any byte prefix of a valid journal must recover exactly the entries
   of its complete lines; arbitrary damage must come back as a
   line-numbered [Bad_world], never an exception; and replaying a
   journal twice must leave a peer exactly where one replay did. *)

let gen_journal_entry =
  QCheck.Gen.(
    let name = oneofl [ "alice"; "E-Learn"; "odd name/\xc2\xb7"; "" ] in
    frequency
      [
        ( 2,
          map2
            (fun serial r -> Persist.Journal.Cert (cert_of_rule ~serial r))
            small_nat gen_rule );
        (2, map (fun r -> Persist.Journal.Fact r) gen_rule);
        ( 1,
          let* owner = name in
          let* goal = gen_literal in
          let* instances = list_size (int_range 0 3) gen_literal in
          return (Persist.Journal.Answer { owner; goal; instances }) );
        ( 1,
          let* id = small_nat in
          let* target = name in
          let* goal = gen_literal in
          return (Persist.Journal.Goal { id; target; goal }) );
        (1, map (fun id -> Persist.Journal.Done { id }) small_nat);
      ])

let render_journal entries =
  let j = Persist.Journal.in_memory () in
  List.iter (Persist.Journal.append j) entries;
  Persist.Journal.contents j

let arb_journal_cut =
  QCheck.make
    ~print:(fun (entries, cut) ->
      Printf.sprintf "entries=%d cut=%d\n%s" (List.length entries) cut
        (String.escaped (render_journal entries)))
    QCheck.Gen.(
      pair (list_size (int_range 0 12) gen_journal_entry) small_nat)

let prop_journal_truncation_prefix =
  QCheck.Test.make
    ~name:
      "persist: journal parse of any byte prefix recovers the complete lines"
    ~count:(scale 200) arb_journal_cut (fun (entries, cut) ->
      let text = render_journal entries in
      let cut = cut mod (String.length text + 1) in
      (* Everything up to the last newline in the prefix is intact; the
         rest is the torn tail a crash left behind. *)
      let keep =
        match String.rindex_opt (String.sub text 0 cut) '\n' with
        | None -> 0
        | Some i -> i + 1
      in
      match Persist.Journal.parse (String.sub text 0 cut) with
      | Ok es -> render_journal es = String.sub text 0 keep
      | Error _ -> false
      | exception _ -> false)

let prop_journal_mutated_total =
  QCheck.Test.make
    ~name:"fuzz: journal parser is total on mutated journals"
    ~count:(scale 200)
    (QCheck.pair arb_journal_cut arb_wallet_damage)
    (fun ((entries, _), (muts, trunc)) ->
      let text = render_journal entries in
      QCheck.assume (String.length text > 0);
      let b = Bytes.of_string text in
      List.iter
        (fun (pos, c) -> Bytes.set b (pos mod Bytes.length b) (Char.chr c))
        muts;
      let s = Bytes.to_string b in
      let s =
        match trunc with
        | Some n -> String.sub s 0 (min n (String.length s))
        | None -> s
      in
      match Persist.Journal.parse s with
      | Ok _ -> true
      | Error (Persist.Bad_world m) ->
          (* Mid-stream damage must name the offending line. *)
          String.length m >= 12 && String.sub m 0 12 = "journal line"
      | exception _ -> false)

let peer_signature p =
  let serials =
    Hashtbl.fold
      (fun _ (c : Crypto.Cert.t) acc -> c.Crypto.Cert.serial :: acc)
      p.Peer.certs []
    |> List.sort compare
  in
  let rules =
    Kb.rules p.Peer.kb |> List.map Rule.canonical |> List.sort compare
  in
  (serials, rules)

let prop_journal_replay_idempotent =
  QCheck.Test.make
    ~name:"persist: replaying a journal twice equals replaying it once"
    ~count:(scale 150) arb_journal_cut (fun (entries, _) ->
      match Persist.Journal.parse (render_journal entries) with
      | Error _ -> false
      | Ok es ->
          let once = Peer.create "p" in
          Persist.Journal.replay_peer once es;
          let twice = Peer.create "p" in
          Persist.Journal.replay_peer twice es;
          Persist.Journal.replay_peer twice es;
          peer_signature once = peer_signature twice)

let () =
  Alcotest.run "properties"
    [
      ( "engine",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_no_unsafe_disclosure;
            prop_strategies_agree;
            prop_multi_eager_matches_two_party;
            prop_analysis_agrees;
          ] );
      ( "paradigms",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_forward_backward_agree;
            prop_tabled_forward_agree;
            prop_three_paradigms_agree;
          ]
        @ [ Alcotest.test_case "NAF skip report" `Quick report_naf_skips ] );
      ( "kb",
        List.map QCheck_alcotest.to_alcotest [ prop_indexing_transparent ] );
      ( "unify",
        List.map QCheck_alcotest.to_alcotest
          [ prop_unify_differential; prop_flat_boxed_differential ] );
      ( "syntax",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_rule_roundtrip;
            prop_canonical_alpha_invariant;
            prop_subsumes_reflexive_on_instances;
          ] );
      ( "crypto",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cert_roundtrip; prop_wire_roundtrip ] );
      ( "fuzz",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_parser_total;
            prop_query_parser_total;
            prop_turtle_total;
            prop_wire_total;
            prop_wire_mutated_total;
            prop_qel_total;
          ] );
      ( "obs",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_percentile_monotone;
            prop_trace_header_roundtrip;
            prop_trace_header_mutated_total;
            prop_envelope_wire_roundtrip;
            prop_envelope_wire_mutated_total;
          ] );
      ( "persist",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_journal_truncation_prefix;
            prop_journal_mutated_total;
            prop_journal_replay_idempotent;
          ] );
      ( "tabling",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_distributed_tabling_agrees;
            prop_tabling_wire_roundtrip;
            prop_tabling_wire_mutated_total;
            prop_tabling_wire_stream_total;
          ]
        @ [
            Alcotest.test_case "coverage report" `Quick
              report_tabling_coverage;
          ] );
    ]

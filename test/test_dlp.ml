(* Tests for the DLP substrate: terms, substitutions, unification, lexer,
   parser, knowledge base, built-ins, SLD resolution, forward chaining. *)

open Peertrust_dlp

let term = Alcotest.testable Term.pp Term.equal
let literal = Alcotest.testable Literal.pp Literal.equal
let rule = Alcotest.testable Rule.pp Rule.equal

(* ------------------------------------------------------------------ *)
(* Terms *)

let test_term_ground () =
  Alcotest.(check bool) "string is ground" true (Term.is_ground (Term.str "a"));
  Alcotest.(check bool) "var not ground" false (Term.is_ground (Term.var "X"));
  Alcotest.(check bool)
    "compound with var not ground" false
    (Term.is_ground (Term.compound "f" ([ Term.var "X"; Term.Int 1 ])));
  Alcotest.(check bool)
    "compound ground" true
    (Term.is_ground (Term.compound "f" ([ Term.atom "a"; Term.Int 1 ])))

let test_term_vars () =
  let t = Term.compound "f" ([ Term.var "X"; Term.compound "g" ([ Term.var "Y"; Term.var "X" ]) ]) in
  Alcotest.(check (list string)) "vars in order" [ "X"; "Y" ]
    (List.map Term.var_name (Term.vars t))

let test_term_rename () =
  let t = Term.compound "f" [ Term.var "X"; Term.var "Requester" ] in
  match Term.rename_with (Hashtbl.create 4) t with
  | Term.Compound (_, [ Term.Var x'; req ]) ->
      Alcotest.(check bool) "X renamed to a fresh var" true (Term.is_fresh x');
      Alcotest.(check term) "pseudo-var kept" (Term.var "Requester") req
  | _ -> Alcotest.fail "unexpected shape after renaming"

let test_term_compare_total () =
  let ts =
    [ Term.var "A"; Term.str "a"; Term.Int 0; Term.atom "a";
      Term.compound "f" ([ Term.Int 1 ]) ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Term.compare a b and c2 = Term.compare b a in
          Alcotest.(check bool) "antisymmetric" true (compare c1 0 = compare 0 c2))
        ts)
    ts

(* ------------------------------------------------------------------ *)
(* Substitutions *)

let test_subst_walk_apply () =
  let s =
    Subst.empty
    |> Subst.bind "X" (Term.var "Y")
    |> Subst.bind "Y" (Term.compound "f" ([ Term.var "Z" ]))
    |> Subst.bind "Z" (Term.Int 3)
  in
  Alcotest.(check term) "walk stops at non-var"
    (Term.compound "f" ([ Term.var "Z" ]))
    (Subst.walk s (Term.var "X"));
  Alcotest.(check term) "apply resolves deeply"
    (Term.compound "f" ([ Term.Int 3 ]))
    (Subst.apply s (Term.var "X"))

let test_subst_rebind_rejected () =
  let s = Subst.bind "X" (Term.Int 1) Subst.empty in
  Alcotest.check_raises "double bind rejected"
    (Invalid_argument "Subst.bind: already bound: X") (fun () ->
      ignore (Subst.bind "X" (Term.Int 2) s))

let test_subst_restrict () =
  let s =
    Subst.empty
    |> Subst.bind "X" (Term.var "Y")
    |> Subst.bind "Y" (Term.Int 7)
  in
  let r = Subst.restrict [ Term.var_id "X" ] s in
  Alcotest.(check (list string)) "domain" [ "X" ] (Subst.domain r);
  Alcotest.(check term) "restricted binding is applied" (Term.Int 7)
    (Subst.apply r (Term.var "X"))

(* ------------------------------------------------------------------ *)
(* Unification *)

let unify_ok a b =
  match Unify.terms a b Subst.empty with
  | Some s -> s
  | None -> Alcotest.fail "expected unification to succeed"

let test_unify_basic () =
  let s = unify_ok (Term.var "X") (Term.str "alice") in
  Alcotest.(check term) "X bound" (Term.str "alice") (Subst.apply s (Term.var "X"))

let test_unify_compound () =
  let a = Term.compound "f" ([ Term.var "X"; Term.Int 2 ]) in
  let b = Term.compound "f" ([ Term.Int 1; Term.var "Y" ]) in
  let s = unify_ok a b in
  Alcotest.(check term) "X=1" (Term.Int 1) (Subst.apply s (Term.var "X"));
  Alcotest.(check term) "Y=2" (Term.Int 2) (Subst.apply s (Term.var "Y"))

let test_unify_occurs_check () =
  let a = Term.var "X" in
  let b = Term.compound "f" ([ Term.var "X" ]) in
  Alcotest.(check bool) "occurs check fails" true
    (Unify.terms a b Subst.empty = None)

let test_unify_clash () =
  Alcotest.(check bool) "functor clash" true
    (Unify.terms
       (Term.compound "f" ([ Term.Int 1 ]))
       (Term.compound "g" ([ Term.Int 1 ]))
       Subst.empty
    = None);
  Alcotest.(check bool) "arity clash" true
    (Unify.terms
       (Term.compound "f" ([ Term.Int 1 ]))
       (Term.compound "f" ([ Term.Int 1; Term.Int 2 ]))
       Subst.empty
    = None);
  Alcotest.(check bool) "string/atom distinct" true
    (Unify.terms (Term.str "a") (Term.atom "a") Subst.empty = None)

let test_unify_through_subst () =
  let s = Subst.bind "X" (Term.var "Y") Subst.empty in
  match Unify.terms (Term.var "X") (Term.Int 5) s with
  | None -> Alcotest.fail "should unify"
  | Some s' ->
      Alcotest.(check term) "Y gets the binding" (Term.Int 5)
        (Subst.apply s' (Term.var "Y"))

let test_variant () =
  let p x y = Term.compound "p" ([ x; y ]) in
  Alcotest.(check bool) "renamed is variant" true
    (Unify.variant (p (Term.var "X") (Term.var "Y")) (p (Term.var "A") (Term.var "B")));
  Alcotest.(check bool) "non-linear not variant of linear" false
    (Unify.variant (p (Term.var "X") (Term.var "X")) (p (Term.var "A") (Term.var "B")));
  Alcotest.(check bool) "linear not variant of non-linear" false
    (Unify.variant (p (Term.var "A") (Term.var "B")) (p (Term.var "X") (Term.var "X")));
  Alcotest.(check bool) "instance not variant" false
    (Unify.variant (p (Term.var "X") (Term.Int 1)) (p (Term.var "A") (Term.var "B")))

(* ------------------------------------------------------------------ *)
(* Lexer *)

let tokens src = List.map (fun t -> t.Lexer.token) (Lexer.tokenize src)

let test_lexer_basic () =
  Alcotest.(check int) "token count"
    11
    (List.length (tokens "p(X) <- q(X)."));
  match tokens "p(\"a b\") @ X $ {} [] , . <- <= < > >= = !=" with
  | Lexer.[
      IDENT "p"; LPAREN; STRING "a b"; RPAREN; AT; VAR "X"; DOLLAR; LBRACE;
      RBRACE; LBRACKET; RBRACKET; COMMA; DOT; ARROW; OP "<="; OP "<";
      OP ">"; OP ">="; OP "="; OP "!="; EOF;
    ] ->
      ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_comments () =
  Alcotest.(check int) "comments skipped"
    2
    (List.length (tokens "% a comment\nfoo # another\n"))

let test_lexer_escapes () =
  match tokens {|"a\nb\t\"\\"|} with
  | [ Lexer.STRING s; Lexer.EOF ] ->
      Alcotest.(check string) "escapes" "a\nb\t\"\\" s
  | _ -> Alcotest.fail "bad string token"

let test_lexer_error_position () =
  try
    ignore (Lexer.tokenize "p(X) &");
    Alcotest.fail "expected lexer error"
  with Lexer.Error (_, line, col) ->
    Alcotest.(check (pair int int)) "position" (1, 6) (line, col)

let test_lexer_signedby_keyword () =
  match tokens "signedBy signedByX" with
  | [ Lexer.SIGNEDBY; Lexer.IDENT "signedByX"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "signedBy keyword lexing"

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_fact () =
  let r = Parser.parse_rule {|freeCourse(cs101).|} in
  Alcotest.(check rule) "plain fact"
    (Rule.fact (Literal.make "freeCourse" [ Term.atom "cs101" ]))
    r

let test_parse_signed_fact () =
  let r = Parser.parse_rule {|member("E-Learn") @ "BBB" signedBy ["BBB"].|} in
  Alcotest.(check rule) "signed fact"
    (Rule.fact ~signer:[ "BBB" ]
       (Literal.make ~auth:[ Term.str "BBB" ] "member" [ Term.str "E-Learn" ]))
    r

let test_parse_rule_with_body () =
  let r = Parser.parse_rule {|preferred(X) <- student(X) @ "UIUC".|} in
  Alcotest.(check literal) "head" (Literal.make "preferred" [ Term.var "X" ]) r.Rule.head;
  Alcotest.(check (list literal)) "body"
    [ Literal.make ~auth:[ Term.str "UIUC" ] "student" [ Term.var "X" ] ]
    r.Rule.body

let test_parse_nested_authorities () =
  let r =
    Parser.parse_rule {|student(X) @ "UIUC" <- student(X) @ "UIUC" @ X.|}
  in
  (match r.Rule.body with
  | [ l ] ->
      Alcotest.(check int) "two authorities" 2 (List.length l.Literal.auth);
      Alcotest.(check bool) "outermost is X" true
        (Literal.outer_authority l = Some (Term.var "X"))
  | _ -> Alcotest.fail "one body literal expected");
  Alcotest.(check bool) "head has one authority" true
    (Literal.outer_authority r.Rule.head = Some (Term.str "UIUC"))

let test_parse_head_context () =
  let r =
    Parser.parse_rule
      {|student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-{true} student(X) @ Y.|}
  in
  (match r.Rule.head_ctx with
  | Some [ l ] ->
      Alcotest.(check string) "ctx pred" "member" l.Literal.pred;
      Alcotest.(check int) "ctx auth chain" 2 (List.length l.Literal.auth)
  | _ -> Alcotest.fail "expected one-literal head context");
  Alcotest.(check bool) "rule context is public (true)" true
    (r.Rule.rule_ctx = Some [])

let test_parse_requester_equals () =
  let r =
    Parser.parse_rule
      {|discountEnroll(Course, Party) $ Requester = Party <- discountEnroll(Course, Party).|}
  in
  match r.Rule.head_ctx with
  | Some [ l ] ->
      Alcotest.(check string) "equality context" "=" l.Literal.pred;
      Alcotest.(check (list term)) "args"
        [ Term.var "Requester"; Term.var "Party" ]
        l.Literal.args
  | _ -> Alcotest.fail "expected equality context"

let test_parse_signed_rule_after_arrow () =
  let r =
    Parser.parse_rule
      {|student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "UIUC Registrar".|}
  in
  Alcotest.(check (list string)) "signer" [ "UIUC" ] r.Rule.signer;
  Alcotest.(check int) "body size" 1 (List.length r.Rule.body)

let test_parse_comparison_in_body () =
  let r =
    Parser.parse_rule
      {|authorized("Bob", Price) @ "IBM" <- signedBy ["IBM"] Price < 2000.|}
  in
  match r.Rule.body with
  | [ l ] ->
      Alcotest.(check string) "comparison pred" "<" l.Literal.pred;
      Alcotest.(check (list term)) "args" [ Term.var "Price"; Term.Int 2000 ] l.Literal.args
  | _ -> Alcotest.fail "expected comparison body"

let test_parse_program_scenario () =
  let rules =
    Program.parse
      {|
        % E-Learn's discount policy
        discountEnroll(Course, Party) $ Requester = Party <-
          discountEnroll(Course, Party).
        discountEnroll(Course, Party) <- eligibleForDiscount(Party, Course).
        eligibleForDiscount(X, Course) <- preferred(X) @ "ELENA".
        preferred(X) @ "ELENA" <- signedBy ["ELENA"] student(X) @ "UIUC".
        student(X) @ University <- student(X) @ University @ X.
        member("E-Learn") @ "BBB" signedBy ["BBB"].
      |}
  in
  Alcotest.(check int) "six rules" 6 (List.length rules)

let test_parse_roundtrip () =
  let src =
    {|enroll(Course, Requester, Company, Email, Price) <-{true} policy49(Course, Requester, Company, Price).
policy49(Course, Requester, Company, Price) <-{true} price(Course, Price), authorized(Requester, Price) @ Company @ Requester, visaCard(Company) @ "VISA" @ Requester.
visaCard("IBM") signedBy ["VISA"].|}
  in
  let rules = Program.parse src in
  let printed = Program.to_string rules in
  let reparsed = Program.parse printed in
  Alcotest.(check (list rule)) "print/parse roundtrip" rules reparsed

let test_parse_errors () =
  let expect_error src =
    try
      ignore (Parser.parse_rule src);
      Alcotest.failf "expected syntax error for %s" src
    with Parser.Error _ -> ()
  in
  expect_error "p(X";
  expect_error "p(X) <- ";
  expect_error {|p(X) signedBy ["A"] signedBy ["B"].|};
  expect_error "p(X) <- 3.";
  expect_error "<- p(X).";
  expect_error "p(X) $ true(1) <- q(X)."

(* ------------------------------------------------------------------ *)
(* Knowledge base *)

let test_kb_dedup_and_order () =
  let r1 = Parser.parse_rule "a(1)." in
  let r2 = Parser.parse_rule "b(2)." in
  let kb = Kb.empty |> Kb.add r1 |> Kb.add r2 |> Kb.add r1 in
  Alcotest.(check int) "no duplicates" 2 (Kb.size kb);
  Alcotest.(check (list rule)) "insertion order" [ r1; r2 ] (Kb.rules kb)

let test_kb_find () =
  let kb = Kb.of_string "p(1). p(2). p(1, 2). q(3)." in
  Alcotest.(check int) "p/1 bucket" 2 (List.length (Kb.find ("p", 1) kb));
  Alcotest.(check int) "p/2 bucket" 1 (List.length (Kb.find ("p", 2) kb));
  Alcotest.(check int) "missing bucket" 0 (List.length (Kb.find ("r", 1) kb))

let test_kb_remove () =
  let r = Parser.parse_rule "p(1)." in
  let kb = Kb.of_string "p(1). p(2)." in
  let kb' = Kb.remove r kb in
  Alcotest.(check int) "one left" 1 (Kb.size kb');
  Alcotest.(check bool) "removed gone" false (Kb.mem r kb')

let test_kb_signed_rules () =
  let kb = Kb.of_string {|p(1). c("x") signedBy ["CA"]. q(2).|} in
  Alcotest.(check int) "one credential" 1 (List.length (Kb.signed_rules kb))

let test_kb_union () =
  let a = Kb.of_string "p(1). q(2)." in
  let b = Kb.of_string "p(1). r(3)." in
  Alcotest.(check int) "union dedups" 3 (Kb.size (Kb.union a b))

let test_kb_first_arg_indexing () =
  let src = "p(a, 1). p(b, 2). p(X, 0). p(a, 3). p(f(1), 4). p(f(1, 2), 5)." in
  let kb = Kb.of_string src in
  (* Ground first argument: only same-constant heads plus var heads. *)
  Alcotest.(check int) "p(a, V) narrowed" 3
    (List.length (Kb.matching (Parser.parse_literal "p(a, V)") kb));
  Alcotest.(check int) "p(b, V) narrowed" 2
    (List.length (Kb.matching (Parser.parse_literal "p(b, V)") kb));
  (* Functor keys include the arity. *)
  Alcotest.(check int) "p(f(9), V)" 2
    (List.length (Kb.matching (Parser.parse_literal "p(f(9), V)") kb));
  (* Variable first argument: the full bucket. *)
  Alcotest.(check int) "p(X, V) full" 6
    (List.length (Kb.matching (Parser.parse_literal "p(Y, V)") kb));
  (* Unknown constant: only var heads. *)
  Alcotest.(check int) "p(zz, V)" 1
    (List.length (Kb.matching (Parser.parse_literal "p(zz, V)") kb))

let test_kb_indexing_preserves_semantics () =
  let src = "q(X) <- p(a, X). p(a, 1). p(b, 2). p(a, 3)." in
  let indexed = Kb.of_string src in
  let linear = Kb.of_string ~indexing:false src in
  let answers kb = Sld.answers ~self:"p" kb (Parser.parse_query "q(X)") in
  Alcotest.(check int) "same answer count" (List.length (answers linear))
    (List.length (answers indexed));
  Alcotest.(check int) "two answers" 2 (List.length (answers indexed))

let test_kb_indexing_order_stable () =
  (* Matching preserves global insertion order within the narrowed set. *)
  let kb = Kb.of_string "p(a, 1). p(X, 0). p(a, 2)." in
  let heads =
    Kb.matching (Parser.parse_literal "p(a, V)") kb
    |> List.map (fun (r : Rule.t) -> Literal.to_string r.Rule.head)
  in
  Alcotest.(check (list string)) "insertion order"
    [ "p(a, 1)"; "p(X, 0)"; "p(a, 2)" ]
    heads

let test_kb_remove_indexed () =
  let r = Parser.parse_rule "p(a, 1)." in
  let kb = Kb.of_string "p(a, 1). p(a, 2)." in
  let kb' = Kb.remove r kb in
  Alcotest.(check int) "narrowed after removal" 1
    (List.length (Kb.matching (Parser.parse_literal "p(a, V)") kb'))

(* The hash-consed ground-term table assigns one id per distinct ground
   term for the process lifetime: re-interning a structurally equal term —
   directly, or indirectly through [Kb.add]/[Kb.of_string] compiling rules
   that mention it — must return the same id (the first-argument index and
   flat unification both key on it). *)
let test_gterm_id_stability () =
  let mk () =
    Term.compound "f"
      [ Term.atom "a"; Term.compound "g" [ Term.Int 7; Term.str "s" ] ]
  in
  let id t =
    match Gterm.of_term t with
    | Some g -> g
    | None -> Alcotest.fail "expected a ground term"
  in
  let g0 = id (mk ()) in
  let kb =
    Kb.of_string
      {|p(f(a, g(7, "s"))). r(f(a, g(7, "s"))) <- p(f(a, g(7, "s"))).|}
  in
  Alcotest.(check int) "id stable across of_string" g0 (id (mk ()));
  let kb = Kb.add (Parser.parse_rule {|z(f(a, g(7, "s"))).|}) kb in
  Alcotest.(check int) "id stable across add" g0 (id (mk ()));
  Alcotest.(check int) "kb holds the three rules" 3 (Kb.size kb);
  Alcotest.(check bool) "canonical boxed term is shared" true
    (Gterm.term g0 == Gterm.term g0);
  Alcotest.(check bool) "canonical term is the interned one" true
    (Term.equal (Gterm.term g0) (mk ()));
  Alcotest.(check bool) "distinct term, distinct id" true
    (id (Term.compound "f" [ Term.atom "a"; Term.atom "b" ]) <> g0);
  (* Non-ground terms do not intern. *)
  Alcotest.(check bool) "non-ground is rejected" true
    (Gterm.of_term (Term.compound "f" [ Term.var "X" ]) = None)

(* ------------------------------------------------------------------ *)
(* Builtins *)

let eval_builtin src s =
  match Builtin.eval (Parser.parse_literal src) s with
  | Some answers -> answers
  | None -> Alcotest.fail "expected a builtin"

let test_builtin_comparisons () =
  Alcotest.(check int) "1 < 2 holds" 1 (List.length (eval_builtin "1 < 2" Subst.empty));
  Alcotest.(check int) "2 < 1 fails" 0 (List.length (eval_builtin "2 < 1" Subst.empty));
  Alcotest.(check int) "strings compare" 1
    (List.length (eval_builtin {|"abc" < "abd"|} Subst.empty));
  Alcotest.(check int) "le reflexive" 1 (List.length (eval_builtin "3 <= 3" Subst.empty));
  Alcotest.(check int) "ge" 1 (List.length (eval_builtin "4 >= 3" Subst.empty));
  Alcotest.(check int) "gt fails on equal" 0 (List.length (eval_builtin "3 > 3" Subst.empty))

let test_builtin_equality_unifies () =
  match eval_builtin "X = 5" Subst.empty with
  | [ s ] -> Alcotest.(check term) "X bound" (Term.Int 5) (Subst.apply s (Term.var "X"))
  | _ -> Alcotest.fail "expected one answer"

let test_builtin_disequality () =
  Alcotest.(check int) "1 != 2" 1 (List.length (eval_builtin "1 != 2" Subst.empty));
  Alcotest.(check int) "1 != 1 fails" 0 (List.length (eval_builtin "1 != 1" Subst.empty));
  Alcotest.(check int) "nonground != fails (no answer)" 0
    (List.length (eval_builtin "X != 1" Subst.empty))

let test_builtin_nonground_comparison () =
  Alcotest.(check int) "unbound comparison has no answers" 0
    (List.length (eval_builtin "X < 2" Subst.empty))

let test_builtin_detection () =
  Alcotest.(check bool) "not a builtin" true
    (Builtin.eval (Parser.parse_literal "p(1, 2)") Subst.empty = None);
  Alcotest.(check bool) "arity matters" true
    (Builtin.eval (Literal.make "<" [ Term.Int 1 ]) Subst.empty = None)

(* ------------------------------------------------------------------ *)
(* SLD resolution *)

let solve ?options ?externals ?remote ?bindings ~self kb_src query =
  let kb = Kb.of_string kb_src in
  Sld.answers ?options ?externals ?remote ?bindings ~self kb
    (Parser.parse_query query)

let test_sld_fact () =
  let answers = solve ~self:"peer" "p(1). p(2)." "p(X)" in
  Alcotest.(check int) "two answers" 2 (List.length answers)

let test_sld_conjunction () =
  let answers = solve ~self:"peer" "p(1). p(2). q(2). q(3)." "p(X), q(X)" in
  (match answers with
  | [ s ] -> Alcotest.(check term) "X=2" (Term.Int 2) (Subst.apply s (Term.var "X"))
  | _ -> Alcotest.fail "expected exactly one answer")

let test_sld_chain () =
  let answers =
    solve ~self:"peer"
      "grandparent(X, Z) <- parent(X, Y), parent(Y, Z).\n\
       parent(\"a\", \"b\"). parent(\"b\", \"c\"). parent(\"b\", \"d\")."
      "grandparent(\"a\", W)"
  in
  Alcotest.(check int) "two grandchildren" 2 (List.length answers)

let test_sld_recursion_transitive_closure () =
  let answers =
    solve ~self:"peer"
      "path(X, Y) <- edge(X, Y).\n\
       path(X, Z) <- edge(X, Y), path(Y, Z).\n\
       edge(1, 2). edge(2, 3). edge(3, 4)."
      "path(1, X)"
  in
  Alcotest.(check int) "reaches 2,3,4" 3 (List.length answers)

let test_sld_cycle_terminates () =
  let answers =
    solve ~self:"peer"
      "path(X, Z) <- edge(X, Y), path(Y, Z).\n\
       path(X, Y) <- edge(X, Y).\n\
       edge(1, 2). edge(2, 1)."
      "path(1, X)"
  in
  (* Must terminate despite the cyclic edge relation. *)
  Alcotest.(check bool) "some answers" true (List.length answers >= 2)

let test_sld_self_loop_fails_finitely () =
  let answers = solve ~self:"peer" "p(X) <- p(X)." "p(1)" in
  Alcotest.(check int) "no answers" 0 (List.length answers)

let test_sld_builtin_in_body () =
  let answers =
    solve ~self:"peer" "cheap(C) <- price(C, P), P < 100.\nprice(a, 50). price(b, 150)."
      "cheap(X)"
  in
  match answers with
  | [ s ] -> Alcotest.(check term) "only a" (Term.atom "a") (Subst.apply s (Term.var "X"))
  | _ -> Alcotest.fail "expected one answer"

let test_sld_authority_matching () =
  (* A cached statement about another authority is locally provable. *)
  let answers =
    solve ~self:"alice" {|student("Alice") @ "UIUC".|} {|student(X) @ "UIUC"|}
  in
  Alcotest.(check int) "provable from cached literal" 1 (List.length answers)

let test_sld_signed_rule_axiom () =
  (* visaCard("IBM") signedBy ["VISA"] proves visaCard(C) @ "VISA". *)
  let answers =
    solve ~self:"bob" {|visaCard("IBM") signedBy ["VISA"].|}
      {|visaCard(Company) @ "VISA"|}
  in
  match answers with
  | [ s ] ->
      Alcotest.(check term) "company bound" (Term.str "IBM")
        (Subst.apply s (Term.var "Company"))
  | _ -> Alcotest.fail "expected one answer"

let test_sld_self_authority_stripped () =
  let answers = solve ~self:"elearn" {|price(cs411, 1000).|} {|price(cs411, P) @ "elearn"|} in
  Alcotest.(check int) "self authority is local" 1 (List.length answers)

let test_sld_self_pseudovar () =
  let answers = solve ~self:"elearn" {|price(cs411, 1000).|} "price(cs411, P) @ Self" in
  Alcotest.(check int) "@ Self is local" 1 (List.length answers)

let test_sld_requester_binding () =
  let answers =
    solve ~self:"elearn" ~bindings:[ ("Requester", Term.str "alice") ]
      {|greet(R) <- R = Requester.|} "greet(X)"
  in
  match answers with
  | [ s ] ->
      Alcotest.(check term) "requester flows" (Term.str "alice")
        (Subst.apply s (Term.var "X"))
  | _ -> Alcotest.fail "expected one answer"

let test_sld_remote_dispatch () =
  (* Goal student(X) @ "uiuc": local KB empty, remote supplies instances. *)
  let remote ~target lit =
    Alcotest.(check string) "dispatched to uiuc" "uiuc" target;
    Alcotest.(check string) "shipped literal" "student" lit.Literal.pred;
    [ (Literal.make "student" [ Term.str "Alice" ], None) ]
  in
  let answers = solve ~self:"elearn" ~remote "" {|student(X) @ "uiuc"|} in
  match answers with
  | [ s ] ->
      Alcotest.(check term) "instance unified" (Term.str "Alice")
        (Subst.apply s (Term.var "X"))
  | _ -> Alcotest.fail "expected one remote answer"

let test_sld_remote_not_called_for_unbound_authority () =
  let called = ref false in
  let remote ~target:_ _ =
    called := true;
    []
  in
  let answers = solve ~self:"elearn" ~remote "" "student(X) @ Y" in
  Alcotest.(check int) "flounders quietly" 0 (List.length answers);
  Alcotest.(check bool) "remote never called" false !called

let test_sld_nested_authority_dispatch () =
  (* student(X) @ "UIUC" @ "alice": outermost (alice) is asked for
     student(X) @ "UIUC". *)
  let remote ~target lit =
    Alcotest.(check string) "asks alice" "alice" target;
    Alcotest.(check int) "inner chain kept" 1 (List.length lit.Literal.auth);
    [ (Literal.make ~auth:[ Term.str "UIUC" ] "student" [ Term.str "Alice" ], None) ]
  in
  let answers = solve ~self:"elearn" ~remote "" {|student(X) @ "UIUC" @ "alice"|} in
  Alcotest.(check int) "answered" 1 (List.length answers)

let test_sld_externals () =
  let externals = function
    | ("purchaseApproved", 2) ->
        Some
          (fun (lit : Literal.t) s ->
            match List.map (Subst.apply s) lit.Literal.args with
            | [ Term.Str _; Term.Int p ] when p <= 5000 -> [ s ]
            | _ -> [])
    | _ -> None
  in
  let ok = solve ~self:"visa" ~externals "" {|purchaseApproved("IBM", 1000)|} in
  let no = solve ~self:"visa" ~externals "" {|purchaseApproved("IBM", 9000)|} in
  Alcotest.(check int) "approved" 1 (List.length ok);
  Alcotest.(check int) "denied" 0 (List.length no)

let test_sld_max_solutions () =
  let kb = Kb.of_string "p(1). p(2). p(3). p(4)." in
  let answers =
    Sld.solve
      ~options:{ Sld.default_options with max_depth = 10; max_solutions = 2 }
      ~self:"peer" kb
      (Parser.parse_query "p(X)")
  in
  Alcotest.(check int) "capped" 2 (List.length answers)

let test_sld_max_depth () =
  let kb = Kb.of_string "n(z). n(s(X)) <- n(X)." in
  let answers =
    Sld.solve
      ~options:{ Sld.default_options with max_depth = 5; max_solutions = 100 }
      ~self:"peer" kb
      (Parser.parse_query "n(X)")
  in
  (* Depth 5 admits z, s(z), s(s(z)), s(s(s(z))), s^4(z) at most. *)
  Alcotest.(check bool) "bounded" true (List.length answers <= 5);
  Alcotest.(check bool) "nonempty" true (answers <> [])

let test_sld_proof_trace () =
  let kb =
    Kb.of_string
      {|eligible(X) <- student(X) @ "UIUC".
        student("Alice") @ "UIUC" signedBy ["UIUC"].|}
  in
  match Sld.solve ~self:"elearn" kb (Parser.parse_query {|eligible("Alice")|}) with
  | { proofs = [ proof ]; _ } :: _ ->
      let creds = Trace.credentials proof in
      Alcotest.(check int) "one credential used" 1 (List.length creds);
      Alcotest.(check (list string)) "signed by UIUC" [ "UIUC" ]
        (List.hd creds).Rule.signer;
      Alcotest.(check bool) "trace depth >= 2" true (Trace.depth proof >= 2)
  | _ -> Alcotest.fail "expected one traced answer"

let test_sld_trace_fully_instantiated () =
  let kb = Kb.of_string "p(X) <- q(X). q(7)." in
  match Sld.solve ~self:"peer" kb (Parser.parse_query "p(Y)") with
  | { proofs = [ Trace.Apply (r, _) ]; _ } :: _ ->
      Alcotest.(check bool) "head instantiated" true
        (Literal.is_ground r.Rule.head)
  | _ -> Alcotest.fail "expected an Apply trace"

(* ------------------------------------------------------------------ *)
(* Arithmetic *)

let test_arith_in_comparison () =
  let answers =
    solve ~self:"peer" "p(5). q(X) <- p(Y), X = Y * 2 + 1." "q(X)"
  in
  match answers with
  | [ s ] -> Alcotest.(check term) "computed" (Term.Int 11) (Subst.apply s (Term.var "X"))
  | _ -> Alcotest.fail "expected one answer"

let test_arith_precedence () =
  Alcotest.(check int) "2 + 3 * 4 = 14" 1
    (List.length (eval_builtin "2 + 3 * 4 = 14" Subst.empty));
  Alcotest.(check int) "(2 + 3) * 4 = 20" 1
    (List.length (eval_builtin "(2 + 3) * 4 = 20" Subst.empty));
  Alcotest.(check int) "10 - 4 - 3 = 3 (left assoc)" 1
    (List.length (eval_builtin "10 - 4 - 3 = 3" Subst.empty));
  Alcotest.(check int) "7 / 2 = 3 (integer division)" 1
    (List.length (eval_builtin "7 / 2 = 3" Subst.empty))

let test_arith_comparison_guard () =
  let answers =
    solve ~self:"peer"
      "cheap(C) <- price(C, P), P < 100 * 2.\nprice(a, 150). price(b, 300)."
      "cheap(X)"
  in
  Alcotest.(check int) "one under the computed bound" 1 (List.length answers)

let test_arith_division_by_zero_fails () =
  Alcotest.(check int) "no answers" 0
    (List.length (eval_builtin "10 / 0 = X" Subst.empty))

let test_arith_nonground_no_eval () =
  (* X + 1 with unbound X cannot be evaluated: the equality fails to unify
     the expression with an integer. *)
  let answers = solve ~self:"peer" "p(Y) <- Y = X + 1." "p(Z)" in
  Alcotest.(check int) "nonground arithmetic does not bind" 0
    (List.length answers)

let test_arith_printing_roundtrip () =
  let r = Parser.parse_rule "total(T) <- price(C, P), T = P * 2 + 50." in
  Alcotest.(check rule) "roundtrips" r (Parser.parse_rule (Rule.to_string r))

let test_arith_not_a_literal () =
  try
    ignore (Parser.parse_rule "p(X) <- X + 1.");
    Alcotest.fail "expected syntax error"
  with Parser.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Negation as failure *)

let test_naf_parse_and_print () =
  let r = Parser.parse_rule "ok(X) <- item(X), not banned(X)." in
  (match r.Rule.body with
  | [ _; naf ] -> (
      match Literal.naf_inner naf with
      | Some inner -> Alcotest.(check string) "inner pred" "banned" inner.Literal.pred
      | None -> Alcotest.fail "expected NAF literal")
  | _ -> Alcotest.fail "two body literals expected");
  let printed = Rule.to_string r in
  Alcotest.(check rule) "NAF roundtrips" r (Parser.parse_rule printed)

let test_naf_not_with_paren_is_ordinary () =
  let r = Parser.parse_rule "p(X) <- not(X)." in
  match r.Rule.body with
  | [ l ] ->
      Alcotest.(check bool) "ordinary not/1 predicate" true
        (Literal.naf_inner l = None || l.Literal.pred = "not");
      Alcotest.(check (pair string int)) "key" ("not", 1) (Literal.key l)
  | _ -> Alcotest.fail "one body literal"

let test_naf_semantics () =
  let answers =
    solve ~self:"peer"
      "ok(X) <- item(X), not banned(X).\nitem(a). item(b). banned(b)."
      "ok(X)"
  in
  match answers with
  | [ s ] -> Alcotest.(check term) "only a survives" (Term.atom "a") (Subst.apply s (Term.var "X"))
  | _ -> Alcotest.fail "expected exactly one answer"

let test_naf_double_negation () =
  let answers =
    solve ~self:"peer" "p(X) <- item(X), not not good(X).\nitem(a). good(a). item(b)."
      "p(X)"
  in
  Alcotest.(check int) "double negation keeps a" 1 (List.length answers)

let test_naf_nonground_flounders () =
  let answers = solve ~self:"peer" "q(1). p(X) <- not q(X)." "p(X)" in
  Alcotest.(check int) "floundering NAF fails" 0 (List.length answers)

let test_naf_no_remote_dispatch () =
  let called = ref false in
  let remote ~target:_ _ =
    called := true;
    []
  in
  let answers =
    solve ~self:"peer" ~remote {|ok("x") <- not bad("x") @ "other".|} {|ok("x")|}
  in
  (* The inner goal has no local proof, so NAF succeeds — without asking
     the remote peer. *)
  Alcotest.(check int) "succeeds" 1 (List.length answers);
  Alcotest.(check bool) "remote never consulted" false !called

let test_naf_lint () =
  match Program.check (Program.parse "p(X) <- not q(Y).") with
  | [ Program.Unsafe_head_var _; Program.Unbound_naf (_, "Y") ]
  | [ Program.Unbound_naf (_, "Y"); Program.Unsafe_head_var _ ] ->
      ()
  | ws -> Alcotest.failf "unexpected warnings (%d)" (List.length ws)

(* ------------------------------------------------------------------ *)
(* Forward chaining *)

let test_forward_basic () =
  let kb = Kb.of_string "p(X) <- e(X). e(1). e(2)." in
  let r = Forward.saturate ~self:"peer" kb in
  Alcotest.(check int) "derived two" 2 r.Forward.derived;
  Alcotest.(check bool) "p(1) derived" true
    (Forward.derives ~self:"peer" kb (Parser.parse_literal "p(1)"))

let test_forward_transitive_closure () =
  let kb =
    Kb.of_string
      "path(X, Y) <- edge(X, Y). path(X, Z) <- path(X, Y), edge(Y, Z).\n\
       edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 1)."
  in
  let r = Forward.saturate ~self:"peer" kb in
  (* Cyclic graph on 4 nodes: 16 path facts + 4 edges. *)
  Alcotest.(check int) "all paths" 20 (List.length r.Forward.facts)

let test_forward_signed_axiom () =
  let kb = Kb.of_string {|visaCard("IBM") signedBy ["VISA"].|} in
  Alcotest.(check bool) "lit @ signer derivable" true
    (Forward.derives ~self:"bob" kb (Parser.parse_literal {|visaCard("IBM") @ "VISA"|}))

let test_forward_builtin_guard () =
  let kb =
    Kb.of_string "ok(X) <- v(X), X < 10. v(5). v(15)."
  in
  let r = Forward.saturate ~self:"peer" kb in
  Alcotest.(check bool) "ok(5)" true
    (List.exists (Literal.equal (Parser.parse_literal "ok(5)")) r.Forward.facts);
  Alcotest.(check bool) "no ok(15)" false
    (List.exists (Literal.equal (Parser.parse_literal "ok(15)")) r.Forward.facts)

let test_forward_unsafe_rule_ignored () =
  let kb = Kb.of_string "p(X, Y) <- q(X). q(1)." in
  let r = Forward.saturate ~self:"peer" kb in
  (* p(1, Y) is non-ground; it must not be derived. *)
  Alcotest.(check int) "only q(1)" 1 (List.length r.Forward.facts)

let test_forward_agrees_with_sld () =
  let src =
    "a(X) <- b(X), c(X). b(X) <- d(X). c(1). c(2). d(1). d(3)."
  in
  let kb = Kb.of_string src in
  let fwd = Forward.derives ~self:"peer" kb (Parser.parse_literal "a(1)") in
  let bwd = Sld.provable ~self:"peer" kb (Parser.parse_query "a(1)") in
  Alcotest.(check bool) "both derive a(1)" true (fwd && bwd);
  let fwd2 = Forward.derives ~self:"peer" kb (Parser.parse_literal "a(2)") in
  let bwd2 = Sld.provable ~self:"peer" kb (Parser.parse_query "a(2)") in
  Alcotest.(check bool) "neither derives a(2)" false (fwd2 || bwd2)

let test_forward_max_rounds () =
  let kb = Kb.of_string "n(s(X)) <- n(X). n(z)." in
  (* Would diverge: heads stay ground forever; the rounds cap stops it. *)
  let r = Forward.saturate ~self:"peer" ~max_rounds:5 kb in
  Alcotest.(check int) "stopped at cap" 5 r.Forward.rounds

(* ------------------------------------------------------------------ *)
(* Tabled evaluation *)

let left_recursive_tc =
  "path(X, Z) <- path(X, Y), edge(Y, Z).\n\
   path(X, Y) <- edge(X, Y).\n\
   edge(1, 2). edge(2, 3). edge(3, 4)."

let test_tabled_left_recursion_complete () =
  let kb = Kb.of_string left_recursive_tc in
  let tabled = Tabled.solve ~self:"p" kb (Parser.parse_query "path(1, X)") in
  Alcotest.(check int) "tabling reaches 2, 3, 4" 3 (List.length tabled);
  (* Depth-first SLD with the ancestor check prunes the left-recursive
     branch and finds only the one-step path: the motivation for tabling. *)
  let sld = Sld.answers ~self:"p" kb (Parser.parse_query "path(1, X)") in
  Alcotest.(check int) "SLD is incomplete here" 1 (List.length sld)

let test_tabled_agrees_with_forward () =
  let kb = Kb.of_string left_recursive_tc in
  let fwd = Forward.saturate ~self:"p" kb in
  let paths =
    List.filter
      (fun (l : Literal.t) -> String.equal l.Literal.pred "path")
      fwd.Forward.facts
  in
  let tabled = Tabled.solve ~self:"p" kb (Parser.parse_query "path(A, B)") in
  Alcotest.(check int) "same path count as forward" (List.length paths)
    (List.length tabled)

let test_tabled_cyclic_graph_terminates () =
  let kb =
    Kb.of_string
      "path(X, Z) <- path(X, Y), edge(Y, Z). path(X, Y) <- edge(X, Y).\n\
       edge(1, 2). edge(2, 1)."
  in
  let answers = Tabled.solve ~self:"p" kb (Parser.parse_query "path(1, X)") in
  (* 1 reaches 1 and 2. *)
  Alcotest.(check int) "two reachable nodes" 2 (List.length answers)

let test_tabled_conjunction () =
  let kb = Kb.of_string "p(1). p(2). q(2). q(3)." in
  let answers = Tabled.solve ~self:"p" kb (Parser.parse_query "p(X), q(X)") in
  Alcotest.(check int) "one joint answer" 1 (List.length answers)

let test_tabled_ground_query () =
  let kb = Kb.of_string left_recursive_tc in
  Alcotest.(check bool) "path(1,4) provable" true
    (Tabled.provable ~self:"p" kb (Parser.parse_query "path(1, 4)"));
  Alcotest.(check bool) "path(4,1) not provable" false
    (Tabled.provable ~self:"p" kb (Parser.parse_query "path(4, 1)"))

let test_tabled_builtins_and_signed () =
  let kb =
    Kb.of_string
      {|ok(X) <- v(X), X < 10. v(5). v(15).
        card("IBM") signedBy ["VISA"].|}
  in
  let answers = Tabled.solve ~self:"p" kb (Parser.parse_query "ok(X)") in
  Alcotest.(check int) "builtin guard" 1 (List.length answers);
  Alcotest.(check bool) "signed axiom" true
    (Tabled.provable ~self:"p" kb (Parser.parse_query {|card(C) @ "VISA"|}))

let test_tabled_rejects_naf () =
  let kb = Kb.of_string "p(X) <- q(X), not r(X). q(1)." in
  Alcotest.check_raises "NAF rejected"
    (Tabled.Unsupported "negation as failure under tabling") (fun () ->
      ignore (Tabled.solve ~self:"p" kb (Parser.parse_query "p(X)")))

let test_tabled_max_answers_cap () =
  let kb = Kb.of_string "n(z). n(s(X)) <- n(X)." in
  let answers =
    Tabled.solve ~max_answers:20 ~self:"p" kb (Parser.parse_query "n(X)")
  in
  Alcotest.(check bool) "bounded" true (List.length answers <= 21);
  Alcotest.(check bool) "nonempty" true (answers <> [])

let test_tabled_table_sharing () =
  (* The same sub-goal appearing in many bodies allocates one table. *)
  let kb =
    Kb.of_string
      "a(X) <- base(X). b(X) <- base(X). c(X) <- a(X), b(X). base(1). base(2)."
  in
  let answers, stats =
    Tabled.solve_stats ~self:"p" kb (Parser.parse_query "c(X)")
  in
  Alcotest.(check int) "answers" 2 (List.length answers);
  (* Call-variant tabling: open calls share (query, c(V), a(V), base(V)),
     while calls instantiated by earlier body answers get their own tables
     (b(1), b(2), base(1), base(2)) — eight in total. *)
  Alcotest.(check int) "eight tables" 8 stats.Tabled.tables;
  (* The counts are per call, not "most recent solve" globals: an
     interleaved unrelated solve must not disturb them. *)
  let tiny = Kb.of_string "t(1)." in
  let _, tiny_stats = Tabled.solve_stats ~self:"p" tiny (Parser.parse_query "t(X)") in
  Alcotest.(check int) "interleaved call sees its own count" 2
    tiny_stats.Tabled.tables;
  let _, again = Tabled.solve_stats ~self:"p" kb (Parser.parse_query "c(X)") in
  Alcotest.(check int) "repeat call count is stable" 8 again.Tabled.tables

(* ------------------------------------------------------------------ *)
(* Program lint *)

let test_program_check_unsafe_head () =
  let rules = Program.parse "p(X, Y) <- q(X)." in
  match Program.check rules with
  | [ Program.Unsafe_head_var (_, "Y") ] -> ()
  | ws -> Alcotest.failf "unexpected warnings (%d)" (List.length ws)

let test_program_check_floundering_authority () =
  let rules = Program.parse "p(X) <- q(X) @ A." in
  match Program.check rules with
  | [ Program.Unbound_authority (_, "A") ] -> ()
  | ws -> Alcotest.failf "unexpected warnings (%d)" (List.length ws)

let test_program_check_clean () =
  let rules =
    Program.parse
      {|p(X) <- q(X) @ "peer". r(X, A) <- auth(A), q(X) @ A. q(1).|}
  in
  Alcotest.(check int) "no warnings" 0 (List.length (Program.check rules))

(* ------------------------------------------------------------------ *)
(* QCheck properties *)

let gen_term =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun go n ->
          if n = 0 then
            oneof
              [
                map (fun i -> Term.var (Printf.sprintf "V%d" i)) (int_bound 5);
                map (fun i -> Term.Int i) (int_bound 100);
                map (fun i -> Term.str (Printf.sprintf "s%d" i)) (int_bound 5);
                map (fun i -> Term.atom (Printf.sprintf "a%d" i)) (int_bound 5);
              ]
          else
            frequency
              [
                (2, go 0);
                ( 1,
                  map2
                    (fun f args -> Term.compound (Printf.sprintf "f%d" f) args)
                    (int_bound 2)
                    (list_size (int_range 1 3) (go (n / 4))) );
              ])
        (min n 8))

let arb_term = QCheck.make ~print:Term.to_string gen_term

let prop_unify_reflexive =
  QCheck.Test.make ~name:"unify: t unifies with itself" ~count:200 arb_term
    (fun t -> Option.is_some (Unify.terms t t Subst.empty))

let prop_unify_symmetric =
  QCheck.Test.make ~name:"unify: symmetric success" ~count:200
    (QCheck.pair arb_term arb_term) (fun (a, b) ->
      Option.is_some (Unify.terms a b Subst.empty)
      = Option.is_some (Unify.terms b a Subst.empty))

let prop_unifier_unifies =
  QCheck.Test.make ~name:"unify: mgu equalises both sides" ~count:200
    (QCheck.pair arb_term arb_term) (fun (a, b) ->
      match Unify.terms a b Subst.empty with
      | None -> QCheck.assume_fail ()
      | Some s -> Term.equal (Subst.apply s a) (Subst.apply s b))

let prop_rename_preserves_ground =
  QCheck.Test.make ~name:"rename: ground terms unchanged" ~count:200 arb_term
    (fun t ->
      QCheck.assume (Term.is_ground t);
      Term.equal t (Term.rename_with (Hashtbl.create 4) t))

let prop_variant_reflexive =
  QCheck.Test.make ~name:"variant: reflexive" ~count:200 arb_term (fun t ->
      Unify.variant t t)

let prop_rename_variant =
  QCheck.Test.make ~name:"variant: renamed term is a variant" ~count:200
    arb_term (fun t -> Unify.variant t (Term.rename_with (Hashtbl.create 4) t))

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare: antisymmetric" ~count:200
    (QCheck.pair arb_term arb_term) (fun (a, b) ->
      compare (Term.compare a b) 0 = compare 0 (Term.compare b a))

let gen_literal =
  QCheck.Gen.(
    let* p = int_bound 4 in
    let* args = list_size (int_range 0 3) gen_term in
    let* auth = list_size (int_range 0 2) gen_term in
    return (Literal.make ~auth (Printf.sprintf "p%d" p) args))

let arb_literal = QCheck.make ~print:Literal.to_string gen_literal

let prop_literal_term_roundtrip =
  QCheck.Test.make ~name:"literal: to_term/of_term roundtrip" ~count:300
    arb_literal (fun l ->
      match Literal.of_term (Literal.to_term l) with
      | Some l' -> Literal.equal l l'
      | None -> false)

let prop_literal_pop_push =
  QCheck.Test.make ~name:"literal: pop inverts push" ~count:200
    (QCheck.pair arb_literal arb_term) (fun (l, a) ->
      match Literal.pop_authority (Literal.push_authority l a) with
      | Some (l', a') -> Literal.equal l l' && Term.equal a a'
      | None -> false)

let prop_one_way_matches_instance =
  QCheck.Test.make ~name:"unify: one_way accepts ground instances" ~count:200
    arb_term (fun t ->
      let s =
        List.fold_left
          (fun s v -> Subst.bind_id v (Term.atom "k") s)
          Subst.empty (Term.vars t)
      in
      Option.is_some (Unify.one_way t (Subst.apply s t) Subst.empty))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_literal_term_roundtrip;
      prop_literal_pop_push;
      prop_one_way_matches_instance;
      prop_unify_reflexive;
      prop_unify_symmetric;
      prop_unifier_unifies;
      prop_rename_preserves_ground;
      prop_variant_reflexive;
      prop_rename_variant;
      prop_compare_antisym;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dlp"
    [
      ( "term",
        [
          tc "groundness" test_term_ground;
          tc "vars order" test_term_vars;
          tc "rename keeps pseudo-vars" test_term_rename;
          tc "compare total order" test_term_compare_total;
        ] );
      ( "subst",
        [
          tc "walk vs apply" test_subst_walk_apply;
          tc "rebind rejected" test_subst_rebind_rejected;
          tc "restrict applies bindings" test_subst_restrict;
        ] );
      ( "unify",
        [
          tc "var binding" test_unify_basic;
          tc "compound" test_unify_compound;
          tc "occurs check" test_unify_occurs_check;
          tc "clashes" test_unify_clash;
          tc "through substitution" test_unify_through_subst;
          tc "variants" test_variant;
        ] );
      ( "lexer",
        [
          tc "tokens" test_lexer_basic;
          tc "comments" test_lexer_comments;
          tc "escapes" test_lexer_escapes;
          tc "error positions" test_lexer_error_position;
          tc "signedBy keyword" test_lexer_signedby_keyword;
        ] );
      ( "parser",
        [
          tc "fact" test_parse_fact;
          tc "signed fact" test_parse_signed_fact;
          tc "rule with body" test_parse_rule_with_body;
          tc "nested authorities" test_parse_nested_authorities;
          tc "head context" test_parse_head_context;
          tc "Requester = Party context" test_parse_requester_equals;
          tc "signedBy after arrow" test_parse_signed_rule_after_arrow;
          tc "comparison body" test_parse_comparison_in_body;
          tc "scenario program" test_parse_program_scenario;
          tc "print/parse roundtrip" test_parse_roundtrip;
          tc "syntax errors" test_parse_errors;
        ] );
      ( "kb",
        [
          tc "dedup and order" test_kb_dedup_and_order;
          tc "find by key" test_kb_find;
          tc "remove" test_kb_remove;
          tc "signed rules" test_kb_signed_rules;
          tc "union" test_kb_union;
          tc "first-argument indexing" test_kb_first_arg_indexing;
          tc "indexing preserves semantics" test_kb_indexing_preserves_semantics;
          tc "indexing keeps order" test_kb_indexing_order_stable;
          tc "gterm id stability" test_gterm_id_stability;
          tc "remove updates index" test_kb_remove_indexed;
        ] );
      ( "builtin",
        [
          tc "comparisons" test_builtin_comparisons;
          tc "equality unifies" test_builtin_equality_unifies;
          tc "disequality" test_builtin_disequality;
          tc "nonground comparison" test_builtin_nonground_comparison;
          tc "detection" test_builtin_detection;
        ] );
      ( "sld",
        [
          tc "facts" test_sld_fact;
          tc "conjunction" test_sld_conjunction;
          tc "chain rule" test_sld_chain;
          tc "transitive closure" test_sld_recursion_transitive_closure;
          tc "cyclic data terminates" test_sld_cycle_terminates;
          tc "self-loop fails finitely" test_sld_self_loop_fails_finitely;
          tc "builtin in body" test_sld_builtin_in_body;
          tc "authority matching" test_sld_authority_matching;
          tc "signed-rule axiom" test_sld_signed_rule_axiom;
          tc "self authority stripped" test_sld_self_authority_stripped;
          tc "@ Self is local" test_sld_self_pseudovar;
          tc "Requester binding" test_sld_requester_binding;
          tc "remote dispatch" test_sld_remote_dispatch;
          tc "unbound authority flounders" test_sld_remote_not_called_for_unbound_authority;
          tc "nested authority dispatch" test_sld_nested_authority_dispatch;
          tc "external predicates" test_sld_externals;
          tc "max solutions" test_sld_max_solutions;
          tc "max depth" test_sld_max_depth;
          tc "proof trace credentials" test_sld_proof_trace;
          tc "trace instantiation" test_sld_trace_fully_instantiated;
        ] );
      ( "arith",
        [
          tc "computation in equality" test_arith_in_comparison;
          tc "precedence" test_arith_precedence;
          tc "guard with expression" test_arith_comparison_guard;
          tc "division by zero" test_arith_division_by_zero_fails;
          tc "nonground expression" test_arith_nonground_no_eval;
          tc "printing roundtrip" test_arith_printing_roundtrip;
          tc "bare expression rejected" test_arith_not_a_literal;
        ] );
      ( "naf",
        [
          tc "parse and print" test_naf_parse_and_print;
          tc "not(X) stays ordinary" test_naf_not_with_paren_is_ordinary;
          tc "semantics" test_naf_semantics;
          tc "double negation" test_naf_double_negation;
          tc "non-ground flounders" test_naf_nonground_flounders;
          tc "no remote dispatch" test_naf_no_remote_dispatch;
          tc "lint" test_naf_lint;
        ] );
      ( "forward",
        [
          tc "basic" test_forward_basic;
          tc "transitive closure" test_forward_transitive_closure;
          tc "signed axiom" test_forward_signed_axiom;
          tc "builtin guard" test_forward_builtin_guard;
          tc "unsafe rule ignored" test_forward_unsafe_rule_ignored;
          tc "agrees with sld" test_forward_agrees_with_sld;
          tc "max rounds cap" test_forward_max_rounds;
        ] );
      ( "tabled",
        [
          tc "left recursion complete" test_tabled_left_recursion_complete;
          tc "agrees with forward" test_tabled_agrees_with_forward;
          tc "cyclic graph terminates" test_tabled_cyclic_graph_terminates;
          tc "conjunction" test_tabled_conjunction;
          tc "ground queries" test_tabled_ground_query;
          tc "builtins and signed axiom" test_tabled_builtins_and_signed;
          tc "NAF rejected" test_tabled_rejects_naf;
          tc "answer cap" test_tabled_max_answers_cap;
          tc "table sharing" test_tabled_table_sharing;
        ] );
      ( "program",
        [
          tc "unsafe head var" test_program_check_unsafe_head;
          tc "floundering authority" test_program_check_floundering_authority;
          tc "clean program" test_program_check_clean;
        ] );
      ("properties", qcheck_cases);
    ]
